#!/usr/bin/env python
"""Fugaku-style torus collectives (paper Sec. 5.4 and Appendix D).

Builds the torus-optimised Bine tree of Fig. 16 on a 4×4 torus, shows how
per-dimension construction cuts crossed links, then times (with the cost
model) the multiported allreduce against bucket and plain binomial on an
8×8×8 sub-torus.
"""

from repro.collectives.registry import build
from repro.collectives.torus import (
    bucket_allreduce,
    torus_bine_allreduce,
    torus_bine_allreduce_multiport,
)
from repro.collectives.verify import run_and_check
from repro.core.bine_tree import bine_tree_distance_halving
from repro.core.torus_opt import TorusShape, torus_bine_tree
from repro.model.simulator import evaluate_time, profile_schedule
from repro.systems import fugaku
from repro.topology.mapping import block_mapping
from repro.topology.torus import Torus


def fig16() -> None:
    print("=== Fig. 16: 4x4 torus, Bine tree vs torus-optimised Bine tree ===")
    torus = Torus((4, 4))
    shape = TorusShape((4, 4))
    flat = bine_tree_distance_halving(16)
    opt = torus_bine_tree(shape)
    print("  root's children, torus-optimised:",
          [f"{c}={torus.coords(c)}" for _, c in opt.children(0)])
    for name, tree in (("1-D bine", flat), ("torus bine", opt)):
        hops = sum(torus.torus_distance(u, v) for _, u, v in tree.all_edges())
        print(f"  {name:>12}: {hops} total links crossed")
    print()


def allreduce_timing() -> None:
    print("=== 8x8x8 sub-torus allreduce (64 MiB), cost-model timing ===")
    dims = (8, 8, 8)
    shape = TorusShape(dims)
    preset = fugaku(dims)
    topo = Torus(dims)
    p = shape.num_ranks
    mapping = block_mapping(p)
    candidates = {
        "bine multiport (6 NICs)": torus_bine_allreduce_multiport(shape, 6 * p),
        "bine torus (1 NIC)": torus_bine_allreduce(shape, p),
        "bucket (multi-ring)": bucket_allreduce(shape, p),
        "binomial (agnostic)": build("allreduce", "recursive-doubling", p, p),
    }
    nb = 64 * 1024**2
    for name, sched in candidates.items():
        prof = profile_schedule(sched, topo, mapping)
        t = evaluate_time(prof, preset.params, nb / 4).time
        print(f"  {name:>24}: {t * 1e3:8.2f} ms")
    print("  (paper Sec. 5.4: Bine up to 5x over SOTA; 40x over plain binomial)")


def correctness_check() -> None:
    print("\n=== executor correctness on a 2x4x2 torus ===")
    shape = TorusShape((2, 4, 2))
    run_and_check(torus_bine_allreduce(shape, 4 * shape.num_ranks))
    run_and_check(bucket_allreduce(shape, 2 * shape.num_ranks))
    print("  torus bine + bucket allreduce verified against NumPy")


if __name__ == "__main__":
    fig16()
    allreduce_timing()
    correctness_check()
