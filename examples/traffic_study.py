#!/usr/bin/env python
"""Global-traffic study: the paper's Fig. 1 and Fig. 5 on your terminal.

Part 1 reproduces the motivating example exactly: an 8-node broadcast on a
2:1 oversubscribed fat tree, where the distance-doubling binomial tree pays
6n bytes on global links and the distance-halving tree only 3n.

Part 2 runs the Fig. 5 experiment in miniature: sample scheduler-like job
allocations on a Leonardo-shaped Dragonfly+ and measure how much global
allreduce traffic Bine saves per job — bounded by the theoretical 33 %.
"""

from repro.analysis.boxplot import box_stats, format_box_row
from repro.analysis.jobs import run_study
from repro.collectives.registry import build
from repro.core.distance import THEORETICAL_TRAFFIC_REDUCTION_BOUND
from repro.model.traffic import global_traffic_elems
from repro.topology.allocation import SystemShape
from repro.topology.fattree import FatTree


def figure1() -> None:
    print("=== Fig. 1: 8-node broadcast on a 2:1 fat tree ===")
    ft = FatTree(num_subtrees=4, nodes_per_subtree=2, oversubscription=2.0)
    groups = [ft.group_of(i) for i in range(8)]
    n = 128
    for name in ("binomial-dd", "binomial-dh", "bine"):
        sched = build("bcast", name, 8, n)
        g = global_traffic_elems(sched, groups)
        print(f"  {name:>12}: {g / n:.1f}n bytes over global links")
    print("  (paper: 6n for distance-doubling, 3n for distance-halving)\n")


def figure5() -> None:
    print("=== Fig. 5 (miniature): per-job traffic reduction, Leonardo shape ===")
    shape = SystemShape("leonardo", num_groups=23, nodes_per_group=180)
    study = run_study(shape, node_counts=(16, 64, 256), jobs_per_count=25,
                      seed=3, busy_fraction=0.8)
    for p, vals in sorted(study.reductions.items()):
        stats = box_stats([100 * v for v in vals])
        print(" ", format_box_row(f"{p}-node jobs", stats))
    print(f"  theoretical bound: {100 * THEORETICAL_TRAFFIC_REDUCTION_BOUND:.0f}%")


if __name__ == "__main__":
    figure1()
    figure5()
