#!/usr/bin/env python
"""Inspect Bine machinery interactively: negabinary labels, trees, coverage.

Prints the paper's Fig. 3/4/6 structures for a rank count of your choice:

    python examples/algorithm_playground.py [p]
"""

import sys

from repro.core.bine_tree import (
    bine_tree_distance_doubling,
    bine_tree_distance_halving,
    nu_labels,
)
from repro.core.butterfly import bine_butterfly_doubling
from repro.core.coverage import responsibility, segments_of
from repro.core.negabinary import nb_digits, rank_to_nb
from repro.core.tree import log2_exact


def main(p: int) -> None:
    s = log2_exact(p)
    print(f"=== negabinary rank labels, p={p} (paper Fig. 3/4) ===")
    print("rank :", "  ".join(f"{r:>4}" for r in range(p)))
    print("nb   :", "  ".join(nb_digits(rank_to_nb(r, p), s) for r in range(p)))
    print("nu   :", "  ".join(nb_digits(v, s) for v in nu_labels(p)))

    print(f"\n=== distance-halving Bine broadcast tree (root 0) ===")
    tree = bine_tree_distance_halving(p)
    for step in range(tree.num_steps):
        edges = ", ".join(f"{u}->{v}" for u, v in tree.edges[step])
        print(f"  step {step}: {edges}")

    print(f"\n=== distance-doubling tree receive steps ===")
    dd = bine_tree_distance_doubling(p)
    print("  ", {r: dd.recv_step(r) for r in range(p)})

    print(f"\n=== reduce-scatter block responsibility (Sec. 3.2.3) ===")
    bf = bine_butterfly_doubling(p)
    for j in range(s + 1):
        blocks = sorted(responsibility(bf, 0, j))
        print(f"  rank 0 before step {j}: blocks {blocks} "
              f"({len(segments_of(blocks))} segments in natural layout)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
