#!/usr/bin/env python
"""Quickstart: build, run, and verify a Bine allreduce on 16 simulated ranks.

This touches every layer of the library in ~40 lines:

1. build a collective schedule from the registry,
2. execute it on real NumPy buffers with the deterministic executor,
3. verify against the NumPy ground truth,
4. count global-link traffic on a Dragonfly and compare with binomial.
"""

import numpy as np

from repro.collectives.registry import build
from repro.collectives.verify import check, init_buffers
from repro.model.traffic import global_traffic_elems
from repro.runtime import execute
from repro.topology.dragonfly import Dragonfly

P = 16          # ranks
N = 64          # vector elements per rank


def main() -> None:
    # 1. A Bine large-vector allreduce (reduce-scatter + allgather, "send"
    #    strategy: zero local reordering, every transfer contiguous).
    sched = build("allreduce", "bine-rsag", P, N)
    print(f"schedule: {sched.meta['algorithm']}, {sched.num_steps} steps, "
          f"{sched.total_comm_elems()} elements on the wire")

    # 2. Execute on per-rank buffers (each rank contributes its own vector).
    bufs = init_buffers(sched, seed=42)
    trace = execute(sched, bufs)
    print(f"executed {trace.transfers_run} transfers in {trace.steps_run} steps")

    # 3. Verify: every rank must now hold the elementwise sum.
    check(sched, bufs, seed=42)
    print("result verified against NumPy ground truth")
    print("rank 5 head:", bufs.get(5, "vec")[:6], "…")

    # 4. Traffic: how many bytes cross Dragonfly group boundaries?
    topo = Dragonfly(num_groups=4, nodes_per_group=4)
    groups = [topo.group_of(r) for r in range(P)]
    for name in ("bine-rsag", "rabenseifner", "recursive-doubling"):
        s = build("allreduce", name, P, N)
        g = global_traffic_elems(s, groups)
        print(f"{name:>22}: {g:5d} elements over global links")


if __name__ == "__main__":
    main()
