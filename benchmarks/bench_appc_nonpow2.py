"""Appendix C: non-power-of-two Bine trees.

Pruned construction (even p): same per-edge volume as the power-of-two
tree — each of the p−1 kept edges carries the whole vector once — while the
fold technique adds 2·(p−p′) extra full-vector transfers.  Correctness of
both is exercised through the executor.
"""

from repro.collectives.tree_collectives import bcast_from_tree, reduce_from_tree
from repro.collectives.verify import run_and_check
from repro.core.nonpow2 import bine_tree_dh_pruned, fold_plan

from benchmarks._shared import write_result

EVEN_PS = (6, 10, 12, 14, 18, 20, 24, 26, 30, 34, 40, 48, 62, 100, 126)


def compute():
    rows = []
    for p in EVEN_PS:
        tree = bine_tree_dh_pruned(p)
        sched = bcast_from_tree(tree, 16)
        run_and_check(sched)
        run_and_check(reduce_from_tree(tree, 16))
        edges = len(tree.all_edges())
        fp = fold_plan(p)
        fold_transfers = (fp.p_prime - 1) + 2 * fp.extra
        rows.append((p, edges, len(tree.pruned_edges), fold_transfers))
    return rows


def test_appc_nonpow2(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'p':>5} {'kept edges':>11} {'pruned':>7} {'fold transfers':>15}"]
    for p, edges, pruned, foldt in rows:
        lines.append(f"{p:>5} {edges:>11} {pruned:>7} {foldt:>15}")
    lines.append("pruned tree: p-1 transfers (volume parity with pow2); "
                 "fold pays 2(p-p') extra (Appendix C)")
    write_result("appc_nonpow2", "\n".join(lines))

    for p, edges, pruned, foldt in rows:
        assert edges == p - 1          # spanning tree, no extra volume
        assert foldt >= edges          # folding never cheaper
        assert pruned >= 1             # some duplicate subtree existed
