"""Ablation: which cost-model term drives which paper effect (DESIGN.md §4.3).

* zeroing the per-segment overhead collapses the Bine-vs-Swing gap
  (Sec. 5.2.2's 2× contiguity claim);
* equalising global and local bandwidth collapses Bine-vs-binomial gains
  (the whole premise: oversubscribed global links);
* dropping ports to 1 removes the multiport torus advantage (App. D.4).
"""

from dataclasses import replace

from repro.analysis.sweep import ProfileCache, sweep_system
from repro.model.cost import CostParams
from repro.model.simulator import evaluate_time, profile_schedule
from repro.collectives.torus import (
    torus_bine_allreduce,
    torus_bine_allreduce_multiport,
)
from repro.core.torus_opt import TorusShape
from repro.systems import fugaku, lumi
from repro.topology.base import LinkClass
from repro.topology.mapping import block_mapping
from repro.topology.torus import Torus

from benchmarks._shared import write_result


def compute():
    preset = lumi()
    cache = ProfileCache(preset, placement="scheduler")
    nb = 1024**2
    recs = sweep_system(
        preset, ("allreduce",), node_counts=(256,), vector_bytes=(nb,),
        algorithms=("bine-rsag", "swing", "rabenseifner"), cache=cache,
    )
    base = {r.algorithm: r.time for r in recs}

    # (1) no segment overhead → Swing recovers towards Bine
    params_noseg = replace(preset.params, seg_overhead=0.0)
    noseg = {
        r.algorithm: r.time
        for r in sweep_system(
            preset, ("allreduce",), node_counts=(256,), vector_bytes=(nb,),
            algorithms=("bine-rsag", "swing"), params=params_noseg, cache=cache,
        )
    }

    # (2) global links as fast as local → binomial recovers towards Bine
    beta_flat = dict(preset.params.beta)
    beta_flat[LinkClass.GLOBAL] = beta_flat[LinkClass.LOCAL]
    params_flat = replace(preset.params, beta=beta_flat)
    flat = {
        r.algorithm: r.time
        for r in sweep_system(
            preset, ("allreduce",), node_counts=(256,), vector_bytes=(nb,),
            algorithms=("bine-rsag", "rabenseifner"), params=params_flat, cache=cache,
        )
    }

    # (3) single-port Fugaku → multiport advantage vanishes
    dims = (4, 4, 4)
    shape = TorusShape(dims)
    fug = fugaku(dims)
    topo = Torus(dims)
    mapping = block_mapping(shape.num_ranks)
    single = profile_schedule(torus_bine_allreduce(shape, shape.num_ranks), topo, mapping)
    multi = profile_schedule(
        torus_bine_allreduce_multiport(shape, 6 * shape.num_ranks), topo, mapping
    )
    nb_t = 64 * 1024**2
    with_ports = (
        evaluate_time(single, fug.params, nb_t / 4).time
        / evaluate_time(multi, fug.params, nb_t / 4).time
    )
    one_port = replace(fug.params, ports=1)
    without_ports = (
        evaluate_time(single, one_port, nb_t / 4).time
        / evaluate_time(multi, one_port, nb_t / 4).time
    )
    return base, noseg, flat, with_ports, without_ports


def test_ablation_cost_terms(benchmark):
    base, noseg, flat, with_ports, without_ports = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    swing_gap_base = base["swing"] / base["bine-rsag"]
    swing_gap_noseg = noseg["swing"] / noseg["bine-rsag"]
    binom_gap_base = base["rabenseifner"] / base["bine-rsag"]
    binom_gap_flat = flat["rabenseifner"] / flat["bine-rsag"]
    lines = [
        f"swing/bine time ratio: base={swing_gap_base:.2f}, "
        f"no-segment-overhead={swing_gap_noseg:.2f}",
        f"rabenseifner/bine ratio: base={binom_gap_base:.2f}, "
        f"flat-global-bandwidth={binom_gap_flat:.2f}",
        f"multiport speedup: 6 ports={with_ports:.2f}x, 1 port={without_ports:.2f}x",
        "each paper effect disappears when its cost term is ablated",
    ]
    write_result("ablation_cost_terms", "\n".join(lines))

    assert swing_gap_base > swing_gap_noseg    # segments drove the Swing gap
    assert binom_gap_base > binom_gap_flat     # oversubscription drove Bine's win
    assert with_ports > without_ports          # ports drove the multiport win
