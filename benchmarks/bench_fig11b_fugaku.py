"""Fig. 11b: Fugaku (Tofu-D torus) vs torus-optimised state of the art.

Paper headline: Bine (multiported, per-dimension) is the top performer for
allreduce / reduce-scatter / scatter in >60 % of tests with gains up to 5×,
while for bcast/reduce Fujitsu's Trinaryx-like multiported trees are near
optimal and Bine merely stays competitive; plain binomial trees (topology
agnostic) are catastrophically slower (up to 40×).
"""

from repro.collectives.registry import build as build_generic
from repro.collectives.torus import (
    bucket_allreduce,
    torus_bine_allreduce,
    torus_bine_allreduce_multiport,
    torus_bine_allreduce_small,
    torus_bine_bcast,
    torus_bine_reduce,
    trinaryx_bcast,
    trinaryx_reduce,
)
from repro.core.torus_opt import TorusShape
from repro.model.simulator import evaluate_time, profile_schedule
from repro.systems import fugaku
from repro.topology.mapping import block_mapping
from repro.topology.torus import Torus

from benchmarks._shared import write_result

SHAPES = ((2, 2, 2), (4, 4, 4), (8, 8, 8), (8, 8))
SIZES = tuple(32 * 8**k for k in range(9))


def _profiles_for(dims):
    shape = TorusShape(dims)
    p = shape.num_ranks
    preset = fugaku(dims)
    topo = Torus(dims)
    mapping = block_mapping(p)

    def prof(sched):
        return profile_schedule(sched, topo, mapping)

    out = {"allreduce": {}, "bcast": {}, "reduce": {}}
    out["allreduce"]["bine-multiport"] = prof(
        torus_bine_allreduce_multiport(shape, 2 * shape.num_dims * p)
    )
    out["allreduce"]["bine-torus"] = prof(torus_bine_allreduce(shape, p))
    out["allreduce"]["bine-torus-small"] = prof(torus_bine_allreduce_small(shape, p))
    out["allreduce"]["bucket"] = prof(bucket_allreduce(shape, p))
    out["allreduce"]["binomial"] = prof(
        build_generic("allreduce", "recursive-doubling", p, p)
    )
    out["allreduce"]["rabenseifner"] = prof(
        build_generic("allreduce", "rabenseifner", p, p)
    )
    out["bcast"]["bine-torus"] = prof(torus_bine_bcast(shape, p))
    out["bcast"]["trinaryx"] = prof(trinaryx_bcast(shape, p))
    out["bcast"]["binomial"] = prof(build_generic("bcast", "binomial-dd", p, p))
    out["reduce"]["bine-torus"] = prof(torus_bine_reduce(shape, p))
    out["reduce"]["trinaryx"] = prof(trinaryx_reduce(shape, p))
    out["reduce"]["binomial"] = prof(build_generic("reduce", "binomial-dd", p, p))
    return preset, out


def compute():
    results = {}
    for dims in SHAPES:
        preset, profs = _profiles_for(dims)
        grid = {}
        for coll, algos in profs.items():
            for nb in SIZES:
                times = {
                    name: evaluate_time(prof, preset.params, nb / 4).time
                    for name, prof in algos.items()
                }
                grid[(coll, nb)] = times
        results[dims] = grid
    return results


def test_fig11b_fugaku(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = []
    bine_best_allreduce = 0
    allreduce_cells = 0
    speedups = []
    for dims, grid in results.items():
        lines.append(f"--- {'x'.join(map(str, dims))} torus ---")
        for (coll, nb), times in sorted(grid.items()):
            ordered = sorted(times.items(), key=lambda kv: kv[1])
            winner, t_best = ordered[0]
            runner, t_next = ordered[1]
            lines.append(
                f"{coll:>10} {nb:>10}B  best={winner:<18} "
                f"next={runner:<18} ratio={t_next / t_best:5.2f}"
            )
            if coll == "allreduce":
                allreduce_cells += 1
                if winner.startswith("bine"):
                    bine_best_allreduce += 1
                    speedups.append(t_next / t_best)
                # topology-agnostic binomial should never win on the torus
                binom = times["binomial"]
                speedups_vs_binom = binom / t_best
    pct = 100 * bine_best_allreduce / allreduce_cells
    lines.append(f"bine variants best in {pct:.0f}% of allreduce cells "
                 f"(paper: 62%); paper max gain 4-5x")
    write_result("fig11b_fugaku", "\n".join(lines))

    assert pct >= 50
    # binomial (topology-agnostic) never beats the torus-optimised bine in
    # the bandwidth regime (tiny sizes can tie at the latency floor)
    for dims, grid in results.items():
        for (coll, nb), times in grid.items():
            if coll == "allreduce" and nb >= 1024**2:
                assert times["binomial"] > min(
                    times["bine-multiport"], times["bine-torus"],
                    times["bine-torus-small"],
                )
    # trinaryx stays strongest for large-vector bcast (vendor-optimal claim)
    big = max(SIZES)
    grid = results[(8, 8, 8)]
    assert grid[("bcast", big)]["trinaryx"] < grid[("bcast", big)]["binomial"]
