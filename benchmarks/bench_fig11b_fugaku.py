"""Fig. 11b: Fugaku (Tofu-D torus) vs torus-optimised state of the art.

Paper headline: Bine (multiported, per-dimension) is the top performer for
allreduce / reduce-scatter / scatter in >60 % of tests with gains up to 5×,
while for bcast/reduce Fujitsu's Trinaryx-like multiported trees are near
optimal and Bine merely stays competitive; plain binomial trees (topology
agnostic) are catastrophically slower (up to 40×).

The grid is *defined* by ``campaigns/fig11b_fugaku.toml`` (four sub-tori
through the torus algorithm catalog) and executed via ``run_campaign`` —
the same path as ``repro campaign`` — so CLI and bench records are
identical by construction.
"""

from benchmarks._shared import campaign_records, write_result


def _grids(records):
    """Regroup records into {dims: {(collective, nbytes): {name: time}}}."""
    results = {}
    for r in records:
        dims = tuple(int(d) for d in r.system.split(":", 1)[1].split("x"))
        grid = results.setdefault(dims, {})
        grid.setdefault((r.collective, r.n_bytes), {})[r.algorithm] = r.time
    return results


def compute():
    return _grids(campaign_records("fig11b_fugaku"))


def test_fig11b_fugaku(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = []
    bine_best_allreduce = 0
    allreduce_cells = 0
    for dims, grid in results.items():
        lines.append(f"--- {'x'.join(map(str, dims))} torus ---")
        for (coll, nb), times in sorted(grid.items()):
            ordered = sorted(times.items(), key=lambda kv: kv[1])
            winner, t_best = ordered[0]
            runner, t_next = ordered[1]
            lines.append(
                f"{coll:>10} {nb:>10}B  best={winner:<18} "
                f"next={runner:<18} ratio={t_next / t_best:5.2f}"
            )
            if coll == "allreduce":
                allreduce_cells += 1
                if winner.startswith("bine"):
                    bine_best_allreduce += 1
    pct = 100 * bine_best_allreduce / allreduce_cells
    lines.append(f"bine variants best in {pct:.0f}% of allreduce cells "
                 f"(paper: 62%); paper max gain 4-5x")
    write_result("fig11b_fugaku", "\n".join(lines))

    assert pct >= 50
    # binomial (topology-agnostic) never beats the torus-optimised bine in
    # the bandwidth regime (tiny sizes can tie at the latency floor)
    for dims, grid in results.items():
        for (coll, nb), times in grid.items():
            if coll == "allreduce" and nb >= 1024**2:
                assert times["binomial"] > min(
                    times["bine-multiport"], times["bine-torus"],
                    times["bine-torus-small"],
                )
    # trinaryx stays strongest for large-vector bcast (vendor-optimal claim)
    big = max(nb for (_, nb) in results[(8, 8, 8)])
    grid = results[(8, 8, 8)]
    assert grid[("bcast", big)]["trinaryx"] < grid[("bcast", big)]["binomial"]
