"""Sweep-pipeline performance tracker (build → profile → evaluate wall-clock).

Times the fixed 3-collective LUMI campaign (``allreduce``, ``allgather``,
``bcast``; 9 vector sizes) in two grids — p = 16/64/256/1024 at one rank
per node, plus p = 4096 at ppn = 2 (LUMI has 2976 nodes) — and writes
``BENCH_sweep.json`` at the repo root so the perf trajectory is tracked:

* **cold** — fresh process-level memo caches, no disk cache: the full
  build → lower → route → profile → evaluate pipeline on the compiled
  profile engine (the default);
* **warm** — second run against a populated on-disk profile cache
  (schedule construction, lowering and routing skipped entirely);
* **parallel** — cold run sharded over ``(collective, p)`` worker
  processes.  Wall-clock only helps on multi-core hosts, so on a
  single-core box the measurement is *skipped* (recorded as ``null`` with
  a reason) — process-pool overhead on 1 CPU reads like a regression when
  it is just Amdahl; the JSON always records the core count next to it;
* **warm evaluation** — profiles already memoized in-process, only the
  evaluation layer runs: the python engine calls ``evaluate_time`` once
  per ``(profile, size)`` cell, the compiled engine evaluates each
  profile's whole size grid in one ``evaluate_grid`` pass.  The ≥5×
  compiled speedup is asserted (measured ~18×) — this is what makes
  campaign-scale reruns effectively free;
* **trace overhead** — the estimated cost of the *disabled* telemetry
  hooks (``obs.span`` no-ops and always-on counter increments) on the
  warm compiled evaluation pass: hooks actually crossed × per-call
  microbenchmark cost, asserted under 3% of the untraced wall-clock.

The seed pipeline measured ~50 s for the p ≤ 1024 campaign on the
paper-repro reference box and could not reach p = 4096 interactively; the
optimized pipeline's numbers live in the JSON, not in assertions — only
generous regression ceilings are asserted so CI stays portable.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

from repro.analysis.sweep import ProfileCache, clear_memo_caches, sweep_system
from repro.systems import lumi

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sweep.json"
CACHE_DIR = Path(__file__).parent / "results" / ".cache" / "bench_perf_sweep"

COLLECTIVES = ("allreduce", "allgather", "bcast")
NODE_COUNTS = (16, 64, 256, 1024)
#: LUMI is 24 x 124 = 2976 nodes: 4096 ranks run two-per-node
P4096, P4096_PPN = 4096, 2
VECTOR_BYTES = tuple(32 * 8**k for k in range(9))

#: generous ceiling for the cold run (measured ~24 s on the bench box —
#: the p=4096 exact butterfly builds dominate; the quadratic-validate-era
#: pipeline could not finish this campaign at all)
COLD_BUDGET_S = 90.0
#: the compiled evaluation layer must beat per-size python evaluation
EVAL_SPEEDUP_FLOOR = 5.0
#: disabled telemetry hooks must stay under 3% of the warm-eval wall-clock
TRACE_OVERHEAD_CEILING = 0.03


def _run_campaign(cache=None, **kwargs) -> tuple[float, int]:
    """Both grids of the campaign, timed; returns (seconds, records)."""
    preset = cache.preset if cache is not None else lumi()
    t0 = time.perf_counter()
    records = list(
        sweep_system(
            preset, COLLECTIVES, node_counts=NODE_COUNTS,
            vector_bytes=VECTOR_BYTES, cache=cache, **kwargs,
        )
    )
    records += sweep_system(
        preset, COLLECTIVES, node_counts=(P4096,), ppn=P4096_PPN,
        vector_bytes=VECTOR_BYTES, cache=cache, **kwargs,
    )
    return time.perf_counter() - t0, len(records)


def _warm_eval() -> dict:
    """Evaluation-layer wall-clock with fully warm in-process profiles."""
    preset = lumi()
    out = {}
    for engine in ("python", "compiled"):
        cache = ProfileCache(preset, profile_engine=engine)
        _run_campaign(cache=cache)  # build + profile once
        eval_s, n = _run_campaign(cache=cache)  # pure evaluation
        out[engine] = (eval_s, n)
    (py_s, n_py), (co_s, n_co) = out["python"], out["compiled"]
    assert n_py == n_co
    return {
        "python_s": round(py_s, 4),
        "compiled_s": round(co_s, 4),
        "speedup": round(py_s / co_s, 1) if co_s else None,
    }


def _trace_overhead(untraced_warm_eval_s: float) -> dict:
    """Estimated tracing-*disabled* telemetry cost on the warm eval pass.

    Runs the warm compiled evaluation once inside an in-memory trace
    session to count the span/counter hooks it actually crosses, then
    microbenchmarks the disabled-path cost of each hook kind (a no-op
    ``span()`` with representative kwargs; an always-on counter
    increment).  The product, as a fraction of the untraced wall-clock,
    deliberately *overcounts* (counter totals stand in for call counts)
    so the asserted ceiling is conservative.
    """
    from repro import obs

    cache = ProfileCache(lumi(), profile_engine="compiled")
    _run_campaign(cache=cache)  # warm the profiles
    obs.begin_session(None)
    try:
        _run_campaign(cache=cache)
    finally:
        trace_doc, stats_doc = obs.end_session()
    spans = sum(1 for e in trace_doc["traceEvents"] if e.get("ph") == "B")
    increments = int(sum(stats_doc["counters"].values()))

    reps = 20_000
    t0 = time.perf_counter()
    for _ in range(reps):
        with obs.span(
            "bench.span", collective="allreduce", algorithm="bine",
            p=1024, ppn=1,
        ):
            pass
    span_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        obs.inc("bench.overhead_probe")
    inc_s = (time.perf_counter() - t0) / reps
    obs.reset()  # drop the probe counters

    overhead_s = spans * span_s + increments * inc_s
    return {
        "span_sites_crossed": spans,
        "counter_increments": increments,
        "disabled_span_ns": round(span_s * 1e9, 1),
        "counter_inc_ns": round(inc_s * 1e9, 1),
        "overhead_s": round(overhead_s, 6),
        "fraction_of_warm_eval": round(overhead_s / untraced_warm_eval_s, 6),
    }


def compute() -> dict:
    shutil.rmtree(CACHE_DIR, ignore_errors=True)

    clear_memo_caches()
    cold_s, n_cold = _run_campaign()

    # populate the disk cache (memo caches stay warm: that is the steady
    # state a second process inherits from), then measure the warm run
    _run_campaign(disk_dir=CACHE_DIR)
    warm_s, n_warm = _run_campaign(disk_dir=CACHE_DIR)

    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        # a process pool on one core only adds fork/IPC overhead; skip the
        # measurement so the JSON is not misread as a parallel regression
        parallel_s = None
        parallel_note = f"skipped: cpu_count={cpu_count} < 2 (pool overhead only)"
    else:
        clear_memo_caches()
        parallel_s, n_par = _run_campaign(workers=4)
        parallel_note = None
        assert n_cold == n_par

    warm_eval = _warm_eval()
    trace_overhead = _trace_overhead(warm_eval["compiled_s"])

    assert n_cold == n_warm
    result = {
        "campaign": {
            "system": "lumi",
            "collectives": list(COLLECTIVES),
            "node_counts": list(NODE_COUNTS) + [P4096],
            "p4096_ppn": P4096_PPN,
            "vector_bytes": len(VECTOR_BYTES),
            "records": n_cold,
        },
        "cold_s": round(cold_s, 3),
        "warm_disk_cache_s": round(warm_s, 3),
        "parallel_workers4_s": round(parallel_s, 3) if parallel_s is not None else None,
        "warm_eval": warm_eval,
        "trace_overhead": trace_overhead,
        "cpu_count": cpu_count,
        "unix_time": int(time.time()),
    }
    if parallel_note:
        result["parallel_workers4_note"] = parallel_note
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_perf_sweep():
    result = compute()
    print(f"\n[bench_perf_sweep] {json.dumps(result, indent=2)}")
    assert result["cold_s"] < COLD_BUDGET_S
    assert result["warm_disk_cache_s"] < result["cold_s"]
    assert result["warm_eval"]["speedup"] >= EVAL_SPEEDUP_FLOOR
    assert (
        result["trace_overhead"]["fraction_of_warm_eval"]
        < TRACE_OVERHEAD_CEILING
    )


if __name__ == "__main__":
    print(json.dumps(compute(), indent=2))
