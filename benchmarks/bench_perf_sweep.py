"""Sweep-pipeline performance tracker (the PR's ≥10× campaign-speedup gauge).

Times the fixed 3-collective LUMI mini-campaign (``allreduce``,
``allgather``, ``bcast``; p = 16/64/256/1024; 9 vector sizes) in three
configurations and writes ``BENCH_sweep.json`` at the repo root so the perf
trajectory is tracked from this PR onward:

* **cold** — fresh process-level memo caches, no disk cache: the full
  build → route → profile → evaluate pipeline;
* **warm** — second run against a populated on-disk profile cache
  (schedule construction and routing skipped entirely);
* **parallel** — cold run sharded over ``(collective, p)`` worker
  processes.  Wall-clock only helps on multi-core hosts, so on a
  single-core box the measurement is *skipped* (recorded as ``null`` with
  a reason) — process-pool overhead on 1 CPU reads like a regression when
  it is just Amdahl; the JSON always records the core count next to it.

The seed pipeline measured ~50 s for this campaign on the paper-repro
reference box (~18 s on the box that produced the first BENCH_sweep.json);
the optimized pipeline's numbers live in the JSON, not in assertions —
only a generous regression ceiling is asserted so CI stays portable.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

from repro.analysis.sweep import clear_memo_caches, sweep_system
from repro.systems import lumi

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sweep.json"
CACHE_DIR = Path(__file__).parent / "results" / ".cache" / "bench_perf_sweep"

COLLECTIVES = ("allreduce", "allgather", "bcast")
NODE_COUNTS = (16, 64, 256, 1024)
VECTOR_BYTES = tuple(32 * 8**k for k in range(9))

#: generous ceiling for the cold run — the quadratic-validate-era pipeline
#: sat an order of magnitude above this
COLD_BUDGET_S = 15.0


def _run_campaign(**kwargs) -> tuple[float, int]:
    preset = lumi()
    t0 = time.perf_counter()
    records = sweep_system(
        preset,
        COLLECTIVES,
        node_counts=NODE_COUNTS,
        vector_bytes=VECTOR_BYTES,
        **kwargs,
    )
    return time.perf_counter() - t0, len(records)


def compute() -> dict:
    shutil.rmtree(CACHE_DIR, ignore_errors=True)

    clear_memo_caches()
    cold_s, n_cold = _run_campaign()

    # populate the disk cache (memo caches stay warm: that is the steady
    # state a second process inherits from), then measure the warm run
    _run_campaign(disk_dir=CACHE_DIR)
    warm_s, n_warm = _run_campaign(disk_dir=CACHE_DIR)

    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        # a process pool on one core only adds fork/IPC overhead; skip the
        # measurement so the JSON is not misread as a parallel regression
        parallel_s = None
        parallel_note = f"skipped: cpu_count={cpu_count} < 2 (pool overhead only)"
    else:
        clear_memo_caches()
        parallel_s, n_par = _run_campaign(workers=4)
        parallel_note = None
        assert n_cold == n_par

    assert n_cold == n_warm
    result = {
        "campaign": {
            "system": "lumi",
            "collectives": list(COLLECTIVES),
            "node_counts": list(NODE_COUNTS),
            "vector_bytes": len(VECTOR_BYTES),
            "records": n_cold,
        },
        "cold_s": round(cold_s, 3),
        "warm_disk_cache_s": round(warm_s, 3),
        "parallel_workers4_s": round(parallel_s, 3) if parallel_s is not None else None,
        "cpu_count": cpu_count,
        "unix_time": int(time.time()),
    }
    if parallel_note:
        result["parallel_workers4_note"] = parallel_note
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_perf_sweep():
    result = compute()
    print(f"\n[bench_perf_sweep] {json.dumps(result, indent=2)}")
    assert result["cold_s"] < COLD_BUDGET_S
    assert result["warm_disk_cache_s"] < result["cold_s"]


if __name__ == "__main__":
    print(json.dumps(compute(), indent=2))
