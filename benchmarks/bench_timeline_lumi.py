"""Mid-flight robustness study: LUMI collectives under fault timelines.

Runs ``campaigns/timeline_lumi.toml`` — Bine vs binomial on LUMI while
links fail and heal and background traffic comes and goes *mid-run* —
through the discrete-event fabric engine (``engine = "des"``), and
renders a per-scenario slowdown table against the pristine control.

The control scenario doubles as a cross-engine check: with no timeline
the DES records are exactly equal to the compiled analytic engine's (the
calibration contract of ``docs/robustness.md``), so every slowdown in
the table is attributable to the timeline, not to engine skew.
"""

from benchmarks._shared import campaign_records, write_result


def _by_scenario(records):
    """Regroup into {(faults, timeline): {(coll, algo, p, n): record}}."""
    scenarios = {}
    for r in records:
        cell = (r.collective, r.algorithm, r.p, r.n_bytes)
        scenarios.setdefault((r.faults, r.timeline), {})[cell] = r
    return scenarios


def compute():
    return _by_scenario(campaign_records("timeline_lumi"))


def test_timeline_lumi(benchmark):
    scenarios = benchmark.pedantic(compute, rounds=1, iterations=1)
    control = scenarios.pop(("none", "none"))
    assert control and scenarios  # the pristine baseline plus >=1 timeline

    lines = []
    perturbed_cells = {}
    for (faults, tl), cells in sorted(scenarios.items()):
        assert cells.keys() == control.keys()  # same grid per scenario
        slow = sorted(
            ((r.time / control[cell].time, cell, r) for cell, r in cells.items()),
            reverse=True,
        )
        genuine = [s for s in slow if s[0] > 1 + 1e-9]
        perturbed_cells[(faults, tl)] = len(genuine)
        worst, (coll, algo, p, nb), _ = slow[0]
        lines.append(f"--- {faults} @ {tl} ---")
        lines.append(
            f"  perturbed {len(genuine)}/{len(cells)} cells, worst "
            f"{worst:5.2f}x ({coll}/{algo} p={p} {nb}B)"
        )
        for factor, (coll, algo, p, nb), _ in slow[:3]:
            lines.append(f"    {factor:5.2f}x  {coll:>10}/{algo:<24} "
                         f"p={p:<4} {nb:>9}B")
    write_result("timeline_lumi", "\n".join(lines))

    # the campaign's timelines are tuned to genuinely exercise the DES
    # reroute / contention paths without ever partitioning the fabric
    assert all(not r.stalled for cells in scenarios.values()
               for r in cells.values())
    for (faults, tl), count in perturbed_cells.items():
        assert count > 0, f"timeline never perturbed: {faults} @ {tl}"
