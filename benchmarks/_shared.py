"""Shared infrastructure for the paper-reproduction benchmarks.

The three measurement campaigns (LUMI / Leonardo / MareNostrum 5) are
*defined* by the manifests in ``campaigns/*.toml`` and executed through
:func:`repro.cli.campaign.run_campaign` — the same path as
``python -m repro campaign`` — so the bench scripts, the CLI, and
``docs/reproducing.md`` can never disagree about what a campaign is.

Each campaign's records are cached per pytest process (the table, heatmap
and boxplot benches of a system reuse one sweep, as the paper derives
Tables 3-5 and Figs. 9-11 from one campaign per machine) and its schedule
profiles persist on disk under ``benchmarks/results/.cache/`` (keyed by
system, placement, seed, busy fraction, collective, algorithm, p, ppn and
a mapping digest), so re-running in a fresh process skips schedule
construction and routing entirely.  Delete the directory to force a cold
rebuild.

Every bench writes its rendered output under ``benchmarks/results/`` *and*
returns it, so ``pytest benchmarks/ --benchmark-only`` leaves the
reproduced tables on disk next to the timing report.  Set
``REPRO_BENCH_ARTIFACTS=1`` to additionally render each campaign's SVG
report (heatmaps, improvement boxplot, artifact index — the same output
as ``repro plot``) under ``benchmarks/results/report/<campaign>/``.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.cli.campaign import run_campaign
from repro.cli.manifest import load_manifest

REPO_ROOT = Path(__file__).resolve().parent.parent
CAMPAIGNS_DIR = REPO_ROOT / "campaigns"
RESULTS_DIR = Path(__file__).parent / "results"
PROFILE_CACHE_DIR = RESULTS_DIR / ".cache"

PAPER_SIZES = tuple(32 * 8**k for k in range(9))  # 32 B … 512 MiB
ALL_COLLECTIVES = (
    "bcast", "reduce", "gather", "scatter",
    "allgather", "reduce_scatter", "allreduce", "alltoall",
)


def write_result(name: str, text: str) -> str:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return text


@lru_cache(maxsize=None)
def campaign_records(manifest_name: str) -> tuple:
    """Records of one ``campaigns/<name>.toml`` manifest, cached per process."""
    path = CAMPAIGNS_DIR / f"{manifest_name}.toml"
    manifest = load_manifest(path)
    records = tuple(run_campaign(manifest, disk_dir=PROFILE_CACHE_DIR).records)
    if os.environ.get("REPRO_BENCH_ARTIFACTS") == "1":
        from repro.report import render_report

        render_report(
            list(records),
            RESULTS_DIR / "report" / manifest_name,
            name=manifest.name,
            source=f"campaigns/{path.name}",
            manifest=manifest,
        )
    return records


def lumi_sweep():
    """LUMI campaign: 16-1024 nodes × 9 sizes × 8 collectives (Table 3)."""
    return campaign_records("table3_lumi")


def leonardo_sweep():
    """Leonardo campaign (Table 4): all collectives to 256 nodes; only
    allreduce/allgather at 1024/2048 (the paper's maintenance-window
    restriction)."""
    return campaign_records("table4_leonardo")


def mn5_sweep():
    """MareNostrum 5 campaign (Table 5): 4-64 nodes on a busy sampler (see
    the manifest's comment on subtree fragmentation)."""
    return campaign_records("table5_mn5")
