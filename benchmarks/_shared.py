"""Shared infrastructure for the paper-reproduction benchmarks.

Sweeps are cached per system inside one pytest process so the table,
heatmap, and boxplot benches for a system reuse the same records (as the
paper derives Tables 3-5 and Figs. 9-11 from one measurement campaign).
Schedule profiles additionally persist on disk under
``benchmarks/results/.cache/`` (keyed by system, placement, seed, busy
fraction, collective, algorithm, p and ppn), so re-running a campaign in a
fresh process skips schedule construction and routing entirely; delete the
directory to force a cold rebuild.

Every bench writes its rendered output under ``benchmarks/results/`` *and*
returns it, so ``pytest benchmarks/ --benchmark-only`` leaves the
reproduced tables on disk next to the timing report.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.analysis.sweep import ProfileCache, sweep_system
from repro.systems import leonardo, lumi, marenostrum5

RESULTS_DIR = Path(__file__).parent / "results"
PROFILE_CACHE_DIR = RESULTS_DIR / ".cache"

PAPER_SIZES = tuple(32 * 8**k for k in range(9))  # 32 B … 512 MiB
ALL_COLLECTIVES = (
    "bcast", "reduce", "gather", "scatter",
    "allgather", "reduce_scatter", "allreduce", "alltoall",
)


def write_result(name: str, text: str) -> str:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return text


@lru_cache(maxsize=None)
def lumi_sweep():
    """LUMI campaign: 16-1024 nodes × 9 sizes × 8 collectives (Table 3)."""
    preset = lumi()
    cache = ProfileCache(preset, placement="scheduler", disk_dir=PROFILE_CACHE_DIR)
    return tuple(
        sweep_system(
            preset,
            ALL_COLLECTIVES,
            node_counts=(16, 64, 256, 1024),
            vector_bytes=PAPER_SIZES,
            cache=cache,
        )
    )


@lru_cache(maxsize=None)
def leonardo_sweep():
    """Leonardo campaign (Table 4): all collectives to 256 nodes; only
    allreduce/allgather at 2048 (the paper's maintenance-window restriction)."""
    preset = leonardo()
    cache = ProfileCache(preset, placement="scheduler", disk_dir=PROFILE_CACHE_DIR)
    records = sweep_system(
        preset,
        ALL_COLLECTIVES,
        node_counts=(16, 64, 256),
        vector_bytes=PAPER_SIZES,
        cache=cache,
    )
    records += sweep_system(
        preset,
        ("allreduce", "allgather"),
        node_counts=(1024, 2048),
        vector_bytes=PAPER_SIZES,
        cache=cache,
    )
    return tuple(records)


@lru_cache(maxsize=None)
def mn5_sweep():
    """MareNostrum 5 campaign (Table 5): 4-64 nodes.

    The paper's MN5 jobs spanned one to eight subtrees; a busier sampler
    reproduces that fragmentation at these small node counts (on an idle
    sampler a 64-node job fits one 160-node subtree and every algorithm
    degenerates to local traffic).
    """
    preset = marenostrum5()
    cache = ProfileCache(
        preset, placement="scheduler", busy_fraction=0.9, disk_dir=PROFILE_CACHE_DIR
    )
    return tuple(
        sweep_system(
            preset,
            ALL_COLLECTIVES,
            node_counts=(4, 8, 16, 32, 64),
            vector_bytes=PAPER_SIZES,
            cache=cache,
        )
    )
