"""Sec. 5.2.2: segmentation lets Bine match/beat ring on huge vectors.

Paper: without segmentation the ring allreduce outperforms Bine for 512 MiB
on 256/512 nodes (rings inherently pipeline reduction with transport); with
segmentation Bine wins everywhere except those extreme cells.
"""

from repro.analysis.sweep import ProfileCache, sweep_system
from repro.systems import leonardo

from benchmarks._shared import write_result

NODES = (256, 512)
SIZES = (8 * 1024**2, 64 * 1024**2, 512 * 1024**2)


def compute():
    preset = leonardo()
    cache = ProfileCache(preset, placement="scheduler")
    records = sweep_system(
        preset, ("allreduce",),
        node_counts=NODES, vector_bytes=SIZES,
        algorithms=("ring", "bine-rsag", "bine-rsag-segmented"),
        cache=cache,
    )
    table = {}
    for r in records:
        table[(r.p, r.n_bytes, r.algorithm)] = r.time
    return table


def test_sec522_segmentation(benchmark):
    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'p':>5} {'bytes':>12} {'ring':>10} {'bine':>10} {'bine-seg':>10}  (ms)"]
    for p in NODES:
        for nb in SIZES:
            ring = table[(p, nb, "ring")] * 1e3
            bine = table[(p, nb, "bine-rsag")] * 1e3
            seg = table[(p, nb, "bine-rsag-segmented")] * 1e3
            lines.append(f"{p:>5} {nb:>12} {ring:>10.2f} {bine:>10.2f} {seg:>10.2f}")
    lines.append("paper Sec. 5.2.2: unsegmented Bine loses to ring at 512 MiB "
                 "on 256/512 nodes; segmentation recovers the overlap")
    write_result("sec522_segmentation", "\n".join(lines))

    big = 512 * 1024**2
    for p in NODES:
        ring = table[(p, big, "ring")]
        bine = table[(p, big, "bine-rsag")]
        seg = table[(p, big, "bine-rsag-segmented")]
        # segmentation strictly helps Bine at this size
        assert seg < bine
        # the paper's Fig. 10a shows ring *winning* exactly these 512 MiB
        # cells; segmented Bine must stay in the same league (within 2x)
        assert seg < ring * 2.0
    # at 8 MiB segmented Bine overtakes ring on 512 nodes (paper heatmap)
    assert table[(512, 8 * 1024**2, "bine-rsag-segmented")] < table[(512, 8 * 1024**2, "ring")]
