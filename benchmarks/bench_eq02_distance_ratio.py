"""Eq. 2: δ_bine/δ_binomial → 2/3 — Bine partners are ~33 % closer.

Regenerates the paper's theoretical bound (Sec. 2.4.1): at every step of a
distance-halving collective the Bine communication distance is two thirds of
the binomial one, which caps the global-traffic reduction at 33 %.
"""

from repro.core.distance import (
    THEORETICAL_TRAFFIC_REDUCTION_BOUND,
    delta_bine,
    delta_binomial,
    distance_ratio,
)

from benchmarks._shared import write_result


def compute() -> str:
    lines = [f"{'s':>3} {'step':>5} {'δ_binomial':>11} {'δ_bine':>8} {'ratio':>7}"]
    for s in (4, 8, 12, 16, 20):
        for step in (0, s // 2, s - 3):
            if step < 0:
                continue
            lines.append(
                f"{s:>3} {step:>5} {delta_binomial(step, s):>11} "
                f"{delta_bine(step, s):>8} {distance_ratio(step, s):>7.4f}"
            )
    lines.append(
        f"bound: 1 - 2/3 = {THEORETICAL_TRAFFIC_REDUCTION_BOUND:.3f} "
        "maximum global-traffic reduction (paper Eq. 2)"
    )
    return "\n".join(lines)


def test_eq02_distance_ratio(benchmark):
    text = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_result("eq02_distance_ratio", text)
    # shape assertions: ratio converges to 2/3 from above
    for s in (8, 16, 20):
        for step in range(0, s - 2):
            assert abs(distance_ratio(step, s) - 2 / 3) < 0.35
        assert abs(distance_ratio(0, s) - 2 / 3) < 2 ** -(s - 3)
