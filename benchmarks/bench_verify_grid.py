"""Verification-pipeline performance tracker (reference vs compiled oracle).

Times the same grid-scale ``verify_grid`` call — every algorithm of the
three campaign collectives (``allreduce``, ``allgather``, ``bcast``) at
the LUMI rank counts 16/64/256/1024, two seeds per cell, one element per
rank block — under both execution engines and writes ``BENCH_verify.json``
at the repo root:

* **reference** — the interpreted per-transfer executor, one seed at a
  time (what ``repro schedule --verify`` always ran), rebuilding every
  schedule from scratch like any reference run does;
* **compiled (cold)** — first run: build + compile each cell's columnar
  plan, then execute all seeds in one batched pass;
* **compiled (warm)** — second run against the in-process plan cache:
  schedule construction *and* compilation skipped, the steady state of
  repeated bulk verification (CI loops, multi-seed sweeps).

The 1024-rank ring cells dominate the reference side — a Θ(p²)-transfer
schedule is exactly the "bulk verification at p=1024 is impractical" case
the compiled subsystem exists for — so the headline number is
``speedup_warm = reference_s / compiled_warm_s`` and must stay ≥ 5× (it
measures well above that on the bench box); the cold ratio, diluted by the
one-off schedule construction both engines share, is recorded alongside.
Expect a couple of minutes of wall-clock: the reference engine really does
interpret ~5M transfers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.sweep import clear_memo_caches
from repro.analysis.verifygrid import verify_grid

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_verify.json"

COLLECTIVES = ("allreduce", "allgather", "bcast")
NODE_COUNTS = (16, 64, 256, 1024)
#: one element per rank block: correctness is a structural property, and a
#: thin vector keeps the comparison on executor overhead, not memcpy volume
ELEMS_PER_RANK = 1
SEEDS = (0, 1)

#: acceptance floor for the plan-cache steady state
MIN_WARM_SPEEDUP = 5.0


def _run(engine: str) -> tuple[float, list]:
    t0 = time.perf_counter()
    records = verify_grid(
        COLLECTIVES,
        NODE_COUNTS,
        elems_per_rank=ELEMS_PER_RANK,
        seeds=SEEDS,
        engine=engine,
    )
    return time.perf_counter() - t0, records


def compute() -> dict:
    clear_memo_caches()
    reference_s, ref_records = _run("reference")

    clear_memo_caches()  # cold: label tables and the plan cache start empty
    cold_s, cold_records = _run("compiled")
    warm_s, warm_records = _run("compiled")  # plan cache hot

    for records, engine in ((ref_records, "reference"),
                            (cold_records, "compiled"),
                            (warm_records, "compiled-warm")):
        failed = [r for r in records if r.status == "failed"]
        assert not failed, f"{engine}: {[(r.collective, r.algorithm, r.p) for r in failed]}"
    assert [r.to_dict() | {"elapsed_s": 0, "engine": ""} for r in ref_records] == [
        r.to_dict() | {"elapsed_s": 0, "engine": ""} for r in cold_records
    ], "engines disagree on grid statuses"

    ok = sum(1 for r in ref_records if r.status == "ok")
    result = {
        "grid": {
            "collectives": list(COLLECTIVES),
            "node_counts": list(NODE_COUNTS),
            "elems_per_rank": ELEMS_PER_RANK,
            "seeds": list(SEEDS),
            "cells": len(ref_records),
            "cells_ok": ok,
        },
        "reference_s": round(reference_s, 3),
        "compiled_cold_s": round(cold_s, 3),
        "compiled_warm_s": round(warm_s, 3),
        "speedup_cold": round(reference_s / cold_s, 2),
        "speedup_warm": round(reference_s / warm_s, 2),
        "cpu_count": os.cpu_count(),
        "unix_time": int(time.time()),
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_verify_grid_speedup():
    result = compute()
    print(f"\n[bench_verify_grid] {json.dumps(result, indent=2)}")
    assert result["grid"]["cells_ok"] > 0
    assert result["speedup_warm"] >= MIN_WARM_SPEEDUP, (
        f"compiled warm path only {result['speedup_warm']}x over reference "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )


if __name__ == "__main__":
    print(json.dumps(compute(), indent=2))
