"""Fig. 5: allreduce global-traffic reduction over scheduler job allocations.

Paper: 1116 Leonardo jobs + 1914 LUMI jobs; the reduction distribution per
node count stays below the 33 % theoretical bound, grows with node count,
and dips negative only on small (<64-node) jobs.  We regenerate with the
synthetic scheduler sampler (same group shapes as both machines).
"""

from repro.analysis.boxplot import box_stats, format_box_row
from repro.analysis.jobs import run_study
from repro.topology.allocation import SystemShape

from benchmarks._shared import write_result

LEONARDO = SystemShape("leonardo", num_groups=23, nodes_per_group=180)
LUMI = SystemShape("lumi", num_groups=24, nodes_per_group=124)
JOBS_PER_COUNT = 40


def compute():
    # busy_fraction 0.8: a loaded machine fragments even small jobs across
    # groups, as the real traces do.
    studies = [
        run_study(LEONARDO, (4, 8, 16, 32, 64, 128, 256), JOBS_PER_COUNT,
                  seed=1, busy_fraction=0.8),
        run_study(LUMI, (4, 16, 64, 256, 1024, 2048), JOBS_PER_COUNT,
                  seed=2, busy_fraction=0.8),
    ]
    return studies


def test_fig05_job_traffic(benchmark):
    studies = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = []
    for study in studies:
        lines.append(f"--- {study.system} (reduction of Bine vs binomial, %) ---")
        for p, vals in sorted(study.reductions.items()):
            stats = box_stats([100 * v for v in vals])
            lines.append(format_box_row(f"{p} nodes", stats))
    lines.append("paper Fig. 5: bound 33%, growing with node count, "
                 "negatives only below 64 nodes")
    write_result("fig05_job_traffic", "\n".join(lines))

    for study in studies:
        for p, vals in study.reductions.items():
            # theoretical bound holds (with tiny numerical slack)
            assert max(vals) <= 1 / 3 + 1e-9, (study.system, p, max(vals))
        # reduction grows with node count: compare smallest vs largest mean
        counts = sorted(study.reductions)
        small = sum(study.reductions[counts[0]]) / len(study.reductions[counts[0]])
        large = sum(study.reductions[counts[-1]]) / len(study.reductions[counts[-1]])
        assert large > small
        # large jobs are consistently positive
        assert min(study.reductions[counts[-1]]) > 0
