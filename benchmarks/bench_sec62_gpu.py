"""Sec. 6.2: hierarchical GPU Bine allreduce vs flat MPI and NCCL-like ring.

Paper (MareNostrum 5, 4 GPUs/node): the hierarchical Bine allreduce beats
the best flat algorithm for vectors > 4 MiB from 16 to 256 GPUs (avg +5 %,
up to +24 %); on Leonardo it stays within single digits of NCCL.  The
NCCL stand-in here is a ring allreduce over the same GPU-clique topology.
"""

from repro.collectives.composed import hierarchical_allreduce_bine
from repro.collectives.registry import build
from repro.model.simulator import evaluate_time, profile_schedule
from repro.systems import marenostrum5
from repro.topology.hierarchical import MultiRankNodes
from repro.topology.mapping import block_mapping

from benchmarks._shared import write_result

GPUS_PER_NODE = 4
GPU_COUNTS = (16, 64, 256)
SIZES = (1024**2, 4 * 1024**2, 64 * 1024**2, 512 * 1024**2)


def compute():
    preset = marenostrum5()
    inner = preset.build_topology()
    table = {}
    for gpus in GPU_COUNTS:
        nodes = gpus // GPUS_PER_NODE
        topo = MultiRankNodes(inner, GPUS_PER_NODE)
        mapping = block_mapping(gpus, ppn=1)  # identity: topology is rank-level
        hier = profile_schedule(
            hierarchical_allreduce_bine(nodes, GPUS_PER_NODE, gpus), topo, mapping
        )
        flat_bine = profile_schedule(
            build("allreduce", "bine-rsag", gpus, gpus), topo, mapping
        )
        flat_mpi = profile_schedule(
            build("allreduce", "rabenseifner", gpus, gpus), topo, mapping
        )
        ring = profile_schedule(build("allreduce", "ring", gpus, gpus), topo, mapping)
        for nb in SIZES:
            table[(gpus, nb)] = {
                "hierarchical-bine": evaluate_time(hier, preset.params, nb / 4).time,
                "flat-bine": evaluate_time(flat_bine, preset.params, nb / 4).time,
                "flat-mpi": evaluate_time(flat_mpi, preset.params, nb / 4).time,
                "nccl-ring": evaluate_time(ring, preset.params, nb / 4).time,
            }
    return table


def test_sec62_gpu(benchmark):
    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'gpus':>5} {'bytes':>12} {'hier-bine':>10} {'flat-bine':>10} "
             f"{'flat-mpi':>10} {'nccl-ring':>10}  (ms)"]
    for (gpus, nb), times in sorted(table.items()):
        lines.append(
            f"{gpus:>5} {nb:>12} {times['hierarchical-bine'] * 1e3:>10.2f} "
            f"{times['flat-bine'] * 1e3:>10.2f} {times['flat-mpi'] * 1e3:>10.2f} "
            f"{times['nccl-ring'] * 1e3:>10.2f}"
        )
    lines.append("paper Sec. 6.2: hierarchical Bine beats flat MPI >4 MiB, "
                 "competitive with NCCL; note flat Bine inherits intra-node "
                 "locality from block mapping (distance-1 steps stay on NVLink)")
    write_result("sec62_gpu", "\n".join(lines))

    for (gpus, nb), times in table.items():
        if nb >= 4 * 1024**2:
            # hierarchy beats the standard flat MPI algorithm (the paper's
            # claim; flat *Bine* already aligns with the node boundary)
            assert times["hierarchical-bine"] < times["flat-mpi"], (gpus, nb)
    # competitive with the NCCL-like ring at the largest size (within ~2.5x)
    big = max(SIZES)
    for gpus in GPU_COUNTS:
        t = table[(gpus, big)]
        assert t["hierarchical-bine"] < 2.5 * t["nccl-ring"]
    # and it beats the ring in the latency-bound regime at scale
    assert table[(256, 1024**2)]["hierarchical-bine"] < table[(256, 1024**2)]["nccl-ring"]
