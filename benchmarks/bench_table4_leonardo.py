"""Table 4 + Figs. 10a/10b: Leonardo (Dragonfly+, Open MPI baseline).

Paper headline: Bine ≥90 % win rate on half the collectives; broadcast gains
larger than LUMI (Open MPI's distance-doubling binomial floods global links,
Fig. 1); allreduce heatmap dominated by Bine except ring on large vectors at
small node counts.
"""

from repro.analysis.boxplot import box_stats, format_box_row
from repro.analysis.heatmap import render_heatmap
from repro.analysis.summarize import (
    best_algorithm_cells,
    bine_improvement_distribution,
    family_duel,
    format_duel_table,
)

from benchmarks._shared import (
    ALL_COLLECTIVES,
    PAPER_SIZES,
    leonardo_sweep,
    write_result,
)

NODES = (16, 64, 256, 1024, 2048)


def compute():
    records = leonardo_sweep()
    duels = [
        family_duel(records, c, "bine", "bruck" if c == "alltoall" else "binomial")
        for c in ALL_COLLECTIVES
    ]
    cells = best_algorithm_cells(records, "allreduce")
    dists = {c: bine_improvement_distribution(records, c) for c in ALL_COLLECTIVES}
    return duels, cells, dists


def test_table4_leonardo(benchmark):
    duels, cells, dists = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [format_duel_table(duels), "",
             render_heatmap(cells, NODES, PAPER_SIZES, "Fig. 10a — Leonardo allreduce"),
             "", "Fig. 10b — Bine improvement where it wins"]
    for coll, (pct, improvements) in dists.items():
        if improvements:
            lines.append(format_box_row(f"{coll} ({pct:.0f}%)", box_stats(improvements)))
        else:
            lines.append(f"{coll} ({pct:.0f}%)  — no winning cells")
    lines.append("paper Table 4: win% 44-94; bcast traffic red. 89%/92%")
    write_result("table4_leonardo", "\n".join(lines))

    by = {d.collective: d for d in duels}
    # gather/scatter (and, on this system, alltoall) time differences are
    # below the model's resolution and tip either way per allocation
    # (EXPERIMENTS.md notes 5-6); the rest must show Bine ahead, and the
    # alltoall *traffic* advantage must hold regardless.
    for coll in ("allreduce", "bcast", "reduce", "allgather", "reduce_scatter"):
        assert by[coll].win_pct >= by[coll].loss_pct, (coll, by[coll])
    for coll in ("allreduce", "bcast", "reduce"):
        assert by[coll].win_pct > by[coll].loss_pct, coll
    assert by["alltoall"].avg_traffic_reduction > 5
    # The paper's Leonardo broadcast highlight: Open MPI's distance-doubling
    # binomial makes Bine's traffic reduction huge.
    assert by["bcast"].max_traffic_reduction > 80
    # vs LUMI the bcast gains should be at least comparable (paper: larger)
    assert by["bcast"].avg_gain > 0
