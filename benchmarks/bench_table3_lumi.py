"""Table 3: Bine vs binomial trees on LUMI (Dragonfly, Cray MPICH baseline).

Paper headline: Bine wins the majority of (node count × vector size) cells
for most collectives (67 % allreduce, 94 % alltoall, 87 % reduce, …), with
~10 % average global-traffic reduction and up to 94 % for broadcast.
Shape assertions check win-majority and the traffic-reduction signs; exact
percentages are hardware-dependent and not asserted.
"""

from repro.analysis.summarize import family_duel, format_duel_table

from benchmarks._shared import ALL_COLLECTIVES, lumi_sweep, write_result


def compute():
    records = lumi_sweep()
    return [
        family_duel(records, c, "bine", "bruck" if c == "alltoall" else "binomial")
        for c in ALL_COLLECTIVES
    ]


def test_table3_lumi(benchmark):
    duels = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_duel_table(duels) + (
        "\npaper Table 3: %win 39-94 across collectives; bcast traffic "
        "reduction 88%/94%; avg reduction ~10%"
    )
    write_result("table3_lumi", text)
    by = {d.collective: d for d in duels}
    # Bine never loses more cells than it wins (paper: wins outright on all
    # eight; our aggregate cost model resolves gather/scatter as ties —
    # their structural difference is traffic, which the columns show).
    for coll in ("allreduce", "bcast", "reduce", "allgather",
                 "reduce_scatter", "alltoall"):
        assert by[coll].win_pct >= by[coll].loss_pct, (coll, by[coll])
    for coll in ("allreduce", "bcast", "reduce", "alltoall"):
        assert by[coll].win_pct > by[coll].loss_pct, coll
    # broadcast shows the huge traffic reduction vs scatter+allgather
    assert by["bcast"].max_traffic_reduction > 80
    # alltoall vs Bruck: Bine wins on balance with ~15 % traffic reduction
    # (paper: 94 % win, 15-20 % TR; our win margin is narrower)
    assert by["alltoall"].avg_traffic_reduction > 5
