"""Appendix D (Fig. 16/18): torus-optimised Bine trees and multiport scaling.

Fig. 16: on a 4×4 torus the 1-D Bine tree's modulo-distance choices cross
multiple physical links (rank 0 ↔ 15 is "distance 1" modulo 16 but 2 torus
hops); the per-dimension construction makes every edge a single-dimension
move, cutting total crossed links.

Fig. 18/App. D.4: the multiported allreduce drives all 2·D NICs — on
Fugaku-like parameters it beats the single-ported torus Bine allreduce for
bandwidth-bound sizes.
"""

from repro.collectives.torus import (
    torus_bine_allreduce,
    torus_bine_allreduce_multiport,
)
from repro.core.bine_tree import bine_tree_distance_halving
from repro.core.torus_opt import TorusShape, torus_bine_tree
from repro.model.simulator import evaluate_time, profile_schedule
from repro.systems import fugaku
from repro.topology.mapping import block_mapping
from repro.topology.torus import Torus

from benchmarks._shared import write_result


def crossed_links(tree, torus: Torus) -> int:
    return sum(torus.torus_distance(u, v) for _, u, v in tree.all_edges())


def compute():
    out = {}
    for dims in ((4, 4), (8, 8), (4, 4, 4)):
        torus = Torus(dims)
        shape = TorusShape(dims)
        p = torus.num_nodes
        flat = crossed_links(bine_tree_distance_halving(p), torus)
        opt = crossed_links(torus_bine_tree(shape), torus)
        out[dims] = (flat, opt)

    # multiport vs single port on an 8x8x8 Fugaku sub-torus
    dims = (8, 8, 8)
    shape = TorusShape(dims)
    preset = fugaku(dims)
    topo = Torus(dims)
    mapping = block_mapping(shape.num_ranks)
    single = profile_schedule(
        torus_bine_allreduce(shape, shape.num_ranks), topo, mapping
    )
    multi = profile_schedule(
        torus_bine_allreduce_multiport(shape, 6 * shape.num_ranks), topo, mapping
    )
    ratios = {}
    for nb in (64 * 1024, 8 * 1024**2, 512 * 1024**2):
        t1 = evaluate_time(single, preset.params, nb / 4).time
        t6 = evaluate_time(multi, preset.params, nb / 4).time
        ratios[nb] = t1 / t6
    return out, ratios


def test_appd_torus(benchmark):
    crossings, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["tree edge hops (total torus links crossed):",
             f"{'torus':>10} {'1-D bine':>9} {'torus bine':>11} {'saving':>8}"]
    for dims, (flat, opt) in crossings.items():
        name = "x".join(map(str, dims))
        lines.append(f"{name:>10} {flat:>9} {opt:>11} {100 * (1 - opt / flat):>7.0f}%")
    lines.append("")
    lines.append("multiport allreduce speedup over single-port (8x8x8, 6 TNIs):")
    for nb, r in ratios.items():
        lines.append(f"  {nb:>11} B: {r:5.2f}x")
    lines.append("paper App. D: per-dimension edges cross fewer links; "
                 "6 NICs saturate injection (Sec. 5.4)")
    write_result("appd_torus", "\n".join(lines))

    for dims, (flat, opt) in crossings.items():
        assert opt < flat  # fewer crossed links, Fig. 16's point
    # multiport pays off for bandwidth-bound sizes
    assert ratios[512 * 1024**2] > 1.5
