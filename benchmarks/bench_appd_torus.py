"""Appendix D (Fig. 16/18): torus-optimised Bine trees and multiport scaling.

Fig. 16: on a 4×4 torus the 1-D Bine tree's modulo-distance choices cross
multiple physical links (rank 0 ↔ 15 is "distance 1" modulo 16 but 2 torus
hops); the per-dimension construction makes every edge a single-dimension
move, cutting total crossed links.

Fig. 18/App. D.4: the multiported allreduce drives all 2·D NICs — on
Fugaku-like parameters it beats the single-ported torus Bine allreduce for
bandwidth-bound sizes.  That half of the study is *defined* by
``campaigns/appd_torus.toml`` and runs through ``run_campaign``, so the
bench's ratios and ``repro campaign campaigns/appd_torus.toml`` can never
disagree; the crossed-links half is tree-structural (no sweep records).
"""

from repro.core.bine_tree import bine_tree_distance_halving
from repro.core.torus_opt import TorusShape, torus_bine_tree
from repro.topology.torus import Torus

from benchmarks._shared import campaign_records, write_result


def crossed_links(tree, torus: Torus) -> int:
    return sum(torus.torus_distance(u, v) for _, u, v in tree.all_edges())


def compute():
    out = {}
    for dims in ((4, 4), (8, 8), (4, 4, 4)):
        torus = Torus(dims)
        shape = TorusShape(dims)
        p = torus.num_nodes
        flat = crossed_links(bine_tree_distance_halving(p), torus)
        opt = crossed_links(torus_bine_tree(shape), torus)
        out[dims] = (flat, opt)

    # multiport vs single port on an 8x8x8 Fugaku sub-torus, from the
    # App. D campaign manifest (same records as `repro campaign`)
    times = {}
    for r in campaign_records("appd_torus"):
        times.setdefault(r.n_bytes, {})[r.algorithm] = r.time
    ratios = {
        nb: t["bine-torus"] / t["bine-multiport"]
        for nb, t in sorted(times.items())
    }
    return out, ratios


def test_appd_torus(benchmark):
    crossings, ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["tree edge hops (total torus links crossed):",
             f"{'torus':>10} {'1-D bine':>9} {'torus bine':>11} {'saving':>8}"]
    for dims, (flat, opt) in crossings.items():
        name = "x".join(map(str, dims))
        lines.append(f"{name:>10} {flat:>9} {opt:>11} {100 * (1 - opt / flat):>7.0f}%")
    lines.append("")
    lines.append("multiport allreduce speedup over single-port (8x8x8, 6 TNIs):")
    for nb, r in ratios.items():
        lines.append(f"  {nb:>11} B: {r:5.2f}x")
    lines.append("paper App. D: per-dimension edges cross fewer links; "
                 "6 NICs saturate injection (Sec. 5.4)")
    write_result("appd_torus", "\n".join(lines))

    for dims, (flat, opt) in crossings.items():
        assert opt < flat  # fewer crossed links, Fig. 16's point
    # multiport pays off for bandwidth-bound sizes
    assert ratios[512 * 1024**2] > 1.5
