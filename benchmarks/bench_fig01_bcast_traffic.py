"""Fig. 1: broadcast global-link traffic on an 8-node 2:1 fat tree.

Paper: distance-doubling binomial (Open MPI) pushes **6n** bytes over global
links, distance-halving (MPICH) only **3n**.  We regenerate both and add the
Bine tree.
"""

from repro.collectives.registry import build
from repro.model.traffic import global_traffic_elems
from repro.topology.fattree import FatTree

from benchmarks._shared import write_result

P = 8
N = 64  # elements; traffic scales linearly so any n shows the 6n/3n shape


def compute():
    ft = FatTree(num_subtrees=4, nodes_per_subtree=2, oversubscription=2.0)
    groups = [ft.group_of(i) for i in range(P)]
    out = {}
    for name in ("binomial-dd", "binomial-dh", "bine"):
        sched = build("bcast", name, P, N)
        out[name] = global_traffic_elems(sched, groups) / N
    return out


def test_fig01_bcast_traffic(benchmark):
    ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = "\n".join(
        [f"{'algorithm':>14} global bytes (multiples of n)"]
        + [f"{k:>14} {v:.1f}n" for k, v in ratios.items()]
        + ["paper Fig. 1: distance-doubling 6n, distance-halving 3n"]
    )
    write_result("fig01_bcast_traffic", text)
    assert ratios["binomial-dd"] == 6.0
    assert ratios["binomial-dh"] == 3.0
    assert ratios["bine"] <= 3.0
