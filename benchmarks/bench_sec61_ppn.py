"""Sec. 6.1: impact of processes per node (LUMI 64 nodes, 1 vs 4 ppn).

Paper: performance largely consistent, but Bine's gains can *grow* with 4
processes per node (1 MiB reduce-scatter: 59 % → 84 %) because more injected
traffic per node amplifies the benefit of reducing global-link bytes.
"""

from repro.analysis.summarize import family_duel
from repro.analysis.sweep import ProfileCache, sweep_system
from repro.systems import lumi

from benchmarks._shared import PAPER_SIZES, write_result

RANKS = 256  # 64 nodes x 4 ppn / 256 nodes x 1 ppn comparison base


def compute():
    preset = lumi()
    out = {}
    for ppn in (1, 4):
        cache = ProfileCache(preset, placement="scheduler", seed=11)
        records = sweep_system(
            preset, ("reduce_scatter", "allreduce"),
            node_counts=(RANKS,), vector_bytes=PAPER_SIZES,
            ppn=ppn, cache=cache,
        )
        out[ppn] = {
            c: family_duel(records, c) for c in ("reduce_scatter", "allreduce")
        }
    return out


def test_sec61_ppn(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'ppn':>4} {'collective':>16} {'%win':>6} {'avg gain%':>10} {'max gain%':>10}"]
    for ppn, duels in out.items():
        for coll, d in duels.items():
            lines.append(
                f"{ppn:>4} {coll:>16} {d.win_pct:>6.0f} {d.avg_gain:>10.1f} {d.max_gain:>10.1f}"
            )
    lines.append("paper Sec. 6.1: gains consistent, sometimes larger at 4 ppn")
    write_result("sec61_ppn", "\n".join(lines))

    for coll in ("reduce_scatter", "allreduce"):
        d1, d4 = out[1][coll], out[4][coll]
        # Bine keeps a winning record at both densities
        assert d1.win_pct > d1.loss_pct
        assert d4.win_pct > d4.loss_pct
