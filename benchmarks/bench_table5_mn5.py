"""Table 5 + Fig. 11a: MareNostrum 5 (2:1 oversubscribed fat tree).

Paper headline: Bine wins most cells (98 % bcast, 95 % scatter); at this
small scale (≤64 nodes) linear algorithms win more alltoall/gather/scatter
cells than on the big systems, and gather/scatter can *increase* average
global traffic (negative reduction) — the small-node-count caveat of
Sec. 2.4.2.
"""

from repro.analysis.boxplot import box_stats, format_box_row
from repro.analysis.summarize import (
    bine_improvement_distribution,
    family_duel,
    format_duel_table,
)

from benchmarks._shared import ALL_COLLECTIVES, mn5_sweep, write_result


def compute():
    records = mn5_sweep()
    duels = [
        family_duel(records, c, "bine", "bruck" if c == "alltoall" else "binomial")
        for c in ALL_COLLECTIVES
    ]
    dists = {c: bine_improvement_distribution(records, c) for c in ALL_COLLECTIVES}
    return duels, dists


def test_table5_mn5(benchmark):
    duels, dists = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [format_duel_table(duels), "",
             "Fig. 11a — Bine improvement where it wins (vs all algorithms)"]
    for coll, (pct, improvements) in dists.items():
        if improvements:
            lines.append(format_box_row(f"{coll} ({pct:.0f}%)", box_stats(improvements)))
        else:
            lines.append(f"{coll} ({pct:.0f}%)  — no winning cells")
    lines.append("paper Table 5: win% 51-98; gather/scatter traffic red. "
                 "-8% avg (negative) at this scale")
    write_result("table5_mn5", "\n".join(lines))

    by = {d.collective: d for d in duels}
    # At 4-64 nodes the fat tree's 80-wide uplink bundles rarely saturate,
    # so most time duels sit at the latency floor and only allreduce
    # separates; the *traffic* advantages (the structural claim) must hold.
    assert by["allreduce"].win_pct > by["allreduce"].loss_pct
    assert by["bcast"].avg_traffic_reduction > 40
    assert by["alltoall"].avg_traffic_reduction > 10
    # Small scale: Bine's outright-win share for alltoall should be modest
    # (paper: 7 % of cells on MN5 vs 21 % on LUMI/Leonardo).
    pct_a2a, _ = dists["alltoall"]
    assert pct_a2a < 60
