"""Figs. 9a/9b: LUMI comparison against ALL state-of-the-art algorithms.

9a: allreduce heatmap — each cell shows the best algorithm family letter,
or Bine's speedup ratio over the next best when Bine wins.  Expected shape
(paper): binomial wins tiny vectors at some node counts, ring wins large
vectors at small node counts, Bine sweeps the middle with gains growing
with node count.

9b: per-collective boxplots of Bine's improvement where it is the outright
winner, plus the percentage of such cells.
"""

from repro.analysis.boxplot import box_stats, format_box_row
from repro.analysis.heatmap import render_heatmap
from repro.analysis.summarize import (
    best_algorithm_cells,
    bine_improvement_distribution,
)

from benchmarks._shared import ALL_COLLECTIVES, PAPER_SIZES, lumi_sweep, write_result

NODES = (16, 64, 256, 1024)


def compute():
    records = lumi_sweep()
    cells = best_algorithm_cells(records, "allreduce")
    dists = {c: bine_improvement_distribution(records, c) for c in ALL_COLLECTIVES}
    return cells, dists


def test_fig09_lumi(benchmark):
    cells, dists = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_heatmap(cells, NODES, PAPER_SIZES, "Fig. 9a — LUMI allreduce")
    lines = [text, "", "Fig. 9b — Bine improvement where it wins (all collectives)"]
    for coll, (pct, improvements) in dists.items():
        if improvements:
            lines.append(format_box_row(f"{coll} ({pct:.0f}%)", box_stats(improvements)))
        else:
            lines.append(f"{coll} ({pct:.0f}%)  — no winning cells")
    write_result("fig09_lumi", "\n".join(lines))

    # Shape: ring owns the large-vector/small-node corner…
    big = max(PAPER_SIZES)
    best_big_small, _ = cells[(16, big)]
    assert best_big_small.family == "ring"
    # …Bine owns medium vectors at scale, with a better ratio at 1024 than 16
    mid = 128 * 1024
    b16, r16 = cells[(16, mid)]
    b1024, r1024 = cells[(1024, mid)]
    assert b1024.family == "bine"
    if b16.family == "bine" and r16 and r1024:
        assert r1024 >= r16
    # allreduce wins a sizeable share of cells (paper: 85 % vs all SOTA)
    pct, _ = dists["allreduce"]
    assert pct >= 40
