"""Fig. 14 (Appendix B): best non-contiguous-data strategy for allgather.

Paper shape on LUMI: **permute** wins small vectors (up to 2.27× over
binomial butterflies), **send** takes over at larger node counts (permute
cost grows with block count), **block-by-block** wins larger vectors at
small node counts, **two transmissions** at large node counts + vectors.
"""

from repro.analysis.sweep import ProfileCache, sweep_system
from repro.analysis.heatmap import human_bytes
from repro.systems import lumi

from benchmarks._shared import PAPER_SIZES, write_result

NODES = (8, 32, 128, 512)
STRATS = {
    "bine-blocks": "B",
    "bine-permute": "P",
    "bine-send": "S",
    "bine-two-transmissions": "T",
}


def compute():
    preset = lumi()
    cache = ProfileCache(preset, placement="scheduler")
    records = sweep_system(
        preset, ("allgather",),
        node_counts=NODES, vector_bytes=PAPER_SIZES,
        algorithms=tuple(STRATS) + ("recursive-doubling",),
        cache=cache,
    )
    best: dict[tuple[int, int], tuple[str, float]] = {}
    binom: dict[tuple[int, int], float] = {}
    for r in records:
        key = (r.p, r.n_bytes)
        if r.algorithm == "recursive-doubling":
            binom[key] = r.time
        elif key not in best or r.time < best[key][1]:
            best[key] = (r.algorithm, r.time)
    return {k: (name, binom[k] / t) for k, (name, t) in best.items() if k in binom}


def test_fig14_noncontig(benchmark):
    cells = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["best strategy per cell (gain vs binomial butterfly)",
             " " * 10 + "".join(f"{p:>12}" for p in NODES)]
    for nb in PAPER_SIZES:
        row = [f"{human_bytes(nb):>10}"]
        for p in NODES:
            name, gain = cells[(p, nb)]
            row.append(f"{STRATS[name]}{gain:>9.2f}x ")
        lines.append("".join(row))
    lines.append("letters: B=block-by-block P=permute S=send T=two-transmissions")
    lines.append("paper Fig. 14: P small vectors, S large node counts, "
                 "B large vectors, T large both")
    write_result("fig14_noncontig", "\n".join(lines))

    winners = {cells[(p, nb)][0] for p in NODES for nb in PAPER_SIZES}
    # at least three of the four strategies should each win somewhere
    assert len(winners) >= 3, winners
    # permute or send should win the small-vector regime
    for p in NODES:
        assert cells[(p, 32)][0] in ("bine-permute", "bine-send", "bine-two-transmissions")
