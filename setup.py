"""Legacy setup shim so editable installs work offline (no wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Bine Trees: Enhancing Collective Operations by "
        "Optimizing Communication Locality' (SC '25)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
