"""Implementations behind the ``repro`` subcommands.

Each ``cmd_*`` takes the parsed :mod:`argparse` namespace and returns a
process exit code; :mod:`repro.cli.main` owns the argument wiring.  All
output rendering lives in :mod:`repro.cli.formatters` so the same tables
serve files (``--output``) and stdout.

Example::

    >>> from repro.cli import main
    >>> main(["schedule", "bcast", "bine", "-p", "8"])  # doctest: +SKIP
    0
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.sweep import ProfileCache, sweep_system
from repro.analysis.verifygrid import DEFAULT_NODE_COUNTS, verify_grid
from repro.cli import formatters as fmt
from repro.cli.campaign import duel_summaries, run_campaign
from repro.cli.manifest import ManifestError, load_manifest
from repro.collectives.registry import COLLECTIVES, build, families, iter_specs
from repro.faults import FaultSpec
from repro.runtime.errors import FaultSpecError
from repro.runtime.schedule import validation_enabled
from repro.systems import ALL_SYSTEMS, system_for

__all__ = [
    "cmd_list",
    "cmd_schedule",
    "cmd_sweep",
    "cmd_verify",
    "cmd_bench",
    "cmd_campaign",
    "cmd_plot",
    "cmd_compare",
    "cmd_tune",
    "cmd_stats",
]


def _emit(text: str, output: str | None) -> None:
    if output:
        Path(output).write_text(text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _parse_faults(args) -> tuple[FaultSpec, ...] | None:
    """``--faults``/``--timeline`` → scenarios, or ``None`` when both absent.

    ``--timeline`` composes: it is applied on top of every ``--faults``
    scenario (or on the pristine fabric when ``--faults`` is omitted).
    Raised :class:`FaultSpecError`\\ s propagate to ``main()``, which maps
    them to exit code 3 (parsing happens here, not in an argparse ``type``,
    precisely so the taxonomy handler sees them).
    """
    import dataclasses

    from repro.faults import FaultTimeline

    specs = getattr(args, "faults", None)
    timeline_text = getattr(args, "timeline", None)
    timeline = (
        FaultTimeline.parse(timeline_text) if timeline_text is not None else None
    )
    if specs is None:
        if timeline is None:
            return None
        return (FaultSpec(timeline=timeline),)
    scenarios = tuple(FaultSpec.parse(text) for text in specs)
    if timeline is not None:
        scenarios = tuple(
            dataclasses.replace(s, timeline=timeline) for s in scenarios
        )
    labels = [(s.label, s.timeline_label) for s in scenarios]
    if len(set(labels)) != len(labels):
        raise FaultSpecError(f"duplicate --faults scenarios: {labels}")
    return scenarios


def _check_grid_selection(collectives, algorithms):
    """Shared collective/algorithm validation; returns an error string or None."""
    bad = [c for c in collectives if c not in COLLECTIVES]
    if bad:
        return f"unknown collective(s) {bad}; have {list(COLLECTIVES)}"
    if algorithms:
        known = {s.name for c in collectives for s in iter_specs(c)}
        bad = [a for a in algorithms if a not in known]
        if bad:
            return (
                f"unknown algorithm(s) {bad} for collectives "
                f"{list(collectives)}; have {sorted(known)}"
            )
    return None


# -- repro list --------------------------------------------------------------


def cmd_list(args) -> int:
    """``repro list`` — registry catalog as text, Markdown, or JSON.

    Example::

        $ repro list --collective allreduce
        $ repro list --markdown > docs/algorithms.md
    """
    if args.collective and args.collective not in COLLECTIVES:
        return _fail(
            f"unknown collective {args.collective!r}; have {list(COLLECTIVES)}"
        )
    if args.family and args.family not in families():
        return _fail(f"unknown family {args.family!r}; have {families()}")
    if args.markdown:
        if args.collective or args.family:
            return _fail(
                "--markdown renders the full docs/algorithms.md catalog and "
                "does not combine with --collective/--family"
            )
        text = fmt.algorithms_markdown()
    elif args.json:
        import json

        text = json.dumps(
            fmt.catalog_dict(args.collective, args.family), indent=2
        )
    else:
        header = (
            f"systems: {', '.join(sorted(ALL_SYSTEMS))}\n"
            f"collectives: {', '.join(COLLECTIVES)}\n"
            f"families: {', '.join(families())}\n"
        )
        text = header + "\n" + fmt.algorithms_text(args.collective, args.family)
    _emit(text, args.output)
    return 0


# -- repro schedule ----------------------------------------------------------


def cmd_schedule(args) -> int:
    """``repro schedule`` — build, validate, pretty-print one schedule.

    Example::

        $ repro schedule allreduce bine-rsag -p 16 --verify
    """
    n = args.elems if args.elems is not None else args.ranks
    try:
        schedule = build(
            args.collective, args.algorithm, args.ranks, n, args.root, args.op
        )
    except KeyError as exc:
        return _fail(str(exc.args[0]))
    except ValueError as exc:
        return _fail(
            f"cannot build {args.collective}/{args.algorithm} "
            f"at p={args.ranks}, n={n}: {exc}"
        )
    lines = [
        fmt.schedule_report(
            schedule,
            args.collective,
            args.algorithm,
            max_steps=args.max_steps,
            max_transfers=args.max_transfers,
        )
    ]
    lines.append(
        "validation: on" if validation_enabled() else "validation: off (REPRO_VALIDATE)"
    )
    if args.verify:
        from repro.collectives.verify import run_and_check

        try:
            run_and_check(schedule, seed=42)
        except AssertionError as exc:
            print("\n".join(lines))
            return _fail(f"verification FAILED: {exc}")
        lines.append("verify: executor output matches NumPy ground truth")
    _emit("\n".join(lines), args.output)
    return 0


# -- repro sweep -------------------------------------------------------------


def _render_records(records, fmt_name: str) -> str:
    return {
        "table": fmt.records_table,
        "json": fmt.records_json,
        "csv": fmt.records_csv,
        "markdown": fmt.records_markdown,
    }[fmt_name](records)


def _duel_text(records, collectives, family: str, baseline_for) -> str:
    duels, skipped = duel_summaries(records, collectives, family, baseline_for)
    parts = []
    if duels:
        parts.append(fmt.summaries_text(duels))
    if skipped:
        parts.append(
            f"(no comparable {family}-vs-baseline cells for: {', '.join(skipped)})"
        )
    return "\n".join(parts) if parts else "no records"


def cmd_sweep(args) -> int:
    """``repro sweep`` — one grid over a system, any output format.

    Example::

        $ repro sweep --system lumi --collective allreduce \\
              --nodes 16,64 --format csv --output allreduce.csv
    """
    try:
        preset = system_for(args.system)
    except KeyError as exc:
        return _fail(str(exc.args[0]))
    collectives = tuple(args.collective) if args.collective else COLLECTIVES
    error = _check_grid_selection(collectives, args.algorithm)
    if error:
        return _fail(error)
    scenarios = _parse_faults(args) or (FaultSpec(),)
    records = []
    for scenario in scenarios:
        cache = ProfileCache(
            preset,
            placement=args.placement,
            seed=args.seed,
            busy_fraction=args.busy_fraction,
            disk_dir=args.disk_cache,
            profile_engine=args.profile_engine,
            faults=scenario,
        )
        records.extend(
            sweep_system(
                preset,
                collectives,
                node_counts=args.nodes,
                vector_bytes=args.sizes,
                algorithms=args.algorithm or None,
                ppn=args.ppn,
                cache=cache,
                workers=args.workers,
            )
        )
    print(
        f"# {args.system}: {len(records)} records "
        f"({len(collectives)} collectives)",
        file=sys.stderr,
    )
    if args.format == "summary":
        text = _duel_text(
            records, collectives, args.family, lambda _: args.baseline
        )
    elif args.format == "summary-json":
        duels, _ = duel_summaries(
            records, collectives, args.family, lambda _: args.baseline
        )
        text = fmt.summaries_json(duels)
    else:
        text = _render_records(records, args.format)
    _emit(text, args.output)
    return _stalled_exit(records)


def _stalled_exit(records) -> int:
    """0, or the stalled-run exit code when any DES cell lost flows mid-run.

    The records themselves are complete and were already emitted — the
    nonzero code only tells scripted drivers the fabric partitioned under
    the timeline (see docs/robustness.md, exit code 8).
    """
    stalled = sum(1 for r in records if getattr(r, "stalled", False))
    if not stalled:
        return 0
    from repro.cli.main import STALLED_EXIT

    print(
        f"# {stalled} record(s) stalled mid-run (timeline partitioned the "
        "fabric); times for those cells are lower bounds",
        file=sys.stderr,
    )
    return STALLED_EXIT


# -- repro verify ------------------------------------------------------------


def cmd_verify(args) -> int:
    """``repro verify`` — bulk-run the executor oracle over a grid.

    Exit codes: 0 all cells ok (or skipped), 1 at least one failure,
    2 usage error.

    Example::

        $ repro verify --quick
        $ repro verify --collective allreduce --nodes 64,1024 --engine both
    """
    collectives = tuple(args.collective) if args.collective else COLLECTIVES
    error = _check_grid_selection(collectives, args.algorithm)
    if error:
        return _fail(error)
    if args.elems_per_rank < 1:
        return _fail("--elems-per-rank must be >= 1")
    nodes = args.nodes if args.nodes else ((4, 8) if args.quick else DEFAULT_NODE_COUNTS)
    seeds = args.seeds if args.seeds else ((0,) if args.quick else (0, 1))
    records = verify_grid(
        collectives,
        nodes,
        elems_per_rank=args.elems_per_rank,
        seeds=seeds,
        engine=args.engine,
        algorithms=args.algorithm or None,
        workers=args.workers,
    )
    counts = {"ok": 0, "failed": 0, "skipped": 0}
    for r in records:
        counts[r.status] += 1
    print(
        f"# verify [{args.engine}]: {len(records)} cells, {counts['ok']} ok, "
        f"{counts['failed']} failed, {counts['skipped']} skipped",
        file=sys.stderr,
    )
    text = {
        "summary": fmt.verify_summary_text,
        "table": fmt.verify_records_table,
        "json": fmt.verify_records_json,
        "markdown": fmt.verify_records_markdown,
    }[args.format](records)
    _emit(text, args.output)
    return 1 if counts["failed"] else 0


# -- repro bench -------------------------------------------------------------


def _benchmarks_dir() -> Path | None:
    """The bench-script directory: CWD first, then the source checkout."""
    import repro

    roots = [Path.cwd()]
    if getattr(repro, "__file__", None):
        roots.append(Path(repro.__file__).resolve().parents[2])
    for root in roots:
        cand = root / "benchmarks"
        if cand.is_dir() and list(cand.glob("bench_*.py")):
            return cand
    return None


def _bench_doc(path: Path) -> str:
    try:
        doc = ast.get_docstring(ast.parse(path.read_text())) or ""
    except SyntaxError:
        doc = ""
    return doc.splitlines()[0] if doc else ""


def cmd_bench(args) -> int:
    """``repro bench`` — discover and run ``benchmarks/bench_*.py``.

    Example::

        $ repro bench --list
        $ repro bench table3 fig09
    """
    bench_dir = _benchmarks_dir()
    if bench_dir is None:
        return _fail(
            "no benchmarks/ directory found (run from a source checkout)"
        )
    scripts = sorted(bench_dir.glob("bench_*.py"))
    if args.patterns:
        scripts = [
            s for s in scripts if any(pat in s.stem for pat in args.patterns)
        ]
        if not scripts:
            return _fail(f"no bench script matches {args.patterns}")
    if args.list:
        width = max(len(s.stem) for s in scripts)
        for s in scripts:
            print(f"{s.stem:<{width}}  {_bench_doc(s)}")
        return 0
    repo_root = bench_dir.parent
    env = dict(os.environ)
    src = str(repo_root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    cmd = [sys.executable, "-m", "pytest", "-q"] + [
        str(s.relative_to(repo_root)) for s in scripts
    ]
    print(f"$ {' '.join(cmd)}  (cwd={repo_root})", file=sys.stderr)
    proc = subprocess.run(cmd, cwd=repo_root, env=env)
    return proc.returncode


# -- repro plot --------------------------------------------------------------


def _restrict_manifest(manifest, collectives, nodes, sizes):
    """Trim a manifest's grids to the requested slices (for cheap plots).

    Returns the restricted manifest, or an error string when nothing of
    the manifest survives the filters.
    """
    import dataclasses

    grids = []
    for grid in manifest.grids:
        colls = tuple(
            c for c in grid.collectives if not collectives or c in collectives
        )
        node_counts = tuple(
            p for p in grid.node_counts if not nodes or p in nodes
        )
        vector_bytes = grid.vector_bytes
        if sizes:
            if vector_bytes is None:
                vector_bytes = tuple(sizes)
            else:
                vector_bytes = tuple(nb for nb in vector_bytes if nb in sizes)
        if not colls or not node_counts or vector_bytes == ():
            continue
        grids.append(
            dataclasses.replace(
                grid, collectives=colls, node_counts=node_counts,
                vector_bytes=vector_bytes,
            )
        )
    if not grids:
        return None, (
            "the --collective/--nodes/--sizes filters leave nothing of "
            f"manifest {manifest.name!r}"
        )
    # summary=None: plot renders figures, not duel tables — don't pay the
    # family_duel pass over a full campaign's records for nothing
    return dataclasses.replace(
        manifest, grids=tuple(grids), summary=None
    ), None


def cmd_plot(args) -> int:
    """``repro plot`` — render campaign figures (SVG) plus an artifact index.

    Exit codes: 0 artifacts written, 2 usage/domain error.

    Example::

        $ repro plot --manifest campaigns/table3_lumi.toml --out report/
        $ repro plot --records sweep.json --out report/ --collective allreduce
    """
    from repro.report import render_report
    from repro.report.diff import RecordSetError, load_record_set

    manifest = None
    if args.manifest:
        try:
            manifest = load_manifest(args.manifest)
        except (ManifestError, FileNotFoundError) as exc:
            return _fail(str(exc))
        manifest, error = _restrict_manifest(
            manifest, args.collective, args.nodes, args.sizes
        )
        if error:
            return _fail(error)
        result = run_campaign(
            manifest, workers=args.workers, disk_dir=args.disk_cache,
            profile_engine=args.profile_engine, faults=_parse_faults(args),
        )
        records = result.records
        name, source = manifest.name, args.manifest
    else:
        try:
            record_set = load_record_set(args.records)
        except (RecordSetError, FileNotFoundError) as exc:
            return _fail(str(exc))
        if record_set.kind != "sweep":
            return _fail(
                f"{args.records}: plot needs sweep records, got "
                f"{record_set.kind!r}"
            )
        records = [
            r for r in record_set.to_records()
            if (not args.collective or r.collective in args.collective)
            and (not args.nodes or r.p in args.nodes)
            and (not args.sizes or r.n_bytes in args.sizes)
        ]
        name, source = Path(args.records).stem, args.records
    if not records:
        return _fail("no records to plot")
    try:
        written = render_report(
            records, args.out, name=name, source=source, manifest=manifest,
            collectives=tuple(args.collective) if args.collective else None,
        )
    except ValueError as exc:  # e.g. a family with no heatmap letter
        return _fail(str(exc))
    print(f"# plot: {len(records)} records -> {len(written)} artifacts",
          file=sys.stderr)
    for path in written:
        print(path)
    return 0


# -- repro compare -----------------------------------------------------------


def _resolve_record_set(path_text: str, workers, disk_dir, profile_engine=None,
                        faults=None):
    """A compare operand: records/baseline JSON, or a manifest to rerun.

    Returns ``(record_set, manifest_or_None)``; raises ``ManifestError``
    or :class:`~repro.report.diff.RecordSetError` on bad input.
    """
    import json as _json

    from repro.report.diff import (
        RecordSetError,
        record_set_from_json,
        record_set_from_records,
    )

    path = Path(path_text)
    data = None
    if path.suffix == ".json":
        try:
            data = _json.loads(path.read_text())
        except _json.JSONDecodeError as exc:
            raise RecordSetError(f"{path_text}: not valid JSON ({exc})") from None
        # a JSON *manifest* has [campaign] + [[grid]]; anything else (incl.
        # BENCH_*.json blobs, which carry a "campaign" metadata key but no
        # grids) diffs as a record set
        if not (isinstance(data, dict) and isinstance(data.get("campaign"), dict)
                and "grid" in data):
            return record_set_from_json(data, path_text), None
    # a campaign manifest (TOML, or JSON with a [campaign] table): run it
    from repro.cli.manifest import manifest_from_dict

    manifest = (
        manifest_from_dict(data) if data is not None else load_manifest(path)
    )
    result = run_campaign(
        manifest, workers=workers, disk_dir=disk_dir,
        profile_engine=profile_engine, faults=faults,
    )
    return record_set_from_records(result.records, label=path_text), manifest


def cmd_compare(args) -> int:
    """``repro compare`` — diff two record sets cell by cell.

    Operands are records/baseline JSON files or campaign manifests (a
    manifest is rerun, which is the baseline regression gate).  Exit
    codes: 0 identical within tolerance, 1 drift (the drifted cells are
    named), 2 usage/domain error.

    Example::

        $ repro compare baselines/table3.json campaigns/table3_lumi.toml --update
        $ repro compare baselines/table3.json campaigns/table3_lumi.toml
        $ repro compare old_sweep.json new_sweep.json --format markdown
    """
    from repro.report.baseline import write_baseline
    from repro.report.diff import RecordSetError, diff_record_sets

    if args.update:
        try:
            candidate, manifest = _resolve_record_set(
                args.candidate, args.workers, args.disk_cache,
                args.profile_engine, _parse_faults(args),
            )
        except (ManifestError, RecordSetError, FileNotFoundError, OSError) as exc:
            return _fail(str(exc))
        if manifest is None:
            return _fail(
                "--update freezes a campaign manifest's records; "
                f"{args.candidate!r} is not a manifest"
            )
        if Path(args.ref).suffix != ".json":
            return _fail("--update writes a .json baseline file")
        records = candidate.to_records()
        write_baseline(args.ref, manifest, records)
        print(f"froze {len(records)} records -> {args.ref}", file=sys.stderr)
        return 0
    try:
        faults = _parse_faults(args)
        ref, _ = _resolve_record_set(
            args.ref, args.workers, args.disk_cache, args.profile_engine,
            faults,
        )
        candidate, _ = _resolve_record_set(
            args.candidate, args.workers, args.disk_cache, args.profile_engine,
            faults,
        )
        diff = diff_record_sets(ref, candidate, tolerance=args.tolerance)
    except (ManifestError, RecordSetError, FileNotFoundError, OSError) as exc:
        return _fail(str(exc))
    text = {
        "summary": fmt.diff_summary_text,
        "table": fmt.diff_records_table,
        "json": fmt.diff_records_json,
        "markdown": fmt.diff_records_markdown,
    }[args.format](diff)
    _emit(text, args.output)
    return 1 if diff.drifted else 0


# -- repro tune --------------------------------------------------------------


_QUERY_INT_KEYS = ("p", "n_bytes", "ppn")


def _parse_tune_query(text: str) -> dict:
    """``collective=bcast,p=16,n=1024[,system=...,ppn=...,faults=...]``.

    Returns the query dict or raises ``ValueError`` with a usage hint.
    """
    query: dict = {"ppn": 1, "faults": "none"}
    for part in text.split(","):
        if "=" not in part:
            raise ValueError(f"query term {part!r} is not key=value")
        key, _, value = part.partition("=")
        key = key.strip()
        key = {"n": "n_bytes", "nodes": "p"}.get(key, key)
        if key in _QUERY_INT_KEYS:
            query[key] = int(value)
        elif key in ("collective", "system", "faults"):
            query[key] = value.strip()
        else:
            raise ValueError(
                f"unknown query key {key!r} (expected collective, p, "
                "n/n_bytes, system, ppn, faults)"
            )
    missing = [k for k in ("collective", "p", "n_bytes") if k not in query]
    if missing:
        raise ValueError(f"query {text!r} is missing {missing}")
    return query


def cmd_tune(args) -> int:
    """``repro tune`` — compile sweep records into a decision table and query it.

    SOURCE is a campaign manifest (run, then compiled), a sweep-records
    JSON file (compiled directly), or an existing decision-table JSON
    (loaded and digest-checked).  ``--output`` writes the canonical
    artifact bytes; ``--query`` answers selection queries against it.
    Exit codes: 0 ok, 2 usage/off-grid query, 7 corrupted artifact.

    Example::

        $ repro tune campaigns/table3_lumi.toml -o table.json
        $ repro tune table.json --query collective=bcast,p=16,n=1024
    """
    import json as _json

    from repro.report.diff import RecordSetError, record_set_from_json
    from repro.runtime.errors import TuneQueryError
    from repro.tune import (
        DecisionTable,
        build_decision_table,
        lookup,
    )

    path = Path(args.source)
    table = None
    manifest = data = None
    if path.suffix == ".json":
        try:
            data = _json.loads(path.read_text())
        except (OSError, _json.JSONDecodeError) as exc:
            return _fail(f"{args.source}: cannot read ({exc})")
    if isinstance(data, dict) and data.get("schema") == "repro/decision-table":
        # TuneArtifactError (bad digest/schema) propagates to exit code 7
        table = DecisionTable.from_dict(data, label=args.source)
        if args.collective or args.nodes or args.sizes:
            return _fail(
                "--collective/--nodes/--sizes restrict a manifest run; "
                f"{args.source!r} is already a compiled table"
            )
    else:
        if data is not None and not (
            isinstance(data, dict) and isinstance(data.get("campaign"), dict)
            and "grid" in data
        ):
            # sweep-records JSON (or a frozen baseline wrapping one)
            try:
                record_set = record_set_from_json(data, args.source)
            except RecordSetError as exc:
                return _fail(str(exc))
            if record_set.kind != "sweep":
                return _fail(
                    f"{args.source}: tune compiles sweep records, got "
                    f"{record_set.kind!r}"
                )
            records = record_set.to_records()
            name = args.name or path.stem
        else:
            try:
                manifest = load_manifest(path)
            except (ManifestError, FileNotFoundError) as exc:
                return _fail(str(exc))
            manifest, error = _restrict_manifest(
                manifest, args.collective, args.nodes, args.sizes
            )
            if error:
                return _fail(error)
            result = run_campaign(
                manifest, workers=args.workers, disk_dir=args.disk_cache,
                profile_engine=args.profile_engine, faults=_parse_faults(args),
            )
            records = result.records
            name = args.name or manifest.name
        if not records:
            return _fail("no records to compile into a decision table")
        table = build_decision_table(records, name=name, source=args.source)
    print(
        f"# tune {table.name!r}: {table.record_count} records -> "
        f"{len(table.tables)} sub-tables, {table.cells} cells",
        file=sys.stderr,
    )
    if args.output:
        # raw to_json bytes, not _emit: the artifact contract is
        # byte-deterministic and golden tests compare files exactly
        Path(args.output).write_text(table.to_json())
        print(f"wrote {args.output}")
    answers = []
    default_system = (
        table.tables[0].system if len({t.system for t in table.tables}) == 1
        else None
    )
    for text in args.query or ():
        try:
            query = _parse_tune_query(text)
        except ValueError as exc:
            return _fail(str(exc))
        system = query.get("system", default_system)
        if system is None:
            return _fail(
                f"query {text!r} needs system=... (the table spans "
                f"{sorted({t.system for t in table.tables})})"
            )
        try:
            sel = lookup(
                table, query["collective"], system, query["p"], query["ppn"],
                query["n_bytes"], faults=query["faults"], policy=args.policy,
            )
        except TuneQueryError as exc:
            return _fail(str(exc))
        answers.append((query, sel))
    if answers:
        print(fmt.tune_selections_text(answers))
    elif not args.output:
        _emit(fmt.tune_table_text(table), None)
    return 0


# -- repro stats -------------------------------------------------------------


def _summarize_trace(name: str, data: dict) -> dict:
    """Fold a raw trace file into the sidecar's stats shape.

    No counters: the registry totals for the traced run only live in the
    ``.stats.json`` the session wrote next to the trace.
    """
    from repro.obs import span_aggregates

    events = [e for e in data.get("traceEvents", ()) if isinstance(e, dict)]
    pids = {e.get("pid") for e in events}
    return {
        "trace": name,
        "events": len(events),
        "shards": max(0, len(pids) - 1),
        "spans": span_aggregates(events),
    }


def cmd_stats(args) -> int:
    """``repro stats`` — summarize traces/sidecars, or inspect live caches.

    FILE is a Chrome trace written by ``--trace``/``REPRO_TRACE``, its
    ``.stats.json`` sidecar, or a record journal written by ``repro
    campaign --journal`` (summarized as cells done/remaining per scenario
    plus the resume count — the look-before-you-resume view of a dead
    run).  Exit codes: 0 ok, 1 ``--validate`` found schema violations,
    2 usage error, 10 unusable journal.

    Example::

        $ repro campaign campaigns/table3_lumi.toml --trace run.trace.json
        $ repro stats run.trace.stats.json
        $ repro stats run.trace.json --validate
        $ repro stats runs/table3-lumi.journal
        $ repro stats --caches
    """
    import json as _json

    from repro import obs
    from repro.analysis.sweep import memo_cache_sizes

    if args.caches:
        if args.file or args.validate:
            return _fail(
                "--caches reads this process's live memo caches and does "
                "not combine with FILE or --validate"
            )
        sizes = memo_cache_sizes()
        text = (
            _json.dumps(sizes, indent=2, sort_keys=True)
            if args.format == "json"
            else fmt.cache_sizes_text(sizes)
        )
        _emit(text, args.output)
        return 0
    if not args.file:
        return _fail("stats needs a FILE (trace, .stats.json, or journal) "
                     "or --caches")
    try:
        # lenient decode: a corrupt journal must still reach the sniff below
        # (its sealed header line is sound ASCII) to get the exit-10 path
        raw = Path(args.file).read_bytes().decode("utf-8", "replace")
    except OSError as exc:
        return _fail(f"{args.file}: cannot read ({exc})")
    # a record journal is JSONL, not JSON — sniff its sealed header before
    # attempting to parse the file as one document
    if '"repro/journal"' in raw.partition("\n")[0]:
        from repro.checkpoint import read_journal, summarize_journal

        summary = summarize_journal(read_journal(args.file))
        if args.validate:
            tail = " (torn tail dropped)" if summary["truncated_tail"] else ""
            print(
                f"{args.file}: ok ({summary['cells_done']} cell(s) "
                f"journaled, {summary['resumes']} resume(s)){tail}"
            )
            return 0
        text = (
            _json.dumps(summary, indent=2, sort_keys=True)
            if args.format == "json"
            else fmt.journal_stats_text(summary)
        )
        _emit(text, args.output)
        return 0
    try:
        data = _json.loads(raw)
    except _json.JSONDecodeError as exc:
        return _fail(f"{args.file}: cannot read ({exc})")
    if isinstance(data, dict) and data.get("schema") == obs.STATS_SCHEMA:
        if args.validate:
            return _fail(
                f"{args.file} is a stats sidecar; --validate checks the "
                "trace file itself"
            )
        doc = data
    else:
        errors = obs.validate_trace(data)
        if args.validate:
            if errors:
                print(
                    f"error: {args.file}: {len(errors)} schema violation(s)",
                    file=sys.stderr,
                )
                for err in errors[:20]:
                    print(f"  {err}", file=sys.stderr)
                if len(errors) > 20:
                    print(f"  ... ({len(errors) - 20} more)", file=sys.stderr)
                return 1
            events = data["traceEvents"]
            pids = {e.get("pid") for e in events if isinstance(e, dict)}
            print(
                f"{args.file}: ok ({len(events)} events, "
                f"{len(pids)} process(es))"
            )
            return 0
        if errors:
            return _fail(
                f"{args.file}: not a valid trace or stats file "
                f"({errors[0]}; --validate lists everything)"
            )
        doc = _summarize_trace(Path(args.file).name, data)
    text = (
        fmt.trace_stats_json(doc)
        if args.format == "json"
        else fmt.trace_stats_text(doc)
    )
    _emit(text, args.output)
    return 0


# -- repro campaign ----------------------------------------------------------


def cmd_campaign(args) -> int:
    """``repro campaign`` — run a TOML/JSON manifest end to end.

    ``--journal DIR`` makes the run crash-safe (cells stream into a
    write-ahead journal; SIGINT/SIGTERM drain gracefully with exit
    code 9) and ``--resume`` picks a dead run back up byte-identically.

    Example::

        $ repro campaign campaigns/table3_lumi.toml --workers 8
        $ repro campaign campaigns/table3_lumi.toml --journal runs/
        $ repro campaign campaigns/table3_lumi.toml --journal runs/ --resume
    """
    try:
        manifest = load_manifest(args.manifest)
    except (ManifestError, FileNotFoundError) as exc:
        return _fail(str(exc))
    if args.resume and not args.journal:
        return _fail("--resume needs --journal DIR (the journal to resume)")
    if args.journal:
        from repro.checkpoint import journal_path

        print(
            f"# journal: {journal_path(args.journal, manifest.name)}"
            + (" (resuming)" if args.resume else ""),
            file=sys.stderr,
        )
    result = run_campaign(
        manifest, workers=args.workers, disk_dir=args.disk_cache,
        profile_engine=args.profile_engine, faults=_parse_faults(args),
        journal=args.journal, resume=args.resume,
    )
    cells = len({r.key for r in result.records})
    print(
        f"# campaign {manifest.name!r} on {manifest.system}: "
        f"{len(result.records)} records, {cells} cells",
        file=sys.stderr,
    )
    if args.format == "summary":
        caption = manifest.description or manifest.name
        if result.summaries:
            text = fmt.summaries_text(result.summaries, caption)
        else:
            text = (
                f"{caption}\n(no duel summary in manifest; "
                "use --format json/csv/markdown for records)"
            )
        if result.skipped:
            text += f"\n(skipped, no comparable cells: {', '.join(result.skipped)})"
    elif args.format == "summary-json":
        text = fmt.summaries_json(result.summaries)
    else:
        text = _render_records(result.records, args.format)
    _emit(text, args.output)
    return _stalled_exit(result.records)
