"""Renderers turning library objects into CLI output.

Everything here is a pure function from data to ``str`` so every
subcommand (and the doc-freshness test) shares one source of truth:
``docs/algorithms.md`` *is* :func:`algorithms_markdown`, and the JSON/CSV
views of a sweep are the same rows in a different syntax
(:data:`repro.analysis.sweep.RECORD_FIELDS` fixes the column order).

Example::

    >>> from repro.analysis.sweep import SweepRecord
    >>> r = SweepRecord("lumi", "bcast", "bine", "bine", 16, 32, 1e-6, 64.0)
    >>> print(records_csv([r]).splitlines()[0])
    system,collective,algorithm,family,p,n_bytes,time,global_bytes,faults,ppn,timeline,stalled
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from repro.analysis.heatmap import human_bytes
from repro.analysis.summarize import DuelSummary, format_duel_table
from repro.analysis.sweep import RECORD_FIELDS, SweepRecord
from repro.analysis.verifygrid import VERIFY_FIELDS, VerifyRecord
from repro.collectives.registry import COLLECTIVES, families, iter_specs
from repro.report import diff as _diff
from repro.runtime.schedule import Schedule, Transfer
from repro.systems import ALL_SYSTEMS

__all__ = [
    "records_json",
    "records_csv",
    "records_markdown",
    "records_table",
    "summaries_json",
    "summaries_text",
    "verify_records_json",
    "verify_records_markdown",
    "verify_records_table",
    "verify_summary_text",
    "diff_summary_text",
    "diff_records_table",
    "diff_records_json",
    "diff_records_markdown",
    "tune_table_text",
    "tune_selections_text",
    "cache_sizes_text",
    "trace_stats_text",
    "trace_stats_json",
    "schedule_report",
    "algorithms_text",
    "algorithms_markdown",
    "catalog_dict",
]


# -- sweep records -----------------------------------------------------------


def records_json(records: Sequence[SweepRecord]) -> str:
    """Records as a JSON array of objects (keys in column order).

    Example::

        >>> records_json([])
        '[]'
    """
    return json.dumps([r.to_dict() for r in records], indent=2)


def records_csv(records: Sequence[SweepRecord]) -> str:
    """Records as CSV with a header row, ready for pandas/gnuplot."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=RECORD_FIELDS, lineterminator="\n")
    writer.writeheader()
    for r in records:
        writer.writerow(r.to_dict())
    return buf.getvalue().rstrip("\n")


def records_markdown(records: Sequence[SweepRecord]) -> str:
    """Records as a GitHub-flavoured Markdown table.

    Example::

        >>> records_markdown([]).splitlines()[0].startswith("| system |")
        True
    """
    lines = [
        "| " + " | ".join(RECORD_FIELDS) + " |",
        "|" + "---|" * len(RECORD_FIELDS),
    ]
    for r in records:
        d = r.to_dict()
        d["time"] = f"{d['time']:.6g}"
        d["global_bytes"] = f"{d['global_bytes']:.6g}"
        lines.append("| " + " | ".join(str(d[f]) for f in RECORD_FIELDS) + " |")
    return "\n".join(lines)


def records_table(records: Sequence[SweepRecord]) -> str:
    """Records as an aligned plain-text table (human consumption).

    Example::

        >>> records_table([]).splitlines()[0].split()[:2]
        ['collective', 'algorithm']
    """
    # the faults / timeline / stalled columns only appear when a degraded
    # scenario (or DES timeline) is present, so pristine sweeps keep their
    # historical layout
    degraded = any(r.faults != "none" for r in records)
    timed = any(r.timeline != "none" for r in records)
    stalled = any(r.stalled for r in records)
    hdr = (
        f"{'collective':<15}{'algorithm':<26}{'family':<10}"
        f"{'p':>6}{'size':>9}{'time':>12}{'glob.bytes':>12}"
        + (f"  {'faults':<24}" if degraded else "")
        + (f"  {'timeline':<32}" if timed else "")
        + ("  stalled" if stalled else "")
    )
    lines = [hdr, "-" * len(hdr)]
    for r in records:
        lines.append(
            f"{r.collective:<15}{r.algorithm:<26}{r.family:<10}"
            f"{r.p:>6}{human_bytes(r.n_bytes):>9}"
            f"{r.time:>12.3e}{r.global_bytes:>12.3e}"
            + (f"  {r.faults:<24}" if degraded else "")
            + (f"  {r.timeline:<32}" if timed else "")
            + (f"  {'yes' if r.stalled else 'no':<7}" if stalled else "")
        )
    return "\n".join(lines)


# -- duel summaries ----------------------------------------------------------


def summaries_json(duels: Sequence[DuelSummary]) -> str:
    """Duel summaries (one Table 3/4/5 row per collective) as JSON.

    Example::

        >>> summaries_json([])
        '[]'
    """
    return json.dumps([d.to_dict() for d in duels], indent=2)


def summaries_text(duels: Sequence[DuelSummary], caption: str = "") -> str:
    """The paper-style duel table, optionally captioned.

    Example::

        >>> summaries_text([], caption="Table 3").splitlines()[0]
        'Table 3'
    """
    text = format_duel_table(duels)
    return f"{caption}\n{text}" if caption else text


# -- verification records ----------------------------------------------------


def verify_records_json(records: Sequence[VerifyRecord]) -> str:
    """Verification records as a JSON array (keys in column order).

    Example::

        >>> verify_records_json([])
        '[]'
    """
    return json.dumps([r.to_dict() for r in records], indent=2)


def verify_records_markdown(records: Sequence[VerifyRecord]) -> str:
    """Verification records as a GitHub-flavoured Markdown table.

    Example::

        >>> verify_records_markdown([]).splitlines()[0].startswith("| collective |")
        True
    """
    lines = [
        "| " + " | ".join(VERIFY_FIELDS) + " |",
        "|" + "---|" * len(VERIFY_FIELDS),
    ]
    for r in records:
        d = r.to_dict()
        d["elapsed_s"] = f"{d['elapsed_s']:.4g}"
        lines.append("| " + " | ".join(str(d[f]) for f in VERIFY_FIELDS) + " |")
    return "\n".join(lines)


def verify_records_table(records: Sequence[VerifyRecord]) -> str:
    """Verification records as an aligned plain-text table.

    Example::

        >>> verify_records_table([]).splitlines()[0].split()[:2]
        ['collective', 'algorithm']
    """
    hdr = (
        f"{'collective':<15}{'algorithm':<26}{'p':>6}{'n':>8}{'seeds':>6}"
        f"{'status':>9}{'time':>9}  detail"
    )
    lines = [hdr, "-" * len(hdr)]
    for r in records:
        lines.append(
            f"{r.collective:<15}{r.algorithm:<26}{r.p:>6}{r.n:>8}{r.seeds:>6}"
            f"{r.status:>9}{r.elapsed_s:>8.3f}s  {r.detail}"
        )
    return "\n".join(lines)


def verify_summary_text(records: Sequence[VerifyRecord]) -> str:
    """Per-collective ok/failed/skipped roll-up plus every failure's detail.

    Example::

        >>> verify_summary_text([]).splitlines()[-1]
        'total: 0 cells, 0 ok, 0 failed, 0 skipped (0.0s)'
    """
    by_coll: dict[str, dict[str, int]] = {}
    for r in records:
        counts = by_coll.setdefault(r.collective, {"ok": 0, "failed": 0, "skipped": 0})
        counts[r.status] += 1
    lines = []
    width = max((len(c) for c in by_coll), default=10)
    for coll, counts in by_coll.items():
        cells = sum(counts.values())
        lines.append(
            f"{coll:<{width}}  {cells:>4} cells  {counts['ok']:>4} ok  "
            f"{counts['failed']:>4} failed  {counts['skipped']:>4} skipped"
        )
    failures = [r for r in records if r.status == "failed"]
    if failures:
        lines.append("")
        lines.append("failures:")
        for r in failures:
            lines.append(
                f"  {r.collective}/{r.algorithm} p={r.p} n={r.n}: {r.detail}"
            )
    totals = {"ok": 0, "failed": 0, "skipped": 0}
    for r in records:
        totals[r.status] += 1
    elapsed = sum(r.elapsed_s for r in records)
    if lines:
        lines.append("")
    lines.append(
        f"total: {len(records)} cells, {totals['ok']} ok, "
        f"{totals['failed']} failed, {totals['skipped']} skipped "
        f"({elapsed:.1f}s)"
    )
    return "\n".join(lines)


# -- record-set diffs --------------------------------------------------------


def diff_summary_text(diff: _diff.RecordSetDiff) -> str:
    """``repro compare`` default output: verdict line + drifted cells."""
    return _diff.diff_summary(diff)


def diff_records_table(diff: _diff.RecordSetDiff) -> str:
    """One aligned row per drifted cell (header only when clean)."""
    return _diff.diff_table(diff)


def diff_records_json(diff: _diff.RecordSetDiff) -> str:
    """The diff as deterministic JSON (counts + every drifted cell)."""
    return _diff.diff_json(diff)


def diff_records_markdown(diff: _diff.RecordSetDiff) -> str:
    """The diff as a GitHub-flavoured Markdown table."""
    return _diff.diff_markdown(diff)


# -- decision tables ---------------------------------------------------------


def tune_table_text(table) -> str:
    """Digest of a decision-table artifact: provenance plus one line per
    ``(system, faults, collective, ppn)`` sub-table."""
    lines = [
        f"decision table {table.name!r} ({table.source})",
        f"records: {table.record_count} (digest {table.records_digest}), "
        f"{len(table.tables)} sub-tables, {table.cells} cells",
    ]
    for sub in table.tables:
        algos = sorted({w for row in sub.winner for w in row if w is not None})
        lines.append(
            f"  {sub.system}/{sub.faults}/{sub.collective}/ppn={sub.ppn}: "
            f"{len(sub.p_grid)}x{len(sub.n_grid)} grid "
            f"(p {sub.p_grid[0]}..{sub.p_grid[-1]}, "
            f"n {human_bytes(sub.n_grid[0])}..{human_bytes(sub.n_grid[-1])}), "
            f"winners: {', '.join(algos) if algos else 'none'}"
        )
    return "\n".join(lines)


def tune_selections_text(answers: Sequence[tuple[dict, object]]) -> str:
    """``--query`` answers, one aligned line per query."""
    lines = []
    for query, sel in answers:
        q = (
            f"{query['collective']} p={query['p']} "
            f"n={human_bytes(query['n_bytes'])}"
        )
        if sel is None:
            lines.append(f"{q:<40} -> refused (off-grid)")
            continue
        cell = "" if sel.exact else (
            f"  [nearest cell p={sel.p} n={human_bytes(sel.n_bytes)}]"
        )
        margin = f" margin {sel.margin:.3f}x" if sel.margin is not None else ""
        lines.append(f"{q:<40} -> {sel.algorithm} ({sel.family}){margin}{cell}")
    return "\n".join(lines)


# -- telemetry stats ---------------------------------------------------------


def cache_sizes_text(sizes) -> str:
    """Live memo-cache sizes (``repro stats --caches``), one row per cache.

    Example::

        >>> print(cache_sizes_text({"a.cache": 3, "b.cache": 0}))
        a.cache         3
        b.cache         0
        total           3
    """
    if not sizes:
        return "no registered caches"
    width = max(max(len(n) for n in sizes), len("total"))
    lines = [f"{name:<{width}}  {sizes[name]:>7}" for name in sorted(sizes)]
    lines.append(f"{'total':<{width}}  {sum(sizes.values()):>7}")
    return "\n".join(lines)


def _metric_rows(title: str, values) -> list[str]:
    lines = ["", f"{title}:"]
    width = max(len(n) for n in values)
    for name in sorted(values):
        lines.append(f"  {name:<{width}}  {float(values[name]):>12g}")
    return lines


def trace_stats_text(doc) -> str:
    """A stats document (``.stats.json`` sidecar or trace summary) as text.

    Example::

        >>> print(trace_stats_text({"trace": "t.json", "events": 2,
        ...     "counters": {"cache.profile.hit": 5},
        ...     "spans": {"sweep.system": {"count": 1, "total_us": 1500.0}}}))
        trace: t.json  events: 2
        <BLANKLINE>
        counters:
          cache.profile.hit             5
        <BLANKLINE>
        spans:
          name          count       total
          sweep.system      1      1.50ms
    """
    head = []
    if doc.get("trace"):
        head.append(f"trace: {doc['trace']}")
    head.append(f"events: {doc.get('events', 0)}")
    if doc.get("shards"):
        head.append(f"shards: {doc['shards']}")
    lines = ["  ".join(head)]
    for title in ("counters", "gauges"):
        if doc.get(title):
            lines += _metric_rows(title, doc[title])
    spans = doc.get("spans") or {}
    if spans:
        lines += ["", "spans:"]
        width = max(max(len(n) for n in spans), len("name"))
        lines.append(f"  {'name':<{width}}  {'count':>5}  {'total':>10}")
        for name in sorted(spans):
            agg = spans[name]
            lines.append(
                f"  {name:<{width}}  {agg['count']:>5}  "
                f"{agg['total_us'] / 1000.0:>8.2f}ms"
            )
    return "\n".join(lines)


def trace_stats_json(doc) -> str:
    """The stats document as deterministic JSON (``--format json``)."""
    return json.dumps(doc, indent=2, sort_keys=True)


def journal_stats_text(summary) -> str:
    """A record-journal summary (``repro stats RUN.journal``) as text.

    The look-before-you-resume view of a dead run: how many cells each
    scenario has journaled, how many a ``--resume`` would still compute.

    Example::

        >>> print(journal_stats_text({
        ...     "journal": "t.journal", "campaign": "tiny", "system": "lumi",
        ...     "engine": "compiled", "manifest_digest": "ab12", "resumes": 1,
        ...     "truncated_tail": False, "cells_done": 3, "cells_planned": 4,
        ...     "scenarios": {"none": {"planned": 4, "done": 3, "records": 96,
        ...                            "remaining": 1}}}))
        journal: t.journal  campaign: tiny (lumi, compiled)  digest: ab12
        cells: 3/4 done, 1 remaining  resumes: 1
        <BLANKLINE>
        scenario      done  planned  remaining  records
        none             3        4          1       96
    """
    lines = [
        f"journal: {summary['journal']}  campaign: {summary['campaign']} "
        f"({summary['system']}, {summary['engine']})  "
        f"digest: {summary['manifest_digest']}",
        f"cells: {summary['cells_done']}/{summary['cells_planned']} done, "
        f"{summary['cells_planned'] - summary['cells_done']} remaining  "
        f"resumes: {summary['resumes']}"
        + ("  (torn tail dropped)" if summary["truncated_tail"] else ""),
    ]
    scenarios = summary["scenarios"]
    if scenarios:
        width = max(max(len(n) for n in scenarios), len("scenario"))
        lines += [
            "",
            f"{'scenario':<{width}}  {'done':>4}  {'planned':>7}  "
            f"{'remaining':>9}  {'records':>7}",
        ]
        for name in sorted(scenarios):
            row = scenarios[name]
            lines.append(
                f"{name:<{width}}  {row['done']:>4}  {row['planned']:>7}  "
                f"{row['remaining']:>9}  {row['records']:>7}"
            )
    return "\n".join(lines)


# -- schedules ---------------------------------------------------------------


def _segments(buf: str, segs) -> str:
    body = ",".join(f"{lo}:{hi}" for lo, hi in segs)
    return f"{buf}[{body}]"


def _transfer_line(t: Transfer) -> str:
    op = f" (op={t.op})" if t.op else ""
    tag = f"  #{t.tag}" if t.tag else ""
    return (
        f"    {t.src:>5} -> {t.dst:<5} "
        f"{_segments(t.src_buf, t.src_segments)} -> "
        f"{_segments(t.dst_buf, t.dst_segments)}{op}{tag}"
    )


def schedule_report(
    schedule: Schedule,
    collective: str,
    algorithm: str,
    max_steps: int = 12,
    max_transfers: int = 4,
) -> str:
    """Pretty-print one schedule: meta, per-step transfer digest.

    ``max_steps`` / ``max_transfers`` truncate the listing (a 1024-rank
    butterfly has thousands of transfers); truncation is always announced.

    Example::

        >>> from repro.collectives.registry import build
        >>> print(schedule_report(build("bcast", "bine", 4, 4),
        ...                       "bcast", "bine").splitlines()[0])
        schedule bcast/bine: p=4, 2 steps, 12 elements on the wire
    """
    lines = [
        f"schedule {collective}/{algorithm}: p={schedule.p}, "
        f"{schedule.num_steps} steps, "
        f"{schedule.total_comm_elems()} elements on the wire"
    ]
    meta = {k: v for k, v in schedule.meta.items()}
    if meta:
        lines.append(f"meta: {meta}")
    lines.append(
        f"max per-rank send volume: {schedule.max_rank_send_elems()} elements"
    )
    for i, step in enumerate(schedule.steps):
        if i == max_steps:
            lines.append(f"... ({schedule.num_steps - max_steps} more steps)")
            break
        label = f" [{step.label}]" if step.label else ""
        segs = max((t.num_segments for t in step.transfers), default=0)
        lines.append(
            f"step {i}{label}: {len(step.transfers)} transfers, "
            f"{len(step.pre)} pre / {len(step.post)} post copies, "
            f"max {segs} wire segments"
        )
        for j, t in enumerate(step.transfers):
            if j == max_transfers:
                lines.append(
                    f"    ... ({len(step.transfers) - max_transfers} more)"
                )
                break
            lines.append(_transfer_line(t))
    return "\n".join(lines)


# -- registry catalog --------------------------------------------------------


def _system_rows() -> list[dict]:
    rows = []
    for name in sorted(ALL_SYSTEMS):
        preset = ALL_SYSTEMS[name]()
        topo = preset.build_topology()
        rows.append(
            {
                "system": name,
                "topology": type(topo).__name__,
                "nodes": topo.num_nodes,
                "groups": topo.num_groups,
                "node_counts": list(preset.node_counts),
                "notes": preset.notes,
            }
        )
    return rows


def catalog_dict(
    collective: str | None = None, family: str | None = None
) -> dict:
    """The registry as one JSON-ready dict (``repro list --json``).

    ``collective``/``family`` filter the ``algorithms`` entry; the
    systems/collectives/families inventory always shows the full space.

    Example::

        >>> sorted(catalog_dict())
        ['algorithms', 'collectives', 'families', 'systems']
        >>> {a["collective"] for a in catalog_dict("alltoall")["algorithms"]}
        {'alltoall'}
    """
    return {
        "systems": _system_rows(),
        "collectives": list(COLLECTIVES),
        "families": families(),
        "algorithms": [
            {
                "collective": s.collective,
                "name": s.name,
                "family": s.family,
                "constraints": list(s.constraints),
                "description": s.description,
            }
            for s in iter_specs(collective, family)
        ],
    }


def algorithms_text(
    collective: str | None = None, family: str | None = None
) -> str:
    """Grouped plain-text catalog (default ``repro list`` output).

    Example::

        >>> algorithms_text("alltoall").splitlines()[0]
        'alltoall:'
    """
    specs = iter_specs(collective, family)
    if not specs:
        return "no matching algorithms"
    lines: list[str] = []
    current = None
    for s in specs:
        if s.collective != current:
            if current is not None:
                lines.append("")
            current = s.collective
            lines.append(f"{s.collective}:")
        cons = f"  [{'; '.join(s.constraints)}]" if s.constraints else ""
        lines.append(f"  {s.name:<24} {s.family:<9} {s.description}{cons}")
    return "\n".join(lines)


def algorithms_markdown() -> str:
    """The full Markdown catalog — the exact content of ``docs/algorithms.md``.

    Generated artifact: regenerate with
    ``python -m repro list --markdown > docs/algorithms.md``; the
    doc-freshness test (``tests/test_docs.py``) fails when the committed
    copy drifts from this function's output.
    """
    specs = iter_specs()
    lines = [
        "# Algorithm catalog",
        "",
        "<!-- GENERATED FILE — do not edit by hand.",
        "     Regenerate with: python -m repro list --markdown > docs/algorithms.md -->",
        "",
        f"{len(specs)} registered algorithms across {len(COLLECTIVES)} "
        f"collectives, grouped by family "
        f"({', '.join(f'`{f}`' for f in families())}).",
        "Families feed the paper's \"Bine vs binomial\" (Tables 3–5) and "
        "\"Bine vs best state-of-the-art\" (Figs. 9–11) summaries.",
        "",
        "## Systems",
        "",
        "| System | Topology | Nodes | Groups | Node counts swept | Notes |",
        "|---|---|---:|---:|---|---|",
    ]
    for row in _system_rows():
        counts = ", ".join(str(c) for c in row["node_counts"])
        lines.append(
            f"| `{row['system']}` | {row['topology']} | {row['nodes']} "
            f"| {row['groups']} | {counts} | {row['notes']} |"
        )
    for coll in COLLECTIVES:
        lines += [
            "",
            f"## {coll}",
            "",
            "| Algorithm | Family | Constraints | Description |",
            "|---|---|---|---|",
        ]
        for s in iter_specs(coll):
            cons = "; ".join(s.constraints) if s.constraints else "—"
            lines.append(
                f"| `{s.name}` | {s.family} | {cons} | {s.description} |"
            )
    return "\n".join(lines)
