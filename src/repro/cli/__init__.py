"""Command-line interface: ``python -m repro`` / the ``repro`` script.

One driveable front door over the whole library, mirroring how PICO (the
paper's benchmarking framework) and classic collective auto-tuners expose
their algorithm space:

* ``repro list``     — the registry catalog: systems, collectives, 30+
  algorithms with families and constraints (``--markdown`` renders
  ``docs/algorithms.md``);
* ``repro schedule`` — build + validate + pretty-print one schedule;
* ``repro sweep``    — one grid over a system, wrapping
  :func:`repro.analysis.sweep.sweep_system` with ``--workers`` /
  ``--disk-cache`` and JSON/CSV/Markdown output;
* ``repro bench``    — discover and run the ``benchmarks/bench_*.py``
  reproduction scripts;
* ``repro campaign`` — run a declarative TOML/JSON manifest (see
  ``campaigns/``) reproducing a whole paper table in one command;
* ``repro verify``   — bulk-run the executor oracle over a
  collective/algorithm/p grid;
* ``repro plot``     — render a campaign as byte-deterministic SVG
  figures plus an artifact index (:mod:`repro.report`);
* ``repro compare``  — diff two record sets cell by cell; the baseline
  regression gate (exit 1 on drift).

Example::

    >>> from repro.cli import main
    >>> main(["list", "--collective", "alltoall"])  # doctest: +SKIP
    0
"""

from repro.cli.main import main

__all__ = ["main"]
