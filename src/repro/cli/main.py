"""Argument wiring for the ``repro`` CLI.

:func:`main` builds the parser, dispatches to :mod:`repro.cli.commands`,
and returns a process exit code.  Install exposes it as the ``repro``
console script; ``python -m repro`` reaches it via :mod:`repro.__main__`.

Exit codes (:data:`EXIT_CODES`): 0 success; 1 drift / verify failure;
2 usage or domain error; 3 invalid fault spec; 4 partitioned topology;
5 corrupted profile-cache entry surfaced as an error; 6 worker shard
failure with fallback disabled; 7 corrupted or mismatched decision-table
artifact; 8 DES engine error (timeline on a non-DES engine or on an
analytic-only cell) — also returned, with complete record output, when a
timeline stalled at least one flow mid-run; 9 graceful drain — a
journaled campaign stopped at a cell boundary after SIGINT/SIGTERM with
its progress flushed (resume with ``--resume``); 10 unusable record
journal (corrupt beyond the torn tail, or sealed for a different
campaign); 130 immediate interrupt (``KeyboardInterrupt`` / second
signal).  Bench runs pass through pytest's code.

Example::

    >>> main(["list", "--json", "--output", "/tmp/catalog.json"])  # doctest: +SKIP
    0
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import obs
from repro.cli import commands
from repro.runtime.errors import (
    CacheCorruptionError,
    DESEngineError,
    FaultSpecError,
    InterruptedRunError,
    JournalError,
    TopologyPartitionedError,
    TuneArtifactError,
    WorkerShardError,
)

__all__ = ["main", "build_parser", "EXIT_CODES"]

#: one distinct nonzero exit code per runtime failure class, so scripted
#: campaign drivers can tell "bad --faults string" from "fabric cut in two"
EXIT_CODES: dict[type[Exception], int] = {
    FaultSpecError: 3,
    TopologyPartitionedError: 4,
    CacheCorruptionError: 5,
    WorkerShardError: 6,
    TuneArtifactError: 7,
    DESEngineError: 8,
    InterruptedRunError: 9,
    JournalError: 10,
}

#: exit code for a run whose records include stalled DES cells (the run
#: itself completed and produced full output)
STALLED_EXIT = 8


def _int_list(text: str) -> tuple[int, ...]:
    """Parse ``16,64,256`` into a tuple of ints (argparse type)."""
    try:
        values = tuple(int(x) for x in text.split(",") if x)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _add_output(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the result here instead of stdout",
    )


def _add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome-trace-event JSON of this run to FILE (open in "
        "Perfetto) plus a <stem>.stats.json metrics sidecar; records stay "
        "byte-identical with tracing on or off (REPRO_TRACE sets the path "
        "when this flag is omitted; see docs/observability.md)",
    )


def _add_execution_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, metavar="N",
        help="shard (collective, p) cells over N worker processes; "
        "records are identical to a serial run",
    )
    _add_trace(parser)
    parser.add_argument(
        "--disk-cache", metavar="DIR",
        help="persist schedule profiles under DIR across runs "
        "(delete DIR to force a cold rebuild)",
    )
    parser.add_argument(
        "--profile-engine", choices=("compiled", "python", "des"), default=None,
        help="profiling/evaluation backend: compiled (vectorized transfer "
        "tables + CSR routes + grid evaluation, the default), python "
        "(scalar reference; bit-identical to compiled), or des (discrete-"
        "event fabric simulation — required for --timeline, bit-identical "
        "to compiled when no timeline perturbs the run) "
        "(REPRO_PROFILE_ENGINE sets the default when this flag is omitted)",
    )


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", action="append", metavar="SPEC", default=None,
        help="degraded-fabric scenario, e.g. 'links=2,seed=13' or "
        "'links=1,global=0.5' ('none' for the pristine fabric); repeat "
        "the flag to run several scenarios in one invocation — overrides "
        "a manifest's [[faults]] list (see docs/robustness.md)",
    )
    parser.add_argument(
        "--timeline", metavar="TL", default=None,
        help="mid-run fault timeline applied to every scenario, e.g. "
        "'at=0.001:links=2,seed=5;at=0.01:heal=links'; requires "
        "--profile-engine des (see docs/robustness.md for the grammar)",
    )


def _add_record_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=("summary", "summary-json", "table", "json", "csv", "markdown"),
        default="summary",
        help="summary: paper-style duel table (summary-json: same rows as "
        "JSON); table: aligned records; json/csv/markdown: machine-readable "
        "records (default: summary)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser (exposed for docs and tests).

    Example::

        >>> build_parser().parse_args(["schedule", "bcast", "bine"]).ranks
        16
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Drive the Bine-trees reproduction: inspect the algorithm "
        "registry, build schedules, run sweeps and paper campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    # list
    p = sub.add_parser(
        "list",
        help="catalog of systems, collectives and registered algorithms",
        description="Print the registry catalog. --markdown emits the exact "
        "content of docs/algorithms.md; --json a machine-readable catalog.",
    )
    p.add_argument("--collective", help="only this collective (e.g. allreduce)")
    p.add_argument("--family", help="only this family (e.g. bine)")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--markdown", action="store_true",
                      help="full Markdown catalog (docs/algorithms.md)")
    mode.add_argument("--json", action="store_true",
                      help="JSON catalog for tooling")
    _add_output(p)
    p.set_defaults(func=commands.cmd_list)

    # schedule
    p = sub.add_parser(
        "schedule",
        help="build + validate + pretty-print one collective schedule",
        description="Build one schedule from the registry (validation on by "
        "default; REPRO_VALIDATE=0 disables) and print a step-by-step digest.",
    )
    p.add_argument("collective", help="e.g. allreduce (see `repro list`)")
    p.add_argument("algorithm", help="e.g. bine-rsag (see `repro list`)")
    p.add_argument("-p", "--ranks", type=int, default=16,
                   help="number of ranks (default: 16)")
    p.add_argument("-n", "--elems", type=int,
                   help="vector elements per rank (default: same as --ranks)")
    p.add_argument("--root", type=int, default=0,
                   help="root rank for rooted collectives (default: 0)")
    p.add_argument("--op", default="sum",
                   help="reduction op for reducing collectives (default: sum)")
    p.add_argument("--verify", action="store_true",
                   help="execute on NumPy buffers and check the ground truth")
    p.add_argument("--max-steps", type=int, default=12,
                   help="steps to print before truncating (default: 12)")
    p.add_argument("--max-transfers", type=int, default=4,
                   help="transfers per step to print (default: 4)")
    _add_output(p)
    p.set_defaults(func=commands.cmd_schedule)

    # sweep
    p = sub.add_parser(
        "sweep",
        help="evaluate algorithms over one (nodes x sizes) grid of a system",
        description="Wrap sweep_system: profile every applicable algorithm "
        "once per (collective, p), evaluate at every vector size, and render "
        "records or the paper-style duel summary.",
    )
    p.add_argument("--system", required=True,
                   help="system preset: lumi, leonardo, marenostrum5, fugaku")
    p.add_argument("--collective", action="append", metavar="NAME",
                   help="collective to sweep (repeatable; default: all eight)")
    p.add_argument("--algorithm", action="append", metavar="NAME",
                   help="restrict to these algorithm names (repeatable)")
    p.add_argument("--nodes", type=_int_list, metavar="P1,P2,...",
                   help="rank counts (default: the system preset's grid)")
    p.add_argument("--sizes", type=_int_list, metavar="B1,B2,...",
                   help="vector sizes in bytes (default: 32B...512MiB)")
    p.add_argument("--placement", choices=("scheduler", "block"),
                   default="scheduler",
                   help="scheduler: sampled fragmented allocation (paper); "
                   "block: idealised group-aligned mapping")
    p.add_argument("--seed", type=int, default=7,
                   help="allocation-sampler seed (default: 7)")
    p.add_argument("--busy-fraction", type=float, default=0.55,
                   help="sampler load factor (default: 0.55)")
    p.add_argument("--ppn", type=int, default=1,
                   help="ranks per node (default: 1)")
    p.add_argument("--family", default="bine",
                   help="summary: family whose wins are counted (default: bine)")
    p.add_argument("--baseline", default="binomial",
                   help="summary: family to duel against (default: binomial)")
    _add_faults(p)
    _add_execution_knobs(p)
    _add_record_format(p)
    _add_output(p)
    p.set_defaults(func=commands.cmd_sweep)

    # verify
    p = sub.add_parser(
        "verify",
        help="bulk-run the executor oracle over a collective/algorithm grid",
        description="Execute every registered algorithm's schedule on NumPy "
        "buffers and check the collective's post-condition, cell by cell. "
        "The compiled engine batches all seeds through one columnar plan "
        "per cell; 'both' additionally cross-checks compiled against the "
        "reference executor bit for bit.  Exit code 1 if any cell fails.",
    )
    p.add_argument("--collective", action="append", metavar="NAME",
                   help="collective to verify (repeatable; default: all eight)")
    p.add_argument("--algorithm", action="append", metavar="NAME",
                   help="restrict to these algorithm names (repeatable)")
    p.add_argument("--nodes", type=_int_list, metavar="P1,P2,...",
                   help="rank counts (default: 4,8,16,17,32; --quick: 4,8)")
    p.add_argument("--elems-per-rank", type=int, default=4, metavar="K",
                   help="vector elements per rank, n = K*p (default: 4)")
    p.add_argument("--seeds", type=_int_list, metavar="S1,S2,...",
                   help="input seeds per cell (default: 0,1; --quick: 0)")
    p.add_argument("--engine", choices=("compiled", "reference", "both"),
                   default="compiled",
                   help="compiled: batched columnar plans (default); "
                   "reference: interpreted executor; both: cross-check")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke grid: p=4,8 and one seed unless overridden")
    p.add_argument("--workers", type=int, metavar="N",
                   help="shard cells over N worker processes")
    _add_trace(p)
    p.add_argument("--format",
                   choices=("summary", "table", "json", "markdown"),
                   default="summary",
                   help="summary: per-collective roll-up (default); "
                   "table/json/markdown: one row per cell")
    _add_output(p)
    p.set_defaults(func=commands.cmd_verify)

    # bench
    p = sub.add_parser(
        "bench",
        help="discover and run the benchmarks/bench_*.py paper scripts",
        description="Run reproduction scripts via pytest in a subprocess. "
        "Patterns select scripts by filename substring (e.g. 'table3', "
        "'fig09').",
    )
    p.add_argument("patterns", nargs="*",
                   help="substring filters on bench script names")
    p.add_argument("--list", action="store_true",
                   help="list matching scripts instead of running them")
    p.set_defaults(func=commands.cmd_bench)

    # plot
    p = sub.add_parser(
        "plot",
        help="render campaign figures (SVG heatmaps + boxplots) to a directory",
        description="Render the Fig. 9a/10a-style best-algorithm heatmap per "
        "collective and the Fig. 9b-style Bine-improvement boxplot, plus an "
        "index.md/index.html artifact manifest linking every figure to its "
        "source, seed and record digest.  Output is byte-deterministic: the "
        "same records always produce the same SVG bytes.",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--manifest", metavar="FILE",
                     help="campaign manifest to run and plot (TOML/JSON)")
    src.add_argument("--records", metavar="FILE",
                     help="sweep records JSON (from `repro sweep/campaign "
                     "--format json`) to plot without re-running")
    p.add_argument("--out", required=True, metavar="DIR",
                   help="directory for the SVG figures and the artifact index")
    p.add_argument("--collective", action="append", metavar="NAME",
                   help="only plot these collectives (repeatable)")
    p.add_argument("--nodes", type=_int_list, metavar="P1,P2,...",
                   help="restrict the grid to these rank counts")
    p.add_argument("--sizes", type=_int_list, metavar="B1,B2,...",
                   help="restrict the grid to these vector sizes (bytes)")
    _add_faults(p)
    _add_execution_knobs(p)
    p.set_defaults(func=commands.cmd_plot)

    # compare
    p = sub.add_parser(
        "compare",
        help="diff two record sets cell by cell (baseline regression gate)",
        description="Align two record sets by cell identity and classify "
        "added/removed/changed cells under a relative tolerance.  Operands "
        "are records/baseline JSON files (sweep records, verify records, or "
        "BENCH_*.json metric blobs) or campaign manifests, which are rerun — "
        "`repro compare baseline.json campaigns/x.toml` is the regression "
        "gate.  Exit code 1 when anything drifted.",
    )
    p.add_argument("ref", help="reference: records/baseline JSON or a manifest")
    p.add_argument("candidate", help="candidate: records JSON or a manifest")
    p.add_argument("--tolerance", type=float, default=1e-9, metavar="REL",
                   help="relative drift tolerance per numeric field "
                   "(default: 1e-9, i.e. bit-stable reruns)")
    p.add_argument("--update", action="store_true",
                   help="freeze CANDIDATE (a campaign manifest) into REF as "
                   "the new baseline instead of comparing")
    p.add_argument("--format",
                   choices=("summary", "table", "json", "markdown"),
                   default="summary",
                   help="summary: verdict + drifted cells (default); "
                   "table/json/markdown: one row per drifted cell")
    _add_faults(p)
    _add_execution_knobs(p)
    _add_output(p)
    p.set_defaults(func=commands.cmd_compare)

    # tune
    p = sub.add_parser(
        "tune",
        help="compile sweep records into a decision-table artifact and query it",
        description="Build the algorithm-selection oracle: run (or load) "
        "sweep records and freeze the per-(system, faults, collective, ppn) "
        "winner grids into a versioned, digest-sealed JSON artifact, then "
        "answer selection queries against it (see docs/tuning.md).  SOURCE "
        "is a campaign manifest (rerun), a sweep-records JSON, or an "
        "existing decision-table JSON.  Exit code 7 marks a corrupted or "
        "mismatched artifact.",
    )
    p.add_argument("source",
                   help="manifest (.toml/.json), sweep-records JSON, or "
                   "decision-table JSON")
    p.add_argument("--name", metavar="NAME",
                   help="table name stamped into the artifact "
                   "(default: manifest/file name)")
    p.add_argument("--collective", action="append", metavar="NAME",
                   help="restrict a manifest run to these collectives "
                   "(repeatable)")
    p.add_argument("--nodes", type=_int_list, metavar="P1,P2,...",
                   help="restrict a manifest run to these rank counts")
    p.add_argument("--sizes", type=_int_list, metavar="B1,B2,...",
                   help="restrict a manifest run to these vector sizes (bytes)")
    p.add_argument("--query", action="append", metavar="Q",
                   help="selection query 'collective=bcast,p=16,n=1024"
                   "[,system=...,ppn=...,faults=...]' (repeatable)")
    p.add_argument("--policy", choices=("exact", "nearest", "refuse"),
                   default="exact",
                   help="off-grid query policy: exact errors, nearest snaps "
                   "in log2 space, refuse answers None (default: exact)")
    _add_faults(p)
    _add_execution_knobs(p)
    _add_output(p)
    p.set_defaults(func=commands.cmd_tune)

    # campaign
    p = sub.add_parser(
        "campaign",
        help="run a declarative TOML/JSON campaign manifest",
        description="Run every grid of a campaign manifest against one "
        "shared profile cache (see campaigns/*.toml for the Table 3/4/5 "
        "reproductions).",
    )
    p.add_argument("manifest", help="path to a .toml or .json manifest")
    p.add_argument(
        "--journal", metavar="DIR", default=None,
        help="stream every finished cell into a crash-safe record journal "
        "under DIR; SIGINT/SIGTERM then drain gracefully (exit 9) instead "
        "of losing progress (see docs/robustness.md)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume a dead journaled run: skip already-journaled cells "
        "and reproduce the uninterrupted result byte for byte "
        "(requires --journal)",
    )
    _add_faults(p)
    _add_execution_knobs(p)
    _add_record_format(p)
    _add_output(p)
    p.set_defaults(func=commands.cmd_campaign)

    # stats
    p = sub.add_parser(
        "stats",
        help="summarize a trace/stats/journal file, or inspect memo caches",
        description="Post-run observability: FILE is a Chrome trace written "
        "by --trace/REPRO_TRACE, its .stats.json sidecar, or a record "
        "journal written by `repro campaign --journal`; prints counter "
        "totals and per-span aggregates (for a journal: cells done/remaining "
        "per scenario and the resume count).  --validate checks a trace "
        "against the documented schema, or a journal's CRC seals (exit 1 / "
        "exit 10 on violations); --caches prints the current size of every "
        "registered memo cache instead.",
    )
    p.add_argument("file", nargs="?", metavar="FILE",
                   help="trace JSON, .stats.json sidecar, or record journal "
                   "to summarize")
    p.add_argument("--caches", action="store_true",
                   help="print live memo-cache sizes (memo_cache_sizes()) "
                   "instead of reading a file")
    p.add_argument("--validate", action="store_true",
                   help="check FILE (a trace) against the trace-event "
                   "schema; exit 1 and list violations when unsound")
    p.add_argument("--format", choices=("table", "json"), default="table",
                   help="table: aligned text (default); json: raw dict")
    _add_output(p)
    p.set_defaults(func=commands.cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro`` / ``python -m repro``; returns exit code."""
    args = build_parser().parse_args(argv)
    # --trace FILE (or REPRO_TRACE) wraps the whole command in a trace
    # session; commands without the knob (list, schedule, stats, ...) never
    # trace, so `repro stats` can't clobber the file it is reading
    trace_path = getattr(args, "trace", None) if hasattr(args, "trace") else None
    if trace_path is None and hasattr(args, "trace"):
        trace_path = os.environ.get(obs.TRACE_ENV) or None
    try:
        if trace_path:
            with obs.trace_session(trace_path):
                code = args.func(args)
            print(
                f"# trace: wrote {trace_path} and "
                f"{obs.sidecar_path(trace_path)}",
                file=sys.stderr,
            )
            return code
        return args.func(args)
    except tuple(EXIT_CODES) as exc:
        # single-line diagnostic naming the failure class, then the
        # class-specific exit code — campaign drivers branch on it
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        for cls, code in EXIT_CODES.items():
            if isinstance(exc, cls):
                return code
        raise AssertionError("unreachable")  # pragma: no cover
    except KeyboardInterrupt:
        # an unjournaled ^C (or the second signal of a drain) — the
        # conventional 128+SIGINT code, distinct from graceful drain's 9
        print("interrupted", file=sys.stderr)
        return 130
