"""Declarative campaign manifests (TOML or JSON).

A manifest describes one measurement campaign the way the paper runs one:
a single system, a shared placement/seed/busy-fraction context, and one or
more ``(collectives × node counts × vector sizes)`` grids evaluated against
the *same* profile cache (Leonardo's Table 4, for example, sweeps all
collectives to 256 nodes plus allreduce/allgather to 2048 in a second
grid).  ``campaigns/*.toml`` at the repo root reproduce Tables 3–5.

Schema (TOML shown; JSON mirrors it)::

    [campaign]
    name = "table3-lumi"            # required
    system = "lumi"                 # required, a repro.systems preset
    description = "..."             # optional
    placement = "scheduler"         # optional (scheduler | block)
    seed = 7                        # optional allocation-sampler seed
    busy_fraction = 0.55            # optional sampler load factor
    engine = "des"                  # optional profile engine (python |
                                    # compiled | des); --profile-engine
                                    # overrides; required ("des") when any
                                    # [[faults]] entry has a timeline

    [[grid]]                        # one or more
    collectives = ["bcast", ...]    # required
    node_counts = [16, 64]          # required (unless torus_dims is set)
    vector_bytes = "paper"          # optional: "paper", or a list of ints;
                                    # omitted → the system preset's grid
    algorithms = ["bine", ...]      # optional registry-name filter
    ppn = 1                         # optional ranks per node
    torus_dims = [8, 8, 8]          # optional: run this grid on a sub-torus
                                    # through the torus algorithm catalog
                                    # (fugaku only, placement = "block";
                                    # node count = prod(dims))
    [grid.max_p]                    # optional per-collective rank cap
    alltoall = 256

    [summary]                       # optional paper-style duel table
    family = "bine"                 # optional, default "bine"
    baseline = "binomial"           # optional, default "binomial"
    [summary.baseline_overrides]    # optional per-collective baselines
    alltoall = "bruck"

    [[faults]]                      # optional fault scenarios; every grid
    failed_links = 2                # runs once per scenario, records tagged
    seed = 13                       # with the scenario label ("none" when
    [faults.derate]                 # the table is empty = pristine fabric)
    global = 0.5

    [[faults]]                      # mid-run fault timeline (DES engine
    timeline = "at=0.001:links=2,seed=5;at=0.01:heal=links"
    failed_links = 1                # only); composes with static damage
    seed = 13                       # (see docs/robustness.md)

Example::

    >>> m = manifest_from_dict({
    ...     "campaign": {"name": "tiny", "system": "lumi"},
    ...     "grid": [{"collectives": ["bcast"], "node_counts": [16]}],
    ... })
    >>> m.grids[0].collectives
    ('bcast',)
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.collectives.registry import COLLECTIVES, families, iter_specs
from repro.faults import FaultSpec
from repro.runtime.errors import FaultSpecError
from repro.systems import ALL_SYSTEMS
from repro.systems.presets import PAPER_VECTOR_BYTES

__all__ = [
    "GridSpec",
    "SummarySpec",
    "CampaignManifest",
    "ManifestError",
    "load_manifest",
    "manifest_from_dict",
    "manifest_to_dict",
    "dump_manifest",
]


class ManifestError(ValueError):
    """A campaign manifest failed validation."""


@dataclass(frozen=True)
class GridSpec:
    """One ``collectives × node_counts × vector_bytes`` block of a campaign."""

    collectives: tuple[str, ...]
    node_counts: tuple[int, ...]
    #: ``None`` → use the system preset's vector grid
    vector_bytes: tuple[int, ...] | None = None
    #: ``None`` → every registered algorithm
    algorithms: tuple[str, ...] | None = None
    ppn: int = 1
    #: per-collective rank-count cap (the Θ(p²) alltoall escape hatch)
    max_p: dict[str, int] | None = None
    #: set → run this grid on a sub-torus through the torus catalog
    #: (:data:`repro.collectives.torus.TORUS_ALGORITHMS`) instead of the
    #: generic registry; Fig. 11b / App. D grids
    torus_dims: tuple[int, ...] | None = None


@dataclass(frozen=True)
class SummarySpec:
    """Paper-style family duel rendered after the sweep."""

    family: str = "bine"
    baseline: str = "binomial"
    baseline_overrides: dict[str, str] = field(default_factory=dict)

    def baseline_for(self, collective: str) -> str:
        return self.baseline_overrides.get(collective, self.baseline)


@dataclass(frozen=True)
class CampaignManifest:
    """A fully validated campaign description."""

    name: str
    system: str
    grids: tuple[GridSpec, ...]
    description: str = ""
    placement: str = "scheduler"
    seed: int = 7
    busy_fraction: float = 0.55
    summary: SummarySpec | None = None
    #: fault scenarios; every grid runs once per scenario (empty → pristine)
    faults: tuple[FaultSpec, ...] = ()
    #: profile engine the campaign declares (None → resolver default);
    #: the CLI's --profile-engine flag overrides it
    engine: str | None = None

    def collectives(self) -> tuple[str, ...]:
        """Campaign collectives in first-appearance order across grids."""
        seen: dict[str, None] = {}
        for grid in self.grids:
            for coll in grid.collectives:
                seen.setdefault(coll)
        return tuple(seen)


def _require(data: dict, key: str, where: str):
    if key not in data:
        raise ManifestError(f"{where}: missing required key {key!r}")
    return data[key]


def _check_keys(data: dict, allowed: set[str], where: str) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise ManifestError(
            f"{where}: unknown key(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


def _int_tuple(values, where: str) -> tuple[int, ...]:
    # reject strings explicitly: iterating "16" would yield (1, 6)
    if isinstance(values, (str, bytes)):
        raise ManifestError(f"{where}: expected a list of integers, got a string")
    try:
        out = tuple(int(v) for v in values)
    except (TypeError, ValueError):
        raise ManifestError(f"{where}: expected a list of integers") from None
    if not out or any(v <= 0 for v in out):
        raise ManifestError(f"{where}: needs at least one positive integer")
    return out


def _torus_grid_checks(
    data: dict, collectives: tuple[str, ...], system: str, where: str
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Validate a ``torus_dims`` grid; returns (dims, node_counts)."""
    from repro.collectives.torus import torus_specs
    from repro.core.torus_opt import TorusShape

    if system != "fugaku":
        raise ManifestError(
            f"{where}: torus_dims grids run on the torus system preset "
            f"(system = \"fugaku\"), not {system!r}"
        )
    if data.get("max_p") is not None or int(data.get("ppn", 1)) != 1:
        raise ManifestError(f"{where}: torus_dims grids take neither max_p nor ppn")
    dims = _int_tuple(data["torus_dims"], f"{where}.torus_dims")
    try:
        shape = TorusShape(dims)
    except ValueError as exc:
        raise ManifestError(f"{where}.torus_dims: {exc}") from None
    no_algo = [c for c in collectives if not torus_specs((c,))]
    if no_algo:
        known = sorted({s.collective for s in torus_specs()})
        raise ManifestError(
            f"{where}: no torus algorithm for collective(s) {no_algo}; "
            f"torus catalog covers {known}"
        )
    node_counts = data.get("node_counts")
    if node_counts is not None:
        node_counts = _int_tuple(node_counts, f"{where}.node_counts")
        if node_counts != (shape.num_ranks,):
            raise ManifestError(
                f"{where}: node_counts {list(node_counts)} contradicts "
                f"torus_dims {list(dims)} (= {shape.num_ranks} ranks); "
                "omit node_counts for torus grids"
            )
    return dims, (shape.num_ranks,)


def _grid_from_dict(data: dict, where: str, system: str) -> GridSpec:
    _check_keys(
        data,
        {"collectives", "node_counts", "vector_bytes", "algorithms", "ppn",
         "max_p", "torus_dims"},
        where,
    )
    collectives = tuple(_require(data, "collectives", where))
    if not collectives:
        raise ManifestError(f"{where}: needs at least one collective")
    bad = [c for c in collectives if c not in COLLECTIVES]
    if bad:
        raise ManifestError(f"{where}: unknown collective(s) {bad}; have {list(COLLECTIVES)}")
    torus_dims = None
    if data.get("torus_dims") is not None:
        torus_dims, node_counts = _torus_grid_checks(data, collectives, system, where)
    else:
        node_counts = _int_tuple(
            _require(data, "node_counts", where), f"{where}.node_counts"
        )
    vector_bytes = data.get("vector_bytes")
    if vector_bytes == "paper":
        vector_bytes = PAPER_VECTOR_BYTES
    elif vector_bytes is not None:
        vector_bytes = _int_tuple(vector_bytes, f"{where}.vector_bytes")
    algorithms = data.get("algorithms")
    if algorithms is not None:
        algorithms = tuple(str(a) for a in algorithms)
        if torus_dims is not None:
            from repro.collectives.torus import torus_specs

            known = {s.name for s in torus_specs(collectives)}
        else:
            known = {s.name for c in collectives for s in iter_specs(c)}
        bad = [a for a in algorithms if a not in known]
        if bad:
            raise ManifestError(
                f"{where}: unknown algorithm(s) {bad} for collectives "
                f"{list(collectives)}; have {sorted(known)}"
            )
    max_p = data.get("max_p")
    if max_p is not None:
        max_p = {str(k): int(v) for k, v in max_p.items()}
    return GridSpec(
        collectives=collectives,
        node_counts=node_counts,
        vector_bytes=vector_bytes,
        algorithms=algorithms,
        ppn=int(data.get("ppn", 1)),
        max_p=max_p,
        torus_dims=torus_dims,
    )


def manifest_from_dict(data: dict) -> CampaignManifest:
    """Validate a raw (TOML/JSON-parsed) mapping into a manifest.

    Raises :class:`ManifestError` on unknown keys, unknown systems or
    collectives, and empty/invalid grids — typos fail loudly, not as
    silently-empty campaigns.

    Example::

        >>> manifest_from_dict({
        ...     "campaign": {"name": "t", "system": "lumi"},
        ...     "grid": [{"collectives": ["bcast"], "node_counts": [16]}],
        ... }).placement
        'scheduler'
    """
    _check_keys(data, {"campaign", "grid", "summary", "faults"}, "manifest")
    camp = _require(data, "campaign", "manifest")
    _check_keys(
        camp,
        {"name", "system", "description", "placement", "seed", "busy_fraction",
         "engine"},
        "[campaign]",
    )
    system = str(_require(camp, "system", "[campaign]"))
    if system not in ALL_SYSTEMS:
        raise ManifestError(
            f"[campaign]: unknown system {system!r}; have {sorted(ALL_SYSTEMS)}"
        )
    placement = str(camp.get("placement", "scheduler"))
    if placement not in ("scheduler", "block"):
        raise ManifestError(
            f"[campaign]: unknown placement {placement!r} (scheduler | block)"
        )
    raw_grids = data.get("grid") or []
    if not raw_grids:
        raise ManifestError("manifest: needs at least one [[grid]] section")
    grids = tuple(
        _grid_from_dict(g, f"[[grid]] #{i}", system)
        for i, g in enumerate(raw_grids)
    )
    # torus sweeps always run on the canonical block mapping; accepting the
    # (default) scheduler placement would stamp provenance the records
    # don't actually have
    if placement != "block" and any(g.torus_dims is not None for g in grids):
        raise ManifestError(
            "[campaign]: torus_dims grids run on the canonical block "
            'mapping; set placement = "block"'
        )
    engine = camp.get("engine")
    if engine is not None:
        engine = str(engine)
        if engine not in ("python", "compiled", "des"):
            raise ManifestError(
                f"[campaign]: unknown engine {engine!r} "
                "(python | compiled | des)"
            )
    raw_faults = data.get("faults") or []
    faults: list[FaultSpec] = []
    for i, entry in enumerate(raw_faults):
        try:
            faults.append(FaultSpec.from_dict(entry))
        except FaultSpecError as exc:
            raise ManifestError(f"[[faults]] #{i}: {exc}") from None
    labels = [(f.label, f.timeline_label) for f in faults]
    dupes = sorted({lb for lb in labels if labels.count(lb) > 1})
    if dupes:
        raise ManifestError(
            f"[[faults]]: duplicate scenario label(s) {dupes}; records of "
            "identical scenarios would collide"
        )
    if any(not f.timeline.is_null for f in faults) and engine != "des":
        raise ManifestError(
            "[[faults]]: a timeline scenario needs [campaign] engine = "
            '"des" (the analytic engines cannot replay mid-run events)'
        )
    if faults and any(g.torus_dims is not None for g in grids):
        raise ManifestError(
            "[[faults]]: fault scenarios do not apply to torus_dims grids "
            "(a torus has no global links to fail)"
        )
    summary = None
    if "summary" in data:
        s = data["summary"]
        _check_keys(s, {"family", "baseline", "baseline_overrides"}, "[summary]")
        summary = SummarySpec(
            family=str(s.get("family", "bine")),
            baseline=str(s.get("baseline", "binomial")),
            baseline_overrides={
                str(k): str(v) for k, v in s.get("baseline_overrides", {}).items()
            },
        )
        known_families = families()
        bad = [
            f
            for f in (summary.family, summary.baseline,
                      *summary.baseline_overrides.values())
            if f not in known_families
        ]
        if bad:
            raise ManifestError(
                f"[summary]: unknown family/baseline {sorted(set(bad))}; "
                f"have {known_families}"
            )
        bad = [c for c in summary.baseline_overrides if c not in COLLECTIVES]
        if bad:
            raise ManifestError(
                f"[summary]: baseline_overrides for unknown collective(s) {bad}"
            )
    return CampaignManifest(
        name=str(_require(camp, "name", "[campaign]")),
        system=system,
        grids=grids,
        description=str(camp.get("description", "")),
        placement=placement,
        seed=int(camp.get("seed", 7)),
        busy_fraction=float(camp.get("busy_fraction", 0.55)),
        summary=summary,
        faults=tuple(faults),
        engine=engine,
    )


def load_manifest(path: str | Path) -> CampaignManifest:
    """Load and validate a ``.toml`` or ``.json`` manifest file.

    Example::

        >>> load_manifest("campaigns/table3_lumi.toml").system  # doctest: +SKIP
        'lumi'
    """
    path = Path(path)
    if path.suffix == ".toml":
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
    elif path.suffix == ".json":
        data = json.loads(path.read_text())
    else:
        raise ManifestError(f"{path}: manifest must be .toml or .json")
    try:
        return manifest_from_dict(data)
    except ManifestError as exc:
        raise ManifestError(f"{path}: {exc}") from None


def manifest_to_dict(manifest: CampaignManifest) -> dict:
    """Inverse of :func:`manifest_from_dict` (defaults written explicitly).

    Example::

        >>> m = manifest_from_dict({
        ...     "campaign": {"name": "t", "system": "lumi"},
        ...     "grid": [{"collectives": ["bcast"], "node_counts": [16]}],
        ... })
        >>> manifest_from_dict(manifest_to_dict(m)) == m
        True
    """
    data: dict = {
        "campaign": {
            "name": manifest.name,
            "system": manifest.system,
            "description": manifest.description,
            "placement": manifest.placement,
            "seed": manifest.seed,
            "busy_fraction": manifest.busy_fraction,
        },
        "grid": [],
    }
    if manifest.engine is not None:
        data["campaign"]["engine"] = manifest.engine
    for g in manifest.grids:
        grid: dict = {
            "collectives": list(g.collectives),
            "node_counts": list(g.node_counts),
            "ppn": g.ppn,
        }
        if g.vector_bytes is not None:
            grid["vector_bytes"] = list(g.vector_bytes)
        if g.algorithms is not None:
            grid["algorithms"] = list(g.algorithms)
        if g.max_p is not None:
            grid["max_p"] = dict(g.max_p)
        if g.torus_dims is not None:
            grid["torus_dims"] = list(g.torus_dims)
        data["grid"].append(grid)
    if manifest.summary is not None:
        data["summary"] = {
            "family": manifest.summary.family,
            "baseline": manifest.summary.baseline,
            "baseline_overrides": dict(manifest.summary.baseline_overrides),
        }
    if manifest.faults:
        data["faults"] = [spec.to_dict() for spec in manifest.faults]
    return data


def dump_manifest(manifest: CampaignManifest, path: str | Path) -> None:
    """Write a manifest as JSON (the stdlib has no TOML writer).

    Round-trips: ``load_manifest(p)`` after ``dump_manifest(m, p)``
    reproduces ``m`` exactly.
    """
    path = Path(path)
    if path.suffix != ".json":
        raise ManifestError(f"{path}: dump_manifest writes .json only")
    path.write_text(json.dumps(manifest_to_dict(manifest), indent=2) + "\n")
