"""Campaign orchestration: run a manifest against the sweep pipeline.

This is the layer both entry points share: ``repro campaign`` drives it
from the CLI and ``benchmarks/_shared.py`` drives it from the bench
suite, so the Table 3/4/5 reproductions are *defined* by the manifests in
``campaigns/`` rather than duplicated in scripts.  All grids of a
campaign run against one :class:`~repro.analysis.sweep.ProfileCache`
(same placement draws, shared route table), which makes the records
identical to calling :func:`~repro.analysis.sweep.sweep_system` directly
with the same arguments.

Example::

    >>> from repro.cli.manifest import manifest_from_dict
    >>> m = manifest_from_dict({
    ...     "campaign": {"name": "tiny", "system": "lumi"},
    ...     "grid": [{"collectives": ["bcast"], "node_counts": [16],
    ...               "vector_bytes": [1024], "algorithms": ["bine"]}],
    ... })
    >>> result = run_campaign(m)
    >>> [(r.algorithm, r.p) for r in result.records]
    [('bine', 16)]
"""

from __future__ import annotations

import math
import os
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro import obs
from repro.analysis.summarize import DuelSummary, family_duel
from repro.analysis.sweep import (
    ProfileCache,
    SweepRecord,
    shard_fallback_scope,
    sweep_system,
    sweep_torus,
)
from repro.checkpoint import CampaignJournal, drain_requested, drain_scope
from repro.cli.manifest import CampaignManifest
from repro.faults import FaultSpec
from repro.model.compiled import resolve_profile_engine
from repro.runtime.errors import FaultSpecError
from repro.systems import system_for

__all__ = ["CampaignResult", "run_campaign", "duel_summaries"]


def duel_summaries(
    records, collectives, family: str, baseline_for
) -> tuple[list[DuelSummary], list[str]]:
    """Family duels per collective, plus the ones with no comparable cells.

    The single summary loop behind both ``repro sweep --format summary``
    and a manifest's ``[summary]`` section: ``baseline_for(collective)``
    names the opposing family (constant for the CLI, per-collective
    overrides for manifests).

    Example::

        >>> duel_summaries([], ("bcast",), "bine", lambda c: "binomial")
        ([], ['bcast'])
    """
    duels: list[DuelSummary] = []
    skipped: list[str] = []
    for coll in collectives:
        try:
            duels.append(family_duel(records, coll, family, baseline_for(coll)))
        except ValueError:
            skipped.append(coll)  # no cell has both families
    return duels, skipped


@dataclass
class CampaignResult:
    """Everything a campaign produced: records plus optional duel rows."""

    manifest: CampaignManifest
    records: list[SweepRecord]
    summaries: list[DuelSummary] = field(default_factory=list)
    #: collectives the summary skipped for lack of comparable cells
    skipped: list[str] = field(default_factory=list)


def _torus_grid(preset, grid, engine: str, grid_journal) -> list[SweepRecord]:
    """One torus grid, journaled as a single cell when a journal is on.

    Torus sweeps build a handful of schedules and are atomic from the
    journal's point of view: the whole grid is one ``("<torus>", ranks)``
    cell — planned, drained, resumed, and chaos-ticked exactly like a
    ``(collective, p)`` sweep cell.
    """
    cell = ("<torus>", math.prod(grid.torus_dims))
    if grid_journal is not None:
        sig = drain_requested()
        if sig is not None:
            raise grid_journal.interrupted_error(sig)
        grid_journal.plan([cell])
        cached = grid_journal.lookup(*cell)
        if cached is not None:
            return cached
    records = sweep_torus(
        preset,
        grid.torus_dims,
        grid.collectives,
        vector_bytes=grid.vector_bytes,
        algorithms=grid.algorithms,
        profile_engine=engine,
    )
    if grid_journal is not None:
        grid_journal.store(cell[0], cell[1], records)
    return records


def run_campaign(
    manifest: CampaignManifest,
    *,
    workers: int | None = None,
    disk_dir: str | os.PathLike | None = None,
    cache: ProfileCache | None = None,
    profile_engine: str | None = None,
    faults: tuple[FaultSpec, ...] | None = None,
    journal: str | os.PathLike | None = None,
    resume: bool = False,
) -> CampaignResult:
    """Run every grid of ``manifest`` and, if requested, summarise.

    ``workers``, ``disk_dir`` and ``profile_engine`` are execution knobs,
    not campaign identity: any combination yields record-for-record
    identical output (parallel shards pre-sample placements in serial
    order; warm disk caches replay the cold run's profiles; the compiled
    profile engine is bit-identical to the python reference).  An explicit
    ``cache`` overrides the manifest's placement context *and* the engine —
    the bench suite uses this to share one cache across benches.

    ``faults`` overrides the manifest's ``[[faults]]`` scenario list (the
    ``--faults`` CLI flag).  Every grid runs once per scenario against a
    scenario-local :class:`ProfileCache` (same placement draws in each:
    the mapping sampler is independent of the fabric condition), and the
    records carry the scenario label.  An explicit ``cache`` only
    combines with the single pristine scenario — fault campaigns need one
    cache per degraded topology.

    The engine resolves ``profile_engine`` (the CLI flag) over the
    manifest's ``[campaign] engine`` key over the resolver default; a
    scenario with a fault timeline requires the resolved engine to be
    ``"des"`` (:class:`~repro.runtime.errors.DESEngineError` otherwise,
    CLI exit code 8).

    ``journal=DIR`` makes the run crash-safe: every completed cell is
    streamed into a write-ahead record journal under ``DIR`` (see
    :mod:`repro.checkpoint`), SIGINT/SIGTERM drain gracefully
    (:class:`~repro.runtime.errors.InterruptedRunError`, CLI exit
    code 9) instead of losing progress, and ``resume=True`` skips the
    journaled cells of a dead run — the resumed ``CampaignResult`` is
    byte-identical to an uninterrupted one.  Without ``journal`` the
    ``resume`` flag is ignored and behavior is unchanged.

    Example::

        >>> from repro.cli.manifest import load_manifest
        >>> result = run_campaign(load_manifest("campaigns/table3_lumi.toml"),
        ...                       workers=8)  # doctest: +SKIP
        >>> len(result.summaries)  # doctest: +SKIP
        8
    """
    preset = system_for(manifest.system)
    if profile_engine is None:
        profile_engine = manifest.engine
    scenarios = tuple(faults) if faults is not None else manifest.faults
    if not scenarios:
        scenarios = (FaultSpec(),)
    degraded = [s for s in scenarios if not s.is_null]
    if degraded and any(g.torus_dims is not None for g in manifest.grids):
        raise FaultSpecError(
            "fault scenarios do not apply to torus_dims grids "
            "(a torus has no global links to fail)"
        )
    if cache is not None and (len(scenarios) > 1 or degraded):
        raise ValueError(
            "an explicit cache only combines with the single pristine "
            "scenario; fault campaigns build one cache per scenario"
        )
    run_journal: CampaignJournal | None = None
    if journal is not None:
        engine_label = (
            cache.engine if cache is not None
            else resolve_profile_engine(profile_engine)
        )
        run_journal = CampaignJournal(
            journal, manifest, engine=engine_label, scenarios=scenarios,
            resume=resume,
        )
    records: list[SweepRecord] = []
    signal_ctx = drain_scope() if run_journal is not None else nullcontext()
    try:
        with shard_fallback_scope(), signal_ctx, obs.span(
            "campaign.run",
            campaign=manifest.name,
            system=manifest.system,
            scenarios=len(scenarios),
            grids=len(manifest.grids),
        ):
            for scenario in scenarios:
                scenario_cache = cache or ProfileCache(
                    preset,
                    placement=manifest.placement,
                    seed=manifest.seed,
                    busy_fraction=manifest.busy_fraction,
                    disk_dir=disk_dir,
                    profile_engine=profile_engine,
                    faults=scenario,
                )
                for g, grid in enumerate(manifest.grids):
                    grid_journal = (
                        run_journal.grid_scope(
                            scenario.label, scenario.timeline_label, g
                        )
                        if run_journal is not None else None
                    )
                    with obs.span(
                        "campaign.grid",
                        grid=g,
                        scenario=scenario.label,
                        collectives=",".join(grid.collectives),
                    ):
                        if grid.torus_dims is not None:
                            # torus grids build one schedule per catalog
                            # entry — cheap enough that the profile cache /
                            # worker knobs don't apply
                            records.extend(
                                _torus_grid(
                                    preset, grid, scenario_cache.engine,
                                    grid_journal,
                                )
                            )
                            continue
                        records.extend(
                            sweep_system(
                                preset,
                                grid.collectives,
                                node_counts=grid.node_counts,
                                vector_bytes=grid.vector_bytes,
                                algorithms=grid.algorithms,
                                max_p=grid.max_p,
                                ppn=grid.ppn,
                                cache=scenario_cache,
                                workers=workers,
                                cell_sink=grid_journal,
                            )
                        )
    finally:
        # the journal must be durable even when InterruptedRunError (or
        # anything else) is propagating — resume depends on it
        if run_journal is not None:
            run_journal.close()
    result = CampaignResult(manifest, records)
    if manifest.summary is not None:
        result.summaries, result.skipped = duel_summaries(
            records,
            manifest.collectives(),
            manifest.summary.family,
            manifest.summary.baseline_for,
        )
    return result
