"""System presets mirroring the paper's four machines (Table 2).

Each preset bundles a topology builder, a cost-parameter set with
representative (not calibrated) constants, and the node-count grid the paper
evaluates.  ``system_for(name)`` returns the preset by name.
"""

from repro.systems.presets import (
    SystemPreset,
    fugaku,
    leonardo,
    lumi,
    marenostrum5,
    system_for,
    ALL_SYSTEMS,
)

__all__ = [
    "SystemPreset",
    "lumi",
    "leonardo",
    "marenostrum5",
    "fugaku",
    "system_for",
    "ALL_SYSTEMS",
]
