"""Concrete system models for LUMI, Leonardo, MareNostrum 5 and Fugaku.

Shapes (group counts/sizes, oversubscription, torus form) come from the
paper's Sec. 5 and the systems' public documentation; bandwidth/latency
constants are representative values chosen so the *ratios* the paper's
effects depend on hold (global links slower than local, intra-node much
faster, Tofu links slowest per-port but six-way parallel).  Absolute
microseconds are not calibrated and not claimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.model.cost import CostParams, GiB
from repro.topology.base import LinkClass, Topology
from repro.topology.dragonfly import Dragonfly, DragonflyPlus
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus

__all__ = [
    "SystemPreset",
    "lumi",
    "leonardo",
    "marenostrum5",
    "fugaku",
    "system_for",
    "ALL_SYSTEMS",
]


@dataclass(frozen=True)
class SystemPreset:
    """A machine: topology factory, cost constants, evaluation grid."""

    name: str
    topology: Callable[[], Topology]
    params: CostParams
    node_counts: tuple[int, ...]
    #: vector sizes in bytes, paper grid: 32 B … 512 MiB
    vector_bytes: tuple[int, ...] = tuple(32 * 8**k for k in range(9))
    notes: str = ""

    def build_topology(self) -> Topology:
        return self.topology()


#: paper's vector grid: 32 B, 256 B, 2 KiB, 16 KiB, 128 KiB, 1 MiB, 8 MiB,
#: 64 MiB, 512 MiB (factor 8 apart)
PAPER_VECTOR_BYTES = tuple(32 * 8**k for k in range(9))


def lumi() -> SystemPreset:
    """LUMI: Slingshot Dragonfly, 24 groups × 124 nodes (Sec. 5.1)."""
    # ≈ 124 nodes × 4 NICs / 23 peer groups ≈ 21 global links per group pair
    return SystemPreset(
        name="lumi",
        topology=lambda: Dragonfly(24, 124, links_per_group_pair=21),
        params=CostParams(
            alpha=1.1e-6,
            beta={
                LinkClass.LOCAL: 1 / (25 * GiB),
                LinkClass.GLOBAL: 1 / (12 * GiB),
                LinkClass.TORUS: 1 / (6.8 * GiB),
                LinkClass.INTRA: 1 / (150 * GiB),
            },
            inj_beta=1 / (25 * GiB),
            seg_overhead=0.5e-6,
        ),
        node_counts=(16, 32, 64, 128, 256, 512, 1024),
        notes="Cray MPICH baseline selection; max job 1024 nodes",
    )


def leonardo() -> SystemPreset:
    """Leonardo: InfiniBand Dragonfly+, 23 groups × 180 nodes (Sec. 5.2)."""
    # ≈ 180 nodes × 2 NICs / 22 peer groups ≈ 16 global links per group pair
    return SystemPreset(
        name="leonardo",
        topology=lambda: DragonflyPlus(23, 180, links_per_group_pair=16),
        params=CostParams(
            alpha=1.3e-6,
            beta={
                LinkClass.LOCAL: 1 / (25 * GiB),
                LinkClass.GLOBAL: 1 / (15 * GiB),
                LinkClass.TORUS: 1 / (6.8 * GiB),
                LinkClass.INTRA: 1 / (150 * GiB),
            },
            inj_beta=1 / (25 * GiB),
            seg_overhead=0.6e-6,
        ),
        node_counts=(16, 32, 64, 128, 256, 512, 1024, 2048),
        notes="Open MPI baseline selection; >256 nodes in maintenance window",
    )


def marenostrum5() -> SystemPreset:
    """MareNostrum 5 ACC: NDR200 fat tree, 2:1 oversubscribed (Sec. 5.3)."""
    return SystemPreset(
        name="marenostrum5",
        topology=lambda: FatTree(12, 160, oversubscription=2.0),
        params=CostParams(
            alpha=1.0e-6,
            beta={
                LinkClass.LOCAL: 1 / (25 * GiB),
                LinkClass.GLOBAL: 1 / (12.5 * GiB),
                LinkClass.TORUS: 1 / (6.8 * GiB),
                LinkClass.INTRA: 1 / (150 * GiB),
            },
            inj_beta=1 / (25 * GiB),
            seg_overhead=0.5e-6,
        ),
        node_counts=(4, 8, 16, 32, 64),
        notes="max 64 nodes per job; subtrees of 160 nodes",
    )


def fugaku(dims: tuple[int, ...] = (8, 8, 8)) -> SystemPreset:
    """Fugaku: Tofu-D torus; jobs get a 3-D sub-torus (Sec. 5.4).

    Six TNIs per node at 54.4 Gb/s each; ports=6 lets multiported schedules
    inject in parallel (App. D.4).
    """
    return SystemPreset(
        name="fugaku",
        topology=lambda: Torus(dims),
        params=CostParams(
            alpha=0.9e-6,
            beta={
                LinkClass.LOCAL: 1 / (25 * GiB),
                LinkClass.GLOBAL: 1 / (12.5 * GiB),
                LinkClass.TORUS: 1 / (6.8 * GiB),
                LinkClass.INTRA: 1 / (150 * GiB),
            },
            inj_beta=1 / (6.8 * GiB),
            ports=6,
            alpha_hop={
                LinkClass.LOCAL: 0.15e-6,
                LinkClass.GLOBAL: 0.6e-6,
                LinkClass.TORUS: 0.1e-6,
                LinkClass.INTRA: 0.05e-6,
            },
            seg_overhead=0.5e-6,
        ),
        node_counts=(8, 64, 512),
        notes="evaluated on 2x2x2 … 8x8x8, 64x64 and 32x256 sub-tori",
    )


ALL_SYSTEMS = {
    "lumi": lumi,
    "leonardo": leonardo,
    "marenostrum5": marenostrum5,
    "fugaku": fugaku,
}


def system_for(name: str) -> SystemPreset:
    try:
        return ALL_SYSTEMS[name]()
    except KeyError:
        raise KeyError(f"unknown system {name!r}; have {sorted(ALL_SYSTEMS)}") from None
