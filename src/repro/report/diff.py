"""Record-set diffing: align two record sets cell by cell and classify drift.

The loader understands every machine-readable record shape the repo
emits, keyed so reruns line up cell for cell:

* **sweep** — a JSON array of :data:`~repro.analysis.sweep.RECORD_FIELDS`
  objects (``repro sweep/campaign --format json``), keyed by
  ``(system, collective, algorithm, p, n_bytes, faults, ppn, timeline)``
  and compared on ``family`` / ``time`` / ``global_bytes`` / ``stalled``;
  rows predating the fault, ppn or timeline dimensions load with
  ``faults="none"`` / ``ppn=1`` / ``timeline="none"`` /
  ``stalled=False``, so old baselines stay diffable;
* **tune** — a ``repro/decision-table`` artifact (``repro tune``),
  exploded to one row per populated grid cell, keyed by
  ``(system, faults, collective, ppn, p, n_bytes)`` and compared on
  ``winner`` / ``family`` / ``margin`` — ``repro compare a.json b.json``
  on two tables reports exactly which cells changed winners;
* **verify** — a JSON array of
  :data:`~repro.analysis.verifygrid.VERIFY_FIELDS` objects
  (``repro verify --format json``), keyed by
  ``(collective, algorithm, p, n, seeds, engine)`` and compared on
  ``status`` / ``detail`` (``elapsed_s`` is wall-clock noise, ignored);
* **baseline** — a JSON object with a ``records`` array (written by
  :mod:`repro.report.baseline`), unwrapped to its inner kind;
* **metrics** — any other JSON object (e.g. the repo-root
  ``BENCH_sweep.json`` / ``BENCH_verify.json`` timing blobs), flattened
  to dotted scalar paths so two benchmark runs diff like record sets.

Numeric fields drift when the relative difference exceeds the tolerance;
non-numeric fields compare exactly.  ``diff.drifted`` is the single gate
``repro compare`` turns into its exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.sweep import RECORD_FIELDS, SweepRecord
from repro.analysis.verifygrid import VERIFY_FIELDS

__all__ = [
    "RecordSetError",
    "RecordSet",
    "FieldChange",
    "CellChange",
    "RecordSetDiff",
    "DEFAULT_TOLERANCE",
    "record_set_from_records",
    "load_record_set",
    "diff_record_sets",
]

#: default relative tolerance: reruns of the deterministic model must be
#: bit-identical, so anything beyond float-noise counts as drift
DEFAULT_TOLERANCE = 1e-9

_SWEEP_KEY = (
    "system", "collective", "algorithm", "p", "n_bytes", "faults", "ppn",
    "timeline",
)
_SWEEP_VALUES = ("family", "time", "global_bytes", "stalled")
#: sweep fields that old record files may omit, with their defaults
_SWEEP_KEY_DEFAULTS = {
    "faults": "none", "ppn": 1, "timeline": "none", "stalled": False,
}
_VERIFY_KEY = ("collective", "algorithm", "p", "n", "seeds", "engine")
_VERIFY_VALUES = ("status", "detail")
_TUNE_KEY = ("system", "faults", "collective", "ppn", "p", "n_bytes")
_TUNE_VALUES = ("winner", "family", "margin")

#: key/value field split per record-set kind
KIND_FIELDS = {
    "sweep": (_SWEEP_KEY, _SWEEP_VALUES),
    "verify": (_VERIFY_KEY, _VERIFY_VALUES),
    "tune": (_TUNE_KEY, _TUNE_VALUES),
    "metrics": (("metric",), ("value",)),
}


class RecordSetError(ValueError):
    """A file could not be interpreted as any known record-set shape."""


@dataclass(frozen=True)
class RecordSet:
    """One comparable set of cells: ``kind`` fixes keying and value fields."""

    label: str
    kind: str
    rows: Mapping[tuple, Mapping[str, object]]

    @property
    def key_fields(self) -> tuple[str, ...]:
        return KIND_FIELDS[self.kind][0]

    @property
    def value_fields(self) -> tuple[str, ...]:
        return KIND_FIELDS[self.kind][1]

    def key_str(self, key: tuple) -> str:
        """Human-readable cell identity, e.g. ``collective=bcast p=16``."""
        if self.kind == "metrics":
            return str(key[0])
        return " ".join(f"{f}={v}" for f, v in zip(self.key_fields, key))

    def to_records(self) -> list[SweepRecord]:
        """Rebuild :class:`SweepRecord` objects (sweep-kind sets only)."""
        if self.kind != "sweep":
            raise RecordSetError(
                f"{self.label}: cannot rebuild sweep records from a "
                f"{self.kind!r} record set"
            )
        return [
            SweepRecord(**dict(zip(self.key_fields, key)), **values)
            for key, values in self.rows.items()
        ]


def record_set_from_records(
    records: Sequence[SweepRecord], label: str = "records"
) -> RecordSet:
    """In-memory sweep records as a diffable set (no file round-trip).

    Example::

        >>> r = SweepRecord("lumi", "bcast", "bine", "bine", 16, 32, 1e-6, 64.0)
        >>> record_set_from_records([r]).kind
        'sweep'
    """
    return _sweep_set([r.to_dict() for r in records], label)


def _keyed_set(
    rows: Sequence[dict], label: str, kind: str,
    key_fields: tuple[str, ...], value_fields: tuple[str, ...],
) -> RecordSet:
    out: dict[tuple, dict] = {}
    for i, row in enumerate(rows):
        try:
            key = tuple(row[f] for f in key_fields)
            values = {f: row[f] for f in value_fields}
        except KeyError as exc:
            raise RecordSetError(
                f"{label}: row #{i} is missing {kind} field {exc.args[0]!r}"
            ) from None
        if key in out:
            raise RecordSetError(
                f"{label}: duplicate {kind} cell {key} (records differing "
                "only in ppn/placement/seed share all key fields — diff "
                "such grids as separate record sets)"
            )
        out[key] = values
    return RecordSet(label, kind, out)


def _sweep_set(rows: Sequence[dict], label: str) -> RecordSet:
    # baselines frozen before the fault/ppn dimensions existed lack those
    # columns — they describe the pristine fabric at one rank per node
    rows = [
        {**_SWEEP_KEY_DEFAULTS, **row} for row in rows
    ]
    return _keyed_set(rows, label, "sweep", _SWEEP_KEY, _SWEEP_VALUES)


def _verify_set(rows: Sequence[dict], label: str) -> RecordSet:
    return _keyed_set(rows, label, "verify", _VERIFY_KEY, _VERIFY_VALUES)


def _tune_set(data: Mapping, label: str) -> RecordSet:
    """A decision-table artifact, one row per populated grid cell.

    Validation (schema, version, integrity digest) happens in
    :class:`~repro.tune.tables.DecisionTable`; a corrupted table raises
    :class:`~repro.runtime.errors.TuneArtifactError`, which the CLI maps
    to its own exit code rather than a generic usage error.
    """
    from repro.tune.tables import DecisionTable  # lazy: avoids import cycle

    table = DecisionTable.from_dict(data, label=label)
    rows = []
    for sub in table.tables:
        for i, p in enumerate(sub.p_grid):
            for j, nb in enumerate(sub.n_grid):
                if sub.winner[i][j] is None:
                    continue
                rows.append({
                    "system": sub.system,
                    "faults": sub.faults,
                    "collective": sub.collective,
                    "ppn": sub.ppn,
                    "p": p,
                    "n_bytes": nb,
                    "winner": sub.winner[i][j],
                    "family": sub.family[i][j],
                    "margin": sub.margin[i][j],
                })
    return _keyed_set(rows, label, "tune", _TUNE_KEY, _TUNE_VALUES)


def _flatten(data, prefix: str, out: dict) -> None:
    if isinstance(data, dict):
        for k in sorted(data):
            _flatten(data[k], f"{prefix}.{k}" if prefix else str(k), out)
    elif isinstance(data, list):
        for i, v in enumerate(data):
            _flatten(v, f"{prefix}[{i}]", out)
    else:
        out[(prefix,)] = {"value": data}


def _metrics_set(data: dict, label: str) -> RecordSet:
    out: dict[tuple, dict] = {}
    _flatten(data, "", out)
    return RecordSet(label, "metrics", out)


def load_record_set(path: str | Path, label: str | None = None) -> RecordSet:
    """Load any repo-emitted JSON into a diffable :class:`RecordSet`.

    Example::

        >>> load_record_set("BENCH_sweep.json").kind  # doctest: +SKIP
        'metrics'
    """
    path = Path(path)
    label = label or str(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise RecordSetError(f"{label}: not valid JSON ({exc})") from None
    return record_set_from_json(data, label)


def record_set_from_json(data, label: str) -> RecordSet:
    """Classify parsed JSON into sweep / verify / baseline / metrics."""
    if isinstance(data, dict) and isinstance(data.get("records"), list):
        return record_set_from_json(data["records"], label)
    if isinstance(data, list):
        if not data:
            return RecordSet(label, "sweep", {})
        if not all(isinstance(r, dict) for r in data):
            raise RecordSetError(f"{label}: record arrays must hold objects")
        keys = set(data[0])
        # "faults"/"ppn" are optional on input: older record files omit them
        if set(RECORD_FIELDS) - set(_SWEEP_KEY_DEFAULTS) <= keys:
            return _sweep_set(data, label)
        if set(VERIFY_FIELDS) <= keys:
            return _verify_set(data, label)
        raise RecordSetError(
            f"{label}: array objects match neither sweep fields "
            f"{RECORD_FIELDS} nor verify fields {VERIFY_FIELDS}"
        )
    if isinstance(data, dict):
        if data.get("schema") == "repro/decision-table":
            return _tune_set(data, label)
        return _metrics_set(data, label)
    raise RecordSetError(f"{label}: top-level JSON must be an array or object")


# -- diffing -----------------------------------------------------------------


@dataclass(frozen=True)
class FieldChange:
    """One drifted field inside a changed cell."""

    field: str
    a: object
    b: object
    #: relative difference for numeric fields, ``None`` for exact mismatches
    rel: float | None


@dataclass(frozen=True)
class CellChange:
    key: tuple
    fields: tuple[FieldChange, ...]


@dataclass
class RecordSetDiff:
    """Cell-aligned comparison of two record sets of the same kind."""

    a: RecordSet
    b: RecordSet
    tolerance: float
    added: list[tuple] = field(default_factory=list)
    removed: list[tuple] = field(default_factory=list)
    changed: list[CellChange] = field(default_factory=list)
    unchanged: int = 0

    @property
    def drifted(self) -> bool:
        """True when anything differs — the ``repro compare`` gate."""
        return bool(self.added or self.removed or self.changed)

    def to_dict(self) -> dict:
        """JSON-ready view (sorted, deterministic)."""
        return {
            "a": self.a.label,
            "b": self.b.label,
            "kind": self.a.kind,
            "tolerance": self.tolerance,
            "cells": {
                "a": len(self.a.rows),
                "b": len(self.b.rows),
                "unchanged": self.unchanged,
                "added": len(self.added),
                "removed": len(self.removed),
                "changed": len(self.changed),
            },
            "drifted": self.drifted,
            "added": [self.a.key_str(k) for k in self.added],
            "removed": [self.a.key_str(k) for k in self.removed],
            "changed": [
                {
                    "cell": self.a.key_str(c.key),
                    "fields": [
                        {"field": f.field, "a": f.a, "b": f.b, "rel": f.rel}
                        for f in c.fields
                    ],
                }
                for c in self.changed
            ],
        }


def _field_change(name: str, va, vb, tolerance: float) -> FieldChange | None:
    num_a = isinstance(va, (int, float)) and not isinstance(va, bool)
    num_b = isinstance(vb, (int, float)) and not isinstance(vb, bool)
    if num_a and num_b:
        if va == vb:
            return None
        rel = abs(va - vb) / max(abs(va), abs(vb))
        if rel <= tolerance:
            return None
        return FieldChange(name, va, vb, rel)
    if va == vb:
        return None
    return FieldChange(name, va, vb, None)


def diff_record_sets(
    a: RecordSet, b: RecordSet, tolerance: float = DEFAULT_TOLERANCE
) -> RecordSetDiff:
    """Align ``a`` (reference) and ``b`` (candidate) cell by cell.

    Cells only in ``b`` are *added*, only in ``a`` *removed*; common
    cells whose value fields differ beyond ``tolerance`` are *changed*.

    Example::

        >>> r = SweepRecord("lumi", "bcast", "bine", "bine", 16, 32, 1e-6, 64.0)
        >>> d = diff_record_sets(record_set_from_records([r]),
        ...                      record_set_from_records([r]))
        >>> d.drifted, d.unchanged
        (False, 1)
    """
    if a.kind != b.kind:
        raise RecordSetError(
            f"cannot diff {a.kind!r} ({a.label}) against {b.kind!r} ({b.label})"
        )
    diff = RecordSetDiff(a, b, tolerance)
    keys_a, keys_b = set(a.rows), set(b.rows)
    diff.added = sorted(keys_b - keys_a, key=repr)
    diff.removed = sorted(keys_a - keys_b, key=repr)
    for key in sorted(keys_a & keys_b, key=repr):
        row_a, row_b = a.rows[key], b.rows[key]
        changes = [
            c
            for name in a.value_fields
            if (c := _field_change(name, row_a.get(name), row_b.get(name),
                                   tolerance)) is not None
        ]
        if changes:
            diff.changed.append(CellChange(key, tuple(changes)))
        else:
            diff.unchanged += 1
    return diff


# -- renderers ---------------------------------------------------------------


def _fmt_value(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def diff_summary(diff: RecordSetDiff, max_cells: int = 20) -> str:
    """Human-readable drift report: verdict line plus the drifted cells."""
    lines = [
        f"compare [{diff.a.kind}] {diff.a.label} vs {diff.b.label}",
        f"cells: {len(diff.a.rows)} vs {len(diff.b.rows)} "
        f"({diff.unchanged} unchanged, {len(diff.changed)} changed, "
        f"{len(diff.added)} added, {len(diff.removed)} removed; "
        f"rel tolerance {diff.tolerance:g})",
    ]
    if diff.a.rows and diff.b.rows and not (diff.unchanged or diff.changed):
        # every key is added or removed: nothing aligned, which usually
        # means the operands describe different grids entirely
        lines.append(
            "  note: the record sets share no cells — every key on one "
            "side is absent from the other (unrelated grids?)"
        )
    shown = 0
    for change in diff.changed:
        if shown == max_cells:
            lines.append(f"  ... ({len(diff.changed) - max_cells} more changed)")
            break
        detail = "; ".join(
            f"{f.field}: {_fmt_value(f.a)} -> {_fmt_value(f.b)}"
            + (f" (rel {f.rel:.3g})" if f.rel is not None else "")
            for f in change.fields
        )
        lines.append(f"  changed {diff.a.key_str(change.key)}: {detail}")
        shown += 1
    for title, keys in (("added", diff.added), ("removed", diff.removed)):
        for key in keys[:max_cells]:
            lines.append(f"  {title} {diff.a.key_str(key)}")
        if len(keys) > max_cells:
            lines.append(f"  ... ({len(keys) - max_cells} more {title})")
    lines.append("DRIFT" if diff.drifted else "identical within tolerance")
    return "\n".join(lines)


def diff_table(diff: RecordSetDiff) -> str:
    """One aligned row per drifted cell (empty when clean)."""
    hdr = f"{'status':<9}{'cell':<58}{'field':<14}{'a':>14}{'b':>14}"
    lines = [hdr, "-" * len(hdr)]
    for change in diff.changed:
        for f in change.fields:
            lines.append(
                f"{'changed':<9}{diff.a.key_str(change.key):<58}"
                f"{f.field:<14}{_fmt_value(f.a):>14}{_fmt_value(f.b):>14}"
            )
    for key in diff.added:
        lines.append(f"{'added':<9}{diff.a.key_str(key):<58}{'':<14}{'-':>14}{'+':>14}")
    for key in diff.removed:
        lines.append(f"{'removed':<9}{diff.a.key_str(key):<58}{'':<14}{'+':>14}{'-':>14}")
    return "\n".join(lines)


def diff_json(diff: RecordSetDiff) -> str:
    return json.dumps(diff.to_dict(), indent=2)


def diff_markdown(diff: RecordSetDiff) -> str:
    """Drifted cells as a GitHub-flavoured Markdown table."""
    lines = [
        f"**{diff.a.label}** vs **{diff.b.label}** ({diff.a.kind}): "
        f"{diff.unchanged} unchanged, {len(diff.changed)} changed, "
        f"{len(diff.added)} added, {len(diff.removed)} removed",
        "",
        "| status | cell | field | a | b |",
        "|---|---|---|---|---|",
    ]
    for change in diff.changed:
        for f in change.fields:
            lines.append(
                f"| changed | {diff.a.key_str(change.key)} | {f.field} "
                f"| {_fmt_value(f.a)} | {_fmt_value(f.b)} |"
            )
    for key in diff.added:
        lines.append(f"| added | {diff.a.key_str(key)} |  |  |  |")
    for key in diff.removed:
        lines.append(f"| removed | {diff.a.key_str(key)} |  |  |  |")
    return "\n".join(lines)
