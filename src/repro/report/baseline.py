"""Baseline regression gating: freeze a campaign's records, fail on drift.

Workflow (CLI: ``repro compare``; see ``docs/reporting.md``)::

    $ repro compare baselines/table3.json campaigns/table3_lumi.toml --update
    $ repro compare baselines/table3.json campaigns/table3_lumi.toml
    ... exit 0 while the rerun matches, exit 1 naming the drifted cells

The baseline file is deterministic JSON (sorted keys, no timestamps) so
it diffs cleanly under git, and it round-trips through the record-set
loader (:func:`repro.report.diff.load_record_set` sees the ``records``
array and unwraps it).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.sweep import SweepRecord
from repro.cli.campaign import run_campaign
from repro.cli.manifest import CampaignManifest, load_manifest
from repro.report.diff import (
    DEFAULT_TOLERANCE,
    RecordSetDiff,
    RecordSetError,
    diff_record_sets,
    load_record_set,
    record_set_from_records,
)

__all__ = ["write_baseline", "check_baseline"]


def write_baseline(
    path: str | Path,
    manifest: CampaignManifest,
    records: list[SweepRecord],
) -> Path:
    """Freeze ``records`` as the committed baseline for ``manifest``.

    Example::

        >>> from repro.cli.manifest import manifest_from_dict
        >>> m = manifest_from_dict({
        ...     "campaign": {"name": "tiny", "system": "lumi"},
        ...     "grid": [{"collectives": ["bcast"], "node_counts": [16],
        ...               "vector_bytes": [1024], "algorithms": ["bine"]}],
        ... })
        >>> import tempfile, repro.cli.campaign as c
        >>> p = write_baseline(tempfile.mktemp(suffix=".json"), m,
        ...                    c.run_campaign(m).records)
        >>> load_record_set(p).kind
        'sweep'
    """
    path = Path(path)
    payload = {
        "baseline_of": manifest.name,
        "system": manifest.system,
        "placement": manifest.placement,
        "seed": manifest.seed,
        "busy_fraction": manifest.busy_fraction,
        "records": [r.to_dict() for r in records],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def check_baseline(
    baseline_path: str | Path,
    manifest_path: str | Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    workers: int | None = None,
    disk_dir: str | os.PathLike | None = None,
) -> RecordSetDiff:
    """Rerun the campaign and diff it against the frozen baseline.

    Returns the :class:`RecordSetDiff`; callers gate on ``.drifted``
    (``repro compare`` turns it into exit code 1).  A baseline frozen
    from a *different* campaign context (system/placement/seed/busy
    fraction) is rejected outright — cell-level record identity would be
    meaningless across contexts.
    """
    baseline = load_record_set(baseline_path)
    manifest = load_manifest(manifest_path)
    _check_provenance(baseline_path, manifest)
    result = run_campaign(manifest, workers=workers, disk_dir=disk_dir)
    rerun = record_set_from_records(result.records, label=str(manifest_path))
    return diff_record_sets(baseline, rerun, tolerance=tolerance)


def _check_provenance(baseline_path: str | Path, manifest: CampaignManifest) -> None:
    """Reject gating a manifest against a baseline of another context."""
    payload = json.loads(Path(baseline_path).read_text())
    if not isinstance(payload, dict):
        return  # a bare records array carries no provenance to check
    expected = {
        "system": manifest.system,
        "placement": manifest.placement,
        "seed": manifest.seed,
        "busy_fraction": manifest.busy_fraction,
    }
    mismatched = {
        key: (payload[key], want)
        for key, want in expected.items()
        if key in payload and payload[key] != want
    }
    if mismatched:
        detail = "; ".join(
            f"{k}: baseline {a!r} vs manifest {b!r}"
            for k, (a, b) in sorted(mismatched.items())
        )
        raise RecordSetError(
            f"{baseline_path}: baseline context does not match the "
            f"manifest ({detail})"
        )
