"""Figure rendering orchestration plus the artifact manifest index.

:func:`render_report` is the one entry point ``repro plot`` and
``benchmarks/_shared.py`` share: render every figure a record set
supports (one heatmap per collective, one improvement boxplot across
collectives) and write ``index.md`` / ``index.html`` linking each figure
to its source manifest, placement context, and the SHA-256 digest of the
exact records it was rendered from.  Everything written is byte-
deterministic — rerunning the same campaign reproduces every artifact
bit for bit, which is what makes the index's digest a cache key.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from html import escape
from pathlib import Path
from typing import Sequence

from repro.analysis.sweep import SweepRecord
from repro.cli.manifest import CampaignManifest
from repro.report.figures import boxplot_figure, heatmap_figure

__all__ = ["Artifact", "records_digest", "render_report", "write_index"]


@dataclass(frozen=True)
class Artifact:
    """One generated figure file plus its provenance caption."""

    filename: str
    kind: str  # 'heatmap' | 'boxplot'
    description: str


def records_digest(records: Sequence[SweepRecord]) -> str:
    """SHA-256 over the canonical JSON of the records (order-independent).

    Example::

        >>> r = SweepRecord("lumi", "bcast", "bine", "bine", 16, 32, 1e-6, 64.0)
        >>> records_digest([r]) == records_digest([r])
        True
        >>> len(records_digest([r]))
        16
    """
    rows = sorted(
        (json.dumps(r.to_dict(), sort_keys=True) for r in records)
    )
    return hashlib.sha256("\n".join(rows).encode()).hexdigest()[:16]


def write_index(
    out_dir: Path,
    artifacts: Sequence[Artifact],
    *,
    name: str,
    source: str,
    system: str,
    placement: str,
    seed: int,
    digest: str,
    record_count: int,
) -> list[Path]:
    """Write ``index.md`` and ``index.html`` describing every artifact."""
    md = [
        f"# Report: {name}",
        "",
        f"- source: `{source}`",
        f"- system: `{system}`",
        f"- placement: `{placement}` (seed {seed})",
        f"- records: {record_count} (sha256 `{digest}`)",
        "",
        "| figure | kind | description |",
        "|---|---|---|",
    ]
    html = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">"
        f"<title>Report: {escape(name)}</title></head><body>",
        f"<h1>Report: {escape(name)}</h1>",
        "<ul>",
        f"<li>source: <code>{escape(source)}</code></li>",
        f"<li>system: <code>{escape(system)}</code></li>",
        f"<li>placement: <code>{escape(placement)}</code> (seed {seed})</li>",
        f"<li>records: {record_count} (sha256 <code>{escape(digest)}</code>)</li>",
        "</ul>",
    ]
    for art in artifacts:
        md.append(
            f"| [{art.filename}]({art.filename}) | {art.kind} "
            f"| {art.description} |"
        )
        html.append(
            f"<figure><img src=\"{escape(art.filename)}\" "
            f"alt=\"{escape(art.description)}\">"
            f"<figcaption>{escape(art.description)}</figcaption></figure>"
        )
    html.append("</body></html>")
    index_md = out_dir / "index.md"
    index_html = out_dir / "index.html"
    index_md.write_text("\n".join(md) + "\n")
    index_html.write_text("\n".join(html) + "\n")
    return [index_md, index_html]


def render_report(
    records: Sequence[SweepRecord],
    out_dir: str | Path,
    *,
    name: str,
    source: str,
    manifest: CampaignManifest | None = None,
    collectives: Sequence[str] | None = None,
) -> list[Path]:
    """Render every figure for ``records`` into ``out_dir`` plus the index.

    ``collectives`` restricts/orders the figures; by default every
    collective present in the records gets a heatmap, and all of them
    share one improvement boxplot.  Record sets spanning several system
    tags (the Fugaku sub-torus campaigns) or fault scenarios (degraded-
    fabric campaigns) get one figure set per (system, scenario) pair,
    suffixed with the tags.  Returns the written paths (figures first,
    then ``index.md`` / ``index.html``).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if collectives is None:
        seen: dict[str, None] = {}
        for r in records:
            seen.setdefault(r.collective)
        collectives = tuple(seen)
    # Figures are rendered per (system tag, fault scenario): multi-sub-torus
    # campaigns (e.g. Fig. 11b's fugaku:4x4x4 and fugaku:8x8, both 64
    # ranks) and degraded-fabric scenarios would otherwise merge distinct
    # topologies / fabric conditions into one heatmap cell.  A fault
    # timeline extends the scenario label (``faults@timeline``), and
    # stalled DES records are dropped — a stalled run has no completion
    # time to plot (the index digest still covers the full record set).
    def scenario_of(r):
        return r.faults if r.timeline == "none" else f"{r.faults}@{r.timeline}"

    plottable = [r for r in records if not r.stalled]
    panes = sorted({(r.system, scenario_of(r)) for r in plottable})
    written: list[Path] = []
    artifacts: list[Artifact] = []
    for system, faults in panes:
        if len(panes) == 1:
            own, suffix, label = list(plottable), "", name
        else:
            own = [
                r for r in plottable
                if r.system == system and scenario_of(r) == faults
            ]
            tag = system if faults == "none" else f"{system}_{faults}"
            suffix = "_" + re.sub(r"[^A-Za-z0-9._-]+", "-", tag)
            label = (f"{name} [{system}]" if faults == "none"
                     else f"{name} [{system}, faults={faults}]")
        for coll in collectives:
            if not any(r.collective == coll for r in own):
                continue
            filename = f"heatmap_{coll}{suffix}.svg"
            svg = heatmap_figure(own, coll, title=f"{label}: {coll}")
            (out_dir / filename).write_text(svg + "\n")
            written.append(out_dir / filename)
            artifacts.append(
                Artifact(filename, "heatmap",
                         f"best algorithm per (nodes x size) cell, {coll}"
                         + (f", {system}" if suffix else "")
                         + (f", faults={faults}"
                            if suffix and faults != "none" else ""))
            )
        boxplot_name = f"boxplot_improvement{suffix}.svg"
        svg = boxplot_figure(own, collectives,
                             title=f"{label}: Bine improvement where it wins")
        (out_dir / boxplot_name).write_text(svg + "\n")
        written.append(out_dir / boxplot_name)
        artifacts.append(
            Artifact(boxplot_name, "boxplot",
                     "Bine improvement distribution per collective"
                     + (f", {system}" if suffix else "")
                     + (f", faults={faults}"
                        if suffix and faults != "none" else ""))
        )
    written.extend(
        write_index(
            out_dir,
            artifacts,
            name=name,
            source=source,
            system=manifest.system if manifest else
            (records[0].system if records else "unknown"),
            placement=manifest.placement if manifest else "unknown",
            seed=manifest.seed if manifest else 0,
            digest=records_digest(records),
            record_count=len(records),
        )
    )
    return written
