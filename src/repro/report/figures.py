"""SVG renderings of the paper's figures (Figs. 9a/10a heatmaps, 5/9b/10b/11a/11b boxplots).

The data layer is :mod:`repro.analysis.summarize` /
:mod:`repro.analysis.boxplot` — the same cells and five-number summaries
the text renderers consume — so a figure can never disagree with the
``repro sweep`` summary printed from the same records.  Rendering goes
through :class:`repro.report.svg.SvgCanvas`, whose determinism contract
(fixed float formatting, no timestamps) makes every figure byte-stable
across runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.boxplot import BoxStats, box_stats
from repro.analysis.heatmap import FAMILY_LETTERS, family_letter, human_bytes
from repro.analysis.summarize import (
    best_algorithm_cells,
    bine_improvement_distribution,
)
from repro.analysis.sweep import SweepRecord
from repro.report.svg import SvgCanvas

__all__ = [
    "FAMILY_COLORS",
    "heatmap_svg",
    "boxplot_svg",
    "heatmap_figure",
    "boxplot_figure",
]

#: fill colors per algorithm family (Bine highlighted; sorted legend order
#: comes from FAMILY_LETTERS so new families fail loudly, not silently grey)
FAMILY_COLORS = {
    "bine": "#2f7ed8",
    "binomial": "#f28f43",
    "ring": "#8bbc21",
    "bruck": "#c42525",
    "swing": "#910000",
    "linear": "#777777",
    "sota": "#1aadce",
    "bucket": "#492970",
    "trinaryx": "#77a1e5",
}

_CELL_W = 58.0
_CELL_H = 26.0
_LEFT = 84.0
_TOP = 48.0


def _family_color(family: str) -> str:
    return FAMILY_COLORS.get(family, "#bbbbbb")


def heatmap_svg(
    cells: Mapping[tuple[int, int], tuple[SweepRecord, float | None]],
    node_counts: Sequence[int],
    vector_bytes: Sequence[int],
    title: str = "",
) -> str:
    """The Fig. 9a-style grid as a standalone SVG document.

    Rows are vector sizes, columns node counts; each cell is filled with
    the winning family's color and labelled with the family letter — or,
    when Bine wins, the speedup ratio over the best non-Bine algorithm.
    Missing grid cells render as hatched grey.
    """
    note = ("letters = best non-Bine family; "
            "numbers = Bine speedup over next best")
    legend_families = sorted(
        {best.family for best, _ in cells.values() if best.family != "bine"}
    )
    legend_w = sum(24 + 7.2 * (len(f) + 2) for f in legend_families)
    width = _LEFT + 16 + max(
        _CELL_W * len(node_counts), 6.1 * len(note), legend_w
    )
    height = _TOP + _CELL_H * len(vector_bytes) + 56
    canvas = SvgCanvas(width, height)
    if title:
        canvas.text(_LEFT, 18, title, size=13, weight="bold")
    canvas.text(_LEFT - 6, _TOP - 8, "size \\ nodes", size=10, anchor="end",
                fill="#555555")
    for col, p in enumerate(node_counts):
        canvas.text(
            _LEFT + _CELL_W * (col + 0.5), _TOP - 8, str(p),
            size=11, anchor="middle", weight="bold",
        )
    for row, nb in enumerate(vector_bytes):
        y = _TOP + _CELL_H * row
        canvas.text(
            _LEFT - 6, y + _CELL_H / 2 + 4, human_bytes(nb),
            size=11, anchor="end",
        )
        for col, p in enumerate(node_counts):
            x = _LEFT + _CELL_W * col
            entry = cells.get((p, nb))
            if entry is None:
                canvas.rect(x, y, _CELL_W, _CELL_H, fill="#eeeeee",
                            stroke="#cccccc", title=f"p={p} {human_bytes(nb)}: no record")
                canvas.text(x + _CELL_W / 2, y + _CELL_H / 2 + 4, "·",
                            size=11, anchor="middle", fill="#999999")
                continue
            best, ratio = entry
            tooltip = (
                f"p={p} {human_bytes(nb)}: {best.algorithm} "
                f"({best.family}) t={best.time:.3e}"
            )
            canvas.rect(x, y, _CELL_W, _CELL_H, fill=_family_color(best.family),
                        stroke="#ffffff", title=tooltip)
            if best.family == "bine":
                label = f"{ratio:.2f}" if ratio else "BINE"
            else:
                label = family_letter(best.family)
            canvas.text(x + _CELL_W / 2, y + _CELL_H / 2 + 4, label,
                        size=11, anchor="middle", fill="#ffffff", weight="bold")
    legend_y = _TOP + _CELL_H * len(vector_bytes) + 20
    canvas.text(_LEFT, legend_y, note, size=10, fill="#555555")
    x = _LEFT
    for family in legend_families:
        canvas.rect(x, legend_y + 8, 10, 10, fill=_family_color(family))
        canvas.text(x + 14, legend_y + 17,
                    f"{family_letter(family)}={family}", size=10)
        x += 24 + 7.2 * (len(family) + 2)
    return canvas.render()


def boxplot_svg(
    groups: Sequence[tuple[str, BoxStats | None]],
    title: str = "",
    unit: str = "%",
) -> str:
    """Fig. 9b-style boxplots: one (label, stats) box per group.

    ``None`` stats render as a labelled empty slot ("no winning cells"),
    so a collective Bine never wins still occupies its column.  Whiskers
    are the paper's 1.5 IQR convention (already folded into
    :class:`BoxStats`); the mean is the small diamond.
    """
    slot_w = 86.0
    plot_h = 180.0
    left, top = 64.0, 40.0
    footer = "box = Q1..Q3, line = median, diamond = mean, whiskers = 1.5 IQR"
    width = left + 16 + max(slot_w * max(len(groups), 1), 6.1 * len(footer))
    height = top + plot_h + 52
    canvas = SvgCanvas(width, height)
    if title:
        canvas.text(left, 18, title, size=13, weight="bold")
    stats = [s for _, s in groups if s is not None]
    lo = min([min(0.0, s.whisker_lo) for s in stats], default=0.0)
    hi = max([s.whisker_hi for s in stats], default=1.0)
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo

    def y_of(v: float) -> float:
        return top + plot_h * (1 - (v - lo) / span)

    # frame + five horizontal gridlines with tick labels
    canvas.rect(left, top, slot_w * len(groups), plot_h, fill="none",
                stroke="#999999")
    for i in range(5):
        v = lo + span * i / 4
        y = y_of(v)
        canvas.line(left, y, left + slot_w * len(groups), y,
                    stroke="#dddddd")
        canvas.text(left - 6, y + 4, f"{v:.3g}{unit}", size=10, anchor="end")
    for i, (label, s) in enumerate(groups):
        cx = left + slot_w * (i + 0.5)
        canvas.text(cx, top + plot_h + 16, label, size=10, anchor="middle")
        if s is None:
            canvas.text(cx, top + plot_h / 2, "no winning", size=9,
                        anchor="middle", fill="#999999")
            canvas.text(cx, top + plot_h / 2 + 11, "cells", size=9,
                        anchor="middle", fill="#999999")
            continue
        box_w = slot_w * 0.46
        canvas.line(cx, y_of(s.whisker_lo), cx, y_of(s.whisker_hi),
                    stroke="#333333")
        for w in (s.whisker_lo, s.whisker_hi):
            canvas.line(cx - box_w / 4, y_of(w), cx + box_w / 4, y_of(w),
                        stroke="#333333")
        y_q3, y_q1 = y_of(s.q3), y_of(s.q1)
        canvas.rect(cx - box_w / 2, y_q3, box_w, max(y_q1 - y_q3, 0.5),
                    fill="#c6dbef", stroke="#2f7ed8",
                    title=f"{label}: n={s.count} med={s.median:.2f}{unit}")
        canvas.line(cx - box_w / 2, y_of(s.median), cx + box_w / 2,
                    y_of(s.median), stroke="#1a4f8a", stroke_width=2.0)
        ym = y_of(s.mean)
        canvas.line(cx - 4, ym, cx, ym - 4, stroke="#c42525")
        canvas.line(cx, ym - 4, cx + 4, ym, stroke="#c42525")
        canvas.line(cx + 4, ym, cx, ym + 4, stroke="#c42525")
        canvas.line(cx, ym + 4, cx - 4, ym, stroke="#c42525")
        canvas.text(cx, top + plot_h + 30, f"n={s.count}", size=9,
                    anchor="middle", fill="#555555")
    canvas.text(left, top + plot_h + 46, footer, size=10, fill="#555555")
    return canvas.render()


def heatmap_figure(
    records: Sequence[SweepRecord], collective: str, title: str = ""
) -> str:
    """Heatmap SVG for one collective, axes derived from the records.

    Example::

        >>> from repro.analysis.sweep import SweepRecord
        >>> recs = [SweepRecord("s", "bcast", "bine", "bine", 16, 32, 1e-6, 8.0)]
        >>> heatmap_figure(recs, "bcast").startswith("<svg")
        True
    """
    own = [r for r in records if r.collective == collective]
    node_counts = sorted({r.p for r in own})
    vector_bytes = sorted({r.n_bytes for r in own})
    cells = best_algorithm_cells(own, collective)
    return heatmap_svg(cells, node_counts, vector_bytes,
                       title or f"{collective}: best algorithm per cell")


def boxplot_figure(
    records: Sequence[SweepRecord],
    collectives: Sequence[str],
    title: str = "",
) -> str:
    """Boxplot SVG of Bine's improvement distribution per collective."""
    groups: list[tuple[str, BoxStats | None]] = []
    for coll in collectives:
        try:
            pct, improvements = bine_improvement_distribution(records, coll)
        except ValueError:
            continue  # collective absent from this record set
        label = f"{coll} ({pct:.0f}%)"
        groups.append((label, box_stats(improvements) if improvements else None))
    return boxplot_svg(
        groups, title or "Bine improvement where it wins", unit="%"
    )
