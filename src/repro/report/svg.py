"""A minimal, byte-deterministic SVG canvas (no third-party deps).

Determinism contract (golden-snapshot tests depend on it):

* every coordinate goes through :func:`fmt` — fixed two-decimal
  formatting with trailing zeros trimmed, ``-0`` normalised to ``0``;
* attributes are emitted in fixed (call-site) order, elements in call
  order — no dict-iteration or set-iteration anywhere;
* no timestamps, hostnames, random ids, or float ``repr`` round-trips.

Rendering the same data twice therefore produces the same bytes, on any
platform, which is what lets ``tests/data/golden_*.svg`` be asserted
byte-for-byte in tier-1.
"""

from __future__ import annotations

from html import escape

__all__ = ["fmt", "SvgCanvas"]


def fmt(value: float | int) -> str:
    """Fixed-format a coordinate: ``12`` / ``12.5`` / ``0.25``.

    Example::

        >>> fmt(12.0), fmt(12.50), fmt(-0.0001), fmt(3)
        ('12', '12.5', '0', '3')
    """
    if isinstance(value, int):
        return str(value)
    text = f"{value:.2f}".rstrip("0").rstrip(".")
    return "0" if text in ("-0", "") else text


class SvgCanvas:
    """Accumulates SVG elements and renders one standalone document.

    Example::

        >>> c = SvgCanvas(40, 20)
        >>> c.rect(0, 0, 40, 20, fill="#fff")
        >>> c.render().startswith('<svg xmlns="http://www.w3.org/2000/svg"')
        True
    """

    def __init__(self, width: float, height: float):
        self.width = width
        self.height = height
        self._parts: list[str] = []

    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        fill: str,
        stroke: str | None = None,
        stroke_width: float = 1.0,
        title: str | None = None,
    ) -> None:
        attrs = (
            f'x="{fmt(x)}" y="{fmt(y)}" width="{fmt(w)}" height="{fmt(h)}" '
            f'fill="{fill}"'
        )
        if stroke is not None:
            attrs += f' stroke="{stroke}" stroke-width="{fmt(stroke_width)}"'
        if title is None:
            self._parts.append(f"<rect {attrs}/>")
        else:
            self._parts.append(
                f"<rect {attrs}><title>{escape(title)}</title></rect>"
            )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "#333333",
        stroke_width: float = 1.0,
        dash: str | None = None,
    ) -> None:
        attrs = (
            f'x1="{fmt(x1)}" y1="{fmt(y1)}" x2="{fmt(x2)}" y2="{fmt(y2)}" '
            f'stroke="{stroke}" stroke-width="{fmt(stroke_width)}"'
        )
        if dash is not None:
            attrs += f' stroke-dasharray="{dash}"'
        self._parts.append(f"<line {attrs}/>")

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 11,
        anchor: str = "start",
        fill: str = "#111111",
        weight: str | None = None,
    ) -> None:
        attrs = (
            f'x="{fmt(x)}" y="{fmt(y)}" font-size="{fmt(size)}" '
            f'font-family="monospace" text-anchor="{anchor}" fill="{fill}"'
        )
        if weight is not None:
            attrs += f' font-weight="{weight}"'
        self._parts.append(f"<text {attrs}>{escape(content)}</text>")

    def render(self) -> str:
        """The full SVG document, one element per line."""
        head = (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{fmt(self.width)}" height="{fmt(self.height)}" '
            f'viewBox="0 0 {fmt(self.width)} {fmt(self.height)}">'
        )
        background = (
            f'<rect x="0" y="0" width="{fmt(self.width)}" '
            f'height="{fmt(self.height)}" fill="#ffffff"/>'
        )
        return "\n".join([head, background, *self._parts, "</svg>"])
