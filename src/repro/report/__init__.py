"""Figure artifacts, record-set diffing, and baseline regression gating.

The report layer turns sweep records into the paper's visual evidence and
keeps record sets comparable across reruns:

* :mod:`repro.report.svg` — a dependency-free, byte-deterministic SVG
  canvas (fixed float formatting, no timestamps);
* :mod:`repro.report.figures` — the Fig. 9a/10a heatmaps and
  Fig. 5/9b/10b/11a/11b boxplots, rendered from
  :class:`~repro.analysis.sweep.SweepRecord` sets;
* :mod:`repro.report.diff` — :class:`RecordSetDiff`: align two record
  sets cell by cell, classify added/removed/changed with a relative
  tolerance, render summary/table/json/markdown;
* :mod:`repro.report.baseline` — freeze a campaign's records to a
  committed baseline file and gate reruns against it;
* :mod:`repro.report.artifacts` — the markdown/HTML index linking every
  generated figure to its source manifest, seed and record digest.

``repro plot`` and ``repro compare`` are the CLI front ends
(:mod:`repro.cli.commands`); ``benchmarks/_shared.py`` can emit the same
artifacts per campaign with ``REPRO_BENCH_ARTIFACTS=1``.
"""

from repro.report.artifacts import render_report, records_digest
from repro.report.baseline import check_baseline, write_baseline
from repro.report.diff import (
    RecordSet,
    RecordSetDiff,
    RecordSetError,
    diff_record_sets,
    load_record_set,
    record_set_from_records,
)
from repro.report.figures import boxplot_svg, heatmap_svg

__all__ = [
    "RecordSet",
    "RecordSetDiff",
    "RecordSetError",
    "diff_record_sets",
    "load_record_set",
    "record_set_from_records",
    "heatmap_svg",
    "boxplot_svg",
    "check_baseline",
    "write_baseline",
    "render_report",
    "records_digest",
]
