"""The discrete-event fabric simulator behind ``profile_engine="des"``.

The engine executes a lowered schedule
(:class:`~repro.model.compiled.TransferTable`) step by step.  Within a
step every transfer becomes a *flow* released at the step's transport
start; a flow occupies one FIFO-served resource per link of its route
plus (for NIC traffic) its endpoints' injection/ejection ports.  Service
rates derive from the same ``Link.width``/class model the analytic
engine divides loads by, so a phase on a calm fabric drains in exactly
the analytic bandwidth term — that is the calibration contract:

* **link resource** — serves ``nelems / width`` load units; busy time is
  ``load · scale · itemsize · beta[cls]``, the analytic per-link term;
* **inj/ej port** — serves ``nelems`` units per NIC flow at the
  endpoint rank; busy time is ``load · scale · itemsize · inj_beta /
  ports``, the analytic injection term;
* flows are released simultaneously and resources drain concurrently,
  so the phase's transport time is the longest busy period — the
  analytic ``bw = max(...)``, reproduced bit-for-bit when no timeline
  event perturbs the phase (asserted in ``tests/test_timeline.py``).

Mid-phase :class:`~repro.faults.TimelineEvent` firings interleave with
flow completions on one event heap: failed links preempt their in-flight
flows and reroute the unfinished remainder through the same detour logic
:class:`~repro.faults.DegradedTopology` uses (lowest healthy group
representative); a flow with no surviving route — or an endpoint on a
failed node — records a structured :class:`StallRecord` and is removed,
so the run always completes (never hangs) and the record carries
``stalled=True``.

Step times compose exactly like
:func:`~repro.model.simulator.evaluate_time` (unsegmented / segmented /
pipelined), with the simulated transport time in place of the analytic
``bw`` term.  For pipelined schedules the *reported* total uses the
pipelined law while event times map onto the steps laid end to end.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro import obs
from repro.faults import (
    NIC_DERATE,
    DegradedTopology,
    FaultTimeline,
    TimelineEvent,
    _global_link_population,
    _group_members,
)
from repro.model.cost import CostParams
from repro.model.simulator import PIPELINE_CHUNKS, ScheduleProfile
from repro.runtime.errors import DESEngineError, TopologyPartitionedError
from repro.topology.base import LinkClass, Topology
from repro.topology.mapping import RankMap

__all__ = ["FabricState", "SimResult", "StallRecord", "simulate_profile"]


@dataclass(frozen=True)
class StallRecord:
    """One flow that lost every route mid-run (structured stall)."""

    step: int
    src_node: int
    dst_node: int
    at: float


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated collective execution."""

    time: float
    stalled: bool
    stalls: tuple[StallRecord, ...]


class FabricState:
    """Dynamic fault overlay over a (possibly statically degraded) topology.

    The static :class:`~repro.faults.DegradedTopology` is the fabric's
    t=0 baseline and never heals; timeline events maintain the *dynamic*
    sets on top (``down_links`` / ``down_nodes`` / ``nic_down`` /
    ``dyn_derate`` / ``background``).  Victims are sampled per event from
    ``random.Random(event.seed)`` over canonically ordered healthy
    populations, so a timeline replays identically across processes and
    worker pools.
    """

    def __init__(self, topo: Topology, timeline: FaultTimeline):
        self.topo = topo
        self.inner = topo.inner if isinstance(topo, DegradedTopology) else topo
        if isinstance(topo, DegradedTopology):
            self._static_failed_nodes = topo.failed_nodes
            self._static_failed_links = topo.failed_links
        else:
            self._static_failed_nodes = frozenset()
            self._static_failed_links = frozenset()
        self.timeline = timeline
        self.down_links: set = set()
        self.down_nodes: set[int] = set()
        self.nic_down: set[int] = set()
        self.dyn_derate: dict[str, float] = {}
        self.background = 0.0
        self.version = 0
        self.next_event = 0  # index into timeline.events
        self._members = _group_members(self.inner)
        self._link_population: list | None = None
        self._route_cache: dict[tuple[int, int], tuple[int, list]] = {}

    @property
    def pristine(self) -> bool:
        """No *dynamic* effect is currently active (static spec may be)."""
        return not (
            self.down_links or self.down_nodes or self.nic_down
            or self.dyn_derate or self.background
        )

    def pending_event(self) -> TimelineEvent | None:
        events = self.timeline.events
        return events[self.next_event] if self.next_event < len(events) else None

    # -- event application -------------------------------------------------

    def apply_next(self) -> dict:
        """Apply the next timeline event; returns what changed.

        The dict carries ``links`` / ``nodes`` (newly failed victims) so
        a mid-phase caller can preempt affected flows; state-only changes
        (derate, background, nics, heal) are reflected in the fabric and
        flagged by ``rates`` for a rate refresh.
        """
        event = self.timeline.events[self.next_event]
        self.next_event += 1
        self.version += 1
        changed: dict = {"links": (), "nodes": (), "rates": False}
        if event.heal:
            targets = (
                ("links", "nodes", "nics", "derate", "background")
                if event.heal == "all" else (event.heal,)
            )
            if "links" in targets:
                self.down_links.clear()
            if "nodes" in targets:
                self.down_nodes.clear()
            if "nics" in targets:
                self.nic_down.clear()
            if "derate" in targets:
                self.dyn_derate.clear()
            if "background" in targets:
                self.background = 0.0
            changed["rates"] = True
            return changed
        rng = random.Random(event.seed)
        if event.links:
            victims = self._sample_links(rng, event)
            self.down_links.update(victims)
            changed["links"] = victims
        if event.nodes:
            victims = self._sample_nodes(rng, event)
            self.down_nodes.update(victims)
            changed["nodes"] = victims
        if event.nics:
            self.nic_down.update(self._sample_nics(rng, event))
            changed["rates"] = True
        if event.derate:
            self.dyn_derate.update(event.derate)
            changed["rates"] = True
        if event.background is not None:
            self.background = event.background
            changed["rates"] = True
        return changed

    def _sample_links(self, rng: random.Random, event: TimelineEvent) -> tuple:
        if self._link_population is None:
            reps = {g: ns[0] for g, ns in self._members.items()}
            self._link_population = _global_link_population(self.inner, reps)
        healthy = [
            k for k in self._link_population
            if k not in self._static_failed_links and k not in self.down_links
        ]
        if event.links > len(healthy):
            raise DESEngineError(
                f"timeline event at={event.at:g}: cannot fail {event.links} "
                f"links; only {len(healthy)} global links remain healthy"
            )
        return tuple(rng.sample(healthy, event.links))

    def _sample_nodes(self, rng: random.Random, event: TimelineEvent) -> tuple:
        healthy = [
            v for v in range(self.inner.num_nodes)
            if v not in self._static_failed_nodes and v not in self.down_nodes
        ]
        if event.nodes > len(healthy):
            raise DESEngineError(
                f"timeline event at={event.at:g}: cannot fail {event.nodes} "
                f"nodes; only {len(healthy)} remain healthy"
            )
        return tuple(rng.sample(healthy, event.nodes))

    def _sample_nics(self, rng: random.Random, event: TimelineEvent) -> tuple:
        healthy = [
            v for v in range(self.inner.num_nodes)
            if v not in self._static_failed_nodes
            and v not in self.down_nodes and v not in self.nic_down
        ]
        if event.nics > len(healthy):
            raise DESEngineError(
                f"timeline event at={event.at:g}: cannot derate {event.nics} "
                f"NICs; only {len(healthy)} healthy nodes remain"
            )
        return tuple(rng.sample(healthy, event.nics))

    # -- routing -----------------------------------------------------------

    def route(self, a: int, b: int) -> list:
        """Shaped links ``a → b`` under static + dynamic failures.

        Mirrors :meth:`DegradedTopology.route`: the baseline route (which
        already detours static failures) is used if no dynamic link on it
        is down; otherwise detour via the lowest healthy group
        representative; otherwise :class:`TopologyPartitionedError`.
        """
        for v in (a, b):
            if v in self.down_nodes:
                raise TopologyPartitionedError(a, b, f"node {v} went down mid-run")
        cached = self._route_cache.get((a, b))
        if cached is not None and cached[0] == self.version:
            return cached[1]
        links = self._route_uncached(a, b)
        self._route_cache[(a, b)] = (self.version, links)
        return links

    def _route_uncached(self, a: int, b: int) -> list:
        base = self.topo.route(a, b)
        if not self._blocked(base):
            return base
        ga, gb = self.topo.group_of(a), self.topo.group_of(b)
        for g in sorted(self._members):
            if g in (ga, gb):
                continue
            mid = next(
                (v for v in self._members[g]
                 if v not in self._static_failed_nodes
                 and v not in self.down_nodes),
                None,
            )
            if mid is None or mid in (a, b):
                continue
            try:
                detour = self.topo.route(a, mid) + self.topo.route(mid, b)
            except TopologyPartitionedError:
                continue
            if not self._blocked(detour):
                return detour
        raise TopologyPartitionedError(
            a, b, f"{len(self.down_links)} timeline-failed links, no detour"
        )

    def _blocked(self, links) -> bool:
        return any(link.key in self.down_links for link in links)

    # -- service-rate modifiers --------------------------------------------

    def link_factor(self, cls: str) -> float:
        """Dynamic rate multiplier for a link of class ``cls``."""
        return self.dyn_derate.get(cls, 1.0) * (1.0 - self.background)

    def port_factor(self, node: int) -> float:
        """Dynamic rate multiplier for a node's injection/ejection ports."""
        factor = 1.0 - self.background
        if node in self.nic_down:
            factor *= NIC_DERATE
        return factor


class _Resource:
    """One FIFO-served capacity constraint (a link, or a rank's NIC port).

    ``units_done`` accumulates served load units in service (= release)
    order — on an unperturbed phase that reproduces the analytic per-link
    load sum add for add, which is what makes calm DES output
    bit-identical to the analytic engine.
    """

    __slots__ = (
        "key", "kind", "cls", "cunit", "factor", "queue", "head",
        "units_done", "serial", "serving", "serve_start", "serve_left",
        "busy_s",
    )

    def __init__(self, key, kind: str, cls: str | None, cunit: float, factor: float):
        self.key = key
        self.kind = kind  # "link" | "inj" | "ej"
        self.cls = cls
        self.cunit = cunit  # seconds per load unit at factor 1.0
        self.factor = factor
        self.queue: list = []  # _Entry, appended in flow-release order
        self.head = 0
        self.units_done = 0.0
        self.serial = 0  # invalidates stale finish events after preemption
        self.serving: "_Entry | None" = None
        self.serve_start = 0.0
        self.serve_left = 0.0
        self.busy_s = 0.0  # wall-clock spent serving (telemetry only)

    def service_time(self, units: float) -> float:
        if self.factor <= 0.0:
            raise DESEngineError(
                f"resource {self.key!r}: composed rate factor underflowed "
                "to zero (derate x background leaves no capacity)"
            )
        return units * self.cunit / self.factor

    def start_next(self, now: float, heap: list, seq: list) -> None:
        """Begin serving the next live queue entry, if any."""
        while self.head < len(self.queue):
            entry = self.queue[self.head]
            self.head += 1
            if entry.cancelled:
                continue
            self.serving = entry
            self.serve_start = now
            self.serve_left = entry.units
            seq[0] += 1
            heapq.heappush(
                heap, (now + self.service_time(entry.units), seq[0],
                       self, self.serial)
            )
            return
        self.serving = None

    def preempt(self, now: float) -> None:
        """Stop the in-flight service, folding elapsed progress in."""
        if self.serving is None:
            return
        elapsed = now - self.serve_start
        if self.cunit > 0.0 and elapsed > 0.0:
            done = min(elapsed * self.factor / self.cunit, self.serve_left)
            self.serve_left -= done
            self.units_done += done
            self.busy_s += elapsed
        self.serial += 1  # in-flight finish event is now stale

    def resume(self, now: float, heap: list, seq: list) -> None:
        """Reschedule the preempted in-flight service at the current rate."""
        if self.serving is None:
            return
        self.serve_start = now
        seq[0] += 1
        heapq.heappush(
            heap, (now + self.service_time(self.serve_left), seq[0],
                   self, self.serial)
        )


class _Entry:
    """One flow's pending service on one resource."""

    __slots__ = ("flow", "units", "cancelled", "served")

    def __init__(self, flow: "_Flow", units: float):
        self.flow = flow
        self.units = units
        self.cancelled = False
        self.served = False


class _Flow:
    """One transfer of the current step, in flight."""

    __slots__ = (
        "idx", "src_node", "dst_node", "nelems", "uses_nic",
        "link_entries", "port_entries", "outstanding", "stalled",
    )

    def __init__(self, idx: int, src_node: int, dst_node: int, nelems: float):
        self.idx = idx
        self.src_node = src_node
        self.dst_node = dst_node
        self.nelems = nelems
        self.uses_nic = False
        self.link_entries: list[tuple[_Resource, _Entry]] = []
        self.port_entries: list[tuple[_Resource, _Entry]] = []
        self.outstanding = 0
        self.stalled = False


class _Simulation:
    """One collective execution: steps laid end to end on a global clock."""

    def __init__(
        self,
        table,
        profile: ScheduleProfile,
        topo: Topology,
        mapping: RankMap,
        params: CostParams,
        timeline: FaultTimeline,
        n_elems: float,
        force_event_loop: bool = False,
    ):
        self.table = table
        self.profile = profile
        self.fabric = FabricState(topo, timeline)
        self.node_of = mapping.nodes
        self.params = params
        self.scale = n_elems / profile.n_build
        self.b = params.itemsize
        self.ports = min(params.ports, int(profile.meta.get("ports_used", 1)))
        self.force_event_loop = force_event_loop
        self.stalls: list[StallRecord] = []
        # telemetry tallies (pure bookkeeping — never feed back into times)
        self.events_processed = 0
        self.preemptions = 0
        self.reroutes = 0
        self.link_busy: dict = {}  # link key -> seconds serving, perturbed phases

    # -- top level ---------------------------------------------------------

    def run(self) -> SimResult:
        profile, params = self.profile, self.params
        scale, b = self.scale, self.b
        pipelined = bool(profile.meta.get("pipelined"))
        segmented = profile.segmented
        total = 0.0
        max_step_bw = 0.0
        num_steps = max(1, len(profile.steps))
        clock = 0.0
        for s, step in enumerate(profile.steps):
            lat = 0.0
            for hops, segs in step.lat_signatures:
                t = params.alpha + max(0, segs - 1) * params.seg_overhead
                for cls, h in hops:
                    t += h * params.alpha_hop.get(cls, 0.0)
                lat = max(lat, t)
            lat += max(0, step.max_node_msgs - 2) * params.msg_cpu
            comp = step.max_reduce * scale * b * params.reduce_beta
            copy = step.max_copy * scale * b * params.copy_beta
            t0 = clock + lat
            self._drain_events_until(t0)
            bw = self._transport(s, step, t0)
            if pipelined:
                total += lat + copy
                max_step_bw = max(max_step_bw, bw + comp)
            elif segmented:
                total += lat + max(bw, comp) + copy
            else:
                total += lat + bw + comp + copy
            clock = t0 + bw + comp + copy
        if pipelined:
            total += max_step_bw * (1 + (num_steps - 1) / PIPELINE_CHUNKS)
        return SimResult(
            time=total, stalled=bool(self.stalls), stalls=tuple(self.stalls)
        )

    def _drain_events_until(self, t: float) -> None:
        """Apply timeline events due before a transport phase starts."""
        while True:
            event = self.fabric.pending_event()
            if event is None or event.at > t:
                return
            self.fabric.apply_next()

    def _calm_bw(self, step) -> float:
        """The analytic bandwidth term — what a calm phase drains in."""
        params, scale, b = self.params, self.scale, self.b
        bw = 0.0
        for cls, load in step.max_link_load:
            bw = max(bw, load * scale * b * params.beta.get(cls, 0.0))
        bw = max(
            bw,
            step.max_inj * scale * b * params.inj_beta / self.ports,
            step.max_ej * scale * b * params.inj_beta / self.ports,
        )
        return bw

    # -- one transport phase ------------------------------------------------

    def _transport(self, s: int, step, t0: float) -> float:
        fabric = self.fabric
        if not self.force_event_loop and fabric.pristine:
            # Fast path: no dynamic effect is live, so the phase is exactly
            # the analytic drain — unless an event fires inside the window.
            bw = self._calm_bw(step)
            event = fabric.pending_event()
            if event is None or event.at >= t0 + bw:
                return bw
        return self._event_loop(s, t0)

    def _event_loop(self, s: int, t0: float) -> float:
        """The discrete-event core: flow finishes and fault events on one heap."""
        fabric, params = self.fabric, self.params
        scale, b, ports = self.scale, self.b, self.ports
        table = self.table
        resources: dict = {}
        heap: list = []
        seq = [0]

        def link_resource(link) -> _Resource:
            key = ("L", link.key)
            res = resources.get(key)
            if res is None:
                res = _Resource(
                    key, "link", link.cls,
                    scale * b * params.beta.get(link.cls, 0.0),
                    fabric.link_factor(link.cls),
                )
                resources[key] = res
            return res

        def port_resource(kind: str, rank: int) -> _Resource:
            key = (kind, rank)
            res = resources.get(key)
            if res is None:
                res = _Resource(
                    key, kind, None, scale * b * params.inj_beta / ports,
                    fabric.port_factor(self.node_of[rank]),
                )
                resources[key] = res
            return res

        def attach(flow: _Flow, res: _Resource, units: float, is_link: bool):
            entry = _Entry(flow, units)
            res.queue.append(entry)
            (flow.link_entries if is_link else flow.port_entries).append(
                (res, entry)
            )
            flow.outstanding += 1

        def settle(entry: _Entry):
            """Mark one entry off the books (served or cancelled)."""
            entry.flow.outstanding -= 1

        def stall(flow: _Flow, now: float):
            flow.stalled = True
            self.stalls.append(
                StallRecord(step=s, src_node=flow.src_node,
                            dst_node=flow.dst_node, at=now)
            )
            obs.instant(
                "des.stall", step=s, src=flow.src_node, dst=flow.dst_node
            )
            for res, entry in flow.link_entries + flow.port_entries:
                if entry.served or entry.cancelled:
                    continue
                entry.cancelled = True
                settle(entry)
                if res.serving is entry:
                    self.preemptions += 1
                    res.preempt(now)
                    res.serving = None
                    res.start_next(now, heap, seq)

        def reroute(flow: _Flow, now: float):
            """Move a flow's unfinished remainder onto a surviving route."""
            remaining_frac = 0.0
            for res, entry in flow.link_entries:
                if entry.served or entry.cancelled or entry.units <= 0.0:
                    continue
                left = res.serve_left if res.serving is entry else entry.units
                remaining_frac = max(remaining_frac, left / entry.units)
            if remaining_frac <= 0.0:
                return  # link work already done; ports finish on their own
            for res, entry in flow.link_entries:
                if entry.served or entry.cancelled:
                    continue
                entry.cancelled = True
                settle(entry)
                if res.serving is entry:
                    self.preemptions += 1
                    res.preempt(now)
                    res.serving = None
                    res.start_next(now, heap, seq)
            try:
                route = fabric.route(flow.src_node, flow.dst_node)
            except TopologyPartitionedError:
                stall(flow, now)
                return
            rem = flow.nelems * remaining_frac
            for link in route:
                res = link_resource(link)
                attach(flow, res, rem / link.width, is_link=True)
                if res.serving is None:
                    res.start_next(now, heap, seq)
            self.reroutes += 1
            obs.instant(
                "des.reroute", step=s, src=flow.src_node, dst=flow.dst_node
            )

        def apply_mid_phase(now: float):
            changed = fabric.apply_next()
            if changed["nodes"]:
                down = set(changed["nodes"])
                for flow in list(live_flows):
                    if flow.stalled or flow.outstanding == 0:
                        continue
                    if flow.src_node in down or flow.dst_node in down:
                        stall(flow, now)
            if changed["links"]:
                failed = set(changed["links"])
                hit = []
                for flow in live_flows:
                    if flow.stalled or flow.outstanding == 0:
                        continue
                    for res, entry in flow.link_entries:
                        if (not entry.served and not entry.cancelled
                                and res.key[1] in failed):
                            hit.append(flow)
                            break
                for flow in hit:
                    reroute(flow, now)
            if changed["rates"]:
                for key in sorted(resources, key=repr):
                    res = resources[key]
                    new_f = (
                        fabric.link_factor(res.cls) if res.kind == "link"
                        else fabric.port_factor(self.node_of[res.key[1]])
                    )
                    if new_f != res.factor:
                        if res.serving is not None:
                            self.preemptions += 1
                        res.preempt(now)
                        res.factor = new_f
                        res.resume(now, heap, seq)

        # release every flow of the step at t0, in transfer order
        live_flows: list[_Flow] = []
        lo, hi = int(table.step_off[s]), int(table.step_off[s + 1])
        for i in range(lo, hi):
            src_rank, dst_rank = int(table.src[i]), int(table.dst[i])
            a, bnode = self.node_of[src_rank], self.node_of[dst_rank]
            ne = float(table.nelems[i])
            if a == bnode or ne <= 0.0:
                continue  # intra-node copy (the analytic copy term covers it)
            flow = _Flow(i, a, bnode, ne)
            live_flows.append(flow)
            try:
                route = fabric.route(a, bnode)
            except TopologyPartitionedError:
                stall(flow, t0)
                continue
            flow.uses_nic = any(link.cls != LinkClass.INTRA for link in route)
            for link in route:
                attach(flow, link_resource(link), ne / link.width, is_link=True)
            if flow.uses_nic:
                attach(flow, port_resource("inj", src_rank), ne, is_link=False)
                attach(flow, port_resource("ej", dst_rank), ne, is_link=False)
        for key in sorted(resources, key=repr):
            resources[key].start_next(t0, heap, seq)

        perturbed = not fabric.pristine
        t_end = t0
        while heap:
            t_fin = heap[0][0]
            event = fabric.pending_event()
            if event is not None and event.at <= t_fin:
                perturbed = True
                self.events_processed += 1
                apply_mid_phase(max(t0, event.at))
                continue
            t_fin, _, res, serial = heapq.heappop(heap)
            if serial != res.serial or res.serving is None:
                continue  # stale after a preemption
            self.events_processed += 1
            entry = res.serving
            entry.served = True
            res.units_done += entry.units
            res.busy_s += t_fin - res.serve_start
            settle(entry)
            res.serving = None
            t_end = t_fin
            res.start_next(t_fin, heap, seq)

        if perturbed:
            # per-link busy time: what the fabric actually spent serving
            # this phase's flows — the contention view a trace surfaces
            for key in sorted(resources, key=repr):
                res = resources[key]
                if res.kind == "link" and res.busy_s > 0.0:
                    label = str(res.key[1])
                    self.link_busy[label] = (
                        self.link_busy.get(label, 0.0) + res.busy_s
                    )
        if not perturbed:
            # Unperturbed phases report busy periods straight from the unit
            # bookkeeping — the same sums, products and maxes the analytic
            # engine computes, so the result is bit-identical to it.
            bw = 0.0
            for key in sorted(resources, key=repr):
                res = resources[key]
                if res.kind == "link":
                    busy = (
                        res.units_done * scale * b
                        * params.beta.get(res.cls, 0.0)
                    )
                else:
                    busy = (
                        int(res.units_done) * scale * b
                        * params.inj_beta / ports
                    )
                bw = max(bw, busy)
            return bw
        return t_end - t0 if t_end > t0 else 0.0


def simulate_profile(
    table,
    profile: ScheduleProfile,
    topo: Topology,
    mapping: RankMap,
    params: CostParams,
    timeline: FaultTimeline,
    n_elems: float,
    *,
    force_event_loop: bool = False,
) -> SimResult:
    """Simulate one collective execution; the DES counterpart of
    :func:`~repro.model.simulator.evaluate_time`.

    With an empty ``timeline`` the result's ``time`` is bit-identical to
    the analytic engine's (the calibration contract, asserted in tier-1);
    ``force_event_loop`` additionally pushes calm phases through the full
    event heap (used by the internal-consistency tests).
    """
    sim = _Simulation(
        table, profile, topo, mapping, params, timeline, n_elems,
        force_event_loop=force_event_loop,
    )
    with obs.span(
        "des.simulate", steps=len(profile.steps), timeline=timeline.label
    ) as sim_span:
        result = sim.run()
        sim_span.set(
            events=sim.events_processed,
            preemptions=sim.preemptions,
            reroutes=sim.reroutes,
            stalls=len(result.stalls),
        )
    obs.inc("des.simulations")
    if sim.events_processed:
        obs.inc("des.events", sim.events_processed)
    if sim.preemptions:
        obs.inc("des.preemptions", sim.preemptions)
    if sim.reroutes:
        obs.inc("des.reroutes", sim.reroutes)
    if result.stalls:
        obs.inc("des.stalls", len(result.stalls))
    if sim.link_busy and obs.tracing_enabled():
        top = sorted(sim.link_busy.items(), key=lambda kv: -kv[1])[:8]
        obs.counter_event(
            "des.link_busy", {k: round(v, 9) for k, v in top}
        )
    return result
