"""Discrete-event fabric engine (``profile_engine="des"``).

Executes a finalized schedule's transfer steps as contending flows over
per-link/per-NIC port queues, replaying a
:class:`~repro.faults.FaultTimeline` of mid-run failures, heals, derates
and background traffic.  See ``docs/robustness.md`` for the engine model
and the calibration contract against the analytic engine.
"""

from repro.des.engine import FabricState, SimResult, StallRecord, simulate_profile
from repro.des.records import des_records

__all__ = [
    "FabricState",
    "SimResult",
    "StallRecord",
    "simulate_profile",
    "des_records",
]
