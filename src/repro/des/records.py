"""Sweep adapter for the DES engine (``profile_engine="des"``).

:func:`des_records` is the per-cell counterpart of
``repro.analysis.sweep._profile_records``: it simulates one
``(algorithm, p, ppn)`` profile at every vector size of the grid under
the cache's :class:`~repro.faults.FaultTimeline` and returns
:class:`~repro.analysis.sweep.SweepRecord` rows carrying the timeline
label and the ``stalled`` flag.

Analytic-profile cells (``alltoall`` at any size, every collective above
``ANALYTIC_THRESHOLD`` ranks) have no lowered transfer program to
simulate.  With an *empty* timeline they fall back to the compiled
analytic evaluator — by the calibration contract the result is the same
number the DES engine would produce — so mixed grids keep working; with
a non-empty timeline they raise :class:`DESEngineError` (CLI exit
code 8), because silently ignoring the timeline would mislabel records.

Simulation results memoize in the module-level ``_SIM_CACHE``
(registered in ``memo_cache_registry()``): campaign summaries and
decision tables revisit identical cells, and a simulated cell is far
more expensive than an analytic one.
"""

from __future__ import annotations

import hashlib
import warnings
from typing import Sequence

from repro import obs
from repro.des.engine import simulate_profile
from repro.model.analytic import ANALYTIC_PROFILES, ANALYTIC_THRESHOLD
from repro.model.compiled import transfer_table_for
from repro.model.cost import CostParams
from repro.runtime.errors import DESEngineError

__all__ = ["des_records"]

#: (cell key) -> (time, stalled); bounded FIFO like compiled._TABLE_CACHE
_SIM_CACHE: dict[tuple, tuple[float, bool]] = {}
_SIM_CACHE_MAX = 4096


def _params_digest(params: CostParams) -> str:
    return hashlib.sha1(repr(params).encode()).hexdigest()[:12]


def des_records(
    cache,
    system: str,
    spec,
    p: int,
    vector_bytes: Sequence[int],
    params: CostParams,
    ppn: int,
    profile,
) -> list:
    """Simulated records for one profile across the size grid.

    ``cache`` is the :class:`~repro.analysis.sweep.ProfileCache` driving
    the sweep (engine ``"des"``); ``profile`` is ``cache.get(spec, p,
    ppn)``, passed in so the sweep core keeps owning cache interaction.
    """
    from repro.analysis.sweep import SweepRecord, _profile_records

    if profile is None:
        return []
    timeline = cache.faults.timeline
    analytic = ANALYTIC_PROFILES.get((spec.collective, spec.name))
    if analytic is not None and (
        p > ANALYTIC_THRESHOLD or spec.collective == "alltoall"
    ):
        if not timeline.is_null:
            raise DESEngineError(
                f"timeline {timeline.label!r} cannot replay on analytic "
                f"cell ({spec.collective}, {spec.name}, p={p}): no lowered "
                f"transfer program above {ANALYTIC_THRESHOLD} ranks / for "
                "alltoall — restrict the grid or drop the timeline"
            )
        # Calm analytic cells are exactly the analytic evaluation (the
        # calibration contract), so mixed grids keep working under "des".
        return _profile_records(
            profile, "compiled", system, spec, p, vector_bytes, params,
            faults=cache.faults_label, ppn=ppn,
        )
    table = transfer_table_for(spec, p)
    if table is None:
        return []
    mapping = cache.mapping_for(p, ppn)
    mdigest = hashlib.sha1(repr(mapping.nodes).encode()).hexdigest()[:12]
    pdigest = _params_digest(params)
    global_elems = profile.total_global_elems()
    records = []
    for nb in vector_bytes:
        key = (
            system, spec.collective, spec.name, p, ppn, nb,
            cache.faults_label, timeline.label,
            cache.placement, cache.seed, cache.busy_fraction,
            mdigest, pdigest,
        )
        hit = _SIM_CACHE.get(key)
        if hit is None:
            obs.inc("cache.sim.miss")
            result = simulate_profile(
                table, profile, cache.topo, mapping, params, timeline,
                nb / params.itemsize,
            )
            if result.stalled:
                first = result.stalls[0]
                warnings.warn(
                    f"DES: cell ({spec.collective}, {spec.name}, p={p}, "
                    f"n_bytes={nb}) stalled under timeline "
                    f"{timeline.label!r}: {len(result.stalls)} flow(s) lost "
                    f"every route (first: step {first.step}, node "
                    f"{first.src_node}->{first.dst_node} at "
                    f"t={first.at:.3g}s); record carries stalled=True",
                    RuntimeWarning,
                )
            while len(_SIM_CACHE) >= _SIM_CACHE_MAX:
                _SIM_CACHE.pop(next(iter(_SIM_CACHE)))
            hit = _SIM_CACHE[key] = (result.time, result.stalled)
        else:
            obs.inc("cache.sim.hit")
        time, stalled = hit
        scale = (nb / params.itemsize) / profile.n_build
        records.append(
            SweepRecord(
                system=system,
                collective=spec.collective,
                algorithm=spec.name,
                family=spec.family,
                p=p,
                n_bytes=nb,
                time=float(time),
                global_bytes=float(global_elems * scale * params.itemsize),
                faults=cache.faults_label,
                ppn=ppn,
                timeline=timeline.label,
                stalled=stalled,
            )
        )
    return records
