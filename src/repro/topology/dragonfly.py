"""Dragonfly and Dragonfly+ topologies (LUMI Sec. 5.1, Leonardo Sec. 5.2).

Groups are internally fully connected (modelled non-blocking at the group
level, keyed per node pair); distinct groups connect through a limited
number of direct global links.  Minimal routing uses exactly one global hop.
``links_per_group_pair`` scales the global capacity: Dragonfly+ (Leonardo)
has more parallel global links between group pairs than a minimal Dragonfly,
which the cost model sees as more distinct shared resources.
"""

from __future__ import annotations

from repro.topology.base import Link, LinkClass, Topology

__all__ = ["Dragonfly", "DragonflyPlus"]


class Dragonfly(Topology):
    """a groups × g nodes, single-hop minimal global routing."""

    def __init__(self, num_groups: int, nodes_per_group: int, links_per_group_pair: int = 1):
        if num_groups <= 0 or nodes_per_group <= 0:
            raise ValueError("group dimensions must be positive")
        if links_per_group_pair <= 0:
            raise ValueError("links_per_group_pair must be positive")
        self.num_groups_ = num_groups
        self.nodes_per_group = nodes_per_group
        self.links_per_group_pair = links_per_group_pair

    @property
    def num_nodes(self) -> int:
        return self.num_groups_ * self.nodes_per_group

    def group_of(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_group

    def route(self, src: int, dst: int) -> list[Link]:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        gs, gd = self.group_of(src), self.group_of(dst)
        if gs == gd:
            a, b = min(src, dst), max(src, dst)
            return [Link(("intra", gs, a, b), LinkClass.LOCAL)]
        lo, hi = min(gs, gd), max(gs, gd)
        return [
            Link(("exit", gs, src % self.nodes_per_group), LinkClass.LOCAL),
            Link(("glob", lo, hi), LinkClass.GLOBAL, width=self.links_per_group_pair),
            Link(("entry", gd, dst % self.nodes_per_group), LinkClass.LOCAL),
        ]

    def __repr__(self) -> str:
        return f"Dragonfly({self.num_groups_}x{self.nodes_per_group})"


class DragonflyPlus(Dragonfly):
    """Dragonfly+ — groups are leaf/spine pods with richer global wiring.

    Behaviourally identical for group-crossing accounting; the extra global
    parallelism is expressed through a higher ``links_per_group_pair``.
    """

    def __init__(self, num_groups: int, nodes_per_group: int, links_per_group_pair: int = 4):
        super().__init__(num_groups, nodes_per_group, links_per_group_pair)

    def __repr__(self) -> str:
        return f"DragonflyPlus({self.num_groups_}x{self.nodes_per_group})"
