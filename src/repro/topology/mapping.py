"""Rank → node mappings (paper Sec. 2.2 and Sec. 5 methodology).

The paper's experiments request node counts "without any specific
placement"; the scheduler hands back nodes whose hostnames are numbered
consecutively across groups, and ranks are laid out block-wise (Slurm's
default).  Mappings here model that and the deviations studied in Fig. 5:

* :func:`block_mapping` — rank ``r`` → node ``r`` (1 ppn) or ``r // ppn``;
* :func:`allocation_mapping` — ranks onto an explicit node list (a job
  allocation possibly scattered over groups);
* :func:`hostname_sorted` — the paper's remedy when an allocation is not
  block-ordered: sort the allocated nodes and re-map (Sec. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.topology.base import Topology

__all__ = ["RankMap", "block_mapping", "allocation_mapping", "hostname_sorted"]


@dataclass(frozen=True)
class RankMap:
    """Immutable rank → node table with group lookups."""

    nodes: tuple[int, ...]  # nodes[rank] = node id

    @property
    def num_ranks(self) -> int:
        return len(self.nodes)

    def node_of(self, rank: int) -> int:
        return self.nodes[rank]

    def groups(self, topo: Topology) -> list[int]:
        """Group of each rank under ``topo``."""
        return [topo.group_of(v) for v in self.nodes]

    def ranks_per_group(self, topo: Topology) -> dict[int, int]:
        out: dict[int, int] = {}
        for g in self.groups(topo):
            out[g] = out.get(g, 0) + 1
        return out


def block_mapping(p: int, ppn: int = 1, first_node: int = 0) -> RankMap:
    """Slurm-default block distribution: consecutive ranks share nodes."""
    if p <= 0 or ppn <= 0:
        raise ValueError("p and ppn must be positive")
    return RankMap(tuple(first_node + r // ppn for r in range(p)))


def allocation_mapping(node_list: Sequence[int], ppn: int = 1) -> RankMap:
    """Ranks laid block-wise over an explicit allocated node list."""
    nodes = []
    for node in node_list:
        nodes.extend([node] * ppn)
    return RankMap(tuple(nodes))


def hostname_sorted(node_list: Sequence[int], ppn: int = 1) -> RankMap:
    """The paper's hostname-sort remap: allocate, then order nodes.

    On the studied systems hostnames number consecutively across groups, so
    sorting node ids restores the block property Bine's modulo distance
    assumes (Sec. 2.2).
    """
    return allocation_mapping(sorted(node_list), ppn)
