"""D-dimensional torus (Fugaku Sec. 5.4, Appendix D).

Dimension-ordered minimal routing; every mesh link is a distinct directed
shared resource of class ``torus`` (the paper: "on a torus, all links can be
considered oversubscribed").  For global-traffic reporting, groups are slabs
along dimension 0 — a coarse but monotone locality proxy used only for the
traffic *metric*, never for routing.
"""

from __future__ import annotations

from repro.topology.base import Link, LinkClass, Topology

__all__ = ["Torus"]


class Torus(Topology):
    """Torus with arbitrary per-dimension extents."""

    def __init__(self, dims: tuple[int, ...]):
        if not dims or any(d <= 0 for d in dims):
            raise ValueError("torus dims must be positive")
        self.dims = tuple(dims)

    @property
    def num_nodes(self) -> int:
        out = 1
        for d in self.dims:
            out *= d
        return out

    @property
    def num_dims(self) -> int:
        return len(self.dims)

    def coords(self, node: int) -> tuple[int, ...]:
        self._check_node(node)
        out = []
        for d in reversed(self.dims):
            out.append(node % d)
            node //= d
        return tuple(reversed(out))

    def node_at(self, coords: tuple[int, ...]) -> int:
        r = 0
        for c, d in zip(coords, self.dims):
            r = r * d + c % d
        return r

    def group_of(self, node: int) -> int:
        return self.coords(node)[0]

    def route(self, src: int, dst: int) -> list[Link]:
        self._check_node(src)
        self._check_node(dst)
        links: list[Link] = []
        cur = list(self.coords(src))
        tgt = self.coords(dst)
        for dim, d in enumerate(self.dims):
            delta = (tgt[dim] - cur[dim]) % d
            step = 1 if delta <= d - delta else -1
            hops = delta if step == 1 else d - delta
            for _ in range(hops):
                here = tuple(cur)
                cur[dim] = (cur[dim] + step) % d
                links.append(
                    Link(("t", dim, here, step), LinkClass.TORUS)
                )
        return links

    def torus_distance(self, src: int, dst: int) -> int:
        """Total minimal hop count (the Fig. 16 'actual distance')."""
        cs, cd = self.coords(src), self.coords(dst)
        total = 0
        for a, b, d in zip(cs, cd, self.dims):
            delta = abs(a - b)
            total += min(delta, d - delta)
        return total

    def __repr__(self) -> str:
        return f"Torus({'x'.join(map(str, self.dims))})"
