"""Oversubscribed two-level fat tree (paper Fig. 1, MareNostrum 5 Sec. 5.3).

``nodes_per_subtree`` nodes hang under each full-bandwidth subtree (leaf
island); subtrees connect upward through ``uplinks_per_subtree`` shared
links (``nodes_per_subtree / uplinks_per_subtree`` = the oversubscription
ratio, e.g. 2:1 on MareNostrum 5).  Traffic within a subtree is
non-blocking; traffic between subtrees takes one uplink and one downlink,
both class ``global``.
"""

from __future__ import annotations

from repro.topology.base import Link, LinkClass, Topology

__all__ = ["FatTree"]


class FatTree(Topology):
    """Two-level fat tree with per-subtree uplink oversubscription."""

    def __init__(self, num_subtrees: int, nodes_per_subtree: int, oversubscription: float = 2.0):
        if num_subtrees <= 0 or nodes_per_subtree <= 0:
            raise ValueError("subtree counts must be positive")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1")
        self.num_subtrees = num_subtrees
        self.nodes_per_subtree = nodes_per_subtree
        self.oversubscription = oversubscription
        self.uplinks_per_subtree = max(1, round(nodes_per_subtree / oversubscription))

    @property
    def num_nodes(self) -> int:
        return self.num_subtrees * self.nodes_per_subtree

    def group_of(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_subtree

    def route(self, src: int, dst: int) -> list[Link]:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        gs, gd = self.group_of(src), self.group_of(dst)
        if gs == gd:
            # Full-bandwidth inside a subtree: one leaf-level hop, modelled as
            # a dedicated (non-shared) local link pair keyed by the node pair.
            a, b = min(src, dst), max(src, dst)
            return [Link(("leaf", gs, a, b), LinkClass.LOCAL)]
        w = self.uplinks_per_subtree
        return [
            Link(("up", gs), LinkClass.GLOBAL, width=w),
            Link(("down", gd), LinkClass.GLOBAL, width=w),
        ]

    def __repr__(self) -> str:
        return (
            f"FatTree({self.num_subtrees}x{self.nodes_per_subtree}, "
            f"{self.oversubscription}:1)"
        )
