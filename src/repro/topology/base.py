"""Topology abstraction: nodes, groups, minimal routes, link classes.

The paper's central metric is *bytes crossing global links* — links between
fully connected groups (Dragonfly/Dragonfly+ groups, fat-tree subtrees) or,
on a torus, any link at all.  A topology therefore exposes:

* ``group_of(node)`` — the locality unit whose boundary defines "global";
* ``route(src, dst)`` — the minimal path as a list of :class:`Link`s, each
  with a class (``local`` / ``global`` / ``torus`` / ``intra``) that the
  cost model prices separately.

Injection (node → first switch) is *not* part of routes; the cost model
accounts for it from per-node send totals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["Link", "Topology", "LinkClass"]


class LinkClass:
    """Link class names (plain strings so they hash/compare cheaply)."""

    LOCAL = "local"       # intra-group network
    GLOBAL = "global"     # inter-group / oversubscribed level
    TORUS = "torus"       # torus mesh link (all oversubscribed, Sec. 5.4.3)
    INTRA = "intra"       # intra-node (e.g. GPU clique)


@dataclass(frozen=True)
class Link:
    """A shared network resource.  ``key`` must be unique per resource.

    ``width`` models adaptive routing over parallel physical links: a
    Dragonfly group pair with 16 global links is one :class:`Link` of width
    16 — the cost model divides its load by the width, as adaptive routing
    spreads flows across the bundle (paper Sec. 5.1.1 notes minimal-path
    accounting is a lower bound for exactly this reason).  Width-derated
    fault scenarios (:mod:`repro.faults`) scale widths by factors in
    ``(0, 1]``, so widths are not necessarily integral.
    """

    key: tuple
    cls: str
    width: float = 1


class Topology(ABC):
    """Abstract network: node count, groups, minimal routing."""

    @property
    @abstractmethod
    def num_nodes(self) -> int: ...

    @abstractmethod
    def group_of(self, node: int) -> int:
        """Locality group of ``node`` (global traffic = inter-group bytes)."""

    @abstractmethod
    def route(self, src: int, dst: int) -> list[Link]:
        """Minimal path between distinct nodes as shared-link list."""

    # -- shared helpers -----------------------------------------------------

    @property
    def num_groups(self) -> int:
        # Cached on the instance: profiling asks for this once per schedule,
        # and the set comprehension is O(num_nodes) on every access.
        cached = getattr(self, "_num_groups_cache", None)
        if cached is None:
            cached = len({self.group_of(v) for v in range(self.num_nodes)})
            self._num_groups_cache = cached
        return cached

    def crosses_groups(self, src: int, dst: int) -> bool:
        return self.group_of(src) != self.group_of(dst)

    def hops(self, src: int, dst: int) -> tuple[int, int]:
        """``(local_hops, global_hops)`` on the minimal route."""
        local = global_ = 0
        for link in self.route(src, dst):
            if link.cls in (LinkClass.GLOBAL,):
                global_ += 1
            else:
                local += 1
        return local, global_

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range for {self.num_nodes} nodes")
