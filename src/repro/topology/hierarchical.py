"""Two-level node model: multiple ranks (GPUs/processes) per network node.

Wraps an inter-node topology: ranks map onto nodes (``ppn`` per node);
intra-node traffic rides a fully connected clique of class ``intra`` (e.g.
NVLink on Leonardo/MareNostrum 5, Sec. 6.2), inter-node traffic takes the
wrapped topology's route between the owning nodes.

This topology's "nodes" are *ranks*; use it when the schedule's rank count
equals ``nodes × ppn``.
"""

from __future__ import annotations

from repro.topology.base import Link, LinkClass, Topology

__all__ = ["MultiRankNodes"]


class MultiRankNodes(Topology):
    """``ppn`` ranks per node of an underlying inter-node topology."""

    def __init__(self, inner: Topology, ppn: int):
        if ppn <= 0:
            raise ValueError("ppn must be positive")
        self.inner = inner
        self.ppn = ppn

    @property
    def num_nodes(self) -> int:  # ranks, in this topology's address space
        return self.inner.num_nodes * self.ppn

    def node_of(self, rank: int) -> int:
        self._check_node(rank)
        return rank // self.ppn

    def group_of(self, rank: int) -> int:
        return self.inner.group_of(self.node_of(rank))

    def route(self, src: int, dst: int) -> list[Link]:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        ns, nd = self.node_of(src), self.node_of(dst)
        if ns == nd:
            a, b = min(src, dst), max(src, dst)
            return [Link(("gpu", ns, a, b), LinkClass.INTRA)]
        return self.inner.route(ns, nd)

    def __repr__(self) -> str:
        return f"MultiRankNodes({self.inner!r}, ppn={self.ppn})"
