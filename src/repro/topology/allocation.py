"""Synthetic job allocations over grouped systems (paper Fig. 5 substrate).

The paper measured one/two weeks of real Slurm allocations on Leonardo and
LUMI.  We cannot access those traces, so this module samples allocations the
way a batch scheduler produces them:

* the system is partially busy — each group has a random number of free
  nodes;
* a job takes free nodes group by group (block-ish placement, hostnames
  consecutive), so it lands on a *contiguous-ish but fragmented* group set;
* heavier fragmentation appears when the machine is busier.

What Fig. 5 measures depends only on each job's group-occupancy vector,
which this reproduces distributionally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SystemShape", "JobAllocation", "AllocationSampler"]


@dataclass(frozen=True)
class SystemShape:
    """Grouped system: ``num_groups`` groups × ``nodes_per_group`` nodes."""

    name: str
    num_groups: int
    nodes_per_group: int

    @property
    def total_nodes(self) -> int:
        return self.num_groups * self.nodes_per_group


@dataclass(frozen=True)
class JobAllocation:
    """One job's nodes (global node ids, block-ordered as Slurm reports)."""

    shape: SystemShape
    nodes: tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def group_of_rank(self, rank: int) -> int:
        return self.nodes[rank] // self.shape.nodes_per_group

    def groups_spanned(self) -> int:
        return len({n // self.shape.nodes_per_group for n in self.nodes})


class AllocationSampler:
    """Sample scheduler-like allocations for jobs of a given size."""

    def __init__(self, shape: SystemShape, seed: int = 0, busy_fraction: float = 0.5):
        if not 0 <= busy_fraction < 1:
            raise ValueError("busy_fraction must be in [0, 1)")
        self.shape = shape
        self.rng = np.random.default_rng(seed)
        self.busy_fraction = busy_fraction

    def sample(self, num_nodes: int) -> JobAllocation:
        """Allocate ``num_nodes`` free nodes, walking groups in order.

        Each group independently has ``Binomial(nodes_per_group, 1−busy)``
        free nodes at random offsets; the job consumes free nodes group by
        group starting from a random group (the scheduler's scan origin).
        This yields block-ordered, fragmented allocations like the real
        traces: small jobs often fit one group, large jobs span many.
        """
        shape = self.shape
        if num_nodes > shape.total_nodes:
            raise ValueError("job larger than the machine")
        free_per_group = self.rng.binomial(
            shape.nodes_per_group, 1.0 - self.busy_fraction, size=shape.num_groups
        )
        # Ensure enough total capacity (resample busiest groups upward).
        deficit = num_nodes - int(free_per_group.sum())
        gi = 0
        while deficit > 0:
            room = shape.nodes_per_group - free_per_group[gi % shape.num_groups]
            take = min(room, deficit)
            free_per_group[gi % shape.num_groups] += take
            deficit -= take
            gi += 1
        start = int(self.rng.integers(shape.num_groups))
        nodes: list[int] = []
        for k in range(shape.num_groups):
            g = (start + k) % shape.num_groups
            avail = int(free_per_group[g])
            if avail == 0 or len(nodes) >= num_nodes:
                continue
            take = min(avail, num_nodes - len(nodes))
            offsets = np.sort(
                self.rng.choice(shape.nodes_per_group, size=take, replace=False)
            )
            base = g * shape.nodes_per_group
            nodes.extend(int(base + off) for off in offsets)
            if len(nodes) >= num_nodes:
                break
        assert len(nodes) == num_nodes
        return JobAllocation(shape, tuple(sorted(nodes)))
