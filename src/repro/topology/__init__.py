"""Network topology models: fat tree, Dragonfly(+), torus, multi-rank nodes."""

from repro.topology.allocation import AllocationSampler, JobAllocation, SystemShape
from repro.topology.base import Link, LinkClass, Topology
from repro.topology.dragonfly import Dragonfly, DragonflyPlus
from repro.topology.fattree import FatTree
from repro.topology.hierarchical import MultiRankNodes
from repro.topology.mapping import (
    RankMap,
    allocation_mapping,
    block_mapping,
    hostname_sorted,
)
from repro.topology.torus import Torus

__all__ = [
    "Topology",
    "Link",
    "LinkClass",
    "FatTree",
    "Dragonfly",
    "DragonflyPlus",
    "Torus",
    "MultiRankNodes",
    "RankMap",
    "block_mapping",
    "allocation_mapping",
    "hostname_sorted",
    "AllocationSampler",
    "JobAllocation",
    "SystemShape",
]
