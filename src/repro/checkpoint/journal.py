"""Write-ahead record journal: crash-safe campaign progress on disk.

A *journal* is an append-only JSONL file that a campaign streams
completed cells into as they finish, so a run killed at cell 950 of 1056
— OOM-killed pool, batch-scheduler SIGTERM, Ctrl-C — can resume from
cell 951 instead of from zero.  The format is deliberately boring:

* **line 1** is a sealed header carrying the schema version, the
  manifest digest (:func:`manifest_digest`), the resolved profile
  engine and the scenario labels — resume refuses a journal written by
  a different campaign instead of silently mixing records;
* every following line is one entry — a ``plan`` (the cell list of one
  ``(scenario, grid)``), a ``cell`` (that cell's finished
  :class:`~repro.analysis.sweep.SweepRecord` rows), or a ``resume``
  marker appended each time a run reopens the file;
* every line (header included) is prefixed with the CRC-32 of its JSON
  payload and fsynced on batch, so a torn tail write — the page the
  kernel never flushed before the SIGKILL — is *detected and truncated*
  on the next open instead of poisoning the file.  Corruption anywhere
  but the tail (entries after a bad CRC) is a hard
  :class:`~repro.runtime.errors.JournalError`: that file was not torn,
  it was damaged.

Records round-trip exactly: ``json.dumps`` emits shortest-round-trip
floats and :meth:`SweepRecord.from_dict` rebuilds the frozen dataclass,
so a resumed campaign's records — and everything derived from them:
summaries, tune-table digests, baselines — are byte-identical to an
uninterrupted run's (asserted in ``tests/test_checkpoint.py``).
Identity is provable because placements are pre-sampled in serial
first-touch order (PR 1): cell results never depend on which cells ran
before them.

Example::

    >>> import tempfile, pathlib
    >>> path = pathlib.Path(tempfile.mkdtemp()) / "demo.journal"
    >>> with JournalWriter(path, {"kind": "header", "schema": JOURNAL_SCHEMA,
    ...                           "version": JOURNAL_VERSION}) as w:
    ...     w.append({"kind": "cell", "collective": "bcast", "p": 16})
    ...     w.flush()
    >>> doc = read_journal(path)
    >>> doc.entries[0]["collective"]
    'bcast'
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.runtime.errors import InterruptedRunError, JournalError

__all__ = [
    "JOURNAL_SCHEMA",
    "JOURNAL_VERSION",
    "JournalWriter",
    "JournalDoc",
    "read_journal",
    "manifest_digest",
    "journal_path",
    "CampaignJournal",
    "GridJournal",
    "summarize_journal",
]

#: schema identifier stamped into (and required of) every journal header
JOURNAL_SCHEMA = "repro/journal"
#: bump when the entry format changes incompatibly
JOURNAL_VERSION = 1

#: hex CRC-32 digits + one separating space before the JSON payload
_CRC_WIDTH = 8


def _encode_line(entry: dict) -> bytes:
    payload = json.dumps(entry, sort_keys=True).encode()
    return b"%08x " % zlib.crc32(payload) + payload + b"\n"


def _decode_line(line: bytes) -> dict | None:
    """Entry for one complete journal line; ``None`` when torn/corrupt."""
    if not line.endswith(b"\n") or len(line) < _CRC_WIDTH + 2:
        return None
    crc_text, sep, payload = (
        line[:_CRC_WIDTH], line[_CRC_WIDTH:_CRC_WIDTH + 1],
        line[_CRC_WIDTH + 1:-1],
    )
    if sep != b" ":
        return None
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(payload) != expected:
        return None
    try:
        entry = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return entry if isinstance(entry, dict) else None


def manifest_digest(manifest) -> str:
    """Stable digest of a campaign manifest (the journal identity seal).

    A pure function of :func:`~repro.cli.manifest.manifest_to_dict`, so
    any change to the campaign a journal was recorded for — grids,
    placement, seed, scenarios — changes the digest and makes resume
    refuse the stale journal.

    Example::

        >>> from repro.cli.manifest import manifest_from_dict
        >>> m = manifest_from_dict({
        ...     "campaign": {"name": "t", "system": "lumi"},
        ...     "grid": [{"collectives": ["bcast"], "node_counts": [16]}],
        ... })
        >>> len(manifest_digest(m))
        16
    """
    from repro.cli.manifest import manifest_to_dict

    canon = json.dumps(manifest_to_dict(manifest), sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def journal_path(directory: str | os.PathLike, campaign_name: str) -> Path:
    """The journal file a campaign uses under ``--journal DIR``."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", campaign_name)
    return Path(directory) / f"{slug}.journal"


class JournalWriter:
    """Append-only journal file handle with batched fsync.

    ``append`` buffers encoded lines; ``flush`` writes the batch, flushes
    and fsyncs — one durability point per completed cell, not per line.
    Opening with a ``header`` creates the file (parents included) and
    seals the header as line 1; ``header=None`` appends to an existing
    file (the resume path — validate it with :func:`read_journal` first).
    """

    def __init__(self, path: str | os.PathLike, header: dict | None):
        self.path = Path(path)
        self._buffer: list[bytes] = []
        if header is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "xb")
            self._buffer.append(_encode_line(header))
            self.flush()
        else:
            self._fh = open(self.path, "ab")

    def append(self, entry: dict) -> None:
        """Buffer one entry (written and fsynced by the next ``flush``)."""
        self._buffer.append(_encode_line(entry))
        obs.inc("checkpoint.journal.append")

    def flush(self) -> None:
        """Write the buffered batch, flush, fsync — the durability point."""
        if not self._buffer:
            return
        with obs.span("checkpoint.journal.flush", entries=len(self._buffer)):
            self._fh.write(b"".join(self._buffer))
            self._buffer.clear()
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalDoc:
    """A decoded journal: sealed header, entries, and tail state."""

    path: Path
    header: dict
    entries: list[dict]
    #: True when a torn tail write was dropped (and, under ``repair``,
    #: physically truncated away)
    truncated: bool = False


def read_journal(path: str | os.PathLike, repair: bool = False) -> JournalDoc:
    """Decode a journal file, dropping (optionally truncating) a torn tail.

    A bad line at the very end of the file is the signature of a crash
    mid-``flush``: it is dropped, and with ``repair=True`` the file is
    truncated back to the last sound line so subsequent appends extend a
    clean prefix.  A bad line *followed by sound entries* means the file
    was damaged, not torn — that is a :class:`JournalError`, as is a
    missing or foreign header.
    """
    path = Path(path)
    blob = path.read_bytes()
    offset = 0
    good_end = 0
    decoded: list[dict] = []
    bad_at: int | None = None
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        line = blob[offset:] if newline < 0 else blob[offset:newline + 1]
        entry = _decode_line(line)
        if entry is None:
            if bad_at is None:
                bad_at = offset
        elif bad_at is not None:
            raise JournalError(
                f"{path}: corrupt entry at byte {bad_at} is followed by "
                "further entries — the file is damaged, not torn; refusing "
                "to resume from it"
            )
        else:
            decoded.append(entry)
            good_end = offset + len(line)
        if newline < 0:
            break
        offset = newline + 1
    if not decoded:
        raise JournalError(f"{path}: no sound journal header")
    header, entries = decoded[0], decoded[1:]
    if header.get("kind") != "header" or header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"{path}: not a record journal (missing {JOURNAL_SCHEMA!r} header)"
        )
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: journal version {header.get('version')!r} is not "
            f"{JOURNAL_VERSION} — written by an incompatible repro"
        )
    truncated = bad_at is not None
    if truncated and repair:
        with open(path, "r+b") as fh:
            fh.truncate(good_end)
    return JournalDoc(path=path, header=header, entries=entries,
                      truncated=truncated)


# -- campaign orchestration ---------------------------------------------------


def _cell_key(scenario: str, timeline: str, grid: int, collective: str,
              p: int) -> tuple:
    return (scenario, timeline, int(grid), collective, int(p))


class CampaignJournal:
    """One campaign's journal: header seal, done-cell index, append path.

    Created by :func:`~repro.cli.campaign.run_campaign` when journaling
    is requested.  ``resume=False`` refuses an existing file (a fresh
    run must never silently clobber a dead run's progress); with
    ``resume=True`` an existing journal is repaired (torn tail
    truncated), validated against the campaign's manifest digest, engine
    and scenario labels, and its completed cells are indexed so the
    sweep layer can skip them.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        manifest,
        *,
        engine: str,
        scenarios,
        resume: bool = False,
    ):
        self.path = journal_path(directory, manifest.name)
        self.engine = engine
        labels = [[s.label, s.timeline_label] for s in scenarios]
        header = {
            "kind": "header",
            "schema": JOURNAL_SCHEMA,
            "version": JOURNAL_VERSION,
            "campaign": manifest.name,
            "system": manifest.system,
            "manifest_digest": manifest_digest(manifest),
            "engine": engine,
            "scenarios": labels,
        }
        self._done: dict[tuple, list[dict]] = {}
        self._planned: dict[tuple, list[tuple[str, int]]] = {}
        self.resume_count = 0
        if self.path.exists():
            if not resume:
                raise JournalError(
                    f"{self.path}: journal already exists — resume the dead "
                    "run with --resume, or remove the file to start over"
                )
            doc = read_journal(self.path, repair=True)
            self._check_header(doc.header, header)
            for entry in doc.entries:
                kind = entry.get("kind")
                if kind == "cell":
                    key = _cell_key(entry["scenario"], entry["timeline"],
                                    entry["grid"], entry["collective"],
                                    entry["p"])
                    self._done[key] = entry["records"]
                elif kind == "plan":
                    pkey = (entry["scenario"], entry["timeline"],
                            int(entry["grid"]))
                    self._planned[pkey] = [
                        (c, int(p)) for c, p in entry["cells"]
                    ]
                elif kind == "resume":
                    self.resume_count += 1
            self.resume_count += 1
            self._writer = JournalWriter(self.path, header=None)
            self._writer.append({"kind": "resume"})
            self._writer.flush()
            obs.inc("checkpoint.resume.opened")
        else:
            self._writer = JournalWriter(self.path, header=header)

    def _check_header(self, on_disk: dict, expected: dict) -> None:
        for key in ("manifest_digest", "engine", "scenarios", "campaign"):
            if on_disk.get(key) != expected[key]:
                raise JournalError(
                    f"{self.path}: journal {key} {on_disk.get(key)!r} does "
                    f"not match this run ({expected[key]!r}) — it records a "
                    "different campaign; refusing to resume"
                )

    @property
    def cells_done(self) -> int:
        return len(self._done)

    @property
    def cells_planned(self) -> int:
        return sum(len(cells) for cells in self._planned.values())

    def grid_scope(self, scenario: str, timeline: str,
                   grid: int) -> "GridJournal":
        """The journal view one ``(scenario, grid)`` sweep reads/writes."""
        return GridJournal(self, scenario, timeline, grid)

    def interrupted_error(self, signal_name: str) -> InterruptedRunError:
        remaining = max(0, self.cells_planned - self.cells_done)
        return InterruptedRunError(signal_name, self.cells_done, remaining)

    def close(self) -> None:
        self._writer.close()


class GridJournal:
    """:class:`CampaignJournal` bound to one ``(scenario, grid)`` scope.

    This is the ``cell_sink`` duck type :func:`~repro.analysis.sweep.
    sweep_system` streams into: ``plan`` seals the cell list, ``lookup``
    serves already-journaled cells on resume, ``store`` appends and
    fsyncs a finished cell (and gives the chaos harness its cell
    boundary — see :mod:`repro.checkpoint.chaos`).
    """

    def __init__(self, journal: CampaignJournal, scenario: str,
                 timeline: str, grid: int):
        self._journal = journal
        self._scenario = scenario
        self._timeline = timeline
        self._grid = int(grid)

    def plan(self, cells) -> None:
        """Seal this scope's cell list (idempotent; mismatch is an error)."""
        cells = [(c, int(p)) for c, p in cells]
        pkey = (self._scenario, self._timeline, self._grid)
        known = self._journal._planned.get(pkey)
        if known is not None:
            if known != cells:
                raise JournalError(
                    f"{self._journal.path}: journaled plan for scenario "
                    f"{self._scenario!r} grid {self._grid} disagrees with "
                    "this run (the code or registry changed since the "
                    "journal was written); refusing to resume"
                )
            return
        self._journal._planned[pkey] = cells
        self._journal._writer.append({
            "kind": "plan",
            "scenario": self._scenario,
            "timeline": self._timeline,
            "grid": self._grid,
            "cells": [list(c) for c in cells],
        })
        self._journal._writer.flush()

    def lookup(self, collective: str, p: int):
        """Journaled records for one cell, or ``None`` when not yet done."""
        # lazy import: repro.analysis.sweep imports repro.checkpoint.drain,
        # so the record type cannot be a module-level import here
        from repro.analysis.sweep import SweepRecord

        key = _cell_key(self._scenario, self._timeline, self._grid,
                        collective, p)
        raw = self._journal._done.get(key)
        if raw is None:
            return None
        obs.inc("checkpoint.resume.skipped")
        return [SweepRecord.from_dict(d) for d in raw]

    def store(self, collective: str, p: int, records) -> None:
        """Append one finished cell, fsync, and cross a chaos boundary."""
        from repro.checkpoint import chaos

        key = _cell_key(self._scenario, self._timeline, self._grid,
                        collective, p)
        raw = [r.to_dict() for r in records]
        self._journal._done[key] = raw
        self._journal._writer.append({
            "kind": "cell",
            "scenario": self._scenario,
            "timeline": self._timeline,
            "grid": self._grid,
            "collective": collective,
            "p": int(p),
            "records": raw,
        })
        self._journal._writer.flush()
        chaos.cell_boundary()

    def interrupted_error(self, signal_name: str) -> InterruptedRunError:
        return self._journal.interrupted_error(signal_name)


def summarize_journal(doc: JournalDoc) -> dict:
    """Operator view of a journal: progress per scenario, resume count.

    The data behind ``repro stats DEAD_RUN.journal`` — how much of a
    killed campaign survives, and what a ``--resume`` would recompute.
    """
    scenarios: dict[str, dict] = {}

    def bucket(scenario: str, timeline: str) -> dict:
        label = scenario if timeline == "none" else f"{scenario}@{timeline}"
        return scenarios.setdefault(
            label, {"planned": 0, "done": 0, "records": 0}
        )

    resumes = 0
    for entry in doc.entries:
        kind = entry.get("kind")
        if kind == "plan":
            b = bucket(entry["scenario"], entry["timeline"])
            b["planned"] += len(entry["cells"])
        elif kind == "cell":
            b = bucket(entry["scenario"], entry["timeline"])
            b["done"] += 1
            b["records"] += len(entry["records"])
        elif kind == "resume":
            resumes += 1
    for b in scenarios.values():
        b["remaining"] = max(0, b["planned"] - b["done"])
    return {
        "journal": doc.path.name,
        "campaign": doc.header.get("campaign"),
        "system": doc.header.get("system"),
        "engine": doc.header.get("engine"),
        "manifest_digest": doc.header.get("manifest_digest"),
        "resumes": resumes,
        "truncated_tail": doc.truncated,
        "cells_done": sum(b["done"] for b in scenarios.values()),
        "cells_planned": sum(b["planned"] for b in scenarios.values()),
        "scenarios": scenarios,
    }
