"""Graceful-drain signal handling for journaled campaign runs.

A batch scheduler's SIGTERM (or an operator's Ctrl-C) should not vaporize
an in-flight campaign: with a journal active, the first signal only *asks*
the run to stop.  :func:`drain_scope` installs handlers that record the
request; the sweep layer polls :func:`drain_requested` at cell
boundaries, stops dispatching new cells, lets in-flight shards finish (or
time out), flushes the journal, and raises
:class:`~repro.runtime.errors.InterruptedRunError` — exit code 9, the
documented "your progress is safe, resume with ``--resume``" code.  A
*second* signal means the operator is done waiting: handlers are restored
to their defaults and :class:`KeyboardInterrupt` aborts immediately
(exit code 130).

Handlers are only installed when journaling is on (an unjournaled run has
nothing to drain *to* — Ctrl-C keeps its ordinary meaning) and only on
the main thread of the main interpreter; elsewhere the scope is a no-op.
"""

from __future__ import annotations

import signal
import sys
from contextlib import contextmanager

__all__ = ["drain_scope", "drain_requested"]

#: name of the signal that requested a drain, or ``None`` — module-level
#: because signal handlers are process-global anyway
_REQUESTED: list[str | None] = [None]

_DRAIN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def drain_requested() -> str | None:
    """The signal name that requested a drain, or ``None``.

    Polled by the sweep layer at cell boundaries: truthy means stop
    dispatching new cells and raise ``InterruptedRunError`` once
    in-flight work has been absorbed and journaled.
    """
    return _REQUESTED[0]


def _handler(signum, frame) -> None:
    name = signal.Signals(signum).name
    if _REQUESTED[0] is None:
        _REQUESTED[0] = name
        sys.stderr.write(
            f"# {name}: draining — in-flight cells will be journaled; "
            "signal again to abort immediately\n"
        )
        return
    # second signal: the operator wants out *now*
    for sig in _DRAIN_SIGNALS:
        signal.signal(sig, signal.SIG_DFL)
    raise KeyboardInterrupt


@contextmanager
def drain_scope():
    """Install first-signal-drains / second-signal-aborts handlers.

    Example::

        >>> with drain_scope():
        ...     drain_requested() is None
        True
    """
    try:
        previous = [signal.signal(sig, _handler) for sig in _DRAIN_SIGNALS]
    except ValueError:  # not the main thread — signals are not ours to claim
        yield
        return
    _REQUESTED[0] = None
    try:
        yield
    finally:
        for sig, old in zip(_DRAIN_SIGNALS, previous):
            try:
                signal.signal(sig, old)
            except ValueError:
                pass
        _REQUESTED[0] = None
