"""Seeded chaos injection: kill the campaign at a random cell boundary.

``REPRO_CHAOS=kill_after=N[,seed=S][,signal=kill|term|int]`` arms a
process-wide boundary counter that :meth:`GridJournal.store
<repro.checkpoint.journal.GridJournal.store>` ticks each time a *new*
cell lands in the journal.  When the counter reaches the armed boundary
the process signals itself:

* ``signal=kill`` (the default) is ``SIGKILL`` — the OOM-killer
  simulation: no handlers, no atexit, no flush beyond what the journal
  already fsynced.  Resume-to-identical after *this* is the whole
  point of the write-ahead design.
* ``signal=term`` / ``signal=int`` deliver ``SIGTERM``/``SIGINT``
  instead, exercising the real drain path (exit code 9) at a
  deterministic boundary — no timing races in tests.

With ``seed=S`` the boundary is drawn uniformly from ``[1, N]`` by
``random.Random(S)`` (reproducible randomness for the chaos driver);
without a seed the boundary is exactly ``N``.  The counter only ticks on
journal *stores*, never on resume skips, so every chaos-interrupted
rerun journals at least one new cell before dying — a
kill/resume/kill/… loop always terminates.

The variable is parsed once per process; an unparsable value warns
(:class:`RuntimeWarning`, once) and disables injection — chaos config
must never take down a production run on its own.
"""

from __future__ import annotations

import os
import random
import signal
import sys
import warnings

from repro import obs

__all__ = ["CHAOS_ENV", "cell_boundary", "chaos_boundary"]

CHAOS_ENV = "REPRO_CHAOS"

_SIGNALS = {
    "kill": signal.SIGKILL,
    "term": signal.SIGTERM,
    "int": signal.SIGINT,
}

#: ``[parsed?, boundary|None, signal|None, ticks]`` — process-global by
#: design: chaos is about killing *this* process
_STATE: list = [False, None, None, 0]


def _parse(raw: str):
    """``(boundary, signal)`` from a ``REPRO_CHAOS`` value, or ``None``."""
    kill_after = None
    seed = None
    sig = signal.SIGKILL
    for part in raw.split(","):
        key, eq, value = part.strip().partition("=")
        if not eq:
            raise ValueError(f"expected key=value, got {part!r}")
        if key == "kill_after":
            kill_after = int(value)
        elif key == "seed":
            seed = int(value)
        elif key == "signal":
            if value not in _SIGNALS:
                raise ValueError(f"unknown signal {value!r}")
            sig = _SIGNALS[value]
        else:
            raise ValueError(f"unknown key {key!r}")
    if kill_after is None or kill_after < 1:
        raise ValueError("kill_after must be a positive integer")
    boundary = (
        random.Random(seed).randint(1, kill_after) if seed is not None
        else kill_after
    )
    return boundary, sig


def _load() -> None:
    if _STATE[0]:
        return
    _STATE[0] = True
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return
    try:
        _STATE[1], _STATE[2] = _parse(raw)
    except ValueError as exc:
        warnings.warn(
            f"{CHAOS_ENV}={raw!r} is unparsable ({exc}); chaos injection "
            "disabled",
            RuntimeWarning,
            stacklevel=3,
        )
        return
    obs.inc("checkpoint.chaos.armed")


def chaos_boundary() -> int | None:
    """The armed kill boundary (for diagnostics), or ``None`` when off."""
    _load()
    return _STATE[1]


def cell_boundary() -> None:
    """Tick the chaos counter; kill the process at the armed boundary.

    Called by the journal on every cell *store* (after the fsync — the
    dying run's last cell is always durable).  A no-op unless
    ``REPRO_CHAOS`` armed a boundary.
    """
    _load()
    boundary = _STATE[1]
    if boundary is None:
        return
    _STATE[3] += 1
    if _STATE[3] < boundary:
        return
    sys.stderr.write(
        f"# chaos: boundary {boundary} reached, signalling self with "
        f"{signal.Signals(_STATE[2]).name}\n"
    )
    sys.stderr.flush()
    _STATE[1] = None  # SIGTERM/SIGINT return here; never fire twice
    os.kill(os.getpid(), _STATE[2])
