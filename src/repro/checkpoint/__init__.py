"""Crash-safe campaign execution: journal, resume, drain, chaos.

The preemption-tolerance layer for campaign-scale sweeps.  A journaled
run (``repro campaign M --journal DIR``) streams every completed cell
into a CRC'd, fsynced write-ahead journal; a killed run resumes
(``--resume``) byte-identical to an uninterrupted one; SIGINT/SIGTERM
drain gracefully instead of vaporizing progress; and a seeded chaos
harness proves all of it by killing the process on purpose.

* :mod:`repro.checkpoint.journal` — the on-disk format and the
  campaign/grid journal objects the sweep layer streams into
* :mod:`repro.checkpoint.drain` — first-signal-drains,
  second-signal-aborts handling
* :mod:`repro.checkpoint.chaos` — ``REPRO_CHAOS`` fault injection at
  cell boundaries
"""

from repro.checkpoint.chaos import CHAOS_ENV, chaos_boundary
from repro.checkpoint.drain import drain_requested, drain_scope
from repro.checkpoint.journal import (
    JOURNAL_SCHEMA,
    JOURNAL_VERSION,
    CampaignJournal,
    GridJournal,
    JournalDoc,
    JournalWriter,
    journal_path,
    manifest_digest,
    read_journal,
    summarize_journal,
)

__all__ = [
    "CHAOS_ENV",
    "chaos_boundary",
    "drain_requested",
    "drain_scope",
    "JOURNAL_SCHEMA",
    "JOURNAL_VERSION",
    "CampaignJournal",
    "GridJournal",
    "JournalDoc",
    "JournalWriter",
    "journal_path",
    "manifest_digest",
    "read_journal",
    "summarize_journal",
]
