"""Text boxplot statistics (Figs. 5, 9b, 10b, 11a, 11b are boxplot figures)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BoxStats", "box_stats", "format_box_row"]


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean, paper-style whiskers (1.5 IQR)."""

    count: int
    mean: float
    q1: float
    median: float
    q3: float
    whisker_lo: float
    whisker_hi: float
    min: float
    max: float


def box_stats(values: Sequence[float]) -> BoxStats:
    if not len(values):
        raise ValueError("no samples")
    arr = np.asarray(values, dtype=float)
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_limit, hi_limit = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    inside = arr[(arr >= lo_limit) & (arr <= hi_limit)]
    return BoxStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        whisker_lo=float(inside.min()) if inside.size else float(arr.min()),
        whisker_hi=float(inside.max()) if inside.size else float(arr.max()),
        min=float(arr.min()),
        max=float(arr.max()),
    )


def format_box_row(label: str, stats: BoxStats, unit: str = "%") -> str:
    return (
        f"{label:<22} n={stats.count:<5} "
        f"whisk[{stats.whisker_lo:7.1f}, {stats.whisker_hi:7.1f}]{unit} "
        f"Q1={stats.q1:6.1f} med={stats.median:6.1f} Q3={stats.q3:6.1f} "
        f"mean={stats.mean:6.1f}{unit}"
    )
