"""Grid-scale schedule verification — the engine behind ``repro verify``.

The sweep layer answers "how fast is each algorithm"; this module answers
"is every schedule *correct*" at grid scale: for each registry cell
``(collective, algorithm, p)`` it builds the schedule, runs the executor
oracle (:mod:`repro.collectives.verify`) for a set of seeds, and reduces the
outcome to one :class:`VerifyRecord` — ``ok``, ``failed`` (with the first
mismatch), or ``skipped`` (constraint not applicable, e.g. a power-of-two
algorithm at p=17).

Engines:

* ``compiled`` (default) — compile once per cell via
  :func:`~repro.collectives.verify.compiled_plan_for` (memoized, so repeat
  grids skip both schedule build and compilation) and execute every seed in
  one batched columnar pass;
* ``reference`` — the interpreted executor, one seed at a time;
* ``both`` — run both and additionally assert their final buffer matrices
  are bit-identical, the strongest cross-check.

Execution runs with schedule validation switched off
(:func:`~repro.runtime.schedule.schedule_validation`): the structural pass
already ran once when the builder finalized the schedule, and the oracle's
end-state comparison is the stronger check — no need to pay validation twice
per cell.

``verify_grid(..., workers=N)`` shards cells over a
:class:`~concurrent.futures.ProcessPoolExecutor`; cells are independent
(no shared RNG), so parallel records are identical to serial ones, in the
same order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.collectives.registry import (
    COLLECTIVES,
    AlgorithmSpec,
    iter_specs,
    spec_for,
)
from repro.collectives.verify import (
    check,
    compiled_plan_for,
    init_buffers,
    run_and_check_compiled,
)
from repro.runtime.compiled import matrix_from_buffers
from repro.runtime.errors import RuntimeSubstrateError
from repro.runtime.executor import execute
from repro.runtime.schedule import schedule_validation

__all__ = [
    "VerifyRecord",
    "VERIFY_FIELDS",
    "ENGINES",
    "DEFAULT_NODE_COUNTS",
    "verify_cell",
    "verify_grid",
]

#: column order shared by every machine-readable export (JSON, Markdown)
VERIFY_FIELDS = (
    "collective",
    "algorithm",
    "family",
    "p",
    "n",
    "seeds",
    "engine",
    "status",
    "detail",
    "elapsed_s",
)

ENGINES = ("compiled", "reference", "both")

#: default grid: small powers of two plus one non-power-of-two rank count,
#: mirroring the cross-validation suite's coverage envelope
DEFAULT_NODE_COUNTS = (4, 8, 16, 17, 32)


@dataclass(frozen=True)
class VerifyRecord:
    """Outcome of one ``(collective, algorithm, p)`` oracle cell.

    Example::

        >>> r = VerifyRecord("bcast", "bine", "bine", 8, 32, 2, "compiled", "ok")
        >>> r.to_dict()["status"]
        'ok'
        >>> VerifyRecord.from_dict(r.to_dict()) == r
        True
    """

    collective: str
    algorithm: str
    family: str
    p: int
    n: int
    seeds: int
    engine: str
    status: str  # 'ok' | 'failed' | 'skipped'
    detail: str = ""
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        """Plain-dict view in :data:`VERIFY_FIELDS` order, for export."""
        return {f: getattr(self, f) for f in VERIFY_FIELDS}

    @classmethod
    def from_dict(cls, d: dict) -> "VerifyRecord":
        """Rebuild a record from :meth:`to_dict` output (JSON round-trips)."""
        return cls(**{f: d[f] for f in VERIFY_FIELDS})


def _skip_reason(spec: AlgorithmSpec, p: int, n: int, respect_max_p: bool) -> str | None:
    if spec.pow2_only and p & (p - 1):
        return "p not a power of two"
    if spec.needs_divisible and n % p:
        return f"n={n} not divisible by p"
    if respect_max_p and spec.max_p is not None and p > spec.max_p:
        return f"capped at p={spec.max_p} (Θ(p²) wire segments)"
    return None


def _clip(text: str, limit: int = 240) -> str:
    text = " ".join(str(text).split())
    return text if len(text) <= limit else text[: limit - 1] + "…"


def verify_cell(
    collective: str,
    algorithm: str,
    p: int,
    n: int,
    seeds: Sequence[int] = (0,),
    engine: str = "compiled",
    respect_max_p: bool = True,
) -> VerifyRecord:
    """Run the oracle for one registry cell and fold the outcome.

    Example::

        >>> verify_cell("bcast", "bine", 8, 32, seeds=(0,)).status
        'ok'
        >>> verify_cell("bcast", "bine", 12, 48).status  # pow2-only builder
        'skipped'
    """
    with obs.span(
        "verify.cell",
        collective=collective,
        algorithm=algorithm,
        p=p,
        n=n,
        engine=engine,
    ):
        rec = _verify_cell_impl(
            collective, algorithm, p, n, seeds, engine, respect_max_p
        )
    obs.inc(f"verify.cells.{rec.status}")
    return rec


def _verify_cell_impl(
    collective: str,
    algorithm: str,
    p: int,
    n: int,
    seeds: Sequence[int],
    engine: str,
    respect_max_p: bool,
) -> VerifyRecord:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
    spec = spec_for(collective, algorithm)
    seeds = tuple(seeds)
    start = perf_counter()

    def record(status: str, detail: str = "") -> VerifyRecord:
        return VerifyRecord(
            collective=collective,
            algorithm=algorithm,
            family=spec.family,
            p=p,
            n=n,
            seeds=len(seeds),
            engine=engine,
            status=status,
            detail=_clip(detail) if detail else "",
            elapsed_s=round(perf_counter() - start, 6),
        )

    reason = _skip_reason(spec, p, n, respect_max_p)
    if reason is not None:
        return record("skipped", reason)
    try:
        if engine == "reference":
            schedule = spec.build(p, n)
        else:
            schedule, plan = compiled_plan_for(collective, algorithm, p, n)
            if engine == "both":
                schedule = spec.build(p, n)
    except ValueError as exc:  # builder constraint not met
        return record("skipped", str(exc))
    except (RuntimeSubstrateError, AssertionError) as exc:
        return record("failed", f"build: {exc}")

    try:
        # validation already ran at build time (Schedule.finalize); the
        # end-state check below is the stronger signal
        with schedule_validation(False):
            if engine == "compiled":
                run_and_check_compiled(schedule, seeds, plan)
            elif engine == "reference":
                for seed in seeds:
                    bufs = init_buffers(schedule, seed)
                    execute(schedule, bufs)
                    check(schedule, bufs, seed)
            else:  # both: every seed checked by each engine + cross-diffed
                matrices = run_and_check_compiled(schedule, seeds, plan)
                for i, seed in enumerate(seeds):
                    bufs = init_buffers(schedule, seed)
                    execute(schedule, bufs)
                    check(schedule, bufs, seed)
                    ref = matrix_from_buffers(bufs, plan.layout)
                    if not np.array_equal(ref, matrices[i]):
                        bad = np.argwhere(ref != matrices[i])[:3]
                        raise AssertionError(
                            f"seed {seed}: compiled != reference at "
                            f"(rank, column) {bad.tolist()}"
                        )
    except (RuntimeSubstrateError, AssertionError) as exc:
        return record("failed", str(exc))
    return record("ok")


def _cells(
    collectives: Sequence[str],
    node_counts: Sequence[int],
    elems_per_rank: int,
    algorithms: Iterable[str] | None,
    max_p: dict[str, int] | None,
) -> list[tuple[str, str, int, int]]:
    """The grid in deterministic ``(collective, algorithm, p)`` order."""
    names = None if algorithms is None else set(algorithms)
    cells = []
    for collective in collectives:
        for spec in iter_specs(collective):
            if names is not None and spec.name not in names:
                continue
            for p in node_counts:
                if max_p and p > max_p.get(spec.name, p):
                    continue
                cells.append((collective, spec.name, p, elems_per_rank * p))
    return cells


def verify_grid(
    collectives: Sequence[str] | None = None,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    *,
    elems_per_rank: int = 4,
    seeds: Sequence[int] = (0, 1),
    engine: str = "compiled",
    algorithms: Iterable[str] | None = None,
    max_p: dict[str, int] | None = None,
    workers: int | None = None,
) -> list[VerifyRecord]:
    """Run the executor oracle over a whole collective/algorithm/p grid.

    Every registered algorithm of every requested collective is checked at
    every rank count with ``n = elems_per_rank * p`` elements (divisible by
    ``p`` by construction, so divisibility-constrained algorithms are
    exercised rather than skipped).  ``max_p`` optionally caps rank counts
    per *algorithm name* (e.g. ``{"ring": 256}`` keeps a Θ(p²)-transfer
    benchmark grid affordable); registry-declared ``spec.max_p`` caps are
    always respected and reported as skips.

    ``workers=N`` (N > 1) shards cells over a process pool; cells are
    independent, so results are identical to a serial run, in the same order.

    Example (one-cell grid)::

        >>> [r.status for r in verify_grid(("bcast",), (8,),
        ...                                algorithms=("bine",), seeds=(0,))]
        ['ok']
    """
    collectives = tuple(collectives) if collectives is not None else COLLECTIVES
    cells = _cells(collectives, tuple(node_counts), elems_per_rank, algorithms, max_p)
    seeds = tuple(seeds)
    with obs.span(
        "verify.grid",
        collectives=",".join(collectives),
        cells=len(cells),
        engine=engine,
        workers=workers or 1,
    ):
        if workers is not None and workers > 1 and len(cells) > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _verify_cell_shard, coll, name, p, n, seeds, engine
                    )
                    for coll, name, p, n in cells
                ]
                return [f.result() for f in futures]
        return [
            verify_cell(coll, name, p, n, seeds, engine)
            for coll, name, p, n in cells
        ]


def _verify_cell_shard(
    collective: str,
    algorithm: str,
    p: int,
    n: int,
    seeds: Sequence[int],
    engine: str,
) -> VerifyRecord:
    """Pool worker: one verify cell inside a telemetry shard scope."""
    with obs.shard_scope():
        return verify_cell(collective, algorithm, p, n, seeds, engine)
