"""The Fig. 5 experiment: global-traffic reduction over job allocations.

For every sampled job we lay ranks block-wise over the allocated
(hostname-sorted) nodes, identify each rank's Dragonfly(+) group, and count
group-crossing bytes of an allreduce under standard binomial butterflies vs
Bine butterflies — exactly the computation the paper performs on the real
Slurm traces (Sec. 2.4.2).  Reductions are scale-invariant in the vector
size, so the canonical build size suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.butterfly_collectives import allreduce_recursive
from repro.core.butterfly import (
    bine_butterfly_halving,
    recursive_doubling_butterfly,
)
from repro.model.traffic import global_traffic_elems, traffic_reduction
from repro.runtime.schedule import Schedule
from repro.topology.allocation import AllocationSampler, SystemShape

__all__ = ["JobTrafficStudy", "allreduce_traffic_reduction", "run_study"]

_sched_cache: dict[tuple[str, int], Schedule] = {}


def _allreduce_schedules(p: int) -> tuple[Schedule, Schedule]:
    """(binomial, bine) allreduce schedules at canonical size.

    The paper's Fig. 5 analysis uses the tree/butterfly structures whose
    per-step payload is the full vector (the structure from which the 33 %
    bound is derived, Sec. 2.4.1), i.e. recursive doubling vs the Bine
    butterfly — each edge carries the same bytes, so the reduction comes
    purely from communication distances.
    """
    if ("binomial", p) not in _sched_cache:
        _sched_cache[("binomial", p)] = allreduce_recursive(
            recursive_doubling_butterfly(p), p, "sum"
        )
        _sched_cache[("bine", p)] = allreduce_recursive(
            bine_butterfly_halving(p), p, "sum"
        )
    return _sched_cache[("binomial", p)], _sched_cache[("bine", p)]


def allreduce_traffic_reduction(groups: list[int]) -> float:
    """Fig. 5 quantity for one job: Bine's reduction vs binomial (fraction).

    ``groups[rank]`` is the group each rank's node belongs to (block rank
    order over hostname-sorted allocation).
    """
    p = len(groups)
    binomial, bine = _allreduce_schedules(p)
    base = global_traffic_elems(binomial, groups)
    cand = global_traffic_elems(bine, groups)
    return traffic_reduction(base, cand)


@dataclass(frozen=True)
class JobTrafficStudy:
    """Distribution of reductions per node count for one system."""

    system: str
    #: node count → list of per-job reduction fractions
    reductions: dict[int, list[float]]


def run_study(
    shape: SystemShape,
    node_counts: tuple[int, ...],
    jobs_per_count: int,
    seed: int = 0,
    busy_fraction: float = 0.5,
) -> JobTrafficStudy:
    """Sample ``jobs_per_count`` allocations per node count and measure."""
    sampler = AllocationSampler(shape, seed=seed, busy_fraction=busy_fraction)
    reductions: dict[int, list[float]] = {}
    for p in node_counts:
        vals = []
        for _ in range(jobs_per_count):
            alloc = sampler.sample(p)
            groups = [alloc.group_of_rank(r) for r in range(p)]
            vals.append(allreduce_traffic_reduction(groups))
        reductions[p] = vals
    return JobTrafficStudy(system=shape.name, reductions=reductions)
