"""Parameter sweeps over (node count × vector size × algorithm).

This is the reproduction's replacement for the paper's PICO benchmarking
framework [51, 53]: every registered algorithm is compiled once per
``(collective, algorithm, p)`` at the canonical build size, profiled once
against the system's topology, then evaluated analytically at every vector
size of the grid.  Records carry family tags so the summary layer can build
the paper's "Bine vs binomial" and "Bine vs best state-of-the-art" views.

Rank placement matters: the paper runs "without requesting any specific node
placement", i.e. on whatever fragmented allocation the scheduler returns,
then relies on hostname-sorted block rank order (Sec. 2.2).  Sweeps
therefore default to a scheduler-like sampled allocation
(``placement="scheduler"``); ``placement="block"`` gives the idealised
group-aligned mapping (useful to expose the pure-structure upper bound).

Campaign performance rests on four shared caches, all transparent to the
numbers produced:

* schedule builders run with validation off (:func:`schedule_validation`;
  override with ``REPRO_VALIDATE=1``) — sweeps rebuild known-good schedules
  in bulk;
* ν-label / π permutation tables are memoized per ``p`` in the core layer;
* one :class:`~repro.model.simulator.RouteTable` per :class:`ProfileCache`
  shares node-pair routes across every algorithm and mapping of a campaign;
* an optional on-disk profile cache (``disk_dir=``) persists
  :class:`~repro.model.simulator.ScheduleProfile` objects across processes,
  keyed by ``(system, placement, seed, busy_fraction, faults, collective,
  algorithm, p, ppn)``; entries carry a magic/length header, and
  truncated, stale or unreadable entries are recomputed (with a
  :class:`RuntimeWarning`), never trusted; delete the directory (or bump
  ``_CACHE_VERSION``) to invalidate wholesale.

``sweep_system(..., workers=N)`` shards the grid over ``(collective, p)``
pairs onto a :class:`~concurrent.futures.ProcessPoolExecutor`.  Scheduler
placements are pre-sampled in the parent in the exact first-touch order of
the serial sweep and shipped to the workers, so parallel results are
record-for-record identical to serial ones.  Shard execution is
resilient: crashed or timed-out shards are re-queued once onto a fresh
pool, and if that round fails too the survivors run serially in the
parent (with a :class:`RuntimeWarning`) — a flaky worker degrades
throughput, never records.

``sweep_system(..., faults=FaultSpec(...))`` evaluates the grid on a
:class:`~repro.faults.DegradedTopology`; the spec's label lands in every
record (and the disk-cache namespace), so per-scenario results never
collide with pristine ones.

A spec with a :class:`~repro.faults.FaultTimeline` additionally requires
``profile_engine="des"``: the discrete-event engine (:mod:`repro.des`)
replays the timeline's mid-run failures/heals while executing the
lowered transfer program, and its records carry the timeline label plus
a ``stalled`` flag.  With an empty timeline the DES engine reproduces
the analytic engines bit for bit (the calibration contract).

``sweep_system(..., cell_sink=...)`` wires the sweep into the campaign
record journal (:mod:`repro.checkpoint`): every finished ``(collective,
p)`` cell is offered to the sink (which journals it and may raise a
drain), already-journaled cells are skipped on resume, and — because
placements are pre-sampled in serial first-touch order exactly like the
parallel path — the resumed run's records are byte-identical to an
uninterrupted one, serial or sharded.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import tempfile
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import contextmanager
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.collectives.registry import ALGORITHMS, AlgorithmSpec
from repro.model.analytic import ANALYTIC_PROFILES, ANALYTIC_THRESHOLD
from repro.model.compiled import (
    CompiledRouteTable,
    evaluate_grid,
    lower_schedule,
    profile_table,
    resolve_profile_engine,
    transfer_table_for,
)
from repro.model.cost import CostParams
from repro.model.simulator import (
    RouteTable,
    ScheduleProfile,
    evaluate_time,
    profile_schedule,
)
from repro.faults import DegradedTopology, FaultSpec
from repro import obs
from repro.checkpoint.drain import drain_requested
from repro.runtime.env import env_flag, env_float
from repro.runtime.errors import (
    CacheCorruptionError,
    DESEngineError,
    WorkerShardError,
)
from repro.runtime.schedule import schedule_validation
from repro.systems.presets import SystemPreset
from repro.topology.allocation import AllocationSampler, SystemShape
from repro.topology.mapping import RankMap, allocation_mapping, block_mapping

__all__ = [
    "SweepRecord",
    "RECORD_FIELDS",
    "sweep_system",
    "sweep_torus",
    "ProfileCache",
    "clear_memo_caches",
    "memo_cache_registry",
    "memo_cache_sizes",
    "shard_fallback_scope",
]


def memo_cache_registry() -> dict[str, tuple]:
    """Every module-level memo cache, as ``name -> (size probe, clearer)``.

    The single enumeration behind :func:`clear_memo_caches` and
    :func:`memo_cache_sizes`: a new process-level cache anywhere in the
    pipeline must be registered here (the tier-1 completeness test in
    ``tests/test_resilience.py`` scans the modules and fails when a
    ``*_CACHE`` dict or label-table LRU is missing).
    """
    from repro.collectives import butterfly_collectives as _bc
    from repro.collectives import common as _common
    from repro.collectives import verify as _verify
    from repro.core import bine_tree as _bine
    from repro.core import negabinary as _nb
    from repro.des import records as _des_records
    from repro.model import compiled as _compiled
    from repro.obs import metrics as _metrics
    from repro.tune import serve as _serve

    def lru(fn):
        return (lambda: fn.cache_info().currsize, fn.cache_clear)

    def table(mapping):
        return (lambda: len(mapping), mapping.clear)

    return {
        "negabinary.rank_to_nb_table": lru(_nb.rank_to_nb_table),
        "bine_tree._nu_table": lru(_bine._nu_table),
        "bine_tree._nu_inverse_table": lru(_bine._nu_inverse_table),
        "common._pi_table": lru(_common._pi_table),
        "common._pi_inv_table": lru(_common._pi_inv_table),
        "butterfly_collectives._SEG_CACHE": table(_bc._SEG_CACHE),
        "verify._PLAN_CACHE": table(_verify._PLAN_CACHE),
        "verify._PATTERN_CACHE": table(_verify._PATTERN_CACHE),
        "compiled._TABLE_CACHE": table(_compiled._TABLE_CACHE),
        "tune.serve._SERVE_CACHE": table(_serve._SERVE_CACHE),
        "des.records._SIM_CACHE": table(_des_records._SIM_CACHE),
        "obs.metrics": (_metrics.active_series, _metrics.reset),
    }


def memo_cache_sizes() -> dict[str, int]:
    """Current entry count of every registered memo cache (observability)."""
    return {name: probe() for name, (probe, _) in memo_cache_registry().items()}


def clear_memo_caches() -> None:
    """Drop every process-level memoization the sweep pipeline relies on.

    Used by cold-start benchmarks (and available to long-lived services that
    want to bound memory): clears the per-``p`` negabinary/ν/π label tables,
    the cross-schedule butterfly segment cache, the compiled-executor
    plan and input-pattern caches, and the compiled-profiler
    transfer-table cache — everything :func:`memo_cache_registry`
    enumerates.  Per-:class:`ProfileCache` state (route tables, profiles,
    mappings) is unaffected — drop the cache object itself for that.

    Example::

        >>> from repro.analysis.sweep import clear_memo_caches
        >>> clear_memo_caches()  # next schedule build starts fully cold
    """
    for _probe, clear in memo_cache_registry().values():
        clear()

#: bump to invalidate every on-disk profile cache entry
_CACHE_VERSION = 2

#: on-disk entry header: magic + format version; followed by an 8-byte
#: little-endian payload length, then the pickled profile.  Lets warm runs
#: tell a truncated or foreign file from a real entry before unpickling.
_CACHE_MAGIC = b"RPCACHE2"
_CACHE_LEN_BYTES = 8

#: sentinel distinguishing "not on disk" from a cached ``None`` (skipped combo)
_MISS = object()

#: corrupt disk-cache files already warned about this process (satellite of
#: the recovery path: recompute every time, warn once per file)
_CORRUPT_WARNED: set[str] = set()


#: column order shared by every machine-readable export (JSON, CSV, Markdown)
RECORD_FIELDS = (
    "system",
    "collective",
    "algorithm",
    "family",
    "p",
    "n_bytes",
    "time",
    "global_bytes",
    "faults",
    "ppn",
    "timeline",
    "stalled",
)

#: record fields that are optional on input (old record files predate them)
_OPTIONAL_RECORD_DEFAULTS = {
    "faults": "none",
    "ppn": 1,
    "timeline": "none",
    "stalled": False,
}


@dataclass(frozen=True)
class SweepRecord:
    """One evaluated ``(system, collective, algorithm, p, n_bytes)`` cell.

    ``faults`` is the :attr:`repro.faults.FaultSpec.label` of the fabric
    condition the cell was evaluated under (``"none"`` = pristine); it is
    part of the cell identity, so degraded and pristine results of the
    same grid never collide in summaries, heatmaps or baselines.

    ``ppn`` is the ranks-per-node count the cell was mapped with.  Like
    ``faults`` it is part of the cell identity: the same ``(p, n_bytes)``
    grid swept at ppn=1 and ppn=2 lands on different node sets and must
    never collide in summaries, diffs, or decision tables
    (:mod:`repro.tune` keys its sub-tables on it).

    ``timeline`` is the :attr:`repro.faults.FaultTimeline.label` the cell
    was simulated under (``"none"`` except on the DES engine) — part of
    the cell identity for the same reason ``faults`` is.  ``stalled``
    flags cells where at least one flow lost every route mid-run; it is a
    *measurement*, not identity, and stalled times are lower bounds (the
    run completed without the stalled flows' data movement).

    Example::

        >>> r = SweepRecord("lumi", "bcast", "bine", "bine", 16, 32, 1e-6, 64.0)
        >>> r.key
        ('bcast', 16, 32, 1, 'none', 'none')
        >>> SweepRecord.from_dict(r.to_dict()) == r
        True
    """

    system: str
    collective: str
    algorithm: str
    family: str
    p: int
    n_bytes: int
    time: float
    global_bytes: float
    faults: str = "none"
    ppn: int = 1
    timeline: str = "none"
    stalled: bool = False

    @property
    def key(self) -> tuple:
        """Cell identity — records sharing a key compete in summaries."""
        return (
            self.collective, self.p, self.n_bytes, self.ppn,
            self.faults, self.timeline,
        )

    def to_dict(self) -> dict:
        """Plain-dict view in :data:`RECORD_FIELDS` order, for export."""
        return {f: getattr(self, f) for f in RECORD_FIELDS}

    @classmethod
    def from_dict(cls, d: dict) -> "SweepRecord":
        """Rebuild a record from :meth:`to_dict` output (JSON round-trips).

        ``faults`` defaults to ``"none"`` and ``ppn`` to ``1`` so record
        files written before those axes existed keep loading unchanged.
        """
        values = {
            f: d[f] for f in RECORD_FIELDS if f not in _OPTIONAL_RECORD_DEFAULTS
        }
        for f, default in _OPTIONAL_RECORD_DEFAULTS.items():
            values[f] = d.get(f, default)
        if isinstance(values["stalled"], str):
            # CSV round-trips booleans as text
            values["stalled"] = values["stalled"].strip().lower() in ("true", "1")
        return cls(**values)


class ProfileCache:
    """Memoises schedule profiles per (collective, algorithm, p, ppn).

    ``placement="scheduler"`` lays each rank count over a sampled,
    hostname-sorted scheduler allocation (the paper's operating conditions);
    ``"block"`` uses the idealised node ``r // ppn`` mapping.

    All profiles share one :class:`RouteTable` (node-pair routes depend only
    on the topology), and schedule builders run with validation switched
    off — the sweep rebuilds schedules the test suite already validates.

    ``disk_dir`` enables a persistent second-level cache: profiles are
    pickled under ``disk_dir`` keyed by ``(system, placement, seed,
    busy_fraction, faults, collective, algorithm, p, ppn)`` so campaigns
    survive across processes (and parallel workers share work).
    Scheduler-placement mappings are still sampled in the same order on
    warm runs, keeping warm results identical to cold ones.

    ``faults`` applies a :class:`~repro.faults.FaultSpec` by wrapping the
    preset topology in a :class:`~repro.faults.DegradedTopology`; the
    spec's label namespaces the disk cache and tags every record.  When
    the preset's topology factory already returns a degraded topology
    (the parallel-shard path), its spec governs and ``faults`` must be
    omitted.

    ``profile_engine`` picks the profiling backend: ``"compiled"`` (the
    default) lowers each schedule once into a memoized
    :class:`~repro.model.compiled.TransferTable` and profiles it through a
    CSR :class:`~repro.model.compiled.CompiledRouteTable`; ``"python"`` is
    the scalar reference path.  Profiles are bit-identical either way
    (asserted in ``tests/test_compiled_profile.py``), so both engines share
    one disk-cache namespace.  ``"des"`` profiles like ``"compiled"`` but
    *evaluates* by discrete-event simulation (:mod:`repro.des`) — it is
    required (and the only engine allowed) when the fault spec carries a
    :class:`~repro.faults.FaultTimeline`, and shares the compiled disk
    namespace because profiles are static-fabric artifacts.
    """

    def __init__(
        self,
        preset: SystemPreset,
        placement: str = "scheduler",
        seed: int = 7,
        busy_fraction: float = 0.55,
        disk_dir: str | os.PathLike | None = None,
        mappings: dict[tuple[int, int], RankMap] | None = None,
        profile_engine: str | None = None,
        faults: FaultSpec | None = None,
    ):
        self.preset = preset
        topo = preset.build_topology()
        if isinstance(topo, DegradedTopology):
            # the preset factory already carries the degradation (parallel
            # shards rebuild presets around a pickled degraded topology)
            if faults is not None and faults != topo.spec:
                raise ValueError(
                    "preset topology is already degraded; pass faults=None"
                )
            self.faults = topo.spec
        else:
            self.faults = faults if faults is not None else FaultSpec()
            if not self.faults.is_null:
                topo = DegradedTopology(topo, self.faults)
        self.topo = topo
        self.placement = placement
        self.seed = seed
        self.busy_fraction = busy_fraction
        self.engine = resolve_profile_engine(profile_engine)
        if not self.faults.timeline.is_null and self.engine != "des":
            raise DESEngineError(
                f"fault timeline {self.faults.timeline.label!r} requires "
                f"profile_engine='des'; the {self.engine!r} engine scores a "
                "static fabric and cannot replay mid-run events"
            )
        self.routes = RouteTable(self.topo)
        self.croutes = (
            CompiledRouteTable(self.topo)
            if self.engine in ("compiled", "des") else None
        )
        self._cache: dict[tuple, ScheduleProfile | None] = {}
        self._mappings: dict[tuple[int, int], RankMap] = dict(mappings or {})
        self._sampler = None
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if placement == "scheduler":
            shape = _shape_of(self.topo, preset.name)
            self._sampler = AllocationSampler(
                shape, seed=seed, busy_fraction=busy_fraction
            )
        elif placement != "block":
            raise ValueError(f"unknown placement {placement!r}")

    def mapping_for(self, p: int, ppn: int = 1) -> RankMap:
        """The rank→node mapping used for every ``p``-rank profile.

        Scheduler placements are order-dependent RNG draws, so the first
        call for a given ``(p, ppn)`` fixes the mapping for the cache's
        lifetime (and parallel sweeps pre-sample here, in serial order).

        Example::

            >>> from repro.systems import lumi
            >>> cache = ProfileCache(lumi(), placement="block")
            >>> cache.mapping_for(4).nodes
            (0, 1, 2, 3)
        """
        key = (p, ppn)
        if key not in self._mappings:
            num_nodes = p // ppn
            if self._sampler is None:
                self._mappings[key] = block_mapping(p, ppn=ppn)
            else:
                alloc = self._sampler.sample(num_nodes)
                # hostname order == sorted node ids on these systems (Sec. 2.2)
                self._mappings[key] = allocation_mapping(sorted(alloc.nodes), ppn=ppn)
        return self._mappings[key]

    def applicable(self, spec: AlgorithmSpec, p: int, ppn: int = 1) -> bool:
        """Cheap pre-checks that gate both building and mapping sampling.

        Example::

            >>> from repro.collectives.registry import spec_for
            >>> from repro.systems import lumi
            >>> cache = ProfileCache(lumi(), placement="block")
            >>> cache.applicable(spec_for("allgather", "sparbit"), 1024)
            False
        """
        if p // ppn > self.topo.num_nodes:
            return False
        if spec.max_p is not None and p > spec.max_p:
            return False
        return True

    def get(self, spec: AlgorithmSpec, p: int, ppn: int = 1) -> ScheduleProfile | None:
        """Profile for one ``(algorithm, p, ppn)``; ``None`` if inapplicable.

        Example::

            >>> from repro.collectives.registry import spec_for
            >>> from repro.systems import lumi
            >>> cache = ProfileCache(lumi(), placement="block")
            >>> cache.get(spec_for("bcast", "bine"), 16).p
            16
        """
        key = (spec.collective, spec.name, p, ppn)
        if key not in self._cache:
            obs.inc("cache.profile.miss")
            if not self.applicable(spec, p, ppn):
                self._cache[key] = None
                return None
            # Sample the mapping before consulting the disk cache so the
            # scheduler-allocation RNG advances in the same order on cold
            # and warm runs (mappings are order-dependent draws).
            mapping = self.mapping_for(p, ppn)
            with obs.span(
                "cache.profile.fill",
                collective=spec.collective,
                algorithm=spec.name,
                p=p,
                ppn=ppn,
            ):
                profile = self._disk_load(key, mapping)
                if profile is _MISS:
                    profile = self._build(spec, p, ppn, mapping)
                    obs.inc("profile.built")
                    self._disk_store(key, profile, mapping)
                else:
                    obs.inc("profile.disk_warm")
            self._cache[key] = profile
        else:
            obs.inc("cache.profile.hit")
        return self._cache[key]

    def _build(
        self, spec: AlgorithmSpec, p: int, ppn: int, mapping: RankMap
    ) -> ScheduleProfile | None:
        compiled = self.engine in ("compiled", "des")
        analytic = ANALYTIC_PROFILES.get((spec.collective, spec.name))
        # alltoall always uses the analytic (packed-implementation) profiles
        # so small and large rank counts are modelled consistently.
        if analytic is not None and (p > ANALYTIC_THRESHOLD or spec.collective == "alltoall"):
            if spec.pow2_only and p & (p - 1):
                return None
            routes = self.croutes if compiled else self.routes
            with obs.span(
                "profile.analytic",
                collective=spec.collective,
                algorithm=spec.name,
                p=p,
            ):
                return analytic(p, self.topo, mapping, routes=routes)
        if compiled:
            # schedules lower once per (collective, algorithm, p) — the
            # table is shared across systems, placements and seeds
            table = transfer_table_for(spec, p)
            if table is None:
                return None  # constraint (pow2/divisibility) not met
            with obs.span(
                "profile.table",
                collective=spec.collective,
                algorithm=spec.name,
                p=p,
            ):
                return profile_table(
                    table, self.topo, mapping, routes=self.croutes
                )
        try:
            with obs.span(
                "schedule.build",
                collective=spec.collective,
                algorithm=spec.name,
                p=p,
            ):
                with schedule_validation(False):
                    schedule = spec.build(p, p)  # one element per block
        except ValueError:
            return None  # constraint (pow2/divisibility) not met
        with obs.span(
            "profile.schedule",
            collective=spec.collective,
            algorithm=spec.name,
            p=p,
        ):
            return profile_schedule(
                schedule, self.topo, mapping, routes=self.routes
            )

    # -- on-disk persistence ------------------------------------------------

    @property
    def faults_label(self) -> str:
        """The fault-scenario tag stamped on records (``"none"`` = pristine)."""
        return self.faults.label

    def _disk_path(self, key: tuple, mapping: RankMap) -> Path | None:
        if self.disk_dir is None:
            return None
        collective, name, p, ppn = key
        campaign = _slug(
            f"{self.preset.name}-{self.placement}"
            f"-seed{self.seed}-busy{self.busy_fraction}"
            f"-faults.{self.faults_label}-v{_CACHE_VERSION}"
        )
        # Scheduler placements are order-dependent RNG draws: a different
        # sweep grid first-touches rank counts in a different order and gets
        # different mappings for the same (seed, p).  Digesting the actual
        # mapping into the filename keeps warm results identical to what the
        # same call would produce cold, whatever campaign filled the cache.
        digest = hashlib.sha1(repr(mapping.nodes).encode()).hexdigest()[:12]
        return (
            self.disk_dir
            / campaign
            / _slug(f"{collective}--{name}--p{p}-ppn{ppn}-m{digest}.pkl")
        )

    def _disk_load(self, key: tuple, mapping: RankMap):
        path = self._disk_path(key, mapping)
        if path is None:
            return _MISS
        if not path.exists():
            obs.inc("cache.disk.miss")
            return _MISS
        try:
            with obs.span("cache.disk.get", entry=path.name):
                profile = _read_cache_entry(path)
            obs.inc("cache.disk.hit")
            return profile
        except CacheCorruptionError as exc:
            obs.inc("cache.disk.corrupt")
            # a half-written, truncated or stale entry must degrade to a
            # recompute (the store below overwrites it), never to a crash;
            # warn once per corrupt file per process — a long campaign can
            # re-read the same bad entry thousands of times
            token = str(path)
            if token not in _CORRUPT_WARNED:
                _CORRUPT_WARNED.add(token)
                warnings.warn(
                    f"profile cache: {exc}; recomputing", RuntimeWarning
                )
            return _MISS

    def _disk_store(
        self, key: tuple, profile: ScheduleProfile | None, mapping: RankMap
    ) -> None:
        path = self._disk_path(key, mapping)
        if path is None:
            return
        obs.inc("cache.disk.put")
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(profile, protocol=pickle.HIGHEST_PROTOCOL)
        # atomic publish: parallel workers may race on the same entry; the
        # fsync before the rename keeps a crash from publishing a file whose
        # tail never reached disk
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_CACHE_MAGIC)
                fh.write(len(payload).to_bytes(_CACHE_LEN_BYTES, "little"))
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def _read_cache_entry(path: Path):
    """Decode one disk-cache entry; :class:`CacheCorruptionError` if unsound."""
    blob = path.read_bytes()
    header = len(_CACHE_MAGIC) + _CACHE_LEN_BYTES
    if len(blob) < header or not blob.startswith(_CACHE_MAGIC):
        raise CacheCorruptionError(
            f"{path}: missing or stale cache header (expected {_CACHE_MAGIC!r})"
        )
    length = int.from_bytes(blob[len(_CACHE_MAGIC):header], "little")
    if len(blob) - header != length:
        raise CacheCorruptionError(
            f"{path}: truncated entry ({len(blob) - header} of {length} "
            "payload bytes)"
        )
    try:
        return pickle.loads(blob[header:])
    except Exception as exc:
        raise CacheCorruptionError(f"{path}: unreadable payload ({exc})") from exc


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


def _shape_of(topo, name: str) -> SystemShape:
    """Derive the allocation-sampling shape from a grouped topology."""
    num_groups = topo.num_groups
    nodes_per_group = topo.num_nodes // num_groups
    return SystemShape(name, num_groups, nodes_per_group)


def _selected_specs(
    collectives: Sequence[str], algorithms: Iterable[str] | None
) -> list[AlgorithmSpec]:
    """Registry entries of the sweep, in the serial iteration order."""
    names = None if algorithms is None else set(algorithms)
    return [
        spec
        for (coll, name), spec in sorted(ALGORITHMS.items())
        if coll in collectives and (names is None or name in names)
    ]


def _profile_records(
    profile: ScheduleProfile,
    engine: str,
    system: str,
    spec: AlgorithmSpec,
    p: int,
    vector_bytes: Sequence[int],
    params: CostParams,
    faults: str = "none",
    ppn: int = 1,
    timeline: str = "none",
) -> list[SweepRecord]:
    """Records for one profile across the size grid, on either analytic engine.

    The compiled engine evaluates every size in one
    :func:`~repro.model.compiled.evaluate_grid` pass; the python engine
    calls :func:`~repro.model.simulator.evaluate_time` per size.  Both
    yield bit-identical records.  (The ``des`` engine goes through
    :func:`repro.des.records.des_records` instead.)
    """
    with obs.span(
        "evaluate.grid",
        collective=spec.collective,
        algorithm=spec.name,
        p=p,
        engine=engine,
        sizes=len(vector_bytes),
    ):
        if engine == "compiled":
            grid = evaluate_grid(
                profile, params, [nb / params.itemsize for nb in vector_bytes]
            )
            cells = zip(vector_bytes, grid.time, grid.global_bytes)
        else:
            cells = (
                (nb,) + _scalar_cell(profile, params, nb) for nb in vector_bytes
            )
        records = _cells_to_records(
            cells, system, spec, p, faults, ppn, timeline
        )
    obs.inc("evaluate.records", len(records))
    return records


def _cells_to_records(
    cells, system, spec, p, faults, ppn, timeline
) -> list[SweepRecord]:
    return [
        SweepRecord(
            system=system,
            collective=spec.collective,
            algorithm=spec.name,
            family=spec.family,
            p=p,
            n_bytes=nb,
            time=float(time),
            global_bytes=float(gbytes),
            faults=faults,
            ppn=ppn,
            timeline=timeline,
        )
        for nb, time, gbytes in cells
    ]


def _scalar_cell(profile, params, nb) -> tuple[float, float]:
    metrics = evaluate_time(profile, params, nb / params.itemsize)
    return metrics.time, metrics.global_bytes


def _evaluate_grid(
    preset: SystemPreset,
    cache: ProfileCache,
    specs: Sequence[AlgorithmSpec],
    node_counts: Sequence[int],
    vector_bytes: Sequence[int],
    params: CostParams,
    max_p: dict[str, int] | None,
    ppn: int,
) -> list[SweepRecord]:
    """The serial sweep core: profile once, evaluate at every vector size."""
    des = cache.engine == "des"
    if des:
        from repro.des.records import des_records
    records: list[SweepRecord] = []
    for spec in specs:
        for p in node_counts:
            if max_p and p > max_p.get(spec.collective, p):
                continue
            profile = cache.get(spec, p, ppn)
            if profile is None:
                continue
            if des:
                records.extend(
                    des_records(
                        cache, preset.name, spec, p, vector_bytes, params,
                        ppn, profile,
                    )
                )
                continue
            records.extend(
                _profile_records(
                    profile, cache.engine, preset.name, spec, p,
                    vector_bytes, params, faults=cache.faults_label, ppn=ppn,
                )
            )
    return records


def _grid_cells(
    cache: ProfileCache,
    specs: Sequence[AlgorithmSpec],
    node_counts: Sequence[int],
    max_p: dict[str, int] | None,
    ppn: int,
) -> list[tuple[str, int]]:
    """The grid's ``(collective, p)`` cells, pre-sampling every mapping.

    Walks the grid in the exact first-touch order of the serial sweep so
    scheduler allocations match it draw for draw — the property that
    makes cell results order-independent, and therefore both parallel
    execution and journal resume provably record-identical to serial.
    """
    cells: list[tuple[str, int]] = []
    for spec in specs:
        for p in node_counts:
            if max_p and p > max_p.get(spec.collective, p):
                continue
            if not cache.applicable(spec, p, ppn):
                continue
            cache.mapping_for(p, ppn)
            if (spec.collective, p) not in cells:
                cells.append((spec.collective, p))
    return cells


def _reassemble(
    grouped: dict[tuple[str, str, int], list[SweepRecord]],
    specs: Sequence[AlgorithmSpec],
    node_counts: Sequence[int],
) -> list[SweepRecord]:
    """Flatten per-cell record groups back into serial sweep order."""
    records: list[SweepRecord] = []
    for spec in specs:
        for p in node_counts:
            records.extend(grouped.get((spec.collective, spec.name, p), ()))
    return records


def _evaluate_cells(
    preset: SystemPreset,
    cache: ProfileCache,
    specs: Sequence[AlgorithmSpec],
    node_counts: Sequence[int],
    vector_bytes: Sequence[int],
    params: CostParams,
    max_p: dict[str, int] | None,
    ppn: int,
    cell_sink,
) -> list[SweepRecord]:
    """Serial sweep, cell by cell, streaming each into a journal sink.

    The journaled counterpart of :func:`_evaluate_grid`: mappings are
    pre-sampled in serial first-touch order, each ``(collective, p)``
    cell is evaluated (or served from the sink on resume) atomically,
    and the reassembled records are identical to the plain serial
    sweep's.  Polls :func:`~repro.checkpoint.drain.drain_requested`
    between cells so SIGINT/SIGTERM stop the run at a journaled
    boundary.
    """
    cells = _grid_cells(cache, specs, node_counts, max_p, ppn)
    cell_sink.plan(cells)
    grouped: dict[tuple[str, str, int], list[SweepRecord]] = {}
    for coll, p in cells:
        sig = drain_requested()
        if sig is not None:
            raise cell_sink.interrupted_error(sig)
        recs = cell_sink.lookup(coll, p)
        if recs is None:
            cell_specs = [s for s in specs if s.collective == coll]
            recs = _evaluate_grid(
                preset, cache, cell_specs, (p,), vector_bytes, params,
                max_p, ppn,
            )
            cell_sink.store(coll, p, recs)
        for rec in recs:
            grouped.setdefault(
                (rec.collective, rec.algorithm, rec.p), []
            ).append(rec)
    return _reassemble(grouped, specs, node_counts)


def sweep_system(
    preset: SystemPreset,
    collectives: Sequence[str],
    *,
    node_counts: Sequence[int] | None = None,
    vector_bytes: Sequence[int] | None = None,
    algorithms: Iterable[str] | None = None,
    params: CostParams | None = None,
    max_p: dict[str, int] | None = None,
    ppn: int = 1,
    cache: ProfileCache | None = None,
    placement: str = "scheduler",
    workers: int | None = None,
    disk_dir: str | os.PathLike | None = None,
    profile_engine: str | None = None,
    faults: FaultSpec | None = None,
    cell_sink=None,
) -> list[SweepRecord]:
    """Evaluate every applicable algorithm across the grid.

    ``max_p`` optionally caps the rank count per collective (the O(p²)
    alltoall builders get expensive past a few hundred ranks).

    ``workers=N`` (N > 1) shards the grid over ``(collective, p)`` pairs
    onto a process pool; results are identical to the serial sweep, in the
    same order.  ``disk_dir`` enables the persistent profile cache (ignored
    when an explicit ``cache`` is passed — configure it there instead).

    ``profile_engine`` selects the profiling/evaluation backend
    (``"compiled"`` default, ``"python"`` reference; records are
    bit-identical).  Like ``disk_dir`` it is ignored when an explicit
    ``cache`` is passed — the cache's engine governs.

    ``faults`` evaluates the grid on a degraded fabric (see
    :class:`~repro.faults.FaultSpec`); the scenario label lands in every
    record.  Like the other cache knobs it is ignored when an explicit
    ``cache`` is passed.

    ``cell_sink`` (a :class:`~repro.checkpoint.journal.GridJournal`)
    streams each finished ``(collective, p)`` cell into a write-ahead
    journal and serves already-journaled cells on resume; records are
    identical to an unjournaled sweep in either execution mode.  With a
    sink active the sweep also honors graceful drain: a pending
    SIGINT/SIGTERM raises
    :class:`~repro.runtime.errors.InterruptedRunError` at the next cell
    boundary instead of starting new work.

    Example (one-cell grid)::

        >>> from repro.systems import lumi
        >>> recs = sweep_system(lumi(), ("bcast",), node_counts=(16,),
        ...                     vector_bytes=(1024,), algorithms=("bine",))
        >>> [(r.algorithm, r.p, r.n_bytes) for r in recs]
        [('bine', 16, 1024)]
    """
    node_counts = tuple(node_counts if node_counts is not None else preset.node_counts)
    vector_bytes = tuple(
        vector_bytes if vector_bytes is not None else preset.vector_bytes
    )
    params = params or preset.params
    cache = cache or ProfileCache(
        preset, placement=placement, disk_dir=disk_dir,
        profile_engine=profile_engine, faults=faults,
    )
    specs = _selected_specs(collectives, algorithms)
    with obs.span(
        "sweep.system",
        system=preset.name,
        collectives=",".join(collectives),
        engine=cache.engine,
        faults=cache.faults_label,
        workers=workers or 1,
    ) as sweep_span:
        if workers is not None and workers > 1:
            records = _sweep_parallel(
                preset, cache, specs, node_counts, vector_bytes, params,
                max_p, ppn, workers, cell_sink=cell_sink,
            )
        elif cell_sink is not None:
            records = _evaluate_cells(
                preset, cache, specs, node_counts, vector_bytes, params,
                max_p, ppn, cell_sink,
            )
        else:
            records = _evaluate_grid(
                preset, cache, specs, node_counts, vector_bytes, params,
                max_p, ppn,
            )
        sweep_span.set(records=len(records))
    return records


def sweep_torus(
    preset: SystemPreset,
    dims: Sequence[int],
    collectives: Sequence[str],
    *,
    vector_bytes: Sequence[int] | None = None,
    algorithms: Iterable[str] | None = None,
    params: CostParams | None = None,
    profile_engine: str | None = None,
) -> list[SweepRecord]:
    """Evaluate the torus algorithm catalog on one sub-torus (Fig. 11b).

    The torus-optimised builders take a :class:`TorusShape` instead of a
    bare rank count, so they run through
    :data:`repro.collectives.torus.TORUS_ALGORITHMS` rather than the
    generic registry: every applicable catalog entry is built once at its
    canonical size on a block-mapped ``Torus(dims)``, profiled, then
    evaluated at every vector size — exactly what the Fugaku benches have
    always computed, now addressable from campaign manifests
    (``torus_dims`` grids).  Records are tagged
    ``system="<preset>:<DxDxD>"`` so multiple sub-tori of one campaign
    (e.g. the paper's 4x4x4 and 8x8 at 64 ranks) stay distinct cells.

    Example::

        >>> from repro.systems import fugaku
        >>> recs = sweep_torus(fugaku(), (2, 2), ("bcast",),
        ...                    vector_bytes=(1024,), algorithms=("bine-torus",))
        >>> [(r.system, r.algorithm, r.p) for r in recs]
        [('fugaku:2x2', 'bine-torus', 4)]
    """
    from repro.collectives.torus import torus_specs
    from repro.core.torus_opt import TorusShape
    from repro.topology.torus import Torus

    shape = TorusShape(tuple(dims))
    topo = Torus(tuple(dims))
    mapping = block_mapping(shape.num_ranks)
    params = params or preset.params
    vector_bytes = tuple(
        vector_bytes if vector_bytes is not None else preset.vector_bytes
    )
    engine = resolve_profile_engine(profile_engine)
    if engine == "des":
        raise DESEngineError(
            "torus sweeps have no DES engine: the torus catalog is scored "
            "analytically only — use profile_engine='compiled' or 'python'"
        )
    croutes = CompiledRouteTable(topo) if engine == "compiled" else None
    system = f"{preset.name}:{'x'.join(str(d) for d in dims)}"
    records: list[SweepRecord] = []
    for spec in torus_specs(collectives, algorithms):
        with schedule_validation(False):
            schedule = spec.build(shape)
        if engine == "compiled":
            profile = profile_table(
                lower_schedule(schedule), topo, mapping, routes=croutes
            )
        else:
            profile = profile_schedule(schedule, topo, mapping)
        records.extend(
            _profile_records(
                profile, engine, system, spec, shape.num_ranks,
                vector_bytes, params,
            )
        )
    return records


# -- parallel campaigns ------------------------------------------------------

#: wall-clock budget per shard result; a worker that exceeds it is treated
#: as hung and its cell re-queued (override: REPRO_SHARD_TIMEOUT seconds)
_SHARD_TIMEOUT_S = 300.0

#: extra pool rounds after the first before falling back to serial
_SHARD_RETRIES = 1

#: pool/worker failures that justify a retry round; anything else (a real
#: repro bug inside a shard) propagates unchanged
_RETRIABLE = (BrokenExecutor, TimeoutError, _FuturesTimeout, OSError)


def _shard_timeout() -> float:
    return env_float("REPRO_SHARD_TIMEOUT", _SHARD_TIMEOUT_S)


#: active :func:`shard_fallback_scope` tokens (innermost last); inside a
#: scope the serial-fallback warning fires once instead of once per sweep
_FALLBACK_SCOPES: list[dict] = []


@contextmanager
def shard_fallback_scope():
    """Deduplicate serial-fallback warnings across the sweeps of one run.

    A campaign runs one :func:`sweep_system` per (scenario, grid); when a
    crashing pool makes *every* sweep fall back to serial, repeating the
    same :class:`RuntimeWarning` dozens of times buries the signal.
    :func:`~repro.cli.campaign.run_campaign` wraps its grid loop in this
    scope so the warning fires once per campaign — the full tally stays
    available as the ``shard.fallback_serial`` counter.  Direct
    ``sweep_system`` calls (no scope) warn every time, as before.
    """
    token = {"warned": False}
    _FALLBACK_SCOPES.append(token)
    try:
        yield token
    finally:
        _FALLBACK_SCOPES.remove(token)


def _sweep_shard(
    topo,
    system_name: str,
    params: CostParams,
    placement: str,
    seed: int,
    busy_fraction: float,
    mappings: dict[tuple[int, int], RankMap],
    disk_dir: str | None,
    profile_engine: str,
    collective: str,
    p: int,
    vector_bytes: tuple[int, ...],
    algorithm_names: tuple[str, ...] | None,
    max_p: dict[str, int] | None,
    ppn: int,
) -> list[SweepRecord]:
    """Worker: evaluate one ``(collective, p)`` cell of the grid.

    Mappings are pre-sampled in the parent (placement draws are
    order-dependent), so the worker never touches the allocation RNG.  A
    degraded ``topo`` arrives pickled with its fault sets intact, so the
    worker reproduces the parent's routes exactly.
    """
    if os.environ.get("REPRO_TEST_CRASH_SHARD"):
        # test chaos hook: die the way a seg-faulting worker would, so the
        # resilience path (retry → serial fallback) is exercised end to end
        os._exit(17)
    preset = SystemPreset(
        name=system_name,
        topology=lambda: topo,
        params=params,
        node_counts=(p,),
        vector_bytes=vector_bytes,
    )
    cache = ProfileCache(
        preset,
        placement=placement,
        seed=seed,
        busy_fraction=busy_fraction,
        disk_dir=disk_dir,
        mappings=mappings,
        profile_engine=profile_engine,
    )
    specs = _selected_specs((collective,), algorithm_names)
    with obs.shard_scope():
        with obs.span("shard.run", collective=collective, p=p):
            return _evaluate_grid(
                preset, cache, specs, (p,), vector_bytes, params, max_p, ppn
            )


def _pool_worker_init() -> None:
    """Detach each pool worker from drain signals; die with the parent.

    Workers are forked while the parent's graceful-drain handlers
    (:mod:`repro.checkpoint.drain`) may be installed and would inherit
    them — a terminal's Ctrl-C or a scheduler's group-wide SIGTERM must
    reach only the *parent*, which coordinates the drain and lets
    in-flight shards finish, so workers ignore both signals.  And a
    SIGKILLed campaign (OOM killer, the chaos harness) must not leave
    workers orphaned and blocked forever on a dead call queue: on Linux
    every worker asks the kernel to SIGKILL it when its parent dies
    (``PR_SET_PDEATHSIG``; SIGKILL because ordinary signals are ignored
    per the above).  Elsewhere that part is a no-op; normal pool
    shutdown is unaffected either way.
    """
    import signal as _signal

    _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    _signal.signal(_signal.SIGTERM, _signal.SIG_IGN)
    try:  # pragma: no cover - trivially platform-dependent
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, _signal.SIGKILL, 0, 0, 0)  # 1 == PR_SET_PDEATHSIG
    except Exception:
        pass


def _run_shard_round(
    shard_args: dict[int, tuple],
    workers: int,
    timeout: float,
    on_result=None,
) -> tuple[dict[int, list[SweepRecord]], list[int], list[int]]:
    """One process-pool round; ``(results by cell, failed, abandoned)``.

    Only pool-infrastructure failures (crashed worker, hung shard, broken
    pipe) land in the failed list; deterministic exceptions raised *by*
    shard code propagate to the caller unchanged.  ``on_result`` is
    called with ``(cell index, records)`` as each shard is absorbed — the
    journal streaming hook, invoked in deterministic submission order.

    Under a graceful drain (:func:`~repro.checkpoint.drain.
    drain_requested`) not-yet-running futures are cancelled and returned
    as *abandoned* — never failed, they must not be retried — while
    in-flight shards are awaited (and journaled) as usual.
    """
    results: dict[int, list[SweepRecord]] = {}
    failed: list[int] = []
    abandoned: list[int] = []
    pool = ProcessPoolExecutor(
        max_workers=workers, initializer=_pool_worker_init
    )
    try:
        futures: dict[int, object] = {}
        for i, args in shard_args.items():
            try:
                futures[i] = pool.submit(_sweep_shard, *args)
            except _RETRIABLE:
                failed.append(i)
        for i, fut in futures.items():
            if drain_requested() is not None and fut.cancel():
                abandoned.append(i)
                continue
            try:
                recs = fut.result(timeout=timeout)
            except _RETRIABLE:
                failed.append(i)
                continue
            if drain_requested() is not None:
                # this shard was in flight when the drain was requested;
                # its result is still absorbed and journaled
                obs.inc("checkpoint.drain.inflight")
            results[i] = recs
            if on_result is not None:
                on_result(i, recs)
    finally:
        # don't wait: a hung worker must not hang the parent too
        pool.shutdown(wait=False, cancel_futures=True)
    return results, failed, abandoned


def _sweep_parallel(
    preset: SystemPreset,
    cache: ProfileCache,
    specs: Sequence[AlgorithmSpec],
    node_counts: tuple[int, ...],
    vector_bytes: tuple[int, ...],
    params: CostParams,
    max_p: dict[str, int] | None,
    ppn: int,
    workers: int,
    cell_sink=None,
) -> list[SweepRecord]:
    """Fan ``(collective, p)`` cells over a process pool, preserving order.

    Execution is resilient: cells whose shard crashed or timed out are
    re-queued onto a fresh pool (``_SHARD_RETRIES`` extra rounds), and
    cells that still fail are evaluated serially in the parent with a
    :class:`RuntimeWarning` — worker failures degrade throughput, never
    correctness or completeness.  Set ``REPRO_SHARD_FALLBACK=0`` to raise
    :class:`~repro.runtime.errors.WorkerShardError` instead of falling
    back (CI setups that want crashes loud).

    ``cell_sink`` streams finished cells into the record journal (and
    serves journaled cells on resume) exactly as in the serial path; a
    pending graceful drain stops new dispatch at the next round boundary
    and raises :class:`~repro.runtime.errors.InterruptedRunError` after
    in-flight shards have been absorbed.
    """
    # Mappings are pre-sampled in the exact first-touch order of the serial
    # sweep, so scheduler allocations match it draw for draw.
    cells = _grid_cells(cache, specs, node_counts, max_p, ppn)
    algorithm_names = tuple(sorted({s.name for s in specs})) if specs else None
    disk_dir = str(cache.disk_dir) if cache.disk_dir is not None else None
    shard_args = {
        i: (
            cache.topo,
            preset.name,
            params,
            cache.placement,
            cache.seed,
            cache.busy_fraction,
            dict(cache._mappings),
            disk_dir,
            cache.engine,
            coll,
            p,
            vector_bytes,
            algorithm_names,
            max_p,
            ppn,
        )
        for i, (coll, p) in enumerate(cells)
    }
    timeout = _shard_timeout()
    grouped: dict[tuple[str, str, int], list[SweepRecord]] = {}

    def _absorb(records: Iterable[SweepRecord]) -> None:
        for rec in records:
            grouped.setdefault(
                (rec.collective, rec.algorithm, rec.p), []
            ).append(rec)

    def _on_result(i: int, recs: list[SweepRecord]) -> None:
        _absorb(recs)
        if cell_sink is not None:
            coll, p = cells[i]
            cell_sink.store(coll, p, recs)

    obs.inc("shard.cells", len(cells))
    pending = dict(shard_args)
    if cell_sink is not None:
        cell_sink.plan(cells)
        for i, (coll, p) in enumerate(cells):
            recs = cell_sink.lookup(coll, p)
            if recs is not None:
                _absorb(recs)
                pending.pop(i)
    for _round in range(1 + _SHARD_RETRIES):
        if not pending:
            break
        sig = drain_requested()
        if sig is not None and cell_sink is not None:
            raise cell_sink.interrupted_error(sig)
        if _round:
            obs.inc("shard.retries", len(pending))
        with obs.span(
            "shard.round", round=_round, shards=len(pending), workers=workers
        ):
            results, failed, abandoned = _run_shard_round(
                pending, workers, timeout, _on_result
            )
        pending = {
            i: shard_args[i] for i in sorted({*failed, *abandoned})
        }
    if pending:
        sig = drain_requested()
        if sig is not None and cell_sink is not None:
            raise cell_sink.interrupted_error(sig)
        lost = [cells[i] for i in sorted(pending)]
        if not env_flag("REPRO_SHARD_FALLBACK", True):
            raise WorkerShardError(
                f"{len(lost)} shard(s) failed after {1 + _SHARD_RETRIES} "
                f"pool rounds: {lost}"
            )
        obs.inc("shard.fallback_serial", len(lost))
        # inside a campaign scope the warning fires once; the counter above
        # keeps the full tally either way
        scope = _FALLBACK_SCOPES[-1] if _FALLBACK_SCOPES else None
        if scope is None or not scope["warned"]:
            if scope is not None:
                scope["warned"] = True
            warnings.warn(
                f"parallel sweep: {len(lost)} shard(s) crashed or timed out "
                f"after {1 + _SHARD_RETRIES} pool rounds; evaluating {lost} "
                "serially",
                RuntimeWarning,
            )
        for i in sorted(pending):
            sig = drain_requested()
            if sig is not None and cell_sink is not None:
                raise cell_sink.interrupted_error(sig)
            coll, p = cells[i]
            cell_specs = [s for s in specs if s.collective == coll]
            _on_result(
                i,
                _evaluate_grid(
                    preset, cache, cell_specs, (p,), vector_bytes, params,
                    max_p, ppn,
                ),
            )
    return _reassemble(grouped, specs, node_counts)
