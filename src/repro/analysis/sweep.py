"""Parameter sweeps over (node count × vector size × algorithm).

This is the reproduction's replacement for the paper's PICO benchmarking
framework [51, 53]: every registered algorithm is compiled once per
``(collective, algorithm, p)`` at the canonical build size, profiled once
against the system's topology, then evaluated analytically at every vector
size of the grid.  Records carry family tags so the summary layer can build
the paper's "Bine vs binomial" and "Bine vs best state-of-the-art" views.

Rank placement matters: the paper runs "without requesting any specific node
placement", i.e. on whatever fragmented allocation the scheduler returns,
then relies on hostname-sorted block rank order (Sec. 2.2).  Sweeps
therefore default to a scheduler-like sampled allocation
(``placement="scheduler"``); ``placement="block"`` gives the idealised
group-aligned mapping (useful to expose the pure-structure upper bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.collectives.registry import ALGORITHMS, AlgorithmSpec
from repro.model.analytic import ANALYTIC_PROFILES, ANALYTIC_THRESHOLD
from repro.model.cost import CostParams
from repro.model.simulator import ScheduleProfile, evaluate_time, profile_schedule
from repro.systems.presets import SystemPreset
from repro.topology.allocation import AllocationSampler, SystemShape
from repro.topology.mapping import RankMap, allocation_mapping, block_mapping

__all__ = ["SweepRecord", "sweep_system", "ProfileCache"]


@dataclass(frozen=True)
class SweepRecord:
    """One evaluated configuration."""

    system: str
    collective: str
    algorithm: str
    family: str
    p: int
    n_bytes: int
    time: float
    global_bytes: float

    @property
    def key(self) -> tuple:
        return (self.collective, self.p, self.n_bytes)


class ProfileCache:
    """Memoises schedule profiles per (collective, algorithm, p, ppn).

    ``placement="scheduler"`` lays each rank count over a sampled,
    hostname-sorted scheduler allocation (the paper's operating conditions);
    ``"block"`` uses the idealised node ``r // ppn`` mapping.
    """

    def __init__(
        self,
        preset: SystemPreset,
        placement: str = "scheduler",
        seed: int = 7,
        busy_fraction: float = 0.55,
    ):
        self.preset = preset
        self.topo = preset.build_topology()
        self.placement = placement
        self._cache: dict[tuple, ScheduleProfile | None] = {}
        self._mappings: dict[tuple[int, int], RankMap] = {}
        self._sampler = None
        if placement == "scheduler":
            shape = _shape_of(self.topo, preset.name)
            self._sampler = AllocationSampler(
                shape, seed=seed, busy_fraction=busy_fraction
            )
        elif placement != "block":
            raise ValueError(f"unknown placement {placement!r}")

    def mapping_for(self, p: int, ppn: int = 1) -> RankMap:
        key = (p, ppn)
        if key not in self._mappings:
            num_nodes = p // ppn
            if self._sampler is None:
                self._mappings[key] = block_mapping(p, ppn=ppn)
            else:
                alloc = self._sampler.sample(num_nodes)
                # hostname order == sorted node ids on these systems (Sec. 2.2)
                self._mappings[key] = allocation_mapping(sorted(alloc.nodes), ppn=ppn)
        return self._mappings[key]

    def get(self, spec: AlgorithmSpec, p: int, ppn: int = 1) -> ScheduleProfile | None:
        key = (spec.collective, spec.name, p, ppn)
        if key not in self._cache:
            self._cache[key] = self._build(spec, p, ppn)
        return self._cache[key]

    def _build(self, spec: AlgorithmSpec, p: int, ppn: int) -> ScheduleProfile | None:
        if p // ppn > self.topo.num_nodes:
            return None
        if spec.max_p is not None and p > spec.max_p:
            return None
        mapping = self.mapping_for(p, ppn)
        analytic = ANALYTIC_PROFILES.get((spec.collective, spec.name))
        # alltoall always uses the analytic (packed-implementation) profiles
        # so small and large rank counts are modelled consistently.
        if analytic is not None and (p > ANALYTIC_THRESHOLD or spec.collective == "alltoall"):
            if spec.pow2_only and p & (p - 1):
                return None
            return analytic(p, self.topo, mapping)
        try:
            schedule = spec.build(p, p)  # canonical size: one element per block
        except ValueError:
            return None  # constraint (pow2/divisibility) not met
        return profile_schedule(schedule, self.topo, mapping)


def _shape_of(topo, name: str) -> SystemShape:
    """Derive the allocation-sampling shape from a grouped topology."""
    num_groups = topo.num_groups
    nodes_per_group = topo.num_nodes // num_groups
    return SystemShape(name, num_groups, nodes_per_group)


def sweep_system(
    preset: SystemPreset,
    collectives: Sequence[str],
    *,
    node_counts: Sequence[int] | None = None,
    vector_bytes: Sequence[int] | None = None,
    algorithms: Iterable[str] | None = None,
    params: CostParams | None = None,
    max_p: dict[str, int] | None = None,
    ppn: int = 1,
    cache: ProfileCache | None = None,
    placement: str = "scheduler",
) -> list[SweepRecord]:
    """Evaluate every applicable algorithm across the grid.

    ``max_p`` optionally caps the rank count per collective (the O(p²)
    alltoall builders get expensive past a few hundred ranks).
    """
    node_counts = tuple(node_counts if node_counts is not None else preset.node_counts)
    vector_bytes = tuple(
        vector_bytes if vector_bytes is not None else preset.vector_bytes
    )
    params = params or preset.params
    cache = cache or ProfileCache(preset, placement=placement)
    records: list[SweepRecord] = []
    for (coll, name), spec in sorted(ALGORITHMS.items()):
        if coll not in collectives:
            continue
        if algorithms is not None and name not in algorithms:
            continue
        for p in node_counts:
            if max_p and p > max_p.get(coll, p):
                continue
            profile = cache.get(spec, p, ppn)
            if profile is None:
                continue
            for nb in vector_bytes:
                n_elems = nb / params.itemsize
                metrics = evaluate_time(profile, params, n_elems)
                records.append(
                    SweepRecord(
                        system=preset.name,
                        collective=coll,
                        algorithm=name,
                        family=spec.family,
                        p=p,
                        n_bytes=nb,
                        time=metrics.time,
                        global_bytes=metrics.global_bytes,
                    )
                )
    return records
