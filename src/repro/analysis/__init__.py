"""Sweeps, paper-style summaries, heatmaps, boxplots, and the Fig. 5 study."""

from repro.analysis.boxplot import BoxStats, box_stats, format_box_row
from repro.analysis.heatmap import human_bytes, render_heatmap
from repro.analysis.jobs import (
    JobTrafficStudy,
    allreduce_traffic_reduction,
    run_study,
)
from repro.analysis.summarize import (
    DuelSummary,
    best_algorithm_cells,
    bine_improvement_distribution,
    family_duel,
    format_duel_table,
    geometric_mean,
)
from repro.analysis.sweep import ProfileCache, SweepRecord, sweep_system
from repro.analysis.verifygrid import VerifyRecord, verify_cell, verify_grid

__all__ = [
    "VerifyRecord",
    "verify_cell",
    "verify_grid",
    "BoxStats",
    "box_stats",
    "format_box_row",
    "human_bytes",
    "render_heatmap",
    "JobTrafficStudy",
    "allreduce_traffic_reduction",
    "run_study",
    "DuelSummary",
    "best_algorithm_cells",
    "bine_improvement_distribution",
    "family_duel",
    "format_duel_table",
    "geometric_mean",
    "ProfileCache",
    "SweepRecord",
    "sweep_system",
]
