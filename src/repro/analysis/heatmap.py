"""Text heatmaps in the style of paper Figs. 9a / 10a.

Each cell of (vector size × node count) shows either the winning
algorithm's letter, or — when Bine wins — the speedup ratio over the best
non-Bine algorithm.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.sweep import SweepRecord

__all__ = ["FAMILY_LETTERS", "render_heatmap", "human_bytes"]

FAMILY_LETTERS = {
    "binomial": "N",
    "ring": "R",
    "bruck": "B",
    "swing": "S",
    "linear": "L",
    "sota": "D",  # 'default'-ish library algorithms (Rabenseifner, sparbit, …)
    "bucket": "K",
    "trinaryx": "T",
}


def human_bytes(nb: int) -> str:
    for unit, size in (("GiB", 1024**3), ("MiB", 1024**2), ("KiB", 1024)):
        if nb >= size:
            val = nb / size
            return f"{val:.0f} {unit}" if val == int(val) else f"{val:.1f} {unit}"
    return f"{nb} B"


def render_heatmap(
    cells: Mapping[tuple[int, int], tuple[SweepRecord, float | None]],
    node_counts: Sequence[int],
    vector_bytes: Sequence[int],
    title: str = "",
) -> str:
    """Render the Fig. 9a-style grid as text."""
    width = 8
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * 10 + "".join(f"{p:>{width}}" for p in node_counts))
    for nb in vector_bytes:
        row = [f"{human_bytes(nb):>10}"]
        for p in node_counts:
            entry = cells.get((p, nb))
            if entry is None:
                row.append(" " * width)
                continue
            best, ratio = entry
            if best.family == "bine":
                row.append(f"{ratio:>{width}.2f}" if ratio else f"{'BINE':>{width}}")
            else:
                letter = FAMILY_LETTERS.get(best.family, best.family[:1].upper())
                row.append(f"{letter:>{width}}")
        lines.append("".join(row))
    lines.append(
        "letters = best non-Bine family ("
        + ", ".join(f"{v}={k}" for k, v in FAMILY_LETTERS.items())
        + "); numbers = Bine speedup over next best"
    )
    return "\n".join(lines)
