"""Text heatmaps in the style of paper Figs. 9a / 10a.

Each cell of (vector size × node count) shows either the winning
algorithm's letter, or — when Bine wins — the speedup ratio over the best
non-Bine algorithm.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.sweep import SweepRecord

__all__ = [
    "FAMILY_LETTERS",
    "family_letter",
    "families_without_letter",
    "render_heatmap",
    "human_bytes",
]

FAMILY_LETTERS = {
    "binomial": "N",
    "ring": "R",
    "bruck": "B",
    "swing": "S",
    "linear": "L",
    "sota": "D",  # 'default'-ish library algorithms (Rabenseifner, sparbit, …)
    "bucket": "K",
    "trinaryx": "T",
}


def family_letter(family: str) -> str:
    """The heatmap letter for a non-Bine family; loud failure for unknowns.

    A registry family without a letter used to render as a silently
    invented first-letter fallback; now it names the offender so adding
    an algorithm family forces a :data:`FAMILY_LETTERS` entry.

    Example::

        >>> family_letter("ring")
        'R'
        >>> family_letter("carrier-pigeon")
        Traceback (most recent call last):
        ...
        ValueError: no heatmap letter for algorithm family 'carrier-pigeon'; add it to repro.analysis.heatmap.FAMILY_LETTERS
    """
    try:
        return FAMILY_LETTERS[family]
    except KeyError:
        raise ValueError(
            f"no heatmap letter for algorithm family {family!r}; "
            "add it to repro.analysis.heatmap.FAMILY_LETTERS"
        ) from None


def families_without_letter() -> list[str]:
    """Families known to the registries but missing a heatmap letter.

    Covers both the generic algorithm registry and the torus catalog;
    ``bine`` is exempt (Bine cells render the speedup ratio, not a
    letter).  Asserted empty in tier-1 so a new family cannot silently
    break heatmap rendering.
    """
    from repro.collectives.registry import families
    from repro.collectives.torus import TORUS_ALGORITHMS

    known = set(families()) | {s.family for s in TORUS_ALGORITHMS.values()}
    return sorted(known - set(FAMILY_LETTERS) - {"bine"})


def human_bytes(nb: int) -> str:
    for unit, size in (("GiB", 1024**3), ("MiB", 1024**2), ("KiB", 1024)):
        if nb >= size:
            val = nb / size
            return f"{val:.0f} {unit}" if val == int(val) else f"{val:.1f} {unit}"
    return f"{nb} B"


def render_heatmap(
    cells: Mapping[tuple[int, int], tuple[SweepRecord, float | None]],
    node_counts: Sequence[int],
    vector_bytes: Sequence[int],
    title: str = "",
) -> str:
    """Render the Fig. 9a-style grid as text."""
    width = 8
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * 10 + "".join(f"{p:>{width}}" for p in node_counts))
    for nb in vector_bytes:
        row = [f"{human_bytes(nb):>10}"]
        for p in node_counts:
            entry = cells.get((p, nb))
            if entry is None:
                row.append(" " * width)
                continue
            best, ratio = entry
            if best.family == "bine":
                row.append(f"{ratio:>{width}.2f}" if ratio else f"{'BINE':>{width}}")
            else:
                row.append(f"{family_letter(best.family):>{width}}")
        lines.append("".join(row))
    lines.append(
        "letters = best non-Bine family ("
        + ", ".join(f"{v}={k}" for k, v in FAMILY_LETTERS.items())
        + "); numbers = Bine speedup over next best"
    )
    return "\n".join(lines)
