"""Summaries in the shape of the paper's Tables 3-5 and Figs. 9-11.

Given sweep records, per collective:

* :func:`family_duel` — Bine vs binomial: %win / %loss, geometric-mean and
  max gain/drop, average/max global-traffic reduction (Tables 3, 4, 5);
* :func:`best_algorithm_cells` — per (nodes × size) cell, the winning
  algorithm and, when Bine wins, its ratio over the next-best non-Bine
  algorithm (heatmaps 9a / 10a);
* :func:`bine_improvement_distribution` — % of cells where Bine is overall
  best plus the improvement distribution in those cells (boxplots 9b / 10b /
  11a / 11b).

Percentages use the paper's convention: differences below 1 % count as a
tie; averages over ratios use the geometric mean [29].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.sweep import SweepRecord

__all__ = [
    "DuelSummary",
    "DUEL_FIELDS",
    "family_duel",
    "best_algorithm_cells",
    "bine_improvement_distribution",
    "geometric_mean",
    "format_duel_table",
]

TIE_THRESHOLD = 0.01


def geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _best_by(records: list[SweepRecord]) -> SweepRecord:
    # ties break on the algorithm name so the winner is a pure function of
    # the record *set*, not its order — decision tables built from shuffled
    # records must be byte-identical (see repro.tune)
    return min(records, key=lambda r: (r.time, r.algorithm))


def _cells(records: Sequence[SweepRecord]):
    cells: dict[tuple, list[SweepRecord]] = {}
    for r in records:
        cells.setdefault(r.key, []).append(r)
    return cells


#: column order for machine-readable duel exports (JSON / CSV / Markdown)
DUEL_FIELDS = (
    "collective",
    "cells",
    "win_pct",
    "loss_pct",
    "avg_gain",
    "max_gain",
    "avg_drop",
    "max_drop",
    "avg_traffic_reduction",
    "max_traffic_reduction",
)


@dataclass(frozen=True)
class DuelSummary:
    """Table 3/4/5 row for one collective.

    Example::

        >>> s = DuelSummary("bcast", 4, 75.0, 0.0, 10.0, 20.0, 0.0, 0.0, 5.0, 9.0)
        >>> s.to_dict()["win_pct"]
        75.0
    """

    collective: str
    cells: int
    win_pct: float
    loss_pct: float
    avg_gain: float
    max_gain: float
    avg_drop: float
    max_drop: float
    avg_traffic_reduction: float
    max_traffic_reduction: float

    def to_dict(self) -> dict:
        """Plain-dict view in :data:`DUEL_FIELDS` order, for export."""
        return {f: getattr(self, f) for f in DUEL_FIELDS}


def family_duel(
    records: Sequence[SweepRecord],
    collective: str,
    family_a: str = "bine",
    family_b: str = "binomial",
) -> DuelSummary:
    """Compare the best algorithm of two families cell by cell."""
    gains: list[float] = []
    drops: list[float] = []
    reductions: list[float] = []
    wins = losses = total = 0
    for key, recs in sorted(_cells(records).items()):
        if key[0] != collective:
            continue
        a = [r for r in recs if r.family == family_a]
        b = [r for r in recs if r.family == family_b]
        if not a or not b:
            continue
        best_a, best_b = _best_by(a), _best_by(b)
        total += 1
        ratio = best_b.time / best_a.time
        if ratio > 1 + TIE_THRESHOLD:
            wins += 1
            gains.append(ratio - 1)
        elif ratio < 1 - TIE_THRESHOLD:
            losses += 1
            drops.append(1 / ratio - 1)
        if best_b.global_bytes > 0:
            reductions.append(1 - best_a.global_bytes / best_b.global_bytes)
    if total == 0:
        raise ValueError(f"no comparable cells for {collective!r}")
    return DuelSummary(
        collective=collective,
        cells=total,
        win_pct=100 * wins / total,
        loss_pct=100 * losses / total,
        avg_gain=100 * geometric_mean([1 + g for g in gains]) - 100 if gains else 0.0,
        max_gain=100 * max(gains) if gains else 0.0,
        avg_drop=100 * geometric_mean([1 + d for d in drops]) - 100 if drops else 0.0,
        max_drop=100 * max(drops) if drops else 0.0,
        avg_traffic_reduction=100 * (sum(reductions) / len(reductions)) if reductions else 0.0,
        max_traffic_reduction=100 * max(reductions) if reductions else 0.0,
    )


def format_duel_table(summaries: Sequence[DuelSummary]) -> str:
    """Render Table 3/4/5-style text."""
    hdr = (
        f"{'Coll.':<14}{'%Win':>6}{'AvgG%':>8}{'MaxG%':>8}"
        f"{'%Loss':>7}{'AvgD%':>8}{'MaxD%':>8}{'AvgTR%':>8}{'MaxTR%':>8}"
    )
    lines = [hdr, "-" * len(hdr)]
    for s in summaries:
        lines.append(
            f"{s.collective:<14}{s.win_pct:>6.0f}{s.avg_gain:>8.1f}{s.max_gain:>8.1f}"
            f"{s.loss_pct:>7.0f}{s.avg_drop:>8.1f}{s.max_drop:>8.1f}"
            f"{s.avg_traffic_reduction:>8.1f}{s.max_traffic_reduction:>8.1f}"
        )
    return "\n".join(lines)


def best_algorithm_cells(
    records: Sequence[SweepRecord], collective: str
) -> dict[tuple[int, int], tuple[SweepRecord, float | None]]:
    """Per (p, n_bytes): the winner and, if Bine, ratio over best non-Bine."""
    out: dict[tuple[int, int], tuple[SweepRecord, float | None]] = {}
    for key, recs in _cells(records).items():
        if key[0] != collective:
            continue
        best = _best_by(recs)
        ratio = None
        if best.family == "bine":
            others = [r for r in recs if r.family != "bine"]
            if others:
                ratio = _best_by(others).time / best.time
        out[(key[1], key[2])] = (best, ratio)
    return out


def bine_improvement_distribution(
    records: Sequence[SweepRecord], collective: str
) -> tuple[float, list[float]]:
    """(% of cells Bine wins outright, improvement % in those cells)."""
    cells = best_algorithm_cells(records, collective)
    if not cells:
        raise ValueError(f"no cells for {collective!r}")
    improvements = [
        100 * (ratio - 1)
        for (_, ratio) in cells.values()
        if ratio is not None and ratio > 1 + TIE_THRESHOLD
    ]
    pct = 100 * len(improvements) / len(cells)
    return pct, improvements
