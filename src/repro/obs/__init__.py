"""Telemetry: spans/traces, a metrics registry, and post-run stats.

Dependency-free observability for the sweep/verify/tune/DES pipelines.
Three parts:

* :mod:`repro.obs.trace` — Chrome-trace-event spans (``obs.span(...)``
  context managers through every hot path), written by ``--trace PATH``
  / ``REPRO_TRACE`` and viewable in Perfetto;
* :mod:`repro.obs.metrics` — always-on counters/gauges (cache hits and
  misses, records computed vs. served warm, shard retries), registered
  in :func:`repro.analysis.sweep.memo_cache_registry` and reset by
  ``clear_memo_caches()``;
* :mod:`repro.obs.stats` — the trace-file schema validator and the
  ``.stats.json`` sidecar aggregates behind ``repro stats``.

Telemetry is a pure sidecar: records, figures, baselines and tune
digests are byte-identical with tracing on or off — timestamps only
ever land in trace files.  See ``docs/observability.md``.
"""

from repro.obs.metrics import (
    active_series,
    counters,
    gauges,
    inc,
    reset,
    set_gauge,
    snapshot,
)
from repro.obs.stats import (
    STATS_SCHEMA,
    sidecar_path,
    span_aggregates,
    validate_trace,
)
from repro.obs.trace import (
    SPOOL_ENV,
    T0_ENV,
    TRACE_ENV,
    TRACE_SCHEMA,
    begin_session,
    counter_event,
    end_session,
    instant,
    shard_scope,
    span,
    trace_session,
    tracing_enabled,
)

__all__ = [
    # metrics
    "active_series",
    "counters",
    "gauges",
    "inc",
    "reset",
    "set_gauge",
    "snapshot",
    # trace
    "SPOOL_ENV",
    "T0_ENV",
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "begin_session",
    "counter_event",
    "end_session",
    "instant",
    "shard_scope",
    "span",
    "trace_session",
    "tracing_enabled",
    # stats
    "STATS_SCHEMA",
    "sidecar_path",
    "span_aggregates",
    "validate_trace",
]
