"""Trace-file schema validation and post-run aggregation.

Two consumers: ``repro stats FILE --validate`` (CI gates every traced
run on a structurally sound Chrome trace) and the ``.stats.json``
sidecar each session writes next to its trace file.  The rules here are
the documented contract in ``docs/observability.md``:

* the file is a JSON object with a ``traceEvents`` list;
* every event is an object with a string ``name``, a string ``ph``, and
  an integer ``pid``;
* timed phases (``B``/``E``/``X``/``i``/``C``) carry a numeric ``ts``;
* ``B``/``E`` events are balanced per ``(pid, tid)`` track, closing in
  LIFO order with matching names.

Example::

    >>> validate_trace({"traceEvents": [
    ...     {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
    ...     {"name": "a", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1}]})
    []
    >>> validate_trace({"traceEvents": [
    ...     {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1}]})
    ["track (1, 1): 1 unclosed span(s): ['a']"]
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

__all__ = ["STATS_SCHEMA", "sidecar_path", "validate_trace", "span_aggregates"]

#: schema identifier of the ``.stats.json`` sidecar
STATS_SCHEMA = "repro/trace-stats"

#: phases that must carry a timestamp (metadata "M" events need not)
_TIMED_PHASES = frozenset("BEXiC")


def sidecar_path(trace_path: str | Path) -> Path:
    """Where a trace file's stats sidecar lives: ``<stem>.stats.json``."""
    path = Path(trace_path)
    return path.with_name(path.stem + ".stats.json")


def validate_trace(data) -> list[str]:
    """Check ``data`` against the documented trace schema; [] when sound."""
    if not isinstance(data, Mapping):
        return ["top level: expected a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: missing 'traceEvents' list"]
    errors: list[str] = []
    stacks: dict[tuple, list[str]] = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, Mapping):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("name")
        ph = event.get("ph")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing string 'name'")
            continue
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where}: missing string 'ph'")
            continue
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where} ({name!r}): missing integer 'pid'")
            continue
        if ph in _TIMED_PHASES and not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where} ({name!r}, ph={ph}): missing numeric 'ts'")
            continue
        if ph in ("B", "E"):
            track = (event["pid"], event.get("tid"))
            if ph == "B":
                stacks.setdefault(track, []).append(name)
            else:
                stack = stacks.get(track)
                if not stack:
                    errors.append(f"{where}: 'E' for {name!r} with no open span")
                elif stack[-1] != name:
                    errors.append(
                        f"{where}: 'E' for {name!r} but innermost open span "
                        f"on track {track} is {stack[-1]!r}"
                    )
                    stack.pop()
                else:
                    stack.pop()
    for track in sorted(stacks, key=repr):
        leftover = stacks[track]
        if leftover:
            errors.append(
                f"track {track}: {len(leftover)} unclosed span(s): {leftover}"
            )
    return errors


def span_aggregates(events: Iterable[Mapping]) -> dict[str, dict[str, float]]:
    """Per-span-name totals: ``{name: {"count": n, "total_us": t}}``.

    Walks balanced ``B``/``E`` pairs per ``(pid, tid)`` track; malformed
    pairs are skipped (``validate_trace`` is the loud path).
    """
    stacks: dict[tuple, list[tuple[str, float]]] = {}
    totals: dict[str, list[float]] = {}
    for event in events:
        ph = event.get("ph")
        if ph not in ("B", "E"):
            continue
        track = (event.get("pid"), event.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append((event["name"], event["ts"]))
            continue
        stack = stacks.get(track)
        if not stack or stack[-1][0] != event["name"]:
            continue
        name, t0 = stack.pop()
        agg = totals.setdefault(name, [0, 0.0])
        agg[0] += 1
        agg[1] += event["ts"] - t0
    return {
        name: {"count": int(c), "total_us": round(t, 3)}
        for name, (c, t) in sorted(totals.items())
    }
