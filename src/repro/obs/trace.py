"""Chrome-trace-event tracing: spans, instants, counters, shard merge.

A *trace session* (``begin_session``/``end_session``, usually via the
:func:`trace_session` context manager wired to ``--trace PATH`` /
``REPRO_TRACE``) collects events in memory and writes two files at the
end: the Chrome trace itself (open in Perfetto / ``chrome://tracing``)
and a ``<stem>.stats.json`` sidecar with counter totals and per-span
aggregates.  With no session active, :func:`span` returns a shared no-op
object — the disabled cost is one global read plus building the kwargs
dict, which `benchmarks/bench_perf_sweep.py` holds under 3% of the warm
evaluation wall-clock.

Events follow the Chrome trace-event JSON schema (see
``docs/observability.md``): every event carries ``name``/``ph``/``pid``;
spans are balanced ``B``/``E`` pairs per ``(pid, tid)`` track with
timestamps in microseconds relative to the session start.

Worker shards compose through a spool directory: the parent session
exports ``REPRO_TRACE_SPOOL`` and its clock origin ``REPRO_TRACE_T0``;
a pool worker entering :func:`shard_scope` redirects its events to a
spool file (tagged with the worker pid) plus a metrics-delta sidecar,
and the parent folds both back in when the session ends.  Timestamps
stay comparable because ``perf_counter_ns`` reads the system-wide
monotonic clock, which fork/spawn children share.

Example (in-memory session — no files)::

    >>> state = begin_session(None)
    >>> with span("demo.outer", p=4) as sp:
    ...     sp.set(cells=2)
    >>> trace_doc, stats_doc = end_session()
    >>> [ev["ph"] for ev in trace_doc["traceEvents"] if ev["name"] == "demo.outer"]
    ['B', 'E']
    >>> stats_doc["spans"]["demo.outer"]["count"]
    1
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Mapping

from repro.obs import metrics as _metrics
from repro.runtime.env import env_int

__all__ = [
    "TRACE_ENV",
    "SPOOL_ENV",
    "T0_ENV",
    "TRACE_SCHEMA",
    "tracing_enabled",
    "span",
    "instant",
    "counter_event",
    "begin_session",
    "end_session",
    "trace_session",
    "shard_scope",
]

#: environment variable equivalent to passing ``--trace PATH``
TRACE_ENV = "REPRO_TRACE"
#: exported by a live session so pool workers find the spool directory
SPOOL_ENV = "REPRO_TRACE_SPOOL"
#: the parent session's ``perf_counter_ns`` origin, for aligned shard ts
T0_ENV = "REPRO_TRACE_T0"
#: schema identifier stamped into the trace file's ``otherData``
TRACE_SCHEMA = "repro/trace"


class _TraceState:
    """One process's view of the active session (None when disabled)."""

    __slots__ = ("events", "t0_ns", "pid", "path", "spool_dir", "metrics_base")


_STATE: _TraceState | None = None


def tracing_enabled() -> bool:
    """True while a trace session is collecting events in this process."""
    return _STATE is not None


def _now_us(state: _TraceState) -> float:
    return (time.perf_counter_ns() - state.t0_ns) / 1000.0


class _NoopSpan:
    """What :func:`span` hands out when tracing is off — does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


class _Span:
    """A live span: ``B`` event on creation, ``E`` event on exit.

    ``set(**attrs)`` attaches result attributes (cell counts, event
    tallies) to the closing ``E`` event.
    """

    __slots__ = ("_state", "_name", "_end_args")

    def __init__(self, state: _TraceState, name: str, attrs: dict):
        self._state = state
        self._name = name
        self._end_args: dict | None = None
        event = {
            "name": name,
            "cat": name.partition(".")[0],
            "ph": "B",
            "ts": _now_us(state),
            "pid": state.pid,
            "tid": 1,
        }
        if attrs:
            event["args"] = attrs
        state.events.append(event)

    def __enter__(self) -> "_Span":
        return self

    def set(self, **attrs) -> None:
        if self._end_args is None:
            self._end_args = {}
        self._end_args.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        event = {
            "name": self._name,
            "cat": self._name.partition(".")[0],
            "ph": "E",
            "ts": _now_us(self._state),
            "pid": self._state.pid,
            "tid": 1,
        }
        if self._end_args:
            event["args"] = self._end_args
        self._state.events.append(event)
        return False


def span(name: str, **attrs):
    """A context manager timing ``name``; no-op unless a session is live.

    ``attrs`` must be JSON-serializable (strings/numbers) and land on the
    opening ``B`` event; use ``.set(...)`` inside the block for results
    that are only known at the end.
    """
    state = _STATE
    if state is None:
        return _NOOP
    return _Span(state, name, attrs)


def instant(name: str, **args) -> None:
    """A zero-duration marker event (``ph: "i"``), e.g. a DES reroute."""
    state = _STATE
    if state is None:
        return
    event = {
        "name": name,
        "cat": name.partition(".")[0],
        "ph": "i",
        "ts": _now_us(state),
        "pid": state.pid,
        "tid": 1,
        "s": "t",
    }
    if args:
        event["args"] = args
    state.events.append(event)


def counter_event(name: str, values: Mapping[str, float]) -> None:
    """A Chrome counter sample (``ph: "C"``), e.g. per-link busy seconds."""
    state = _STATE
    if state is None:
        return
    state.events.append(
        {
            "name": name,
            "cat": name.partition(".")[0],
            "ph": "C",
            "ts": _now_us(state),
            "pid": state.pid,
            "tid": 1,
            "args": dict(values),
        }
    )


def begin_session(path: str | os.PathLike | None) -> _TraceState:
    """Start collecting events; ``path=None`` keeps everything in memory.

    With a path, a ``<path>.spool/`` directory is created and exported
    through ``REPRO_TRACE_SPOOL`` so worker shards can contribute.
    """
    global _STATE
    if _STATE is not None:
        raise RuntimeError("a trace session is already active")
    state = _TraceState()
    state.events = []
    state.t0_ns = time.perf_counter_ns()
    state.pid = os.getpid()
    state.path = Path(path) if path is not None else None
    state.spool_dir = None
    state.metrics_base = dict(_metrics._COUNTERS)
    if state.path is not None:
        state.spool_dir = Path(str(state.path) + ".spool")
        state.spool_dir.mkdir(parents=True, exist_ok=True)
        os.environ[SPOOL_ENV] = str(state.spool_dir)
        os.environ[T0_ENV] = str(state.t0_ns)
    _STATE = state
    return state


def end_session() -> tuple[dict, dict]:
    """Finalize the session; returns ``(trace_doc, stats_doc)``.

    Harvests any shard spool files, folds shard metric deltas into the
    session counters, tags every process with a ``process_name`` metadata
    event, and — when the session has a path — writes the trace file and
    its ``.stats.json`` sidecar.
    """
    global _STATE
    state = _STATE
    if state is None:
        raise RuntimeError("no active trace session")
    _STATE = None

    shard_events: list[dict] = []
    shard_deltas: dict[str, float] = {}
    if state.spool_dir is not None:
        os.environ.pop(SPOOL_ENV, None)
        os.environ.pop(T0_ENV, None)
        for spool_file in sorted(state.spool_dir.glob("*.jsonl")):
            for line in spool_file.read_text().splitlines():
                if line:
                    shard_events.append(json.loads(line))
        for delta_file in sorted(state.spool_dir.glob("*.metrics.json")):
            for name, value in json.loads(delta_file.read_text()).items():
                shard_deltas[name] = shard_deltas.get(name, 0) + value
        shutil.rmtree(state.spool_dir, ignore_errors=True)
    shard_pids = sorted({ev["pid"] for ev in shard_events})

    session_counters: dict[str, float] = {}
    for name, value in _metrics._COUNTERS.items():
        delta = value - state.metrics_base.get(name, 0)
        if delta:
            session_counters[name] = delta
    for name, value in shard_deltas.items():
        session_counters[name] = session_counters.get(name, 0) + value

    events = state.events + shard_events
    # stable sort: per-(pid, tid) event order (monotonic within each
    # source) survives, so B/E nesting stays balanced after the merge
    events.sort(key=lambda ev: ev.get("ts", 0.0))
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": state.pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for i, pid in enumerate(shard_pids):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro shard {i}"},
            }
        )
    trace_doc = {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "version": 1},
    }

    from repro.obs import stats as _stats

    stats_doc = {
        "schema": _stats.STATS_SCHEMA,
        "version": 1,
        "trace": state.path.name if state.path is not None else None,
        "events": len(events),
        "shards": len(shard_pids),
        "counters": {k: session_counters[k] for k in sorted(session_counters)},
        "gauges": _metrics.gauges(),
        "spans": _stats.span_aggregates(events),
    }

    if state.path is not None:
        state.path.parent.mkdir(parents=True, exist_ok=True)
        state.path.write_text(json.dumps(trace_doc) + "\n")
        _stats.sidecar_path(state.path).write_text(
            json.dumps(stats_doc, indent=2) + "\n"
        )
    return trace_doc, stats_doc


@contextmanager
def trace_session(path: str | os.PathLike | None):
    """``begin_session``/``end_session`` as a with-block (CLI entry)."""
    begin_session(path)
    try:
        yield
    finally:
        end_session()


@contextmanager
def shard_scope():
    """Redirect a pool worker's events to the parent session's spool.

    A no-op unless ``REPRO_TRACE_SPOOL`` is exported by a live parent
    session *and* this process is not the one that started it (forked
    workers inherit the parent's state object; its copied event list
    would never be harvested).  On exit the shard's events are flushed
    to a uniquely-named spool file together with the metric *deltas*
    this scope produced.
    """
    global _STATE
    spool = os.environ.get(SPOOL_ENV)
    if not spool or (_STATE is not None and _STATE.pid == os.getpid()):
        yield
        return
    inherited = _STATE
    state = _TraceState()
    state.events = []
    # a garbled inherited clock origin must not crash the shard — warn
    # once and fall back to this process's own clock
    state.t0_ns = env_int(T0_ENV, time.perf_counter_ns())
    state.pid = os.getpid()
    state.path = None
    state.spool_dir = Path(spool)
    state.metrics_base = dict(_metrics._COUNTERS)
    _STATE = state
    try:
        yield
    finally:
        _STATE = inherited
        _flush_shard(state)


def _flush_shard(state: _TraceState) -> None:
    delta: dict[str, float] = {}
    for name, value in _metrics._COUNTERS.items():
        d = value - state.metrics_base.get(name, 0)
        if d:
            delta[name] = d
    try:
        fd, path = tempfile.mkstemp(
            dir=state.spool_dir, prefix=f"shard-{state.pid}-", suffix=".jsonl"
        )
    except OSError:
        return  # session ended (spool removed) while this shard ran
    with os.fdopen(fd, "w") as fh:
        for event in state.events:
            fh.write(json.dumps(event) + "\n")
    if delta:
        Path(path + ".metrics.json").write_text(json.dumps(delta))
