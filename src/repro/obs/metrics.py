"""Process-wide counter/gauge registry for the telemetry subsystem.

Counters are monotonically increasing event tallies (``cache.table.hit``,
``shard.retries``); gauges are last-written values (``des.link_busy_max``).
Both are plain module-level dicts: incrementing a counter is one dict
operation, cheap enough to stay on even when tracing is off, so a sweep
always knows its cache hit rates after the fact.

The registry participates in the memo-cache lifecycle:
:func:`repro.analysis.sweep.memo_cache_registry` lists it under
``"obs.metrics"`` (its "size" is the number of live series) and
:func:`~repro.analysis.sweep.clear_memo_caches` resets it.

Example::

    >>> reset()
    >>> inc("cache.demo.hit")
    >>> inc("cache.demo.hit", 2)
    >>> counters()["cache.demo.hit"]
    3
    >>> set_gauge("demo.depth", 4.5)
    >>> active_series()
    2
    >>> reset(); active_series()
    0
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "inc",
    "set_gauge",
    "counters",
    "gauges",
    "snapshot",
    "reset",
    "active_series",
]

_COUNTERS: dict[str, float] = {}
_GAUGES: dict[str, float] = {}


def inc(name: str, n: float = 1) -> None:
    """Add ``n`` to counter ``name`` (created at 0 on first use)."""
    _COUNTERS[name] = _COUNTERS.get(name, 0) + n


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last write wins)."""
    _GAUGES[name] = value


def counters() -> dict[str, float]:
    """Sorted copy of every live counter."""
    return {k: _COUNTERS[k] for k in sorted(_COUNTERS)}


def gauges() -> dict[str, float]:
    """Sorted copy of every live gauge."""
    return {k: _GAUGES[k] for k in sorted(_GAUGES)}


def snapshot() -> dict[str, dict[str, float]]:
    """Both families at once: ``{"counters": {...}, "gauges": {...}}``."""
    return {"counters": counters(), "gauges": gauges()}


def reset() -> None:
    """Drop every series (the ``clear_memo_caches()`` hook)."""
    _COUNTERS.clear()
    _GAUGES.clear()


def active_series() -> int:
    """Number of live series — the registry's "cache size" probe."""
    return len(_COUNTERS) + len(_GAUGES)


def merged_counters(deltas: Mapping[str, float]) -> dict[str, float]:
    """This process's counters plus a worker-shard delta, sorted.

    Forked sweep shards inherit a copy of the parent's counters, so each
    shard reports only the *delta* it produced; the parent folds those
    into its own totals when it finalizes a trace session.
    """
    merged = dict(_COUNTERS)
    for name, value in deltas.items():
        merged[name] = merged.get(name, 0) + value
    return {k: merged[k] for k in sorted(merged)}
