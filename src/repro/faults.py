"""Degraded-fabric fault injection (ROADMAP: robustness scenario axis).

The paper argues Bine trees cross fewer global links; that matters most
when the fabric is *not* pristine.  This module makes "not pristine" a
first-class, deterministic campaign knob:

* :class:`FaultSpec` — a declarative description of the degradation:
  how many global links have failed, how many nodes are down, how many
  nodes lost a NIC, and per-link-class width derates.  Failures are
  *sampled* deterministically from a seed, so the same spec always
  degrades a topology identically (across processes, workers, and disk
  caches), and its :attr:`~FaultSpec.label` keys records and cache
  entries.
* :class:`DegradedTopology` — a :class:`~repro.topology.base.Topology`
  wrapper applying a spec.  Routes that would use a failed global link
  detour through an intermediate group (non-minimal, one extra global
  hop); if every detour is blocked the pair is unreachable and
  :class:`~repro.runtime.errors.TopologyPartitionedError` names it.
  Width derates scale link widths, which the cost model divides load by.

Both profile engines (:class:`~repro.model.simulator.RouteTable` and the
CSR :class:`~repro.model.compiled.CompiledRouteTable`) query
``topo.route(src, dst)`` lazily per node pair, so wrapping the topology
degrades both identically — records stay bit-identical across engines
under any spec (asserted in ``tests/test_faults.py``).

Example::

    >>> from repro.topology.dragonfly import Dragonfly
    >>> spec = FaultSpec.parse("links=2,seed=13")
    >>> topo = DegradedTopology(Dragonfly(8, 4), spec)
    >>> len(topo.failed_links)
    2
    >>> DegradedTopology(Dragonfly(8, 4), spec).failed_links == topo.failed_links
    True
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.runtime.errors import FaultSpecError, TopologyPartitionedError
from repro.topology.base import Link, LinkClass, Topology

__all__ = [
    "FaultSpec",
    "FaultTimeline",
    "TimelineEvent",
    "DegradedTopology",
    "NIC_DERATE",
]

#: width factor applied to node-adjacent links when one of a node's NICs
#: is out (half the injection/ejection bundle survives)
NIC_DERATE = 0.5

_LINK_CLASSES = (
    LinkClass.LOCAL,
    LinkClass.GLOBAL,
    LinkClass.TORUS,
    LinkClass.INTRA,
)

#: manifest / to_dict keys of a fault scenario
FAULT_KEYS = {
    "seed", "failed_links", "failed_nodes", "nic_outages", "derate", "timeline",
}


def _normalize_derate(derate) -> tuple[tuple[str, float], ...]:
    if isinstance(derate, Mapping):
        items: Iterable = derate.items()
    else:
        items = derate or ()
    return tuple(sorted((str(c), float(f)) for c, f in items))


def _fmt_num(value: float) -> str:
    """Shortest decimal that round-trips through ``float`` (canonical labels)."""
    return repr(float(value))


# -- fault timelines ----------------------------------------------------------

#: what a ``heal=`` event can restore (``all`` clears every dynamic effect)
HEAL_TARGETS = ("all", "links", "nodes", "nics", "derate", "background")


@dataclass(frozen=True)
class TimelineEvent:
    """One mid-run fabric event of a :class:`FaultTimeline`.

    ``at`` is the simulated time (seconds) the event fires; ``links`` /
    ``nodes`` / ``nics`` are *additional* victim counts sampled (from
    ``seed``) among the members still healthy when the event fires;
    ``derate`` sets per-class dynamic width factors; ``background`` sets
    the fraction of fabric bandwidth consumed by background traffic;
    ``heal`` reverses one category of dynamic effects (or ``"all"``).
    A healing event carries no failure/derate fields — each event is
    either damage or repair, which keeps the grammar canonical.
    """

    at: float
    links: int = 0
    nodes: int = 0
    nics: int = 0
    derate: tuple[tuple[str, float], ...] = field(default=())
    background: float | None = None
    heal: str = ""
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "derate", _normalize_derate(self.derate))
        self.validate()

    def validate(self) -> None:
        try:
            at = float(self.at)
        except (TypeError, ValueError):
            raise FaultSpecError(
                f"timeline event: at must be a number, got {self.at!r}"
            ) from None
        if not math.isfinite(at) or at < 0.0:
            raise FaultSpecError(
                f"timeline event: at must be finite and >= 0, got {self.at!r}"
            )
        object.__setattr__(self, "at", at)
        for name in ("links", "nodes", "nics", "seed"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise FaultSpecError(f"timeline event: {name} must be an integer")
        for name in ("links", "nodes", "nics"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"timeline event: {name} must be >= 0")
        for cls, factor in self.derate:
            if cls not in _LINK_CLASSES:
                raise FaultSpecError(
                    f"timeline event: unknown link class {cls!r}; "
                    f"have {list(_LINK_CLASSES)}"
                )
            if not 0.0 < factor <= 1.0:
                raise FaultSpecError(
                    f"timeline event: derate factor for {cls!r} must be in "
                    f"(0, 1], got {factor!r}"
                )
        if self.background is not None:
            bg = float(self.background)
            if not 0.0 <= bg < 1.0:
                raise FaultSpecError(
                    f"timeline event: background must be in [0, 1), got {bg!r}"
                )
            object.__setattr__(self, "background", bg)
        if self.heal and self.heal not in HEAL_TARGETS:
            raise FaultSpecError(
                f"timeline event: heal target {self.heal!r} unknown; "
                f"have {list(HEAL_TARGETS)}"
            )
        damages = self.links or self.nodes or self.nics or self.derate
        if self.heal and (damages or self.background is not None):
            raise FaultSpecError(
                "timeline event: heal events carry no failure/derate/"
                "background fields (use separate events)"
            )
        if not self.heal and not damages and self.background is None:
            raise FaultSpecError(
                f"timeline event at={_fmt_num(self.at)}: event does nothing"
            )

    @property
    def label(self) -> str:
        """Canonical ``at=T:field=value,...`` form (the grammar itself)."""
        parts = []
        if self.links:
            parts.append(f"links={self.links}")
        if self.nodes:
            parts.append(f"nodes={self.nodes}")
        if self.nics:
            parts.append(f"nics={self.nics}")
        parts.extend(f"{cls}={_fmt_num(f)}" for cls, f in self.derate)
        if self.background is not None:
            parts.append(f"background={_fmt_num(self.background)}")
        if self.heal:
            parts.append(f"heal={self.heal}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        return f"at={_fmt_num(self.at)}:" + ",".join(parts)


def _parse_event(text: str) -> TimelineEvent:
    head, colon, rest = text.partition(":")
    key, _, value = head.partition("=")
    if not colon or key.strip() != "at":
        raise FaultSpecError(
            f"timeline event {text!r}: expected 'at=T:field=value,...'"
        )
    try:
        at = float(value)
    except ValueError:
        raise FaultSpecError(
            f"timeline event {text!r}: at takes a number, got {value!r}"
        ) from None
    kwargs: dict = {"at": at, "derate": {}}
    for part in rest.split(","):
        part = part.strip()
        if not part:
            continue
        key, eq, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not eq:
            raise FaultSpecError(
                f"timeline event {text!r}: expected field=value, got {part!r}"
            )
        if key in ("links", "nodes", "nics", "seed"):
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise FaultSpecError(
                    f"timeline event {text!r}: {key} takes an integer, "
                    f"got {value!r}"
                ) from None
        elif key in ("background",):
            try:
                kwargs[key] = float(value)
            except ValueError:
                raise FaultSpecError(
                    f"timeline event {text!r}: {key} takes a number, "
                    f"got {value!r}"
                ) from None
        elif key == "heal":
            kwargs["heal"] = value
        elif key in _LINK_CLASSES:
            try:
                kwargs["derate"][key] = float(value)
            except ValueError:
                raise FaultSpecError(
                    f"timeline event {text!r}: derate for {key!r} takes a "
                    f"number, got {value!r}"
                ) from None
        else:
            raise FaultSpecError(
                f"timeline event {text!r}: unknown field {key!r}; have "
                f"links, nodes, nics, seed, background, heal and the link "
                f"classes {list(_LINK_CLASSES)}"
            )
    return TimelineEvent(**kwargs)


@dataclass(frozen=True)
class FaultTimeline:
    """A seeded, deterministic schedule of mid-run fabric events.

    Events are canonically sorted by ``at`` (construction order never
    matters) and two events may not share an ``at`` — the label must be a
    pure function of *what happens*, and simultaneous events would make
    application order an invisible degree of freedom.

    Example::

        >>> tl = FaultTimeline.parse("at=0.002:heal=links;at=0.001:links=2")
        >>> tl.label
        'at=0.001:links=2;at=0.002:heal=links'
        >>> FaultTimeline.parse(tl.label) == tl
        True
        >>> FaultTimeline().label
        'none'
    """

    events: tuple[TimelineEvent, ...] = ()

    def __post_init__(self):
        events = tuple(sorted(self.events, key=lambda e: e.at))
        object.__setattr__(self, "events", events)
        seen: set[float] = set()
        for event in events:
            if event.at in seen:
                raise FaultSpecError(
                    f"fault timeline: duplicate event time "
                    f"at={_fmt_num(event.at)} (merge the events or offset one)"
                )
            seen.add(event.at)

    @property
    def is_null(self) -> bool:
        return not self.events

    @property
    def label(self) -> str:
        """Canonical grammar string; ``"none"`` when empty.

        ``FaultTimeline.parse(tl.label) == tl`` always holds (asserted by
        the property tests), so the label can key records, cache entries
        and manifests exactly like :attr:`FaultSpec.label` does.
        """
        if not self.events:
            return "none"
        return ";".join(event.label for event in self.events)

    @classmethod
    def parse(cls, text: str) -> "FaultTimeline":
        """Parse ``at=T:links=K,seed=S;at=T2:heal=links`` (inverse of label)."""
        text = (text or "").strip()
        if text in ("", "none"):
            return cls()
        return cls(tuple(
            _parse_event(part.strip())
            for part in text.split(";") if part.strip()
        ))


@dataclass(frozen=True)
class FaultSpec:
    """Declarative, seeded description of a degraded fabric.

    ``failed_links`` / ``failed_nodes`` / ``nic_outages`` are *counts*;
    the concrete victims are sampled from ``seed`` when the spec is
    applied to a topology (same spec → same victims, always).
    ``derate`` maps link classes to width factors in ``(0, 1]`` — e.g.
    ``{"global": 0.5}`` halves every global bundle's capacity.

    ``timeline`` optionally attaches a :class:`FaultTimeline` of mid-run
    events on top of the static degradation; only the ``"des"`` profile
    engine can replay one (static engines raise
    :class:`~repro.runtime.errors.DESEngineError`).  The timeline has its
    own label (:attr:`timeline_label`) — :attr:`label` stays the static
    scenario name, so records carry the two axes separately.

    Example::

        >>> FaultSpec.parse("links=2,global=0.5,seed=13").label
        'links2-globalx0.5-seed13'
        >>> FaultSpec().label
        'none'
    """

    seed: int = 0
    failed_links: int = 0
    failed_nodes: int = 0
    nic_outages: int = 0
    derate: tuple[tuple[str, float], ...] = field(default=())
    timeline: FaultTimeline = field(default_factory=FaultTimeline)

    def __post_init__(self):
        object.__setattr__(self, "derate", _normalize_derate(self.derate))
        if isinstance(self.timeline, str):
            object.__setattr__(self, "timeline", FaultTimeline.parse(self.timeline))
        elif not isinstance(self.timeline, FaultTimeline):
            raise FaultSpecError(
                "fault spec: timeline must be a FaultTimeline or its label"
            )
        self.validate()

    def validate(self) -> None:
        """Raise :class:`FaultSpecError` on an ill-formed spec."""
        for name in ("seed", "failed_links", "failed_nodes", "nic_outages"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise FaultSpecError(f"fault spec: {name} must be an integer")
        for name in ("failed_links", "failed_nodes", "nic_outages"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"fault spec: {name} must be >= 0")
        for cls, factor in self.derate:
            if cls not in _LINK_CLASSES:
                raise FaultSpecError(
                    f"fault spec: unknown link class {cls!r}; "
                    f"have {list(_LINK_CLASSES)}"
                )
            if not 0.0 < factor <= 1.0:
                raise FaultSpecError(
                    f"fault spec: derate factor for {cls!r} must be in (0, 1], "
                    f"got {factor:g}"
                )

    @property
    def has_static(self) -> bool:
        """True when the spec degrades the fabric before the run starts."""
        return bool(
            self.failed_links or self.failed_nodes or self.nic_outages
            or self.derate
        )

    @property
    def is_null(self) -> bool:
        """True when the spec degrades nothing (statically *or* mid-run)."""
        return not self.has_static and self.timeline.is_null

    @property
    def label(self) -> str:
        """Canonical, filesystem-safe *static* scenario name (``"none"`` if
        statically pristine).

        The label keys :class:`~repro.analysis.sweep.SweepRecord` rows,
        disk-cache namespaces and report figures, so it must be a pure
        function of the spec.  The timeline has its own axis
        (:attr:`timeline_label`): profiles are a static-fabric artifact,
        so a timeline-only spec shares the pristine cache namespace.
        """
        if not self.has_static:
            return "none"
        parts = []
        if self.failed_links:
            parts.append(f"links{self.failed_links}")
        if self.failed_nodes:
            parts.append(f"nodes{self.failed_nodes}")
        if self.nic_outages:
            parts.append(f"nics{self.nic_outages}")
        parts.extend(f"{cls}x{factor:g}" for cls, factor in self.derate)
        parts.append(f"seed{self.seed}")
        return "-".join(parts)

    @property
    def timeline_label(self) -> str:
        """Canonical label of the attached timeline (``"none"`` if empty)."""
        return self.timeline.label

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the compact CLI form: ``links=2,nodes=1,global=0.5,seed=13``.

        Keys ``links`` / ``nodes`` / ``nics`` / ``seed`` take integers;
        any link-class name (``local`` / ``global`` / ``torus`` /
        ``intra``) takes a derate factor.  ``"none"`` (or an empty
        string) is the pristine fabric.

        Example::

            >>> FaultSpec.parse("links=3,seed=7").failed_links
            3
        """
        text = (text or "").strip()
        if text in ("", "none"):
            return cls()
        kwargs: dict = {"derate": {}}
        for part in text.split(","):
            if "=" not in part:
                raise FaultSpecError(
                    f"fault spec {text!r}: expected key=value, got {part!r}"
                )
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if key in ("links", "nodes", "nics", "seed"):
                try:
                    ivalue = int(value)
                except ValueError:
                    raise FaultSpecError(
                        f"fault spec {text!r}: {key} takes an integer, "
                        f"got {value!r}"
                    ) from None
                field_name = {
                    "links": "failed_links", "nodes": "failed_nodes",
                    "nics": "nic_outages", "seed": "seed",
                }[key]
                kwargs[field_name] = ivalue
            elif key in _LINK_CLASSES:
                try:
                    kwargs["derate"][key] = float(value)
                except ValueError:
                    raise FaultSpecError(
                        f"fault spec {text!r}: derate for {key!r} takes a "
                        f"number, got {value!r}"
                    ) from None
            else:
                raise FaultSpecError(
                    f"fault spec {text!r}: unknown key {key!r}; have "
                    f"links, nodes, nics, seed, and the link classes "
                    f"{list(_LINK_CLASSES)}"
                )
        return cls(**kwargs)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        """Build from a manifest ``[[faults]]`` table (inverse of to_dict)."""
        unknown = set(data) - FAULT_KEYS
        if unknown:
            raise FaultSpecError(
                f"fault spec: unknown key(s) {sorted(unknown)}; "
                f"allowed: {sorted(FAULT_KEYS)}"
            )

        def _int(key):
            value = data.get(key, 0)
            if isinstance(value, bool) or not isinstance(value, int):
                raise FaultSpecError(f"fault spec: {key} must be an integer")
            return value

        derate = data.get("derate", {})
        if not isinstance(derate, Mapping):
            raise FaultSpecError(
                "fault spec: derate must be a table of link-class factors"
            )
        timeline = data.get("timeline", "")
        if not isinstance(timeline, str):
            raise FaultSpecError(
                "fault spec: timeline must be a grammar string "
                "('at=T:links=K,...;at=T2:heal=...')"
            )
        return cls(
            seed=_int("seed"),
            failed_links=_int("failed_links"),
            failed_nodes=_int("failed_nodes"),
            nic_outages=_int("nic_outages"),
            derate={str(k): v for k, v in derate.items()},
            timeline=FaultTimeline.parse(timeline),
        )

    def to_dict(self) -> dict:
        """Manifest-shaped view (omits defaults; round-trips from_dict)."""
        out: dict = {}
        if self.seed:
            out["seed"] = self.seed
        if self.failed_links:
            out["failed_links"] = self.failed_links
        if self.failed_nodes:
            out["failed_nodes"] = self.failed_nodes
        if self.nic_outages:
            out["nic_outages"] = self.nic_outages
        if self.derate:
            out["derate"] = dict(self.derate)
        if not self.timeline.is_null:
            out["timeline"] = self.timeline.label
        return out


# -- topology wrapper ---------------------------------------------------------


def _group_members(topo: Topology) -> dict[int, list[int]]:
    members: dict[int, list[int]] = {}
    for v in range(topo.num_nodes):
        members.setdefault(topo.group_of(v), []).append(v)
    return members


def _global_link_population(
    topo: Topology, reps: dict[int, int]
) -> list[tuple]:
    """Every global-class link key, found by probing group-pair routes.

    Minimal routing is deterministic, so routing one representative node
    pair per ordered group pair surfaces every inter-group shared link
    (Dragonfly ``glob`` bundles, fat-tree ``up``/``down`` uplinks).  A
    torus has no global-class links: its population is empty and asking
    to fail links there is a :class:`FaultSpecError`.
    """
    keys = set()
    groups = sorted(reps)
    for ga in groups:
        for gb in groups:
            if ga == gb:
                continue
            for link in topo.route(reps[ga], reps[gb]):
                if link.cls == LinkClass.GLOBAL:
                    keys.add(link.key)
    return sorted(keys, key=repr)


class DegradedTopology(Topology):
    """A topology with a :class:`FaultSpec` applied.

    Deterministic by construction: victims are drawn from
    ``random.Random(spec.seed)`` over canonically ordered populations
    (global link keys sorted by repr; node ids ascending), so two
    instances built from the same ``(topology, spec)`` are
    indistinguishable — including across pickling into sweep workers.

    Routing semantics (see ``docs/robustness.md``):

    * a route whose global link failed detours via the lowest-numbered
      group whose representative yields a surviving route (one extra
      global hop); no surviving detour →
      :class:`TopologyPartitionedError` naming the pair;
    * routes touching a failed node raise
      :class:`TopologyPartitionedError` immediately;
    * a NIC outage multiplies the width of every link adjacent to the
      node (first/last hops of its routes) by :data:`NIC_DERATE`;
    * class derates multiply every matching link's width.

    Width scaling is a pure function of the link *key*, so shared links
    keep one consistent width everywhere they appear — which is what
    keeps the python and CSR route tables bit-identical.
    """

    def __init__(self, inner: Topology, spec: FaultSpec):
        if isinstance(inner, DegradedTopology):
            raise FaultSpecError("cannot degrade an already-degraded topology")
        spec.validate()
        self.inner = inner
        self.spec = spec
        rng = random.Random(spec.seed)
        members = _group_members(inner)
        reps = {g: nodes[0] for g, nodes in members.items()}
        population = _global_link_population(inner, reps)
        if spec.failed_links > len(population):
            raise FaultSpecError(
                f"cannot fail {spec.failed_links} global links: {inner!r} "
                f"has only {len(population)}"
            )
        self.failed_links = frozenset(rng.sample(population, spec.failed_links))
        nodes = list(range(inner.num_nodes))
        if spec.failed_nodes + spec.nic_outages > len(nodes):
            raise FaultSpecError(
                f"cannot fail {spec.failed_nodes} nodes and derate "
                f"{spec.nic_outages} NICs on {len(nodes)} nodes"
            )
        self.failed_nodes = frozenset(rng.sample(nodes, spec.failed_nodes))
        healthy = [v for v in nodes if v not in self.failed_nodes]
        self.nic_outages = frozenset(rng.sample(healthy, spec.nic_outages))
        self._derate = dict(spec.derate)
        self._members = members
        # healthy detour representative per group (groups that lost every
        # node simply offer no detour)
        self._healthy_reps = {
            g: next((v for v in ns if v not in self.failed_nodes), None)
            for g, ns in members.items()
        }
        self._nic_keys = self._nic_adjacent_keys()

    def _nic_adjacent_keys(self) -> frozenset:
        """Link keys derated by NIC outages: first/last hops around the node.

        Probes routes between the node and (a) every node of its own
        group, (b) one representative of every other group — which
        covers the node's dedicated access links on all shipped
        topologies.  Where the adjacent link is a shared bundle
        (fat-tree uplinks), the derate conservatively applies to the
        bundle; documented as lower-bound modelling.
        """
        keys = set()
        for v in sorted(self.nic_outages):
            g = self.inner.group_of(v)
            peers = list(self._members[g])
            peers.extend(
                rep for grp, rep in sorted(self._healthy_reps.items())
                if grp != g and rep is not None
            )
            for w in peers:
                if w == v:
                    continue
                out = self.inner.route(v, w)
                if out:
                    keys.add(out[0].key)
                back = self.inner.route(w, v)
                if back:
                    keys.add(back[-1].key)
        return frozenset(keys)

    # -- Topology interface -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.inner.num_nodes

    def group_of(self, node: int) -> int:
        return self.inner.group_of(node)

    def route(self, src: int, dst: int) -> list[Link]:
        self._check_node(src)
        self._check_node(dst)
        for v in (src, dst):
            if v in self.failed_nodes:
                raise TopologyPartitionedError(src, dst, f"node {v} is down")
        if src == dst:
            return []
        base = self.inner.route(src, dst)
        if not self._blocked(base):
            return self._shape(base)
        gs, gd = self.group_of(src), self.group_of(dst)
        for g in sorted(self._healthy_reps):
            if g in (gs, gd):
                continue
            mid = self._healthy_reps[g]
            if mid is None or mid in (src, dst):
                continue
            detour = self.inner.route(src, mid) + self.inner.route(mid, dst)
            if not self._blocked(detour):
                return self._shape(detour)
        raise TopologyPartitionedError(
            src, dst, f"{len(self.failed_links)} failed links, no detour"
        )

    # -- internals ----------------------------------------------------------

    def _blocked(self, links: list[Link]) -> bool:
        return any(link.key in self.failed_links for link in links)

    def _shape(self, links: list[Link]) -> list[Link]:
        out = []
        for link in links:
            factor = self._derate.get(link.cls, 1.0)
            if link.key in self._nic_keys:
                factor *= NIC_DERATE
            if factor != 1.0:
                width = link.width * factor
                # A factor in (0, 1] can still *compose* its way to zero:
                # a denormal class derate times NIC_DERATE underflows, and
                # a zero-width link turns every load it carries into a
                # divide-by-zero (inf records) downstream.  Refuse here —
                # loudly — rather than poison the sweep.
                if not width > 0.0:
                    raise FaultSpecError(
                        f"fault spec {self.spec.label!r}: derate underflows "
                        f"link {link.key!r} ({link.cls}) from width "
                        f"{link.width:g} to zero"
                    )
                link = Link(link.key, link.cls, width)
            out.append(link)
        return out

    def __repr__(self) -> str:
        return f"DegradedTopology({self.inner!r}, {self.spec.label!r})"
