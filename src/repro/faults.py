"""Degraded-fabric fault injection (ROADMAP: robustness scenario axis).

The paper argues Bine trees cross fewer global links; that matters most
when the fabric is *not* pristine.  This module makes "not pristine" a
first-class, deterministic campaign knob:

* :class:`FaultSpec` — a declarative description of the degradation:
  how many global links have failed, how many nodes are down, how many
  nodes lost a NIC, and per-link-class width derates.  Failures are
  *sampled* deterministically from a seed, so the same spec always
  degrades a topology identically (across processes, workers, and disk
  caches), and its :attr:`~FaultSpec.label` keys records and cache
  entries.
* :class:`DegradedTopology` — a :class:`~repro.topology.base.Topology`
  wrapper applying a spec.  Routes that would use a failed global link
  detour through an intermediate group (non-minimal, one extra global
  hop); if every detour is blocked the pair is unreachable and
  :class:`~repro.runtime.errors.TopologyPartitionedError` names it.
  Width derates scale link widths, which the cost model divides load by.

Both profile engines (:class:`~repro.model.simulator.RouteTable` and the
CSR :class:`~repro.model.compiled.CompiledRouteTable`) query
``topo.route(src, dst)`` lazily per node pair, so wrapping the topology
degrades both identically — records stay bit-identical across engines
under any spec (asserted in ``tests/test_faults.py``).

Example::

    >>> from repro.topology.dragonfly import Dragonfly
    >>> spec = FaultSpec.parse("links=2,seed=13")
    >>> topo = DegradedTopology(Dragonfly(8, 4), spec)
    >>> len(topo.failed_links)
    2
    >>> DegradedTopology(Dragonfly(8, 4), spec).failed_links == topo.failed_links
    True
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.runtime.errors import FaultSpecError, TopologyPartitionedError
from repro.topology.base import Link, LinkClass, Topology

__all__ = ["FaultSpec", "DegradedTopology", "NIC_DERATE"]

#: width factor applied to node-adjacent links when one of a node's NICs
#: is out (half the injection/ejection bundle survives)
NIC_DERATE = 0.5

_LINK_CLASSES = (
    LinkClass.LOCAL,
    LinkClass.GLOBAL,
    LinkClass.TORUS,
    LinkClass.INTRA,
)

#: manifest / to_dict keys of a fault scenario
FAULT_KEYS = {"seed", "failed_links", "failed_nodes", "nic_outages", "derate"}


def _normalize_derate(derate) -> tuple[tuple[str, float], ...]:
    if isinstance(derate, Mapping):
        items: Iterable = derate.items()
    else:
        items = derate or ()
    return tuple(sorted((str(c), float(f)) for c, f in items))


@dataclass(frozen=True)
class FaultSpec:
    """Declarative, seeded description of a degraded fabric.

    ``failed_links`` / ``failed_nodes`` / ``nic_outages`` are *counts*;
    the concrete victims are sampled from ``seed`` when the spec is
    applied to a topology (same spec → same victims, always).
    ``derate`` maps link classes to width factors in ``(0, 1]`` — e.g.
    ``{"global": 0.5}`` halves every global bundle's capacity.

    Example::

        >>> FaultSpec.parse("links=2,global=0.5,seed=13").label
        'links2-globalx0.5-seed13'
        >>> FaultSpec().label
        'none'
    """

    seed: int = 0
    failed_links: int = 0
    failed_nodes: int = 0
    nic_outages: int = 0
    derate: tuple[tuple[str, float], ...] = field(default=())

    def __post_init__(self):
        object.__setattr__(self, "derate", _normalize_derate(self.derate))
        self.validate()

    def validate(self) -> None:
        """Raise :class:`FaultSpecError` on an ill-formed spec."""
        for name in ("seed", "failed_links", "failed_nodes", "nic_outages"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise FaultSpecError(f"fault spec: {name} must be an integer")
        for name in ("failed_links", "failed_nodes", "nic_outages"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"fault spec: {name} must be >= 0")
        for cls, factor in self.derate:
            if cls not in _LINK_CLASSES:
                raise FaultSpecError(
                    f"fault spec: unknown link class {cls!r}; "
                    f"have {list(_LINK_CLASSES)}"
                )
            if not 0.0 < factor <= 1.0:
                raise FaultSpecError(
                    f"fault spec: derate factor for {cls!r} must be in (0, 1], "
                    f"got {factor:g}"
                )

    @property
    def is_null(self) -> bool:
        """True when the spec degrades nothing (the pristine fabric)."""
        return not (
            self.failed_links or self.failed_nodes or self.nic_outages
            or self.derate
        )

    @property
    def label(self) -> str:
        """Canonical, filesystem-safe scenario name; ``"none"`` if pristine.

        The label keys :class:`~repro.analysis.sweep.SweepRecord` rows,
        disk-cache namespaces and report figures, so it must be a pure
        function of the spec.
        """
        if self.is_null:
            return "none"
        parts = []
        if self.failed_links:
            parts.append(f"links{self.failed_links}")
        if self.failed_nodes:
            parts.append(f"nodes{self.failed_nodes}")
        if self.nic_outages:
            parts.append(f"nics{self.nic_outages}")
        parts.extend(f"{cls}x{factor:g}" for cls, factor in self.derate)
        parts.append(f"seed{self.seed}")
        return "-".join(parts)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the compact CLI form: ``links=2,nodes=1,global=0.5,seed=13``.

        Keys ``links`` / ``nodes`` / ``nics`` / ``seed`` take integers;
        any link-class name (``local`` / ``global`` / ``torus`` /
        ``intra``) takes a derate factor.  ``"none"`` (or an empty
        string) is the pristine fabric.

        Example::

            >>> FaultSpec.parse("links=3,seed=7").failed_links
            3
        """
        text = (text or "").strip()
        if text in ("", "none"):
            return cls()
        kwargs: dict = {"derate": {}}
        for part in text.split(","):
            if "=" not in part:
                raise FaultSpecError(
                    f"fault spec {text!r}: expected key=value, got {part!r}"
                )
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if key in ("links", "nodes", "nics", "seed"):
                try:
                    ivalue = int(value)
                except ValueError:
                    raise FaultSpecError(
                        f"fault spec {text!r}: {key} takes an integer, "
                        f"got {value!r}"
                    ) from None
                field_name = {
                    "links": "failed_links", "nodes": "failed_nodes",
                    "nics": "nic_outages", "seed": "seed",
                }[key]
                kwargs[field_name] = ivalue
            elif key in _LINK_CLASSES:
                try:
                    kwargs["derate"][key] = float(value)
                except ValueError:
                    raise FaultSpecError(
                        f"fault spec {text!r}: derate for {key!r} takes a "
                        f"number, got {value!r}"
                    ) from None
            else:
                raise FaultSpecError(
                    f"fault spec {text!r}: unknown key {key!r}; have "
                    f"links, nodes, nics, seed, and the link classes "
                    f"{list(_LINK_CLASSES)}"
                )
        return cls(**kwargs)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        """Build from a manifest ``[[faults]]`` table (inverse of to_dict)."""
        unknown = set(data) - FAULT_KEYS
        if unknown:
            raise FaultSpecError(
                f"fault spec: unknown key(s) {sorted(unknown)}; "
                f"allowed: {sorted(FAULT_KEYS)}"
            )

        def _int(key):
            value = data.get(key, 0)
            if isinstance(value, bool) or not isinstance(value, int):
                raise FaultSpecError(f"fault spec: {key} must be an integer")
            return value

        derate = data.get("derate", {})
        if not isinstance(derate, Mapping):
            raise FaultSpecError(
                "fault spec: derate must be a table of link-class factors"
            )
        return cls(
            seed=_int("seed"),
            failed_links=_int("failed_links"),
            failed_nodes=_int("failed_nodes"),
            nic_outages=_int("nic_outages"),
            derate={str(k): v for k, v in derate.items()},
        )

    def to_dict(self) -> dict:
        """Manifest-shaped view (omits defaults; round-trips from_dict)."""
        out: dict = {}
        if self.seed:
            out["seed"] = self.seed
        if self.failed_links:
            out["failed_links"] = self.failed_links
        if self.failed_nodes:
            out["failed_nodes"] = self.failed_nodes
        if self.nic_outages:
            out["nic_outages"] = self.nic_outages
        if self.derate:
            out["derate"] = dict(self.derate)
        return out


# -- topology wrapper ---------------------------------------------------------


def _group_members(topo: Topology) -> dict[int, list[int]]:
    members: dict[int, list[int]] = {}
    for v in range(topo.num_nodes):
        members.setdefault(topo.group_of(v), []).append(v)
    return members


def _global_link_population(
    topo: Topology, reps: dict[int, int]
) -> list[tuple]:
    """Every global-class link key, found by probing group-pair routes.

    Minimal routing is deterministic, so routing one representative node
    pair per ordered group pair surfaces every inter-group shared link
    (Dragonfly ``glob`` bundles, fat-tree ``up``/``down`` uplinks).  A
    torus has no global-class links: its population is empty and asking
    to fail links there is a :class:`FaultSpecError`.
    """
    keys = set()
    groups = sorted(reps)
    for ga in groups:
        for gb in groups:
            if ga == gb:
                continue
            for link in topo.route(reps[ga], reps[gb]):
                if link.cls == LinkClass.GLOBAL:
                    keys.add(link.key)
    return sorted(keys, key=repr)


class DegradedTopology(Topology):
    """A topology with a :class:`FaultSpec` applied.

    Deterministic by construction: victims are drawn from
    ``random.Random(spec.seed)`` over canonically ordered populations
    (global link keys sorted by repr; node ids ascending), so two
    instances built from the same ``(topology, spec)`` are
    indistinguishable — including across pickling into sweep workers.

    Routing semantics (see ``docs/robustness.md``):

    * a route whose global link failed detours via the lowest-numbered
      group whose representative yields a surviving route (one extra
      global hop); no surviving detour →
      :class:`TopologyPartitionedError` naming the pair;
    * routes touching a failed node raise
      :class:`TopologyPartitionedError` immediately;
    * a NIC outage multiplies the width of every link adjacent to the
      node (first/last hops of its routes) by :data:`NIC_DERATE`;
    * class derates multiply every matching link's width.

    Width scaling is a pure function of the link *key*, so shared links
    keep one consistent width everywhere they appear — which is what
    keeps the python and CSR route tables bit-identical.
    """

    def __init__(self, inner: Topology, spec: FaultSpec):
        if isinstance(inner, DegradedTopology):
            raise FaultSpecError("cannot degrade an already-degraded topology")
        spec.validate()
        self.inner = inner
        self.spec = spec
        rng = random.Random(spec.seed)
        members = _group_members(inner)
        reps = {g: nodes[0] for g, nodes in members.items()}
        population = _global_link_population(inner, reps)
        if spec.failed_links > len(population):
            raise FaultSpecError(
                f"cannot fail {spec.failed_links} global links: {inner!r} "
                f"has only {len(population)}"
            )
        self.failed_links = frozenset(rng.sample(population, spec.failed_links))
        nodes = list(range(inner.num_nodes))
        if spec.failed_nodes + spec.nic_outages > len(nodes):
            raise FaultSpecError(
                f"cannot fail {spec.failed_nodes} nodes and derate "
                f"{spec.nic_outages} NICs on {len(nodes)} nodes"
            )
        self.failed_nodes = frozenset(rng.sample(nodes, spec.failed_nodes))
        healthy = [v for v in nodes if v not in self.failed_nodes]
        self.nic_outages = frozenset(rng.sample(healthy, spec.nic_outages))
        self._derate = dict(spec.derate)
        self._members = members
        # healthy detour representative per group (groups that lost every
        # node simply offer no detour)
        self._healthy_reps = {
            g: next((v for v in ns if v not in self.failed_nodes), None)
            for g, ns in members.items()
        }
        self._nic_keys = self._nic_adjacent_keys()

    def _nic_adjacent_keys(self) -> frozenset:
        """Link keys derated by NIC outages: first/last hops around the node.

        Probes routes between the node and (a) every node of its own
        group, (b) one representative of every other group — which
        covers the node's dedicated access links on all shipped
        topologies.  Where the adjacent link is a shared bundle
        (fat-tree uplinks), the derate conservatively applies to the
        bundle; documented as lower-bound modelling.
        """
        keys = set()
        for v in sorted(self.nic_outages):
            g = self.inner.group_of(v)
            peers = list(self._members[g])
            peers.extend(
                rep for grp, rep in sorted(self._healthy_reps.items())
                if grp != g and rep is not None
            )
            for w in peers:
                if w == v:
                    continue
                out = self.inner.route(v, w)
                if out:
                    keys.add(out[0].key)
                back = self.inner.route(w, v)
                if back:
                    keys.add(back[-1].key)
        return frozenset(keys)

    # -- Topology interface -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.inner.num_nodes

    def group_of(self, node: int) -> int:
        return self.inner.group_of(node)

    def route(self, src: int, dst: int) -> list[Link]:
        self._check_node(src)
        self._check_node(dst)
        for v in (src, dst):
            if v in self.failed_nodes:
                raise TopologyPartitionedError(src, dst, f"node {v} is down")
        if src == dst:
            return []
        base = self.inner.route(src, dst)
        if not self._blocked(base):
            return self._shape(base)
        gs, gd = self.group_of(src), self.group_of(dst)
        for g in sorted(self._healthy_reps):
            if g in (gs, gd):
                continue
            mid = self._healthy_reps[g]
            if mid is None or mid in (src, dst):
                continue
            detour = self.inner.route(src, mid) + self.inner.route(mid, dst)
            if not self._blocked(detour):
                return self._shape(detour)
        raise TopologyPartitionedError(
            src, dst, f"{len(self.failed_links)} failed links, no detour"
        )

    # -- internals ----------------------------------------------------------

    def _blocked(self, links: list[Link]) -> bool:
        return any(link.key in self.failed_links for link in links)

    def _shape(self, links: list[Link]) -> list[Link]:
        out = []
        for link in links:
            factor = self._derate.get(link.cls, 1.0)
            if link.key in self._nic_keys:
                factor *= NIC_DERATE
            if factor != 1.0:
                link = Link(link.key, link.cls, link.width * factor)
            out.append(link)
        return out

    def __repr__(self) -> str:
        return f"DegradedTopology({self.inner!r}, {self.spec.label!r})"
