"""Schedule → time/traffic evaluation under a topology and cost model.

Profiles make sweeps cheap: a schedule is built once per ``(algorithm, p)``
at the canonical size ``n = p`` elements (block size 1), routed once per
topology/mapping, and collapsed into per-step aggregates in *element units*.
Evaluating any real vector size then just scales the byte terms by
``n / n_build`` — latency terms (hops, segment counts) are size-invariant.
This mirrors how the algorithms behave: their communication structure does
not depend on the vector size, only their per-transfer byte counts do.

Routing is shared across profiles through a :class:`RouteTable`: minimal
routes depend only on the *node pair*, never on the schedule or the rank
mapping, so one table per topology serves every algorithm of a campaign.
The table interns each distinct link as an integer index and precomputes,
per node pair, the link-index/width/class arrays and the hop signature that
:func:`profile_step` folds over — turning the former per-transfer dict
churn into NumPy array accumulation.  The sweep layer
(:mod:`repro.analysis.sweep`) owns one ``RouteTable`` per
:class:`ProfileCache` and threads it through both exact and analytic
profile builders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain

import numpy as np

from repro.model.cost import CostParams
from repro.runtime.schedule import Schedule
from repro.topology.base import LinkClass, Topology
from repro.topology.mapping import RankMap

__all__ = [
    "StepProfile",
    "ScheduleProfile",
    "RouteTable",
    "profile_schedule",
    "evaluate_time",
    "RunMetrics",
]


@dataclass(frozen=True)
class StepProfile:
    """Size-invariant aggregates for one step (element units at build size)."""

    #: unique (hops_by_class, segments) latency signatures
    lat_signatures: tuple[tuple[tuple[tuple[str, int], ...], int], ...]
    #: max element load on any single link, per class
    max_link_load: tuple[tuple[str, int], ...]
    #: max elements injected / ejected by any node
    max_inj: int
    max_ej: int
    #: max elements reduced at any rank (incoming transfers with an op)
    max_reduce: int
    #: max elements moved locally at any rank (pre+post copies)
    max_copy: int
    #: total elements crossing group boundaries
    global_elems: int
    #: total elements by link class (element·link products)
    class_elems: tuple[tuple[str, int], ...]
    #: max messages handled (sent+received) by any rank this step
    max_node_msgs: int = 0


@dataclass(frozen=True)
class ScheduleProfile:
    """All steps plus metadata needed for evaluation."""

    p: int
    n_build: int
    meta: dict = field(hash=False)
    steps: tuple[StepProfile, ...] = ()

    @property
    def segmented(self) -> bool:
        return bool(self.meta.get("segmented", False))

    # The step totals are size-invariant, but per-size evaluation used to
    # re-walk every step for them on each call; both are memoized on the
    # instance (frozen dataclass, hence object.__setattr__ — the same idiom
    # as Transfer._nelems).

    def total_global_elems(self) -> int:
        cached = self.__dict__.get("_total_global_elems")
        if cached is None:
            cached = sum(s.global_elems for s in self.steps)
            object.__setattr__(self, "_total_global_elems", cached)
        return cached

    def total_class_elems(self) -> dict[str, int]:
        cached = self.__dict__.get("_total_class_elems")
        if cached is None:
            cached = {}
            for s in self.steps:
                for cls, e in s.class_elems:
                    cached[cls] = cached.get(cls, 0) + e
            object.__setattr__(self, "_total_class_elems", cached)
        return dict(cached)  # callers may mutate their view


@dataclass(frozen=True)
class _PairRoute:
    """Precomputed routing data for one ordered node pair."""

    #: interned link indices along the minimal route (unique per route)
    link_idx: np.ndarray
    #: parallel physical-link widths (float, for exact load division)
    width: np.ndarray
    #: parallel link class ids (indices into the table's class-name list)
    cls_idx: np.ndarray
    #: ready-made latency signature: sorted ``(class, hop_count)`` pairs
    hops: tuple[tuple[str, int], ...]
    #: route leaves the node (any non-intra link) → counts as NIC traffic
    uses_nic: bool


class RouteTable:
    """Interned minimal routes for one topology, shared across profiles.

    Routes depend only on the node pair, never on the schedule or rank
    mapping, so all algorithms profiled against the same topology share one
    table (the sweep layer keeps one per
    :class:`~repro.analysis.sweep.ProfileCache`).  Links are interned to
    integer indices; node pairs resolve lazily to :class:`_PairRoute`
    entries that :func:`profile_step` consumes without touching the
    topology again.
    """

    def __init__(self, topo: Topology):
        self.topo = topo
        self._pairs: dict[tuple[int, int], _PairRoute] = {}
        self._link_ids: dict[tuple, int] = {}
        self._cls_ids: dict[str, int] = {}
        self.cls_names: list[str] = []

    def __len__(self) -> int:
        return len(self._pairs)

    def pair(self, a: int, b: int) -> _PairRoute:
        """Routing data for nodes ``a → b`` (computed once, then cached)."""
        key = (a, b)
        pr = self._pairs.get(key)
        if pr is None:
            pr = self._intern(a, b)
            self._pairs[key] = pr
        return pr

    def _intern(self, a: int, b: int) -> _PairRoute:
        route = self.topo.route(a, b)
        idx, width, cls_idx = [], [], []
        hops: dict[str, int] = {}
        uses_nic = False
        for link in route:
            li = self._link_ids.get(link.key)
            if li is None:
                li = self._link_ids[link.key] = len(self._link_ids)
            ci = self._cls_ids.get(link.cls)
            if ci is None:
                ci = self._cls_ids[link.cls] = len(self._cls_ids)
                self.cls_names.append(link.cls)
            idx.append(li)
            width.append(float(link.width))
            cls_idx.append(ci)
            hops[link.cls] = hops.get(link.cls, 0) + 1
            if link.cls != LinkClass.INTRA:
                uses_nic = True
        return _PairRoute(
            link_idx=np.asarray(idx, dtype=np.intp),
            width=np.asarray(width, dtype=np.float64),
            cls_idx=np.asarray(cls_idx, dtype=np.intp),
            hops=tuple(sorted(hops.items())),
            uses_nic=uses_nic,
        )


def profile_step(
    transfers,
    local_ops,
    routes: RouteTable,
    node_of,
    groups,
) -> StepProfile:
    """Collapse one step's transfers/local ops into a :class:`StepProfile`.

    ``transfers`` yields ``(src_rank, dst_rank, nelems, num_segments, has_op)``
    tuples; ``local_ops`` yields ``(rank, nelems, has_op)``; ``node_of`` and
    ``groups`` are per-rank node / group tables; ``routes`` is the shared
    :class:`RouteTable` of the topology being profiled.

    Per-rank aggregates (messages, injection/ejection, reduction, copies)
    accumulate through ``np.bincount``; per-link loads accumulate through one
    ``np.add.at`` over the concatenated route-link indices, which adds
    contributions in transfer order — bit-identical to the sequential
    per-link scalar accumulation it replaces.

    A :class:`~repro.model.compiled.CompiledRouteTable` passed as ``routes``
    dispatches to its vectorized kernel (the analytic profile builders rely
    on this; results are bit-identical either way).
    """
    if not isinstance(routes, RouteTable):
        return routes.profile_step(transfers, local_ops, node_of, groups)
    transfers = list(transfers)
    p = len(node_of)
    signatures: set = set()
    max_by_class: dict[str, float] = {}
    class_elems: dict[str, int] = {}

    n_t = len(transfers)
    idx_chunks: list[np.ndarray] = []
    contrib_chunks: list[np.ndarray] = []
    cls_chunks: list[np.ndarray] = []
    nic_l = []
    same_l = []
    crosses_l = []

    if n_t:
        pair_map = routes._pairs
        src_l, dst_l, ne_l, nsegs_l, op_l = zip(*transfers)
        for s_, d_, ne_, nsegs_ in zip(src_l, dst_l, ne_l, nsegs_l):
            a, b = node_of[s_], node_of[d_]
            pr = pair_map.get((a, b))
            if pr is None:
                pr = routes.pair(a, b)
            nic_l.append(pr.uses_nic)
            same_l.append(a == b)
            crosses_l.append(groups[s_] != groups[d_])
            signatures.add((pr.hops, nsegs_))
            if pr.link_idx.size:
                idx_chunks.append(pr.link_idx)
                contrib_chunks.append(ne_ / pr.width)
                cls_chunks.append(pr.cls_idx)
                for cls, h in pr.hops:
                    class_elems[cls] = class_elems.get(cls, 0) + ne_ * h
        src = np.fromiter(src_l, np.intp, n_t)
        dst = np.fromiter(dst_l, np.intp, n_t)
        ne = np.fromiter(ne_l, np.float64, n_t)
        nic = np.fromiter(nic_l, bool, n_t)
        red_mask = np.fromiter(op_l, bool, n_t)
        same_node = np.fromiter(same_l, bool, n_t)
        crosses = np.fromiter(crosses_l, bool, n_t)

    if idx_chunks:
        cat_idx = np.concatenate(idx_chunks)
        cat_contrib = np.concatenate(contrib_chunks)
        cat_cls = np.concatenate(cls_chunks)
        uniq, local = np.unique(cat_idx, return_inverse=True)
        loads = np.zeros(uniq.size, dtype=np.float64)
        # np.add.at is unbuffered: repeated indices add sequentially in
        # array order, so each link sums its contributions in transfer
        # order exactly as the scalar loop did.
        np.add.at(loads, local, cat_contrib)
        link_cls = np.zeros(uniq.size, dtype=np.intp)
        link_cls[local] = cat_cls
        for ci in np.unique(link_cls):
            m = loads[link_cls == ci].max()
            if m > 0:
                max_by_class[routes.cls_names[ci]] = float(m)

    if n_t:
        msgs = np.bincount(src, minlength=p) + np.bincount(dst, minlength=p)
        max_node_msgs = int(msgs.max())
        # NIC injection/ejection; intra-node (clique / shared-memory)
        # traffic rides the node-local fabric instead.
        max_inj = int(np.bincount(src[nic], weights=ne[nic], minlength=p).max())
        max_ej = int(np.bincount(dst[nic], weights=ne[nic], minlength=p).max())
        # same node, ppn > 1: a shared-memory copy
        copy_mask = ~nic & same_node
        copy_by_rank = np.bincount(dst[copy_mask], weights=ne[copy_mask], minlength=p)
        red_by_rank = np.bincount(dst[red_mask], weights=ne[red_mask], minlength=p)
        global_elems = int(ne[crosses].sum())
    else:
        max_node_msgs = max_inj = max_ej = global_elems = 0
        copy_by_rank = np.zeros(p, dtype=np.float64)
        red_by_rank = np.zeros(p, dtype=np.float64)

    for rank, nelems, has_op in local_ops:
        copy_by_rank[rank] += nelems
        if has_op:
            red_by_rank[rank] += nelems

    return StepProfile(
        lat_signatures=tuple(sorted(signatures)),
        max_link_load=tuple(sorted(max_by_class.items())),
        max_inj=max_inj,
        max_ej=max_ej,
        max_reduce=int(red_by_rank.max()) if p else 0,
        max_copy=int(copy_by_rank.max()) if p else 0,
        global_elems=global_elems,
        class_elems=tuple(sorted(class_elems.items())),
        max_node_msgs=max_node_msgs,
    )


def profile_schedule(
    schedule: Schedule,
    topo: Topology,
    rank_map: RankMap,
    *,
    routes: RouteTable | None = None,
) -> ScheduleProfile:
    """Route every transfer and collapse each step into aggregates.

    Pass ``routes`` to share one node-pair route table across many profiles
    of the same topology (the sweep layer always does); omitted, a private
    table is built for this call.
    """
    if rank_map.num_ranks != schedule.p:
        raise ValueError(
            f"mapping covers {rank_map.num_ranks} ranks, schedule needs {schedule.p}"
        )
    if routes is None:
        routes = RouteTable(topo)
    elif routes.topo is not topo:
        raise ValueError("routes table was built for a different topology")
    groups = rank_map.groups(topo)
    steps = []
    for step in schedule.steps:
        steps.append(
            profile_step(
                (
                    (t.src, t.dst, t.nelems, t.num_segments, t.op is not None)
                    for t in step.transfers
                ),
                (
                    (lc.rank, lc.nelems, lc.op is not None)
                    for lc in chain(step.pre, step.post)
                ),
                routes,
                rank_map.nodes,
                groups,
            )
        )
    return ScheduleProfile(
        p=schedule.p,
        n_build=schedule.meta.get("n", schedule.p),
        meta=dict(schedule.meta),
        steps=tuple(steps),
    )


@dataclass(frozen=True)
class RunMetrics:
    """Evaluation result for one (profile, params, n) combination."""

    time: float
    global_bytes: float
    bytes_by_class: dict

    @property
    def time_us(self) -> float:
        return self.time * 1e6


#: chunks assumed for pipelined (chained) schedules — Sec. 5.4 tree chains
PIPELINE_CHUNKS = 32


def evaluate_time(
    profile: ScheduleProfile, params: CostParams, n_elems: int
) -> RunMetrics:
    """Time and traffic for a vector of ``n_elems`` elements.

    Two schedule-level meta flags refine the step-sum law:

    * ``segmented`` — reduction compute overlaps transport within a step
      (Sec. 5.2.2);
    * ``pipelined`` — successive steps forward the *same* data (chain/tree
      pipelines like Trinaryx): bandwidth terms overlap across steps, so
      the total pays the per-step latency sum but only
      ``max_bw · (1 + (steps − 1)/chunks)`` of bandwidth.
    * ``ports_used`` — how many NICs the schedule can drive concurrently
      (App. D.4 multiported schedules); capped by the machine's ports.
    """
    scale = n_elems / profile.n_build
    b = params.itemsize
    ports = min(params.ports, int(profile.meta.get("ports_used", 1)))
    total = 0.0
    max_step_bw = 0.0
    num_steps = max(1, len(profile.steps))
    for step in profile.steps:
        lat = 0.0
        for hops, segs in step.lat_signatures:
            t = params.alpha + max(0, segs - 1) * params.seg_overhead
            for cls, h in hops:
                t += h * params.alpha_hop.get(cls, 0.0)
            lat = max(lat, t)
        # endpoint message processing serialises (flat algorithms' roots
        # handle p−1 messages "in one step")
        lat += max(0, step.max_node_msgs - 2) * params.msg_cpu
        bw = 0.0
        for cls, load in step.max_link_load:
            bw = max(bw, load * scale * b * params.beta.get(cls, 0.0))
        bw = max(
            bw,
            step.max_inj * scale * b * params.inj_beta / ports,
            step.max_ej * scale * b * params.inj_beta / ports,
        )
        comp = step.max_reduce * scale * b * params.reduce_beta
        copy = step.max_copy * scale * b * params.copy_beta
        if profile.meta.get("pipelined"):
            total += lat + copy
            max_step_bw = max(max_step_bw, bw + comp)
        elif profile.segmented:
            total += lat + max(bw, comp) + copy
        else:
            total += lat + bw + comp + copy
    if profile.meta.get("pipelined"):
        total += max_step_bw * (1 + (num_steps - 1) / PIPELINE_CHUNKS)
    return RunMetrics(
        time=total,
        global_bytes=profile.total_global_elems() * scale * b,
        bytes_by_class={
            cls: e * scale * b for cls, e in profile.total_class_elems().items()
        },
    )
