"""Schedule → time/traffic evaluation under a topology and cost model.

Profiles make sweeps cheap: a schedule is built once per ``(algorithm, p)``
at the canonical size ``n = p`` elements (block size 1), routed once per
topology/mapping, and collapsed into per-step aggregates in *element units*.
Evaluating any real vector size then just scales the byte terms by
``n / n_build`` — latency terms (hops, segment counts) are size-invariant.
This mirrors how the algorithms behave: their communication structure does
not depend on the vector size, only their per-transfer byte counts do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.cost import CostParams
from repro.runtime.schedule import Schedule
from repro.topology.base import LinkClass, Topology
from repro.topology.mapping import RankMap

__all__ = ["StepProfile", "ScheduleProfile", "profile_schedule", "evaluate_time", "RunMetrics"]


@dataclass(frozen=True)
class StepProfile:
    """Size-invariant aggregates for one step (element units at build size)."""

    #: unique (hops_by_class, segments) latency signatures
    lat_signatures: tuple[tuple[tuple[tuple[str, int], ...], int], ...]
    #: max element load on any single link, per class
    max_link_load: tuple[tuple[str, int], ...]
    #: max elements injected / ejected by any node
    max_inj: int
    max_ej: int
    #: max elements reduced at any rank (incoming transfers with an op)
    max_reduce: int
    #: max elements moved locally at any rank (pre+post copies)
    max_copy: int
    #: total elements crossing group boundaries
    global_elems: int
    #: total elements by link class (element·link products)
    class_elems: tuple[tuple[str, int], ...]
    #: max messages handled (sent+received) by any rank this step
    max_node_msgs: int = 0


@dataclass(frozen=True)
class ScheduleProfile:
    """All steps plus metadata needed for evaluation."""

    p: int
    n_build: int
    meta: dict = field(hash=False)
    steps: tuple[StepProfile, ...] = ()

    @property
    def segmented(self) -> bool:
        return bool(self.meta.get("segmented", False))

    def total_global_elems(self) -> int:
        return sum(s.global_elems for s in self.steps)

    def total_class_elems(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.steps:
            for cls, e in s.class_elems:
                out[cls] = out.get(cls, 0) + e
        return out


def profile_step(
    transfers,
    local_ops,
    topo: Topology,
    rank_map: RankMap,
    groups,
    route_cache: dict,
) -> StepProfile:
    """Collapse one step's transfers/local ops into a :class:`StepProfile`.

    ``transfers`` yields ``(src_rank, dst_rank, nelems, num_segments, has_op)``
    tuples; ``local_ops`` yields ``(rank, nelems, has_op)``.
    """
    loads: dict[tuple, int] = {}
    max_by_class: dict[str, int] = {}
    inj: dict[int, int] = {}
    ej: dict[int, int] = {}
    red: dict[int, int] = {}
    msgs: dict[int, int] = {}
    signatures: set = set()
    global_elems = 0
    class_elems: dict[str, int] = {}
    from repro.topology.base import LinkClass

    copy: dict[int, int] = {}
    for src, dst, nelems, nsegs, has_op in transfers:
        msgs[src] = msgs.get(src, 0) + 1
        msgs[dst] = msgs.get(dst, 0) + 1
        a, b = rank_map.node_of(src), rank_map.node_of(dst)
        key = (a, b)
        if key not in route_cache:
            route_cache[key] = topo.route(a, b)
        hops: dict[str, int] = {}
        uses_nic = False
        for link in route_cache[key]:
            eff = (loads.get(link.key, 0) + nelems * 1.0 / link.width)
            loads[link.key] = eff
            if eff > max_by_class.get(link.cls, 0):
                max_by_class[link.cls] = eff
            hops[link.cls] = hops.get(link.cls, 0) + 1
            class_elems[link.cls] = class_elems.get(link.cls, 0) + nelems
            if link.cls != LinkClass.INTRA:
                uses_nic = True
        signatures.add((tuple(sorted(hops.items())), nsegs))
        if uses_nic:
            # NIC injection/ejection; intra-node (clique / shared-memory)
            # traffic rides the node-local fabric instead.
            inj[src] = inj.get(src, 0) + nelems
            ej[dst] = ej.get(dst, 0) + nelems
        elif a == b:
            # same node, ppn > 1: a shared-memory copy
            copy[dst] = copy.get(dst, 0) + nelems
        if has_op:
            red[dst] = red.get(dst, 0) + nelems
        if groups[src] != groups[dst]:
            global_elems += nelems
    for rank, nelems, has_op in local_ops:
        copy[rank] = copy.get(rank, 0) + nelems
        if has_op:
            red[rank] = red.get(rank, 0) + nelems
    return StepProfile(
        lat_signatures=tuple(sorted(signatures)),
        max_link_load=tuple(sorted(max_by_class.items())),
        max_inj=max(inj.values(), default=0),
        max_ej=max(ej.values(), default=0),
        max_reduce=max(red.values(), default=0),
        max_copy=max(copy.values(), default=0),
        global_elems=global_elems,
        class_elems=tuple(sorted(class_elems.items())),
        max_node_msgs=max(msgs.values(), default=0),
    )


def profile_schedule(
    schedule: Schedule, topo: Topology, rank_map: RankMap
) -> ScheduleProfile:
    """Route every transfer and collapse each step into aggregates."""
    if rank_map.num_ranks != schedule.p:
        raise ValueError(
            f"mapping covers {rank_map.num_ranks} ranks, schedule needs {schedule.p}"
        )
    groups = rank_map.groups(topo)
    route_cache: dict[tuple[int, int], list] = {}
    steps = []
    for step in schedule.steps:
        steps.append(
            profile_step(
                (
                    (t.src, t.dst, t.nelems, t.num_segments, t.op is not None)
                    for t in step.transfers
                ),
                (
                    (lc.rank, lc.nelems, lc.op is not None)
                    for lc in list(step.pre) + list(step.post)
                ),
                topo,
                rank_map,
                groups,
                route_cache,
            )
        )
    return ScheduleProfile(
        p=schedule.p,
        n_build=schedule.meta.get("n", schedule.p),
        meta=dict(schedule.meta),
        steps=tuple(steps),
    )


@dataclass(frozen=True)
class RunMetrics:
    """Evaluation result for one (profile, params, n) combination."""

    time: float
    global_bytes: float
    bytes_by_class: dict

    @property
    def time_us(self) -> float:
        return self.time * 1e6


#: chunks assumed for pipelined (chained) schedules — Sec. 5.4 tree chains
PIPELINE_CHUNKS = 32


def evaluate_time(
    profile: ScheduleProfile, params: CostParams, n_elems: int
) -> RunMetrics:
    """Time and traffic for a vector of ``n_elems`` elements.

    Two schedule-level meta flags refine the step-sum law:

    * ``segmented`` — reduction compute overlaps transport within a step
      (Sec. 5.2.2);
    * ``pipelined`` — successive steps forward the *same* data (chain/tree
      pipelines like Trinaryx): bandwidth terms overlap across steps, so
      the total pays the per-step latency sum but only
      ``max_bw · (1 + (steps − 1)/chunks)`` of bandwidth.
    * ``ports_used`` — how many NICs the schedule can drive concurrently
      (App. D.4 multiported schedules); capped by the machine's ports.
    """
    scale = n_elems / profile.n_build
    b = params.itemsize
    ports = min(params.ports, int(profile.meta.get("ports_used", 1)))
    total = 0.0
    max_step_bw = 0.0
    num_steps = max(1, len(profile.steps))
    for step in profile.steps:
        lat = 0.0
        for hops, segs in step.lat_signatures:
            t = params.alpha + max(0, segs - 1) * params.seg_overhead
            for cls, h in hops:
                t += h * params.alpha_hop.get(cls, 0.0)
            lat = max(lat, t)
        # endpoint message processing serialises (flat algorithms' roots
        # handle p−1 messages "in one step")
        lat += max(0, step.max_node_msgs - 2) * params.msg_cpu
        bw = 0.0
        for cls, load in step.max_link_load:
            bw = max(bw, load * scale * b * params.beta.get(cls, 0.0))
        bw = max(
            bw,
            step.max_inj * scale * b * params.inj_beta / ports,
            step.max_ej * scale * b * params.inj_beta / ports,
        )
        comp = step.max_reduce * scale * b * params.reduce_beta
        copy = step.max_copy * scale * b * params.copy_beta
        if profile.meta.get("pipelined"):
            total += lat + copy
            max_step_bw = max(max_step_bw, bw + comp)
        elif profile.segmented:
            total += lat + max(bw, comp) + copy
        else:
            total += lat + bw + comp + copy
    if profile.meta.get("pipelined"):
        total += max_step_bw * (1 + (num_steps - 1) / PIPELINE_CHUNKS)
    return RunMetrics(
        time=total,
        global_bytes=profile.total_global_elems() * scale * b,
        bytes_by_class={
            cls: e * scale * b for cls, e in profile.total_class_elems().items()
        },
    )
