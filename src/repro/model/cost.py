"""The alpha-beta-congestion cost model.

Step time is latency + bandwidth + compute::

    lat(step)  = max over transfers of
                   α + hops_local·α_local + hops_global·α_global
                     + (segments − 1)·seg_overhead
    bw(step)   = max( max_link load_bytes·β_class,
                      max_node injected_bytes·β_inj / ports,
                      max_node ejected_bytes·β_inj / ports )
    comp(step) = max_rank reduced_bytes·β_reduce
    copy(step) = max_rank locally_moved_bytes·β_copy

    step_time  = lat + bw + comp + copy          (unsegmented)
    step_time  = lat + max(bw, comp) + copy      (segmented — pipelined
                                                  chunks overlap reduction
                                                  with transport, Sec. 5.2.2)

Every term corresponds to a paper effect: the per-class β drives all
global-traffic results; the per-segment overhead drives Fig. 14 and the
Swing-vs-Bine 2× (Sec. 5.2.2); injection ports drive the Fugaku multi-NIC
gains (App. D.4); the segmented overlap drives ring-vs-Bine at 512 MiB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.base import LinkClass

__all__ = ["CostParams"]

GiB = 1024**3


def _default_beta() -> dict[str, float]:
    return {
        LinkClass.LOCAL: 1 / (25 * GiB),
        LinkClass.GLOBAL: 1 / (12.5 * GiB),
        LinkClass.TORUS: 1 / (6.8 * GiB),
        LinkClass.INTRA: 1 / (100 * GiB),
    }


def _default_alpha_hop() -> dict[str, float]:
    return {
        LinkClass.LOCAL: 0.15e-6,
        LinkClass.GLOBAL: 0.6e-6,
        LinkClass.TORUS: 0.1e-6,
        LinkClass.INTRA: 0.05e-6,
    }


@dataclass(frozen=True)
class CostParams:
    """Machine constants for the analytic model (defaults: generic HPC system)."""

    #: fixed per-message software/NIC latency (s)
    alpha: float = 1.0e-6
    #: extra latency per hop, by link class (s)
    alpha_hop: dict[str, float] = field(default_factory=_default_alpha_hop)
    #: inverse bandwidth per shared link, by class (s/byte)
    beta: dict[str, float] = field(default_factory=_default_beta)
    #: inverse per-NIC injection bandwidth (s/byte)
    inj_beta: float = 1 / (25 * GiB)
    #: independently usable NICs per node (Fugaku: 6)
    ports: int = 1
    #: setup cost per additional wire segment in one message (s)
    seg_overhead: float = 0.4e-6
    #: per-message CPU/NIC processing at an endpoint (s); serialises flat
    #: algorithms whose root handles p−1 messages in one "step"
    msg_cpu: float = 0.25e-6
    #: inverse local memory-copy bandwidth (s/byte)
    copy_beta: float = 1 / (20 * GiB)
    #: inverse reduction-compute bandwidth (s/byte)
    reduce_beta: float = 1 / (15 * GiB)
    #: bytes per vector element (paper: 32-bit integers)
    itemsize: int = 4

    def lat_term(self, hops_local: int, hops_global: int, segments: int) -> float:
        """Latency of one transfer."""
        return (
            self.alpha
            + hops_local * self.alpha_hop.get(LinkClass.LOCAL, 0.0)
            + hops_global * self.alpha_hop.get(LinkClass.GLOBAL, 0.0)
            + max(0, segments - 1) * self.seg_overhead
        )
