"""Traffic accounting: the paper's global-link byte metric (Secs. 2.4, 5.x).

Two granularities:

* :func:`global_traffic_elems` — group-crossing message bytes, the metric of
  Fig. 1 ("6n vs 3n bytes over global links"), Fig. 5, and the "Traffic
  Red." columns of Tables 3-5.  Each message counts once if its endpoints'
  groups differ (minimal routing assumed, as in the paper).
* :func:`traffic_by_class` / :func:`link_loads` — per-link-class byte totals
  and per-link maxima under a concrete topology + mapping, feeding the cost
  model's contention terms.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.schedule import Schedule
from repro.topology.base import Topology
from repro.topology.mapping import RankMap

__all__ = [
    "global_traffic_elems",
    "traffic_by_class",
    "link_loads_per_step",
    "traffic_reduction",
]


def global_traffic_elems(schedule: Schedule, groups: Sequence[int]) -> int:
    """Elements crossing group boundaries; ``groups[rank]`` is rank's group."""
    total = 0
    for _, t in schedule.all_transfers():
        if groups[t.src] != groups[t.dst]:
            total += t.nelems
    return total


def traffic_by_class(
    schedule: Schedule, topo: Topology, rank_map: RankMap
) -> dict[str, int]:
    """Total element·link products per link class over the whole schedule."""
    out: dict[str, int] = {}
    for _, t in schedule.all_transfers():
        src, dst = rank_map.node_of(t.src), rank_map.node_of(t.dst)
        for link in topo.route(src, dst):
            out[link.cls] = out.get(link.cls, 0) + t.nelems
    return out


def link_loads_per_step(
    schedule: Schedule, topo: Topology, rank_map: RankMap
) -> list[dict[tuple, int]]:
    """Per-step ``link key → element load`` maps (diagnostics/tests)."""
    out = []
    for step in schedule.steps:
        loads: dict[tuple, int] = {}
        for t in step.transfers:
            src, dst = rank_map.node_of(t.src), rank_map.node_of(t.dst)
            for link in topo.route(src, dst):
                loads[link.key] = loads.get(link.key, 0) + t.nelems
        out.append(loads)
    return out


def traffic_reduction(baseline_elems: int, candidate_elems: int) -> float:
    """Fractional reduction of candidate vs baseline (positive = candidate wins).

    Matches the paper's Fig. 5 quantity; 0 when the baseline moves nothing.
    """
    if baseline_elems == 0:
        return 0.0
    return 1.0 - candidate_elems / baseline_elems
