"""Fast analytic profiles for linear-step algorithms at large rank counts.

Ring, pairwise-alltoall, Bruck-alltoall and Bine-alltoall build ``Θ(p²)`` or
``Θ(p² log p)`` explicit schedules — exact but needlessly slow when only the
*cost profile* is needed for a sweep at ``p`` in the hundreds or thousands.
These builders produce the same :class:`~repro.model.simulator.StepProfile`
aggregates directly from the algorithms' regular structure:

* **ring**: every step is the same neighbour matching carrying one block —
  profile one step, replicate ``p − 1`` times (exact);
* **pairwise alltoall**: step ``k`` is the offset-``k`` matching with one
  block — profile a spread sample of offsets and replicate to neighbours
  (step costs vary smoothly in ``k``; sampling error only affects the
  latency/load of the skipped offsets);
* **Bruck / Bine alltoall**: ``log p`` steps of ``p/2`` blocks per rank;
  transfers (hence routing/groups) are exact, segment counts use the
  phase-0 structural value ``p / 2^{k+2}`` runs (later phases interleave
  slots similarly; exact builders are used for small ``p`` and agree within
  the tie threshold in tests).

The sweep layer switches to these above ``ANALYTIC_THRESHOLD`` ranks;
correctness tests always run the exact schedule builders.
"""

from __future__ import annotations

from repro.core.butterfly import bine_butterfly_doubling
from repro.model.simulator import RouteTable, ScheduleProfile, StepProfile, profile_step
from repro.topology.base import Topology
from repro.topology.mapping import RankMap

__all__ = [
    "ANALYTIC_THRESHOLD",
    "ANALYTIC_PROFILES",
    "ring_profile",
    "pairwise_alltoall_profile",
    "bruck_alltoall_profile",
    "bine_alltoall_profile",
]

#: use exact schedule builders at or below this rank count
ANALYTIC_THRESHOLD = 128


def _ctx(p: int, topo: Topology, rank_map: RankMap, routes: RouteTable | None):
    if rank_map.num_ranks != p:
        raise ValueError("mapping size mismatch")
    if routes is None:
        routes = RouteTable(topo)
    return rank_map.groups(topo), routes


def ring_profile(
    p: int, topo: Topology, rank_map: RankMap, variant: str,
    routes: RouteTable | None = None,
) -> ScheduleProfile:
    """Exact ring profile: one representative step, replicated.

    ``variant``: ``"reduce_scatter"``, ``"allgather"`` or ``"allreduce"``.
    """
    groups, rtab = _ctx(p, topo, rank_map, routes)
    rs_step = profile_step(
        ((r, (r + 1) % p, 1, 1, True) for r in range(p)),
        (), rtab, rank_map.nodes, groups,
    )
    ag_step = profile_step(
        ((r, (r + 1) % p, 1, 1, False) for r in range(p)),
        (), rtab, rank_map.nodes, groups,
    )
    if variant == "reduce_scatter":
        steps = (rs_step,) * (p - 1)
        meta = {"collective": "reduce_scatter", "algorithm": "ring"}
    elif variant == "allgather":
        steps = (ag_step,) * (p - 1)
        meta = {"collective": "allgather", "algorithm": "ring"}
    elif variant == "allreduce":
        steps = (rs_step,) * (p - 1) + (ag_step,) * (p - 1)
        meta = {"collective": "allreduce", "algorithm": "ring", "segmented": True}
    else:
        raise ValueError(f"unknown ring variant {variant!r}")
    meta.update({"p": p, "n": p, "analytic": True})
    return ScheduleProfile(p=p, n_build=p, meta=meta, steps=steps)


def pairwise_alltoall_profile(
    p: int, topo: Topology, rank_map: RankMap, samples: int = 32,
    routes: RouteTable | None = None,
) -> ScheduleProfile:
    """Pairwise alltoall: sample the offset space, replicate to neighbours."""
    groups, rtab = _ctx(p, topo, rank_map, routes)
    offsets = sorted({max(1, round(1 + k * (p - 2) / max(1, samples - 1))) for k in range(samples)})
    sampled: dict[int, StepProfile] = {}
    for k in offsets:
        sampled[k] = profile_step(
            ((r, (r + k) % p, 1, 1, False) for r in range(p)),
            (), rtab, rank_map.nodes, groups,
        )
    keys = sorted(sampled)
    steps = []
    for k in range(1, p):
        nearest = min(keys, key=lambda x: abs(x - k))
        steps.append(sampled[nearest])
    meta = {"collective": "alltoall", "algorithm": "pairwise", "p": p, "n": p,
            "analytic": True}
    return ScheduleProfile(p=p, n_build=p, meta=meta, steps=tuple(steps))


def bruck_alltoall_profile(
    p: int, topo: Topology, rank_map: RankMap, routes: RouteTable | None = None
) -> ScheduleProfile:
    """Bruck alltoall: packed sends (the rotation trick) + per-step pack copy.

    Real Bruck implementations rotate/pack blocks so each phase transmits
    contiguously; we charge one buffer-wide local copy per phase for it.
    """
    groups, rtab = _ctx(p, topo, rank_map, routes)
    s = max(1, (p - 1).bit_length())
    steps = []
    for k in range(s):
        dist = 1 << k
        nelems = sum(1 for off in range(p) if (off >> k) & 1)
        steps.append(
            profile_step(
                ((r, (r + dist) % p, nelems, 1, False) for r in range(p)),
                ((r, p, False) for r in range(p)),
                rtab, rank_map.nodes, groups,
            )
        )
    # final local unpack (inverse rotation)
    steps.append(
        profile_step((), ((r, p, False) for r in range(p)), rtab, rank_map.nodes, groups)
    )
    meta = {"collective": "alltoall", "algorithm": "bruck", "p": p, "n": p,
            "analytic": True}
    return ScheduleProfile(p=p, n_build=p, meta=meta, steps=tuple(steps))


def bine_alltoall_profile(
    p: int, topo: Topology, rank_map: RankMap, routes: RouteTable | None = None
) -> ScheduleProfile:
    """Bine alltoall with the paper's packing scheme (Sec. 4.4).

    "Each rank moves the data it wants to keep to the left of its buffer and
    the data it needs to send to the right, similar to the rotations in
    Bruck's algorithm" — contiguous wire transfers (1 segment) at Bine's
    short distances, one buffer-wide local copy per step, plus the final
    reorder permutation.  (The executor's exact builder instead tracks
    scattered slots — same bytes and routes, fragmented wire — so the
    correctness oracle and the cost profile describe the same algorithm with
    the two data-handling choices the paper discusses.)
    """
    groups, rtab = _ctx(p, topo, rank_map, routes)
    bf = bine_butterfly_doubling(p)
    steps = []
    for j in range(bf.num_steps):
        steps.append(
            profile_step(
                ((r, bf.partner(r, j), p // 2, 1, False) for r in range(p)),
                ((r, p, False) for r in range(p)),
                rtab, rank_map.nodes, groups,
            )
        )
    steps.append(
        profile_step((), ((r, p, False) for r in range(p)), rtab, rank_map.nodes, groups)
    )
    meta = {"collective": "alltoall", "algorithm": "bine", "p": p, "n": p,
            "analytic": True}
    return ScheduleProfile(p=p, n_build=p, meta=meta, steps=tuple(steps))


#: (collective, algorithm) → analytic builder(p, topo, rank_map)
ANALYTIC_PROFILES = {
    ("reduce_scatter", "ring"):
        lambda p, t, m, routes=None: ring_profile(p, t, m, "reduce_scatter", routes),
    ("allgather", "ring"):
        lambda p, t, m, routes=None: ring_profile(p, t, m, "allgather", routes),
    ("allreduce", "ring"):
        lambda p, t, m, routes=None: ring_profile(p, t, m, "allreduce", routes),
    ("alltoall", "pairwise"):
        lambda p, t, m, routes=None: pairwise_alltoall_profile(p, t, m, routes=routes),
    ("alltoall", "bruck"): bruck_alltoall_profile,
    ("alltoall", "bine"): bine_alltoall_profile,
}
