"""Compiled profiling + grid evaluation — the sweep pipeline's fast path.

Three lowering stages turn the build → route → profile → evaluate pipeline
into array programs, each bit-identical to the Python reference it replaces
(asserted across the whole registry in ``tests/test_compiled_profile.py``):

* :class:`TransferTable` — a finalized :class:`~repro.runtime.schedule.Schedule`
  flattened *once* per ``(algorithm, p)`` into structure-of-arrays,
  step-segmented columns (``src`` / ``dst`` / ``nelems`` / ``num_segments`` /
  ``has_op`` plus the pre/post local-op columns).  The table depends only on
  the schedule — not on the topology or rank mapping — so one lowering
  serves every system, placement and seed of a campaign.
  :func:`transfer_table_for` memoizes tables per registry cell (bounded
  FIFO, cleared by :func:`repro.analysis.sweep.clear_memo_caches`), the
  profiling analogue of :func:`repro.collectives.verify.compiled_plan_for`.

* :class:`CompiledRouteTable` — one CSR route matrix per topology: per
  node pair, offsets into flat ``link_idx`` / ``width`` / ``cls_idx``
  arrays, plus an interned hop-signature id and a ``uses_nic`` flag.
  :meth:`CompiledRouteTable.profile_step_arrays` collapses a whole step
  with gathers, ``np.bincount`` and ``np.add.at`` — zero per-transfer
  Python.  Link-load contributions are expanded in exactly the
  concatenation order of the scalar path, and ``np.add.at`` is unbuffered,
  so the resulting :class:`~repro.model.simulator.StepProfile` floats are
  bit-identical to :func:`~repro.model.simulator.profile_step`.

* :func:`evaluate_grid` — evaluates one profile at *all* message sizes of a
  campaign in a single NumPy pass.  Per-step structure arrays (max loads by
  class, injection/ejection/reduce/copy maxima) are cached on the profile
  the first time it is evaluated; each call then replays
  :func:`~repro.model.simulator.evaluate_time`'s arithmetic elementwise
  over the size axis, with the same operation order (products
  left-associated, per-step terms summed in step order via a running
  ``np.cumsum`` — a prefix sum cannot be regrouped pairwise), so every
  column equals the scalar evaluation bit for bit.

The sweep layer (:mod:`repro.analysis.sweep`) routes through these via the
``profile_engine`` knob (``"compiled"`` by default, ``"python"`` for the
reference path; the ``REPRO_PROFILE_ENGINE`` environment variable changes
the default where no explicit engine is passed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from itertools import chain

import numpy as np

from repro import obs
from repro.model.cost import CostParams
from repro.model.simulator import (
    PIPELINE_CHUNKS,
    ScheduleProfile,
    StepProfile,
)
from repro.runtime.schedule import Schedule, schedule_validation
from repro.topology.base import LinkClass, Topology
from repro.topology.mapping import RankMap

__all__ = [
    "TransferTable",
    "CompiledRouteTable",
    "GridMetrics",
    "lower_schedule",
    "transfer_table_for",
    "clear_table_cache",
    "profile_table",
    "evaluate_grid",
    "resolve_profile_engine",
    "PROFILE_ENGINES",
]

#: accepted values for the sweep layer's ``profile_engine`` knob —
#: ``python``/``compiled`` are the (bit-identical) analytic evaluators;
#: ``des`` is the discrete-event fabric engine (:mod:`repro.des`), the
#: only engine that can replay a :class:`~repro.faults.FaultTimeline`
PROFILE_ENGINES = ("python", "compiled", "des")


def resolve_profile_engine(engine: str | None = None) -> str:
    """The effective profile engine: explicit arg → env var → compiled.

    An explicit ``engine`` always wins; ``REPRO_PROFILE_ENGINE`` (when set
    and non-empty) replaces only the *default*, so a whole run can be
    steered from the environment without breaking callers that deliberately
    pin an engine — the perf bench and the equivalence tests compare the
    two engines against each other and must not be silently collapsed onto
    one of them.

    Example::

        >>> resolve_profile_engine()
        'compiled'
        >>> resolve_profile_engine("python")
        'python'
    """
    if engine is None:
        env = os.environ.get("REPRO_PROFILE_ENGINE")
        engine = env.strip() if env is not None and env.strip() else "compiled"
    if engine not in PROFILE_ENGINES:
        raise ValueError(
            f"unknown profile engine {engine!r}; have {PROFILE_ENGINES}"
        )
    return engine


# -- transfer tables ---------------------------------------------------------


@dataclass(frozen=True, eq=False)
class TransferTable:
    """A schedule's transfers/local ops as step-segmented SoA columns.

    Step ``i``'s transfers are rows ``step_off[i]:step_off[i+1]`` of the
    transfer columns; its local ops (``pre`` then ``post``, in order) are
    rows ``local_off[i]:local_off[i+1]`` of the local columns.  Everything
    the profiler needs, nothing the executor needs: segment lists are
    collapsed to ``nelems`` / ``num_segments`` at lowering time.
    """

    p: int
    n_build: int
    meta: dict = field(hash=False)
    #: (num_steps + 1,) row offsets into the transfer columns
    step_off: np.ndarray = field(default=None)
    src: np.ndarray = field(default=None)
    dst: np.ndarray = field(default=None)
    nelems: np.ndarray = field(default=None)
    num_segments: np.ndarray = field(default=None)
    has_op: np.ndarray = field(default=None)
    #: (num_steps + 1,) row offsets into the local-op columns
    local_off: np.ndarray = field(default=None)
    local_rank: np.ndarray = field(default=None)
    local_nelems: np.ndarray = field(default=None)
    local_has_op: np.ndarray = field(default=None)

    @property
    def num_steps(self) -> int:
        return len(self.step_off) - 1

    @property
    def num_transfers(self) -> int:
        return int(self.src.size)


def lower_schedule(schedule: Schedule) -> TransferTable:
    """Flatten a schedule into a :class:`TransferTable` (one linear pass).

    Example::

        >>> from repro.collectives.registry import build
        >>> t = lower_schedule(build("bcast", "bine", 8, 8))
        >>> t.num_steps, t.num_transfers
        (3, 7)
    """
    step_off = [0]
    local_off = [0]
    src: list[int] = []
    dst: list[int] = []
    ne: list[int] = []
    nseg: list[int] = []
    has_op: list[bool] = []
    lrank: list[int] = []
    lne: list[int] = []
    lop: list[bool] = []
    for step in schedule.steps:
        for t in step.transfers:
            src.append(t.src)
            dst.append(t.dst)
            ne.append(t.nelems)
            nseg.append(t.num_segments)
            has_op.append(t.op is not None)
        for lc in chain(step.pre, step.post):
            lrank.append(lc.rank)
            lne.append(lc.nelems)
            lop.append(lc.op is not None)
        step_off.append(len(src))
        local_off.append(len(lrank))
    return TransferTable(
        p=schedule.p,
        n_build=schedule.meta.get("n", schedule.p),
        meta=dict(schedule.meta),
        step_off=np.asarray(step_off, dtype=np.intp),
        src=np.asarray(src, dtype=np.intp),
        dst=np.asarray(dst, dtype=np.intp),
        nelems=np.asarray(ne, dtype=np.int64),
        num_segments=np.asarray(nseg, dtype=np.int64),
        has_op=np.asarray(has_op, dtype=bool),
        local_off=np.asarray(local_off, dtype=np.intp),
        local_rank=np.asarray(lrank, dtype=np.intp),
        local_nelems=np.asarray(lne, dtype=np.int64),
        local_has_op=np.asarray(lop, dtype=bool),
    )


#: table memo — keyed per registry cell; bounded FIFO so 4096-rank tables
#: cannot accumulate without limit.  ``None`` entries record constraint
#: misses (pow2/divisibility) so they are not re-attempted.  The bound must
#: exceed a full campaign's exact-cell count (the reference 3-collective
#: LUMI grid to p=4096 touches ~100 cells; the FIFO replays in sweep order,
#: so a bound below the working set would evict every entry before reuse).
_TABLE_CACHE: dict[tuple, TransferTable | None] = {}
_TABLE_CACHE_MAX = 512


def transfer_table_for(spec, p: int) -> TransferTable | None:
    """Cached :class:`TransferTable` for one ``(collective, algorithm, p)``.

    Builds the schedule at the canonical size ``n = p`` with validation off
    (the sweep's contract: it rebuilds schedules the test suite already
    validates) and lowers it once; ``None`` when the builder rejects ``p``.
    The table is topology- and mapping-independent, so every system /
    placement / seed of a campaign shares one entry.  Eviction is FIFO at
    ``_TABLE_CACHE_MAX``; :func:`clear_table_cache` (also reached via
    :func:`repro.analysis.sweep.clear_memo_caches`) drops everything.
    """
    key = (spec.collective, spec.name, p)
    if key in _TABLE_CACHE:
        obs.inc("cache.table.hit")
        return _TABLE_CACHE[key]
    obs.inc("cache.table.miss")
    try:
        with obs.span(
            "schedule.build", collective=spec.collective, algorithm=spec.name, p=p
        ):
            with schedule_validation(False):
                schedule = spec.build(p, p)
    except ValueError:
        table = None
    else:
        with obs.span(
            "lower.schedule", collective=spec.collective, algorithm=spec.name, p=p
        ):
            table = lower_schedule(schedule)
    while len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
        _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
    _TABLE_CACHE[key] = table
    return table


def clear_table_cache() -> None:
    """Drop every memoized transfer table (cold-start benchmarks, memory)."""
    _TABLE_CACHE.clear()


# -- CSR route matrices ------------------------------------------------------


@dataclass(frozen=True, eq=False)
class _CsrArrays:
    """Materialized CSR view of an interned route set."""

    #: (num_pairs + 1,) offsets into the flat link columns
    off: np.ndarray
    link: np.ndarray   # interned link ids
    width: np.ndarray  # parallel physical-link widths
    cls: np.ndarray    # link class ids
    #: per-pair hop-signature id / NIC flag / dense per-class hop counts
    sig: np.ndarray
    nic: np.ndarray
    hops: np.ndarray   # (num_pairs, num_classes) int64


def _expand_rows(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """CSR row expansion: flat indices ``starts[j] .. starts[j]+counts[j])``."""
    total = int(counts.sum())
    cum = np.cumsum(counts)
    return np.repeat(starts - (cum - counts), counts) + np.arange(
        total, dtype=np.intp
    )


class CompiledRouteTable:
    """Interned minimal routes for one topology, in CSR layout.

    The compiled counterpart of :class:`~repro.model.simulator.RouteTable`:
    node pairs intern lazily (each ``topo.route`` call happens exactly once
    per pair per table), but the per-pair data lands in flat arrays so a
    whole step's transfers resolve with gathers instead of per-transfer
    dict lookups.  :meth:`profile_step_arrays` is the vectorized
    :func:`~repro.model.simulator.profile_step`; :meth:`profile_step`
    adapts the generator-based calling convention so the analytic profile
    builders (:mod:`repro.model.analytic`) run through the same kernel
    unchanged.
    """

    def __init__(self, topo: Topology):
        self.topo = topo
        self._num_nodes = topo.num_nodes
        self._pair_pid: dict[int, int] = {}
        self._link_ids: dict[tuple, int] = {}
        self._cls_ids: dict[str, int] = {}
        self.cls_names: list[str] = []
        #: per-pair hop signatures, interned: ``sig_tuples[sig_id]`` is the
        #: sorted ``(class, hop_count)`` tuple profile_step folds into
        #: latency signatures
        self.sig_tuples: list[tuple] = []
        self._sig_ids: dict[tuple, int] = {}
        # growing build-side state; re-materialized into _CsrArrays lazily
        self._flat_link: list[int] = []
        self._flat_width: list[float] = []
        self._flat_cls: list[int] = []
        self._off: list[int] = [0]
        self._pair_sig: list[int] = []
        self._pair_nic: list[bool] = []
        self._pair_hops: list[dict[int, int]] = []
        self._arrays: _CsrArrays | None = None

    def __len__(self) -> int:
        return len(self._pair_sig)

    def _intern_pair(self, a: int, b: int) -> int:
        route = self.topo.route(a, b)
        hops: dict[str, int] = {}
        cls_row: dict[int, int] = {}
        uses_nic = False
        for link in route:
            li = self._link_ids.get(link.key)
            if li is None:
                li = self._link_ids[link.key] = len(self._link_ids)
            ci = self._cls_ids.get(link.cls)
            if ci is None:
                ci = self._cls_ids[link.cls] = len(self._cls_ids)
                self.cls_names.append(link.cls)
            self._flat_link.append(li)
            self._flat_width.append(float(link.width))
            self._flat_cls.append(ci)
            hops[link.cls] = hops.get(link.cls, 0) + 1
            cls_row[ci] = cls_row.get(ci, 0) + 1
            if link.cls != LinkClass.INTRA:
                uses_nic = True
        self._off.append(len(self._flat_link))
        sig = tuple(sorted(hops.items()))
        sid = self._sig_ids.get(sig)
        if sid is None:
            sid = self._sig_ids[sig] = len(self._sig_ids)
            self.sig_tuples.append(sig)
        pid = len(self._pair_sig)
        self._pair_sig.append(sid)
        self._pair_nic.append(uses_nic)
        self._pair_hops.append(cls_row)
        self._pair_pid[a * self._num_nodes + b] = pid
        self._arrays = None
        return pid

    def resolve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Pair ids for node arrays ``a → b``, interning unseen pairs."""
        keys = a * self._num_nodes + b
        uniq, inv = np.unique(keys, return_inverse=True)
        pids = np.empty(uniq.size, dtype=np.intp)
        get = self._pair_pid.get
        n = self._num_nodes
        for i, k in enumerate(uniq.tolist()):
            pid = get(k)
            if pid is None:
                pid = self._intern_pair(k // n, k % n)
            pids[i] = pid
        return pids[inv]

    def _csr(self) -> _CsrArrays:
        arrays = self._arrays
        if arrays is None:
            n_cls = len(self.cls_names)
            hops = np.zeros((len(self._pair_hops), n_cls), dtype=np.int64)
            for pid, row in enumerate(self._pair_hops):
                for ci, h in row.items():
                    hops[pid, ci] = h
            arrays = self._arrays = _CsrArrays(
                off=np.asarray(self._off, dtype=np.intp),
                link=np.asarray(self._flat_link, dtype=np.intp),
                width=np.asarray(self._flat_width, dtype=np.float64),
                cls=np.asarray(self._flat_cls, dtype=np.intp),
                sig=np.asarray(self._pair_sig, dtype=np.intp),
                nic=np.asarray(self._pair_nic, dtype=bool),
                hops=hops,
            )
        return arrays

    def profile_step(self, transfers, local_ops, node_of, groups) -> StepProfile:
        """Generator-convention adapter (the analytic builders' entry).

        Accepts the exact arguments of
        :func:`repro.model.simulator.profile_step` minus ``routes`` and
        feeds the vectorized kernel.
        """
        transfers = list(transfers)
        n_t = len(transfers)
        if n_t:
            src_l, dst_l, ne_l, nsegs_l, op_l = zip(*transfers)
            src = np.fromiter(src_l, np.intp, n_t)
            dst = np.fromiter(dst_l, np.intp, n_t)
            ne = np.fromiter(ne_l, np.int64, n_t)
            nsegs = np.fromiter(nsegs_l, np.int64, n_t)
            has_op = np.fromiter(op_l, bool, n_t)
        else:
            src = dst = np.empty(0, dtype=np.intp)
            ne = nsegs = np.empty(0, dtype=np.int64)
            has_op = np.empty(0, dtype=bool)
        local_ops = list(local_ops)
        n_l = len(local_ops)
        if n_l:
            lrank_l, lne_l, lop_l = zip(*local_ops)
            lrank = np.fromiter(lrank_l, np.intp, n_l)
            lne = np.fromiter(lne_l, np.int64, n_l)
            lop = np.fromiter(lop_l, bool, n_l)
        else:
            lrank = np.empty(0, dtype=np.intp)
            lne = np.empty(0, dtype=np.int64)
            lop = np.empty(0, dtype=bool)
        return self.profile_step_arrays(
            src, dst, ne, nsegs, has_op, lrank, lne, lop,
            np.asarray(node_of, dtype=np.intp),
            np.asarray(groups, dtype=np.intp),
        )

    def profile_step_arrays(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        ne: np.ndarray,
        nsegs: np.ndarray,
        has_op: np.ndarray,
        lrank: np.ndarray,
        lne: np.ndarray,
        lhas_op: np.ndarray,
        node_arr: np.ndarray,
        group_arr: np.ndarray,
    ) -> StepProfile:
        """One step's columns → a :class:`StepProfile`, fully vectorized.

        Bit-identical to the scalar :func:`~repro.model.simulator.profile_step`:
        integer aggregates are exact in either accumulation order (all
        magnitudes sit far below 2**53), and the only true-float quantity —
        per-link load, where widths divide unevenly — is accumulated by the
        *same* ``np.add.at`` over the same transfer-ordered concatenation.
        """
        p = node_arr.size
        n_t = src.size
        signatures: set = set()
        max_by_class: dict[str, float] = {}
        class_elems: dict[str, int] = {}

        if n_t:
            a = node_arr[src]
            b = node_arr[dst]
            pids = self.resolve(a, b)
            csr = self._csr()
            nic = csr.nic[pids]
            same_node = a == b
            crosses = group_arr[src] != group_arr[dst]
            # unique (hop-signature, segment-count) latency signatures
            seg_base = int(nsegs.max()) + 1 if n_t else 1
            for code in np.unique(csr.sig[pids] * seg_base + nsegs):
                signatures.add(
                    (self.sig_tuples[int(code) // seg_base], int(code) % seg_base)
                )
            # element·hop products per class (exact int64 matmul)
            hops_t = csr.hops[pids]
            totals = ne @ hops_t
            for ci in np.nonzero(hops_t.any(axis=0))[0]:
                class_elems[self.cls_names[ci]] = int(totals[ci])
            # per-link loads: expand each transfer's route rows in transfer
            # order — the same concatenation the scalar path builds — then
            # accumulate with the same unbuffered np.add.at
            counts = csr.off[pids + 1] - csr.off[pids]
            if counts.sum():
                rows = _expand_rows(csr.off[pids], counts)
                cat_idx = csr.link[rows]
                cat_contrib = np.repeat(ne, counts) / csr.width[rows]
                cat_cls = csr.cls[rows]
                uniq, local = np.unique(cat_idx, return_inverse=True)
                loads = np.zeros(uniq.size, dtype=np.float64)
                np.add.at(loads, local, cat_contrib)
                link_cls = np.zeros(uniq.size, dtype=np.intp)
                link_cls[local] = cat_cls
                for ci in np.unique(link_cls):
                    m = loads[link_cls == ci].max()
                    if m > 0:
                        max_by_class[self.cls_names[ci]] = float(m)

            msgs = np.bincount(src, minlength=p) + np.bincount(dst, minlength=p)
            max_node_msgs = int(msgs.max())
            max_inj = int(np.bincount(src[nic], weights=ne[nic], minlength=p).max())
            max_ej = int(np.bincount(dst[nic], weights=ne[nic], minlength=p).max())
            copy_mask = ~nic & same_node
            copy_by_rank = np.bincount(
                dst[copy_mask], weights=ne[copy_mask], minlength=p
            )
            red_by_rank = np.bincount(
                dst[has_op], weights=ne[has_op], minlength=p
            )
            global_elems = int(ne[crosses].sum())
        else:
            max_node_msgs = max_inj = max_ej = global_elems = 0
            copy_by_rank = np.zeros(p, dtype=np.float64)
            red_by_rank = np.zeros(p, dtype=np.float64)

        if lrank.size:
            copy_by_rank = copy_by_rank + np.bincount(
                lrank, weights=lne, minlength=p
            )
            red_by_rank = red_by_rank + np.bincount(
                lrank[lhas_op], weights=lne[lhas_op], minlength=p
            )

        return StepProfile(
            lat_signatures=tuple(sorted(signatures)),
            max_link_load=tuple(sorted(max_by_class.items())),
            max_inj=max_inj,
            max_ej=max_ej,
            max_reduce=int(red_by_rank.max()) if p else 0,
            max_copy=int(copy_by_rank.max()) if p else 0,
            global_elems=global_elems,
            class_elems=tuple(sorted(class_elems.items())),
            max_node_msgs=max_node_msgs,
        )


def profile_table(
    table: TransferTable,
    topo: Topology,
    rank_map: RankMap,
    *,
    routes: CompiledRouteTable | None = None,
) -> ScheduleProfile:
    """Profile a lowered schedule: the compiled
    :func:`~repro.model.simulator.profile_schedule`.

    Pass ``routes`` to share one CSR route matrix across many profiles of
    the same topology (the sweep layer always does).
    """
    if rank_map.num_ranks != table.p:
        raise ValueError(
            f"mapping covers {rank_map.num_ranks} ranks, schedule needs {table.p}"
        )
    if routes is None:
        routes = CompiledRouteTable(topo)
    elif routes.topo is not topo:
        raise ValueError("routes table was built for a different topology")
    node_arr = np.asarray(rank_map.nodes, dtype=np.intp)
    group_arr = np.asarray(rank_map.groups(topo), dtype=np.intp)
    steps = []
    for i in range(table.num_steps):
        s0, s1 = table.step_off[i], table.step_off[i + 1]
        l0, l1 = table.local_off[i], table.local_off[i + 1]
        steps.append(
            routes.profile_step_arrays(
                table.src[s0:s1],
                table.dst[s0:s1],
                table.nelems[s0:s1],
                table.num_segments[s0:s1],
                table.has_op[s0:s1],
                table.local_rank[l0:l1],
                table.local_nelems[l0:l1],
                table.local_has_op[l0:l1],
                node_arr,
                group_arr,
            )
        )
    return ScheduleProfile(
        p=table.p,
        n_build=table.n_build,
        meta=dict(table.meta),
        steps=tuple(steps),
    )


# -- grid evaluation ---------------------------------------------------------


@dataclass(frozen=True, eq=False)
class _EvalTables:
    """Per-step structure arrays a profile needs for grid evaluation.

    Everything here is params-independent, so the tables are computed once
    per profile (cached on the profile object) and reused across campaigns
    that evaluate the same profile under different cost models.
    """

    inj: np.ndarray   # (S,) int64 per-step max injection (elements)
    ej: np.ndarray
    red: np.ndarray
    cpy: np.ndarray
    #: per link class: (step-index array, load array) COO columns
    load_by_class: tuple[tuple[str, np.ndarray, np.ndarray], ...]


@dataclass(frozen=True, eq=False)
class GridMetrics:
    """Evaluation result for one profile across a whole size grid.

    Column ``j`` equals :func:`~repro.model.simulator.evaluate_time` at
    ``n_elems[j]`` bit for bit.
    """

    time: np.ndarray
    global_bytes: np.ndarray
    bytes_by_class: dict


def _eval_tables(profile: ScheduleProfile) -> _EvalTables:
    tabs = profile.__dict__.get("_eval_tables")
    if tabs is not None:
        return tabs
    steps = profile.steps
    s = len(steps)
    inj = np.fromiter((st.max_inj for st in steps), np.int64, s)
    ej = np.fromiter((st.max_ej for st in steps), np.int64, s)
    red = np.fromiter((st.max_reduce for st in steps), np.int64, s)
    cpy = np.fromiter((st.max_copy for st in steps), np.int64, s)
    by_class: dict[str, tuple[list[int], list[float]]] = {}
    for i, st in enumerate(steps):
        for cls, load in st.max_link_load:
            idx, vals = by_class.setdefault(cls, ([], []))
            idx.append(i)
            vals.append(load)
    load_by_class = tuple(
        (cls, np.asarray(idx, dtype=np.intp), np.asarray(vals, dtype=np.float64))
        for cls, (idx, vals) in sorted(by_class.items())
    )
    tabs = _EvalTables(inj=inj, ej=ej, red=red, cpy=cpy, load_by_class=load_by_class)
    object.__setattr__(profile, "_eval_tables", tabs)
    return tabs


def _lat_array(profile: ScheduleProfile, params: CostParams) -> np.ndarray:
    """Per-step latency terms (size-invariant, so computed once per call).

    Identical step objects (analytic profiles replicate one
    :class:`StepProfile` thousands of times) are evaluated once.
    """
    lat = np.empty(len(profile.steps), dtype=np.float64)
    memo: dict[int, float] = {}
    alpha_hop = params.alpha_hop
    for i, step in enumerate(profile.steps):
        cached = memo.get(id(step))
        if cached is None:
            val = 0.0
            for hops, segs in step.lat_signatures:
                t = params.alpha + max(0, segs - 1) * params.seg_overhead
                for cls, h in hops:
                    t += h * alpha_hop.get(cls, 0.0)
                val = max(val, t)
            val += max(0, step.max_node_msgs - 2) * params.msg_cpu
            cached = memo[id(step)] = val
        lat[i] = cached
    return lat


def _seq_sum(term: np.ndarray, m: int) -> np.ndarray:
    """Sum step rows in step order — the scalar loop's accumulation order.

    ``np.add.reduce``/``np.sum`` may regroup a reduction pairwise (which
    changes the last ulp), but a running prefix sum cannot:
    ``cumsum[i] = cumsum[i-1] + term[i]`` by definition, so the last row
    equals ``total += term`` applied step by step, bit for bit.
    """
    if term.shape[0] == 0:
        return np.zeros(m, dtype=np.float64)
    return np.cumsum(term, axis=0)[-1]


def evaluate_grid(
    profile: ScheduleProfile, params: CostParams, n_elems
) -> GridMetrics:
    """Time and traffic for every vector size of ``n_elems`` in one pass.

    The vectorized :func:`~repro.model.simulator.evaluate_time`: column
    ``j`` of every output equals the scalar call at ``n_elems[j]`` bit for
    bit (each arithmetic step is applied elementwise in the same order the
    scalar code applies it).  The per-step structure arrays are cached on
    the profile, so evaluating a second size grid costs only the NumPy
    pass.

    Example::

        >>> from repro.collectives.registry import build
        >>> from repro.model.simulator import evaluate_time, profile_schedule
        >>> from repro.systems import lumi
        >>> from repro.topology.mapping import block_mapping
        >>> preset = lumi()
        >>> prof = profile_schedule(build("bcast", "bine", 8, 8),
        ...                         preset.build_topology(), block_mapping(8))
        >>> g = evaluate_grid(prof, preset.params, [8.0, 1024.0])
        >>> g.time[1] == evaluate_time(prof, preset.params, 1024.0).time
        True
    """
    n_arr = np.atleast_1d(np.asarray(n_elems, dtype=np.float64))
    scale = n_arr / profile.n_build
    m = scale.size
    b = params.itemsize
    s = len(profile.steps)
    tabs = _eval_tables(profile)
    ports = min(params.ports, int(profile.meta.get("ports_used", 1)))

    bw = np.zeros((s, m), dtype=np.float64)
    for cls, step_idx, loads in tabs.load_by_class:
        beta = params.beta.get(cls, 0.0)
        np.maximum.at(bw, step_idx, loads[:, None] * scale * b * beta)
    bw = np.maximum(bw, tabs.inj[:, None] * scale * b * params.inj_beta / ports)
    bw = np.maximum(bw, tabs.ej[:, None] * scale * b * params.inj_beta / ports)
    comp = tabs.red[:, None] * scale * b * params.reduce_beta
    copy = tabs.cpy[:, None] * scale * b * params.copy_beta
    lat = _lat_array(profile, params)[:, None]

    if profile.meta.get("pipelined"):
        total = _seq_sum(lat + copy, m)
        step_bw = bw + comp
        max_step_bw = (
            np.maximum.reduce(step_bw, axis=0) if s else np.zeros(m)
        )
        num_steps = max(1, s)
        total = total + max_step_bw * (1 + (num_steps - 1) / PIPELINE_CHUNKS)
    elif profile.segmented:
        total = _seq_sum(lat + np.maximum(bw, comp) + copy, m)
    else:
        total = _seq_sum(lat + bw + comp + copy, m)

    return GridMetrics(
        time=total,
        global_bytes=profile.total_global_elems() * scale * b,
        bytes_by_class={
            cls: e * scale * b for cls, e in profile.total_class_elems().items()
        },
    )
