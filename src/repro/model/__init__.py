"""Traffic accounting and the alpha-beta-congestion performance model."""

from repro.model.compiled import (
    CompiledRouteTable,
    GridMetrics,
    TransferTable,
    evaluate_grid,
    lower_schedule,
    profile_table,
    resolve_profile_engine,
    transfer_table_for,
)
from repro.model.cost import CostParams
from repro.model.simulator import (
    RunMetrics,
    ScheduleProfile,
    StepProfile,
    evaluate_time,
    profile_schedule,
)
from repro.model.traffic import (
    global_traffic_elems,
    link_loads_per_step,
    traffic_by_class,
    traffic_reduction,
)

__all__ = [
    "CompiledRouteTable",
    "CostParams",
    "GridMetrics",
    "RunMetrics",
    "ScheduleProfile",
    "StepProfile",
    "TransferTable",
    "evaluate_grid",
    "evaluate_time",
    "lower_schedule",
    "profile_schedule",
    "profile_table",
    "resolve_profile_engine",
    "transfer_table_for",
    "global_traffic_elems",
    "link_loads_per_step",
    "traffic_by_class",
    "traffic_reduction",
]
