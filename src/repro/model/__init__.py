"""Traffic accounting and the alpha-beta-congestion performance model."""

from repro.model.cost import CostParams
from repro.model.simulator import (
    RunMetrics,
    ScheduleProfile,
    StepProfile,
    evaluate_time,
    profile_schedule,
)
from repro.model.traffic import (
    global_traffic_elems,
    link_loads_per_step,
    traffic_by_class,
    traffic_reduction,
)

__all__ = [
    "CostParams",
    "RunMetrics",
    "ScheduleProfile",
    "StepProfile",
    "evaluate_time",
    "profile_schedule",
    "global_traffic_elems",
    "link_loads_per_step",
    "traffic_by_class",
    "traffic_reduction",
]
