"""Block-responsibility ("coverage") sets for butterfly collectives.

In a recursive-halving reduce-scatter run on any butterfly, each rank starts
responsible for all ``p`` blocks and halves its responsibility every step,
ending with exactly its own block.  The invariant (Sec. 4.3 of the paper,
generalised to any matching family) is::

    resp(r, num_steps) = {r}
    resp(r, j)         = resp(r, j+1)  ⊎  resp(partner(r, j), j+1)

where ``resp(r, j)`` is the block set rank ``r`` holds *before* step ``j``.
At step ``j`` rank ``r`` keeps ``resp(r, j+1)`` and sends its partial sums
for ``resp(partner, j+1)`` — the blocks on the partner's side.

The same sets, read in reverse step order, drive the allgather (blocks held
*grow*), and element-wise routing of alltoall.

Two implementations are provided and cross-checked in tests:

* :func:`responsibility` — generic memoised recursion, valid for *any*
  butterfly (recursive doubling/halving, Bine, Swing);
* :func:`bine_dd_responsibility` — the paper's closed form for the
  distance-doubling Bine butterfly via ν masks (Sec. 3.2.3): rank 0 keeps the
  blocks whose ν label has the ``j`` least-significant bits clear, even rank
  ``r`` sees that set translated by ``+r``, odd ranks mirrored as ``r − ·``.
"""

from __future__ import annotations

from repro.core.bine_tree import nu_labels
from repro.core.butterfly import Butterfly
from repro.core.negabinary import ones_mask

__all__ = [
    "responsibility",
    "send_blocks",
    "keep_blocks",
    "bine_dd_responsibility",
    "recdoub_responsibility",
    "rechalv_responsibility",
    "count_segments",
    "count_segments_circular",
    "segments_of",
]


def _cache_of(bf: Butterfly) -> dict:
    cache = getattr(bf, "_resp_cache", None)
    if cache is None:
        cache = {}
        object.__setattr__(bf, "_resp_cache", cache)
    return cache


def responsibility(bf: Butterfly, rank: int, step: int) -> frozenset[int]:
    """Blocks rank ``rank`` is responsible for *before* step ``step``.

    ``step`` ranges from 0 (everything: all ``p`` blocks) to
    ``bf.num_steps`` (only ``{rank}``).
    """
    if not 0 <= rank < bf.p:
        raise ValueError(f"rank {rank} out of range for p={bf.p}")
    if not 0 <= step <= bf.num_steps:
        raise ValueError(f"step {step} out of range")
    cache = _cache_of(bf)
    key = (rank, step)
    if key in cache:
        return cache[key]
    # Iterative worklist to avoid deep recursion at large p.
    stack = [key]
    while stack:
        r, j = stack[-1]
        if (r, j) in cache:
            stack.pop()
            continue
        if j == bf.num_steps:
            cache[(r, j)] = frozenset((r,))
            stack.pop()
            continue
        q = bf.partner(r, j)
        need = [(r, j + 1), (q, j + 1)]
        missing = [k for k in need if k not in cache]
        if missing:
            stack.extend(missing)
            continue
        own, other = cache[need[0]], cache[need[1]]
        if own & other:
            raise AssertionError(
                f"{bf.kind}: responsibility sets overlap at rank {r} step {j}"
            )
        cache[(r, j)] = own | other
        stack.pop()
    return cache[key]


def send_blocks(bf: Butterfly, rank: int, step: int) -> frozenset[int]:
    """Blocks ``rank`` sends to its partner at ``step`` of a reduce-scatter."""
    return responsibility(bf, bf.partner(rank, step), step + 1)


def keep_blocks(bf: Butterfly, rank: int, step: int) -> frozenset[int]:
    """Blocks ``rank`` keeps across ``step`` of a reduce-scatter."""
    return responsibility(bf, rank, step + 1)


# ---------------------------------------------------------------------------
# Closed forms
# ---------------------------------------------------------------------------

def bine_dd_responsibility(p: int, rank: int, step: int) -> frozenset[int]:
    """Closed-form responsibility for the distance-doubling Bine butterfly.

    ``resp(0, j) = {b : ν(b) & ones(j) == 0}``; even ranks translate the set
    (``b ↦ (b + r) mod p``), odd ranks mirror it (``b ↦ (r − b) mod p``) —
    the even/odd asymmetry mirrors Eq. 5's sign rule.
    """
    nus = nu_labels(p)
    mask = ones_mask(step)
    base = [b for b in range(p) if nus[b] & mask == 0]
    if rank % 2 == 0:
        return frozenset((b + rank) % p for b in base)
    return frozenset((rank - b) % p for b in base)


def recdoub_responsibility(p: int, rank: int, step: int) -> frozenset[int]:
    """Closed form for recursive doubling: share the ``step`` low bits."""
    mask = ones_mask(step)
    return frozenset(b for b in range(p) if (b ^ rank) & mask == 0)


def rechalv_responsibility(p: int, rank: int, step: int) -> frozenset[int]:
    """Closed form for recursive halving: share the ``step`` high bits.

    These sets are aligned contiguous ranges — the reason binomial
    reduce-scatter always transmits contiguous memory.
    """
    s = p.bit_length() - 1
    width = s - step
    lo = (rank >> width) << width
    return frozenset(range(lo, lo + (1 << width)))


# ---------------------------------------------------------------------------
# Segment counting (drives the non-contiguous-data cost, Sec. 4.3.1 / Fig. 14)
# ---------------------------------------------------------------------------

def count_segments(blocks: frozenset[int] | set[int]) -> int:
    """Number of maximal runs of consecutive block indices (linear buffer)."""
    if not blocks:
        return 0
    runs = 0
    for b in blocks:
        if b - 1 not in blocks:
            runs += 1
    return runs


def count_segments_circular(blocks: frozenset[int] | set[int], p: int) -> int:
    """Number of maximal runs treating the buffer as circular mod ``p``."""
    if not blocks:
        return 0
    if len(blocks) == p:
        return 1
    runs = 0
    for b in blocks:
        if (b - 1) % p not in blocks:
            runs += 1
    return runs


def segments_of(blocks: frozenset[int] | set[int]) -> list[tuple[int, int]]:
    """Sorted maximal runs as half-open ``(start, stop)`` block ranges."""
    out: list[tuple[int, int]] = []
    run_start: int | None = None
    prev: int | None = None
    for b in sorted(blocks):
        if run_start is None:
            run_start = prev = b
        elif b == prev + 1:
            prev = b
        else:
            out.append((run_start, prev + 1))
            run_start = prev = b
    if run_start is not None:
        out.append((run_start, prev + 1))
    return out
