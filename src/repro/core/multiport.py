"""Multi-ported torus scheduling (paper Appendix D.4, Fugaku Sec. 5.4).

Fugaku nodes drive six NICs concurrently.  The paper exploits this by
splitting the collective's vector into ``2·D`` parts on a ``D``-dimensional
torus and running ``2·D`` collectives in parallel, each traversing the
dimensions in a rotated order (and half of them with mirrored direction), so
at any step every port of a node carries a different sub-collective.

This module produces the rotated/mirrored dimension orders and the port
assignment consumed by the torus collectives and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.torus_opt import TorusShape, dimension_schedule

__all__ = ["PortPlan", "multiport_plans", "rotated_dimension_schedule"]


@dataclass(frozen=True)
class PortPlan:
    """One of the ``2·D`` parallel sub-collectives.

    ``port``: index of the NIC this sub-collective injects on.
    ``order``: its ``(dimension, per-dim step)`` global step order.
    ``mirror``: whether coordinates are mirrored (−direction traversal),
    spreading traffic over the opposite-direction links.
    """

    port: int
    order: tuple[tuple[int, int], ...]
    mirror: bool


def rotated_dimension_schedule(shape: TorusShape, rotation: int) -> list[tuple[int, int]]:
    """Dimension schedule with the round-robin start rotated by ``rotation``.

    Rotation permutes which dimension goes first in every round: the E→N→W→S
    vs N→W→S→E orders of paper Fig. 18.
    """
    base = dimension_schedule(shape)
    ndims = shape.num_dims
    # Group base schedule by round, rotate the within-round dimension order.
    rounds: list[list[tuple[int, int]]] = []
    for item in base:
        if not rounds or any(item[0] == prev[0] for prev in rounds[-1]):
            rounds.append([item])
        else:
            rounds[-1].append(item)
    out: list[tuple[int, int]] = []
    for rnd in rounds:
        k = rotation % len(rnd)
        out.extend(rnd[k:] + rnd[:k])
    return out


def multiport_plans(shape: TorusShape) -> list[PortPlan]:
    """The ``2·D`` port plans for ``shape``.

    Ports ``0 … D−1`` use rotations ``0 … D−1`` in the + direction; ports
    ``D … 2D−1`` reuse the rotations mirrored.
    """
    ndims = shape.num_dims
    plans = []
    for port in range(2 * ndims):
        rotation = port % ndims
        mirror = port >= ndims
        plans.append(
            PortPlan(
                port=port,
                order=tuple(rotated_dimension_schedule(shape, rotation)),
                mirror=mirror,
            )
        )
    return plans
