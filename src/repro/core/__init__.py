"""Core Bine-tree machinery: negabinary math, trees, butterflies, coverage.

This package is the paper's primary contribution in library form; everything
here is topology-agnostic.  See :mod:`repro.collectives` for the eight
collective algorithms built on top and :mod:`repro.topology` /
:mod:`repro.model` for the network substrates.
"""

from repro.core.negabinary import (
    from_negabinary,
    max_positive,
    nb_to_rank,
    rank_to_nb,
    to_negabinary,
)
from repro.core.tree import Tree, TreeError, build_tree, log2_exact
from repro.core.bine_tree import (
    bine_tree_distance_doubling,
    bine_tree_distance_halving,
    nu_label,
    nu_labels,
)
from repro.core.binomial_tree import (
    binomial_tree_distance_doubling,
    binomial_tree_distance_halving,
)
from repro.core.butterfly import (
    Butterfly,
    bine_butterfly_doubling,
    bine_butterfly_halving,
    recursive_doubling_butterfly,
    recursive_halving_butterfly,
    swing_butterfly,
)
from repro.core.blocks import CircularRange, Partition
from repro.core.coverage import responsibility, send_blocks, keep_blocks
from repro.core.distance import (
    THEORETICAL_TRAFFIC_REDUCTION_BOUND,
    delta_bine,
    delta_binomial,
    distance_ratio,
    modulo_distance,
)
from repro.core.torus_opt import TorusShape, torus_bine_tree, torus_bine_butterfly

__all__ = [
    "Tree",
    "TreeError",
    "Butterfly",
    "CircularRange",
    "Partition",
    "TorusShape",
    "bine_tree_distance_doubling",
    "bine_tree_distance_halving",
    "binomial_tree_distance_doubling",
    "binomial_tree_distance_halving",
    "bine_butterfly_doubling",
    "bine_butterfly_halving",
    "recursive_doubling_butterfly",
    "recursive_halving_butterfly",
    "swing_butterfly",
    "torus_bine_tree",
    "torus_bine_butterfly",
    "build_tree",
    "log2_exact",
    "nu_label",
    "nu_labels",
    "to_negabinary",
    "from_negabinary",
    "rank_to_nb",
    "nb_to_rank",
    "max_positive",
    "responsibility",
    "send_blocks",
    "keep_blocks",
    "modulo_distance",
    "delta_bine",
    "delta_binomial",
    "distance_ratio",
    "THEORETICAL_TRAFFIC_REDUCTION_BOUND",
]
