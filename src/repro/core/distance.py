"""Communication-distance theory (paper Sec. 2.4.1, Eq. 2).

The analytic comparison between Bine and binomial trees: at step ``i`` of an
``s``-step distance-halving collective the communicating ranks are

* ``δ_binomial(i) = 2^{s−i−1}`` apart in a binomial tree, and
* ``δ_bine(i) = |Σ_{j=0}^{s−i−1} (−2)^j| ≈ 2^{s−i}/3`` apart in a Bine tree,

so the ratio tends to 2/3 — Bine communicates with ~33 % closer ranks, which
bounds its global-traffic reduction (Eq. 2).
"""

from __future__ import annotations

from repro.core.butterfly import bine_sigma

__all__ = [
    "modulo_distance",
    "delta_binomial",
    "delta_bine",
    "distance_ratio",
    "THEORETICAL_TRAFFIC_REDUCTION_BOUND",
]

#: The paper's headline bound: Bine cuts global-link traffic by at most 33 %.
THEORETICAL_TRAFFIC_REDUCTION_BOUND = 1 / 3


def modulo_distance(r: int, q: int, p: int) -> int:
    """Minimum circular distance between ranks ``r`` and ``q`` (Sec. 2.2)."""
    if p <= 0:
        raise ValueError("p must be positive")
    d = (r - q) % p
    return min(d, p - d)


def delta_binomial(step: int, s: int) -> int:
    """Distance between partners at ``step`` of a distance-halving binomial tree."""
    if not 0 <= step < s:
        raise ValueError(f"step {step} out of range for s={s}")
    return 1 << (s - step - 1)


def delta_bine(step: int, s: int) -> int:
    """Distance between partners at ``step`` of a distance-halving Bine tree.

    ``|Σ_{j=0}^{s−i−1} (−2)^j| = |(1 − (−2)^{s−i})/3|``.
    """
    if not 0 <= step < s:
        raise ValueError(f"step {step} out of range for s={s}")
    return abs(bine_sigma(s - step))


def distance_ratio(step: int, s: int) -> float:
    """``δ_bine / δ_binomial`` at a given step — converges to 2/3 (Eq. 2)."""
    return delta_bine(step, s) / delta_binomial(step, s)
