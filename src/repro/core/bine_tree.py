"""Bine tree construction (paper Secs. 2.2-2.3, 3.2 and Appendix A).

Two families are built here, both as :class:`~repro.core.tree.Tree` objects:

* **distance-halving** Bine trees (Sec. 2.3): rank ``r`` (relative to the
  root) receives at step ``i = s − u`` where ``u`` counts identical trailing
  negabinary digits, and forwards at step ``i`` to
  ``nb2rank(rank2nb(r) ⊕ 11…1)`` with ``s − i`` ones (Eq. 1);

* **distance-doubling** Bine trees (Sec. 3.2): each rank gets a label
  ``ν(r) = h(r) ⊕ (h(r) >> 1)`` where ``h`` is the (mirrored for even ranks)
  negabinary pattern; the tree is then the binomial tree over ``ν`` labels —
  a rank receives at the step of its highest set ν-bit and forwards to the
  rank whose ν differs in bit ``j`` at step ``j``.

Trees for roots ``t ≠ 0`` are the root-0 tree with all identifiers rotated by
``t`` (Sec. 2.2).  Inside butterflies odd-rooted trees are *mirrored* instead;
that variant is exposed via ``mirror=True`` and used by
:mod:`repro.core.butterfly`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.negabinary import (
    nb_to_rank,
    ones_mask,
    rank_to_nb,
    rank_to_nb_table,
    trailing_equal_bits,
)
from repro.core.tree import Tree, build_tree, log2_exact

__all__ = [
    "bine_tree_distance_halving",
    "bine_tree_distance_doubling",
    "nu_labels",
    "nu_label",
    "nu_inverse",
    "dh_recv_step",
    "dh_partner",
    "dd_recv_step",
    "dd_partner",
]


# ---------------------------------------------------------------------------
# Distance-halving Bine trees (Sec. 2.3)
# ---------------------------------------------------------------------------

def dh_recv_step(rank: int, p: int) -> int:
    """Step at which relative rank ``rank`` receives in the dist-halving tree.

    The paper's rule ``i = s − u`` (Sec. 2.3.2).  The root (relative rank 0)
    never receives and reports ``-1``.
    """
    s = log2_exact(p)
    if rank == 0:
        return -1
    u = trailing_equal_bits(rank_to_nb(rank, p), s)
    return s - u


def dh_partner(rank: int, step: int, p: int) -> int:
    """Destination of relative rank ``rank`` at ``step`` (Eq. 1).

    Valid for any rank that already holds the data at ``step``; the result is
    the rank whose negabinary pattern differs in the ``s − step`` least
    significant digits.
    """
    s = log2_exact(p)
    if not 0 <= step < s:
        raise ValueError(f"step {step} out of range for s={s}")
    return nb_to_rank(rank_to_nb(rank, p) ^ ones_mask(s - step), p)


def bine_tree_distance_halving(p: int, root: int = 0) -> Tree:
    """Build the distance-halving Bine broadcast tree over ``p`` ranks."""
    return build_tree(
        p,
        root,
        kind="bine-dh",
        recv_step=lambda r: dh_recv_step(r, p),
        partner=lambda r, i: dh_partner(r, i, p),
    )


# ---------------------------------------------------------------------------
# Distance-doubling Bine trees (Sec. 3.2, Appendix A)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def _nu_table(p: int) -> tuple[int, ...]:
    """Memoized ν labels for all ranks of ``p`` (shared by every builder)."""
    log2_exact(p)
    nb = rank_to_nb_table(p)
    table = []
    for rank in range(p):
        if rank == 0:
            h = 0
        elif rank % 2 == 0:
            h = nb[p - rank]
        else:
            h = nb[rank]
        table.append(h ^ (h >> 1))
    return tuple(table)


@lru_cache(maxsize=None)
def _nu_inverse_table(p: int) -> tuple[int, ...]:
    """Memoized inverse ν table (bijection-checked once per ``p``)."""
    inv = [-1] * p
    for r, v in enumerate(_nu_table(p)):
        if not 0 <= v < p or inv[v] != -1:
            raise AssertionError(f"ν is not a bijection at p={p}: rank {r} -> {v}")
        inv[v] = r
    return tuple(inv)


def nu_label(rank: int, p: int) -> int:
    """ν(r, p) from Sec. 3.2.1: Gray-style recoding of the negabinary label.

    ``h(r) = rank2nb(p − r)`` for even ``r`` (with ``h(0) = 0``) and
    ``rank2nb(r)`` for odd ``r``; then ``ν = h ⊕ (h >> 1)``.
    """
    table = _nu_table(p)
    if not 0 <= rank < p:
        raise ValueError(f"rank {rank} out of range for p={p}")
    return table[rank]


def nu_labels(p: int) -> list[int]:
    """ν labels for all ranks ``0 … p−1`` (a bijection onto ``0 … p−1``)."""
    return list(_nu_table(p))


def nu_inverse(p: int) -> list[int]:
    """Inverse ν table: ``inv[ν(r)] = r``."""
    return list(_nu_inverse_table(p))


def dd_recv_step(rank: int, p: int) -> int:
    """Receive step in the distance-doubling tree: highest set bit of ν(r)."""
    if rank == 0:
        return -1
    return nu_label(rank, p).bit_length() - 1


def dd_partner(rank: int, step: int, p: int) -> int:
    """Destination of relative rank ``rank`` at ``step`` in the dd tree.

    The rank whose ν label differs exactly in bit ``step`` (Sec. 3.2.2).
    """
    s = log2_exact(p)
    if not 0 <= step < s:
        raise ValueError(f"step {step} out of range for s={s}")
    return _nu_inverse_table(p)[nu_label(rank, p) ^ (1 << step)]


def bine_tree_distance_doubling(p: int, root: int = 0) -> Tree:
    """Build the distance-doubling Bine broadcast tree over ``p`` ranks."""
    return build_tree(
        p,
        root,
        kind="bine-dd",
        recv_step=lambda r: dd_recv_step(r, p),
        partner=lambda r, j: dd_partner(r, j, p),
    )
