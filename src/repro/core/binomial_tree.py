"""Standard binomial trees — the paper's primary baseline (Sec. 2.1, Fig. 1-2).

Two variants, matching the production implementations the paper compares
against:

* **distance-doubling** (Open MPI ``coll_base_bcast`` binomial): at step ``i``
  every relative rank ``r < 2**i`` sends to ``r + 2**i``; the distance between
  communicating ranks doubles each step (0→1, then 0→2 / 1→3, …).

* **distance-halving** (MPICH ``bcast_intra_binomial``): at step ``i`` the
  ranks that are multiples of ``2**(s−i)`` send to ``r + 2**(s−i−1)``; the
  distance halves each step (0→p/2, then 0→p/4 / p/2→3p/4, …).
"""

from __future__ import annotations

from repro.core.tree import Tree, build_tree, log2_exact

__all__ = [
    "binomial_tree_distance_doubling",
    "binomial_tree_distance_halving",
    "binomial_dd_recv_step",
    "binomial_dh_recv_step",
]


def binomial_dd_recv_step(rank: int, p: int) -> int:
    """Receive step in the distance-doubling binomial tree: ⌊log2 r⌋."""
    log2_exact(p)
    if rank == 0:
        return -1
    return rank.bit_length() - 1


def binomial_dh_recv_step(rank: int, p: int) -> int:
    """Receive step in the distance-halving binomial tree.

    Rank ``r ≠ 0`` is first reached when the halving frontier matches its
    lowest set bit: ``i = s − 1 − ctz(r)``.
    """
    s = log2_exact(p)
    if rank == 0:
        return -1
    ctz = (rank & -rank).bit_length() - 1
    return s - 1 - ctz


def binomial_tree_distance_doubling(p: int, root: int = 0) -> Tree:
    """Open-MPI-style binomial broadcast tree (top of paper Fig. 1)."""
    return build_tree(
        p,
        root,
        kind="binomial-dd",
        recv_step=lambda r: binomial_dd_recv_step(r, p),
        partner=lambda r, i: r + (1 << i),
        active_at=lambda r, i: r < (1 << i),
    )


def binomial_tree_distance_halving(p: int, root: int = 0) -> Tree:
    """MPICH-style binomial broadcast tree (bottom of paper Fig. 1)."""
    s = log2_exact(p)
    return build_tree(
        p,
        root,
        kind="binomial-dh",
        recv_step=lambda r: binomial_dh_recv_step(r, p),
        partner=lambda r, i: r + (1 << (s - i - 1)),
        active_at=lambda r, i: r % (1 << (s - i)) == 0,
    )
