"""Butterfly (all-to-all exchange) patterns: Bine, standard, and Swing.

A butterfly over ``p = 2**s`` ranks is a sequence of ``s`` perfect matchings:
at every step each rank exchanges data with exactly one partner.  The paper
builds two Bine butterflies (Sec. 3.1, Eq. 4 and Appendix A, Eq. 5):

* **distance-halving** (Eq. 4) — partner offset ``σ_i = (1 − (−2)^{s−i}) / 3``
  added for even ranks, subtracted for odd ranks.  Distances shrink roughly
  by half each step; used where late steps carry the most data (allgather).

* **distance-doubling** (Eq. 5) — offset ``Σ_{k=0..j} (−2)^k`` with the same
  even/odd sign rule.  Distances grow; used where early steps carry the most
  data (reduce-scatter).  This is also exactly the *Swing* matching
  (De Sensi et al., NSDI'24): Swing and Bine share partners and differ only
  in how blocks are laid out in memory, which the collectives layer models.

Standard **recursive-doubling** (partner ``r ⊕ 2^j``) and **recursive-
halving** (partner ``r ⊕ 2^{s−1−j}``) hypercube butterflies are the binomial
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tree import log2_exact

__all__ = [
    "Butterfly",
    "bine_butterfly_halving",
    "bine_butterfly_doubling",
    "swing_butterfly",
    "recursive_doubling_butterfly",
    "recursive_halving_butterfly",
    "bine_sigma",
    "BUTTERFLY_BUILDERS",
]


def bine_sigma(width: int) -> int:
    """``Σ_{k=0}^{width−1} (−2)^k = (1 − (−2)^width) / 3`` — always an integer.

    This is the negabinary all-ones value on ``width`` digits; its magnitude
    ``≈ 2^width / 3`` is the Bine communication distance (Sec. 2.4.1).
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    num = 1 - (-2) ** width
    assert num % 3 == 0
    return num // 3


@dataclass(frozen=True)
class Butterfly:
    """An explicit butterfly: ``partners[j][r]`` is r's partner at step j."""

    p: int
    kind: str
    partners: tuple[tuple[int, ...], ...]

    @property
    def num_steps(self) -> int:
        return len(self.partners)

    def partner(self, rank: int, step: int) -> int:
        """Partner of ``rank`` at ``step``."""
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} out of range for p={self.p}")
        return self.partners[step][rank]

    def matching(self, step: int) -> list[tuple[int, int]]:
        """The matching at ``step`` as ``(low, high)`` pairs, each pair once."""
        row = self.partners[step]
        return [(r, row[r]) for r in range(self.p) if r < row[r]]

    def validate(self) -> None:
        """Check every step is a perfect matching (an involution, no fixpoint)."""
        for j, row in enumerate(self.partners):
            for r, q in enumerate(row):
                if not 0 <= q < self.p:
                    raise ValueError(f"{self.kind}: partner({r},{j})={q} invalid")
                if q == r:
                    raise ValueError(f"{self.kind}: rank {r} paired with itself at step {j}")
                if row[q] != r:
                    raise ValueError(
                        f"{self.kind}: step {j} not an involution at ranks {r}/{q}"
                    )

    def reversed(self) -> "Butterfly":
        """Same matchings in the opposite step order."""
        return Butterfly(self.p, self.kind + "-rev", tuple(reversed(self.partners)))


def _from_rule(p: int, kind: str, rule) -> Butterfly:
    s = log2_exact(p)
    partners = tuple(
        tuple(rule(r, j) % p for r in range(p)) for j in range(s)
    )
    bf = Butterfly(p, kind, partners)
    bf.validate()
    return bf


def bine_butterfly_halving(p: int) -> Butterfly:
    """Distance-halving Bine butterfly (Eq. 4)."""
    s = log2_exact(p)

    def rule(r: int, i: int) -> int:
        sigma = bine_sigma(s - i)
        return r + sigma if r % 2 == 0 else r - sigma

    return _from_rule(p, "bine-halving", rule)


def bine_butterfly_doubling(p: int) -> Butterfly:
    """Distance-doubling Bine butterfly (Eq. 5) — also the Swing matching."""

    def rule(r: int, j: int) -> int:
        sigma = bine_sigma(j + 1)
        return r + sigma if r % 2 == 0 else r - sigma

    return _from_rule(p, "bine-doubling", rule)


def swing_butterfly(p: int) -> Butterfly:
    """Swing matching — identical pairs to the distance-doubling Bine butterfly."""
    bf = bine_butterfly_doubling(p)
    return Butterfly(bf.p, "swing", bf.partners)


def recursive_doubling_butterfly(p: int) -> Butterfly:
    """Standard hypercube butterfly with distances 1, 2, 4, …"""
    return _from_rule(p, "recdoub", lambda r, j: r ^ (1 << j))


def recursive_halving_butterfly(p: int) -> Butterfly:
    """Standard hypercube butterfly with distances p/2, p/4, …"""
    s = log2_exact(p)
    return _from_rule(p, "rechalv", lambda r, j: r ^ (1 << (s - 1 - j)))


BUTTERFLY_BUILDERS = {
    "bine-halving": bine_butterfly_halving,
    "bine-doubling": bine_butterfly_doubling,
    "swing": swing_butterfly,
    "recdoub": recursive_doubling_butterfly,
    "rechalv": recursive_halving_butterfly,
}
