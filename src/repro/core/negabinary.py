"""Negabinary (base −2) arithmetic underlying Bine trees (paper Sec. 2.3.1).

Bine trees assign each rank a *negabinary* representation: an integer is
written as a sum of powers of −2 instead of 2.  Unlike plain binary, a fixed
number ``s`` of negabinary digits covers a window of *both* positive and
negative integers::

    s digits cover [min_negabinary(s), max_positive(s)]  with width 2**s

For a collective over ``p = 2**s`` ranks the paper maps rank ``r`` to the
negabinary encoding of ``r`` itself when ``r <= max_positive(s)`` and of
``r − p`` (a negative number) otherwise, which tiles the ``p`` ranks onto the
representable window exactly once.

Bit patterns are stored as ordinary non-negative Python ints: bit ``j`` of the
pattern is the coefficient of ``(−2)**j``.  E.g. the pattern ``0b110``
represents ``1·4 + 1·(−2) + 0·1 = 2``.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "to_negabinary",
    "from_negabinary",
    "max_positive",
    "min_negabinary",
    "nb_width",
    "rank_to_nb",
    "rank_to_nb_table",
    "nb_to_rank",
    "ones_mask",
    "trailing_equal_bits",
    "bit_reverse",
    "nb_digits",
]


def to_negabinary(value: int) -> int:
    """Return the negabinary bit pattern of ``value`` (any Python int).

    The pattern is the unique finite digit string ``b_k … b_1 b_0`` with
    ``value = Σ b_j (−2)**j`` and ``b_j ∈ {0, 1}``, packed into a
    non-negative int (bit ``j`` ↔ digit ``b_j``).
    """
    bits = 0
    pos = 0
    n = value
    while n != 0:
        if n & 1:  # odd → digit 1 (holds for negatives: Python & is two's-complement)
            bits |= 1 << pos
            n -= 1
        # n is now even and exactly divisible by −2
        n //= -2
        pos += 1
    return bits


def from_negabinary(bits: int) -> int:
    """Evaluate a negabinary bit pattern back to the integer it encodes."""
    if bits < 0:
        raise ValueError("negabinary bit patterns are stored as non-negative ints")
    value = 0
    weight = 1  # (−2)**j
    while bits:
        if bits & 1:
            value += weight
        weight *= -2
        bits >>= 1
    return value


def max_positive(s: int) -> int:
    """Largest integer representable in ``s`` negabinary digits (Sec. 2.3.1).

    Obtained with ones in all even positions: ``0101…01₋₂``.
    E.g. ``max_positive(6) = 16 + 4 + 1 = 21`` and ``max_positive(3) = 5``.
    """
    if s < 0:
        raise ValueError("digit count must be non-negative")
    return sum(4**k for k in range((s + 1) // 2))


def min_negabinary(s: int) -> int:
    """Smallest (most negative) integer representable in ``s`` digits.

    Obtained with ones in all odd positions: ``1010…10₋₂``.
    """
    if s < 0:
        raise ValueError("digit count must be non-negative")
    return -sum(2 * 4**k for k in range(s // 2))


def nb_width(value: int) -> int:
    """Number of negabinary digits needed to represent ``value``."""
    return to_negabinary(value).bit_length()


@lru_cache(maxsize=None)
def rank_to_nb_table(p: int) -> tuple[int, ...]:
    """Memoized ``rank2nb`` table for all ranks ``0 … p−1``.

    Labels are pure functions of ``p``, and schedule builders query them per
    transfer; computing the whole window once per ``p`` turns the per-call
    digit recursion into a table lookup for every later caller.
    """
    s = _log2_exact(p)
    m = max_positive(s)
    table = []
    for rank in range(p):
        bits = to_negabinary(rank if rank <= m else rank - p)
        assert bits < (1 << s), (rank, p, bits)
        table.append(bits)
    return tuple(table)


def rank_to_nb(rank: int, p: int) -> int:
    """``rank2nb(r, p)`` from the paper: negabinary pattern assigned to a rank.

    Ranks in ``[0, max_positive(s)]`` use their own encoding; larger ranks use
    the encoding of ``rank − p`` (a negative value), so that the ``p`` ranks
    exactly fill the ``s``-digit window.  Requires ``p`` to be a power of two.
    """
    table = rank_to_nb_table(p)
    if not 0 <= rank < p:
        raise ValueError(f"rank {rank} out of range for p={p}")
    return table[rank]


def nb_to_rank(bits: int, p: int) -> int:
    """``nb2rank`` from the paper: map a negabinary pattern to a rank mod p."""
    return from_negabinary(bits) % p


def ones_mask(width: int) -> int:
    """Bit pattern ``11…1`` with ``width`` ones (the XOR mask of Eq. 1)."""
    if width < 0:
        raise ValueError("mask width must be non-negative")
    return (1 << width) - 1


def trailing_equal_bits(bits: int, s: int) -> int:
    """Count of identical consecutive least-significant digits (paper's ``u``).

    Counting starts at digit 0 of an ``s``-digit pattern and runs while digits
    equal digit 0.  E.g. for ``s = 4``: ``1000 → 3`` and ``1011 → 2``.
    """
    if s <= 0:
        raise ValueError("digit count must be positive")
    first = bits & 1
    u = 1
    for j in range(1, s):
        if (bits >> j) & 1 == first:
            u += 1
        else:
            break
    return u


def bit_reverse(bits: int, s: int) -> int:
    """Reverse the low ``s`` bits of ``bits`` (the Sec. 4.3.1 ``reverse``)."""
    out = 0
    for j in range(s):
        if (bits >> j) & 1:
            out |= 1 << (s - 1 - j)
    return out


def nb_digits(bits: int, s: int) -> str:
    """Render a pattern as an ``s``-character digit string (for diagnostics)."""
    return format(bits, f"0{s}b")


def _log2_exact(p: int) -> int:
    """Return log2(p) for a power of two, else raise."""
    if p <= 0 or p & (p - 1):
        raise ValueError(f"p={p} is not a positive power of two")
    return p.bit_length() - 1
