"""Torus-optimised Bine trees and butterflies (paper Sec. 5.4.1, Appendix D).

On a torus the 1-D modulo distance misjudges real hop counts, so the paper
treats ranks as coordinates and applies the Bine construction *per
dimension*: global steps interleave the dimensions round-robin (last
dimension first, matching Fig. 16, where rank (0,0) of a 4×4 torus talks to
(0,3), then (3,0), then (0,1), then (1,0)).  Every partner differs from the
sender in exactly one coordinate, so each message crosses links of a single
torus dimension.

The same interleaving applied to per-dimension Bine *butterflies* yields the
torus-optimised reduce-scatter/allgather/allreduce.  Data handling for the
resulting non-contiguous subtrees (App. D.2) uses the DFS-postorder
permutation from :mod:`repro.core.permutation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bine_tree import dh_partner, dh_recv_step
from repro.core.butterfly import Butterfly, bine_sigma
from repro.core.tree import Tree, build_tree, log2_exact

__all__ = [
    "TorusShape",
    "dimension_schedule",
    "torus_bine_tree",
    "torus_bine_butterfly",
    "torus_recdoub_butterfly",
]


@dataclass(frozen=True)
class TorusShape:
    """A D-dimensional torus with power-of-two extents per dimension."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("torus needs at least one dimension")
        for d in self.dims:
            log2_exact(d)

    @property
    def num_ranks(self) -> int:
        out = 1
        for d in self.dims:
            out *= d
        return out

    @property
    def num_dims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Row-major coordinates of ``rank`` (last dimension fastest)."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def rank(self, coords: tuple[int, ...]) -> int:
        """Inverse of :meth:`coords`."""
        if len(coords) != self.num_dims:
            raise ValueError("coordinate arity mismatch")
        r = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise ValueError(f"coordinate {c} out of range for extent {d}")
            r = r * d + c
        return r


def dimension_schedule(shape: TorusShape) -> list[tuple[int, int]]:
    """Global step order as ``(dimension, per-dimension step)`` pairs.

    Round-robin over dimensions, last dimension first within a round;
    dimensions with fewer per-dimension steps simply drop out of later
    rounds (the paper's rectangular-torus note in App. D.4).
    """
    per_dim = [log2_exact(d) for d in shape.dims]
    order: list[tuple[int, int]] = []
    rnd = 0
    while True:
        any_active = False
        for dim in reversed(range(shape.num_dims)):
            if rnd < per_dim[dim]:
                order.append((dim, rnd))
                any_active = True
        if not any_active:
            break
        rnd += 1
    return order


def torus_bine_tree(shape: TorusShape, root: int = 0) -> Tree:
    """Distance-halving Bine broadcast tree optimised for ``shape``.

    Built with the generic tree machinery: the relative receive step of a
    coordinate vector is the latest global step among its per-dimension
    arrival steps, and at global step ``(dim, i)`` every holder forwards to
    the rank whose ``dim`` coordinate is its 1-D Bine partner.
    """
    order = dimension_schedule(shape)
    p = shape.num_ranks

    # Global step index of (dim, dim_step).
    gstep = {di: g for g, di in enumerate(order)}

    def recv_step(rel: int) -> int:
        if rel == 0:
            return -1
        coords = shape.coords(rel)
        latest = -1
        for dim, c in enumerate(coords):
            if c == 0:
                continue
            i = dh_recv_step(c, shape.dims[dim])
            latest = max(latest, gstep[(dim, i)])
        return latest

    def partner(rel: int, g: int) -> int:
        dim, i = order[g]
        coords = list(shape.coords(rel))
        coords[dim] = dh_partner(coords[dim], i, shape.dims[dim])
        return shape.rank(tuple(coords))

    return build_tree(
        p,
        root,
        kind=f"bine-torus-{'x'.join(map(str, shape.dims))}",
        recv_step=recv_step,
        partner=partner,
        num_steps=len(order),
    )


def _torus_butterfly(shape: TorusShape, kind: str, partner_1d) -> Butterfly:
    """Interleave per-dimension butterflies into one matching sequence."""
    order = dimension_schedule(shape)
    p = shape.num_ranks
    partners = []
    for dim, i in order:
        row = []
        for r in range(p):
            coords = list(shape.coords(r))
            coords[dim] = partner_1d(coords[dim], i, shape.dims[dim])
            row.append(shape.rank(tuple(coords)))
        partners.append(tuple(row))
    bf = Butterfly(p, kind, tuple(partners))
    bf.validate()
    return bf


def torus_bine_butterfly(shape: TorusShape, *, doubling: bool = True) -> Butterfly:
    """Torus-optimised Bine butterfly.

    ``doubling=True`` orders every dimension's steps distance-doubling
    (reduce-scatter direction, Eq. 5); ``False`` gives the distance-halving
    direction (allgather, Eq. 4).  Within a dimension of extent ``d`` the 1-D
    Bine sign rule applies to that *coordinate*'s parity.
    """

    def dd(coord: int, i: int, d: int) -> int:
        sigma = bine_sigma(i + 1)
        return (coord + sigma) % d if coord % 2 == 0 else (coord - sigma) % d

    def dh(coord: int, i: int, d: int) -> int:
        s = log2_exact(d)
        sigma = bine_sigma(s - i)
        return (coord + sigma) % d if coord % 2 == 0 else (coord - sigma) % d

    name = "x".join(map(str, shape.dims))
    if doubling:
        return _torus_butterfly(shape, f"bine-torus-dd-{name}", dd)
    bf = _torus_butterfly(shape, f"bine-torus-dh-{name}", dh)
    # Distance-halving runs late-dimension steps first but in *reversed*
    # per-dimension order; reverse the global order so large exchanges pair
    # with short distances last, mirroring the 1-D convention.
    return bf


def torus_recdoub_butterfly(shape: TorusShape) -> Butterfly:
    """Baseline: per-dimension recursive doubling, same interleaving."""

    def rd(coord: int, i: int, d: int) -> int:
        return coord ^ (1 << i)

    name = "x".join(map(str, shape.dims))
    return _torus_butterfly(shape, f"recdoub-torus-{name}", rd)
