"""Non-power-of-two rank counts (paper Appendix C).

Two techniques are implemented:

* **Even-p duplicate-subtree pruning** — for even ``p`` the Bine tree rules
  are run unchanged; some ranks would be reached twice, and the send that
  arrives *later* (whose subtree is provably the smaller, contained one) is
  simply skipped.  No extra communication volume (Fig. 15).

* **Power-of-two fold** — the classic technique usable for any ``p`` (and the
  only option for odd ``p``): the last ``p − p′`` ranks first fold their data
  onto the first ``p − p′`` ranks, the collective runs over the leading
  ``p′ = 2^⌊log2 p⌋`` ranks, and results unfold back.  This doubles the
  volume handled by the folded ranks, which is why the paper prefers pruning
  when ``p`` is even.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.negabinary import (
    nb_to_rank,
    ones_mask,
    rank_to_nb,
)
from repro.core.tree import Tree, TreeError

__all__ = [
    "PrunedTree",
    "bine_tree_dh_pruned",
    "FoldPlan",
    "fold_plan",
    "ceil_log2",
]


def ceil_log2(p: int) -> int:
    """Smallest ``s`` with ``2**s >= p``."""
    if p <= 0:
        raise ValueError("p must be positive")
    return (p - 1).bit_length()


def _rank_to_nb_general(rank: int, p: int, s: int) -> int:
    """rank2nb extended to non-power-of-two ``p`` on ``s`` digits.

    Uses the positive encoding when it fits in ``s`` digits and the
    ``rank − p`` encoding otherwise, mirroring the power-of-two rule.
    """
    from repro.core.negabinary import max_positive, to_negabinary

    value = rank if rank <= max_positive(s) else rank - p
    bits = to_negabinary(value)
    if bits >= (1 << s):
        # Fall back to the other encoding if the preferred one overflows.
        alt = to_negabinary(rank - p if value == rank else rank)
        if alt < (1 << s):
            return alt
        raise ValueError(f"rank {rank} not representable on {s} negabinary digits")
    return bits


@dataclass(frozen=True)
class PrunedTree:
    """A Bine tree over even non-power-of-two ``p`` with duplicate subtrees removed.

    Exposes the same query surface the schedules need (`recv_step`,
    `children`, `subtree`) plus the list of virtual subtree roots that were
    pruned (as ``(step, parent, rank)``).
    """

    p: int
    root: int
    kind: str
    num_steps: int
    edges: tuple[tuple[tuple[int, int], ...], ...]
    pruned_edges: tuple[tuple[int, int, int], ...]  # (step, src, dst)
    _recv_step: tuple[int, ...]
    _parent: tuple[int, ...]
    _children: tuple[tuple[tuple[int, int], ...], ...]

    def recv_step(self, rank: int) -> int:
        return self._recv_step[rank]

    def parent(self, rank: int) -> int | None:
        par = self._parent[rank]
        return None if par < 0 else par

    def children(self, rank: int) -> tuple[tuple[int, int], ...]:
        return self._children[rank]

    def subtree(self, rank: int) -> list[int]:
        out = []
        stack = [rank]
        while stack:
            node = stack.pop()
            out.append(node)
            for _, child in reversed(self._children[node]):
                stack.append(child)
        return out

    def all_edges(self) -> list[tuple[int, int, int]]:
        return [(i, u, v) for i, es in enumerate(self.edges) for (u, v) in es]


def bine_tree_dh_pruned(p: int, root: int = 0) -> PrunedTree:
    """Distance-halving Bine tree for even (non-power-of-two) ``p``.

    Construction (Appendix C, Fig. 15): build the *virtual* Bine tree over
    ``2^⌈log2 p⌉`` negabinary labels; each label maps to the real rank
    ``value mod p``, so ``2^s − p`` real ranks carry two labels and would be
    reached twice.  The arrival that happens *later* roots the smaller,
    redundant subtree — prune it.  Communication volume matches the
    power-of-two case exactly (no folding).

    Raises :class:`TreeError` for odd ``p > 1`` (pairwise sends make a
    second arrival unavoidable; use :func:`fold_plan` instead — Appendix C).
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if p % 2 == 1 and p > 1:
        raise TreeError(f"pruned construction requires even p, got {p}")
    s = max(ceil_log2(p), 1) if p > 1 else 0
    from repro.core.bine_tree import bine_tree_distance_halving
    from repro.core.negabinary import from_negabinary, rank_to_nb

    p_virt = 1 << s
    vtree = bine_tree_distance_halving(p_virt)
    real = [from_negabinary(rank_to_nb(v, p_virt)) % p for v in range(p_virt)]

    recv = [-2] * p
    parent = [-1] * p
    children: list[list[tuple[int, int]]] = [[] for _ in range(p)]
    edges: list[list[tuple[int, int]]] = [[] for _ in range(s)]
    pruned: list[tuple[int, int, int]] = []
    alive = [False] * p_virt
    alive[0] = True
    recv[real[0]] = -1

    # Walk virtual edges in step order; an edge whose real target was already
    # reached roots a duplicate subtree — drop it (its descendants stay dead
    # because their virtual parent is dead).
    for step in range(vtree.num_steps):
        for (u, v) in vtree.edges[step]:
            if not alive[u]:
                continue
            ru, rv = real[u], real[v]
            if recv[rv] != -2 or rv == real[0]:
                pruned.append((step, ru, rv))
                continue
            alive[v] = True
            recv[rv] = step
            parent[rv] = ru
            children[ru].append((step, rv))
            edges[step].append((ru, rv))
    unreached = [r for r in range(p) if recv[r] == -2]
    if unreached:
        raise TreeError(
            f"pruned Bine tree over p={p} leaves ranks unreached: {unreached}"
        )

    def absr(r: int) -> int:
        return (r + root) % p

    a_recv = [0] * p
    a_parent = [-1] * p
    a_children: list[tuple[tuple[int, int], ...]] = [()] * p
    for r in range(p):
        a_recv[absr(r)] = recv[r]
        a_parent[absr(r)] = -1 if parent[r] < 0 else absr(parent[r])
        a_children[absr(r)] = tuple((st, absr(c)) for st, c in children[r])
    a_edges = tuple(tuple((absr(u), absr(v)) for (u, v) in es) for es in edges)
    a_pruned = tuple((st, absr(u), absr(v)) for (st, u, v) in pruned)
    return PrunedTree(
        p=p,
        root=root,
        kind="bine-dh-pruned",
        num_steps=s,
        edges=a_edges,
        pruned_edges=a_pruned,
        _recv_step=tuple(a_recv),
        _parent=tuple(a_parent),
        _children=tuple(a_children),
    )


@dataclass(frozen=True)
class FoldPlan:
    """Pre/post communication for running a power-of-two kernel over any ``p``.

    ``pre_pairs``: ``(extra_rank, proxy_rank)`` — before the kernel, each
    extra rank (``>= p_prime``) sends its contribution to its proxy.
    ``post_pairs``: the reverse transfers restoring results to extra ranks.
    """

    p: int
    p_prime: int
    pre_pairs: tuple[tuple[int, int], ...]

    @property
    def extra(self) -> int:
        return self.p - self.p_prime

    @property
    def post_pairs(self) -> tuple[tuple[int, int], ...]:
        return tuple((proxy, extra) for extra, proxy in self.pre_pairs)

    def proxy_of(self, rank: int) -> int:
        """Rank that acts for ``rank`` inside the power-of-two kernel."""
        if rank < self.p_prime:
            return rank
        return rank - self.p_prime


def fold_plan(p: int) -> FoldPlan:
    """Fold ranks ``p′ … p−1`` onto ranks ``0 … p−p′−1`` (Appendix C)."""
    if p <= 0:
        raise ValueError("p must be positive")
    p_prime = 1 << (p.bit_length() - 1)
    if p_prime == p:
        return FoldPlan(p=p, p_prime=p, pre_pairs=())
    pairs = tuple((r, r - p_prime) for r in range(p_prime, p))
    return FoldPlan(p=p, p_prime=p_prime, pre_pairs=pairs)
