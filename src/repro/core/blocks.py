"""Block partitioning and circular block ranges (paper Secs. 4.1-4.2).

Collectives that scatter/gather data split the ``n``-element vector into one
*block* per rank, MPI-style: the first ``n mod p`` blocks get one extra
element.  Bine gather/scatter then manipulate *circular* ranges of blocks
(``[a, b]`` may wrap past ``p − 1``), which this module models explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Partition", "CircularRange", "wrap_range_from_set"]


@dataclass(frozen=True)
class Partition:
    """Split of ``n`` elements into ``p`` contiguous blocks."""

    n: int
    p: int

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ValueError("p must be positive")
        if self.n < 0:
            raise ValueError("n must be non-negative")
        # frozen dataclass: precompute the divmod once — bounds()/size() are
        # called per transfer segment in the schedule builders
        q, r = divmod(self.n, self.p)
        object.__setattr__(self, "_q", q)
        object.__setattr__(self, "_r", r)

    def size(self, block: int) -> int:
        """Element count of ``block``."""
        self._check(block)
        return self._q + (1 if block < self._r else 0)

    def bounds(self, block: int) -> tuple[int, int]:
        """Half-open element range ``[lo, hi)`` of ``block``."""
        self._check(block)
        q, r = self._q, self._r
        if block < r:
            lo = block * (q + 1)
            return lo, lo + q + 1
        lo = block * q + r
        return lo, lo + q

    def segments(self, blocks) -> list[tuple[int, int]]:
        """Coalesced half-open element ranges covering ``blocks``.

        Consecutive block indices merge into a single segment, so the result
        length equals the number of maximal runs in ``blocks``.
        """
        q, r, p = self._q, self._r, self.p
        out: list[tuple[int, int]] = []
        for b in sorted(set(blocks)):
            if not 0 <= b < p:
                raise ValueError(f"block {b} out of range for p={p}")
            if b < r:
                lo = b * (q + 1)
                hi = lo + q + 1
            else:
                lo = b * q + r
                hi = lo + q
            if out and out[-1][1] == lo:
                out[-1] = (out[-1][0], hi)
            else:
                out.append((lo, hi))
        return out

    def total(self, blocks) -> int:
        """Total element count across ``blocks``."""
        return sum(self.size(b) for b in set(blocks))

    def owner_of(self, element: int) -> int:
        """Block index containing element offset ``element``."""
        if not 0 <= element < self.n:
            raise ValueError(f"element {element} out of range")
        q, r = divmod(self.n, self.p)
        # First r blocks have size q+1 and span the first r*(q+1) elements.
        head = r * (q + 1)
        if element < head:
            return element // (q + 1)
        return r + (element - head) // q

    def _check(self, block: int) -> None:
        if not 0 <= block < self.p:
            raise ValueError(f"block {block} out of range for p={self.p}")


@dataclass(frozen=True)
class CircularRange:
    """A run of ``length`` consecutive block indices mod ``p`` from ``start``.

    ``CircularRange(6, 4, 8)`` is blocks ``{6, 7, 0, 1}`` — the wrap-around
    ranges Bine gather/scatter produce (paper Fig. 7).
    """

    start: int
    length: int
    p: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.p:
            raise ValueError(f"start {self.start} out of range for p={self.p}")
        if not 0 <= self.length <= self.p:
            raise ValueError(f"length {self.length} invalid for p={self.p}")

    def indices(self) -> list[int]:
        """Block indices in circular order."""
        return [(self.start + k) % self.p for k in range(self.length)]

    def as_set(self) -> frozenset[int]:
        return frozenset(self.indices())

    def contains(self, block: int) -> bool:
        return (block - self.start) % self.p < self.length

    @property
    def end(self) -> int:
        """Last block index in the range (inclusive)."""
        if self.length == 0:
            raise ValueError("empty range has no end")
        return (self.start + self.length - 1) % self.p

    def wraps(self) -> bool:
        """True when the range crosses the p−1 → 0 boundary."""
        return self.length > 0 and self.start + self.length > self.p

    def merge(self, other: "CircularRange") -> "CircularRange":
        """Union with an *adjacent, disjoint* circular range.

        The two ranges must tile a single longer run (the gather invariant:
        a parent's range and its child's subtree range are always adjacent).
        """
        if self.p != other.p:
            raise ValueError("ranges over different p")
        if self.length == 0:
            return other
        if other.length == 0:
            return self
        if (self.start + self.length) % self.p == other.start:
            merged = CircularRange(self.start, self.length + other.length, self.p)
        elif (other.start + other.length) % self.p == self.start:
            merged = CircularRange(other.start, other.length + self.length, self.p)
        else:
            raise ValueError(f"ranges {self} and {other} are not adjacent")
        if self.length + other.length > self.p:
            raise ValueError("merged range exceeds p blocks")
        return merged

    def segments(self, partition: Partition) -> list[tuple[int, int]]:
        """Element segments (≤ 2) of the range under ``partition``.

        A wrapped range linearises to two segments — the "two transmissions"
        of Sec. 4.3.1.
        """
        if partition.p != self.p:
            raise ValueError("partition p mismatch")
        return partition.segments(self.indices())


def wrap_range_from_set(blocks, p: int) -> CircularRange:
    """Recover a :class:`CircularRange` from a set known to be circular-contiguous."""
    blocks = set(blocks)
    if not blocks:
        return CircularRange(0, 0, p)
    if len(blocks) == p:
        return CircularRange(0, p, p)
    starts = [b for b in blocks if (b - 1) % p not in blocks]
    if len(starts) != 1:
        raise ValueError(f"set is not circular-contiguous mod {p}: {sorted(blocks)}")
    return CircularRange(starts[0], len(blocks), p)
