"""Generic broadcast-tree abstraction shared by Bine and binomial trees.

A :class:`Tree` describes *when* each rank joins a broadcast rooted at
``root`` and *which* edges are used at each step.  All collective schedules
that are tree-shaped (bcast, reduce, gather, scatter) are generated from this
one structure, so correctness properties (spanning, each rank reached exactly
once, parents hold data before sending) are validated in a single place.

Trees are built from two per-rank rules expressed on *relative* ranks (i.e.
rotated so the root is 0):

* ``recv_step(r)`` — the step at which relative rank ``r`` receives
  (``-1`` for the root);
* ``partner(r, step)`` — whom ``r`` sends to at ``step`` (queried only for
  steps after ``r`` holds the data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["Tree", "TreeError", "build_tree", "log2_exact"]


class TreeError(ValueError):
    """Raised when a tree rule does not produce a valid spanning tree."""


def log2_exact(p: int) -> int:
    """log2 of a power of two, raising :class:`ValueError` otherwise."""
    if p <= 0 or p & (p - 1):
        raise ValueError(f"p={p} is not a positive power of two")
    return p.bit_length() - 1


@dataclass(frozen=True)
class Tree:
    """An explicit step-annotated broadcast tree over ``p`` ranks.

    All rank identifiers in the public API are *absolute*.  ``edges[i]`` lists
    ``(parent, child)`` pairs active at step ``i``; a rank appears as a child
    exactly once across all steps (except the root, never a child).
    """

    p: int
    root: int
    kind: str
    num_steps: int
    edges: tuple[tuple[tuple[int, int], ...], ...]
    _recv_step: tuple[int, ...] = field(repr=False)
    _parent: tuple[int, ...] = field(repr=False)
    _children: tuple[tuple[tuple[int, int], ...], ...] = field(repr=False)

    # -- queries ------------------------------------------------------------

    def recv_step(self, rank: int) -> int:
        """Step at which ``rank`` receives the data (``-1`` for the root)."""
        self._check_rank(rank)
        return self._recv_step[rank]

    def parent(self, rank: int) -> int | None:
        """Parent of ``rank`` in the tree, ``None`` for the root."""
        self._check_rank(rank)
        par = self._parent[rank]
        return None if par < 0 else par

    def children(self, rank: int) -> tuple[tuple[int, int], ...]:
        """``(step, child)`` pairs for all children of ``rank``, step order."""
        self._check_rank(rank)
        return self._children[rank]

    def subtree(self, rank: int) -> list[int]:
        """All ranks in the subtree rooted at ``rank`` (including it).

        Ordering is deterministic: depth-first, children in step order.
        """
        self._check_rank(rank)
        out: list[int] = []
        stack = [rank]
        while stack:
            node = stack.pop()
            out.append(node)
            # Push in reverse step order so DFS visits earliest-step child first.
            for _, child in reversed(self._children[node]):
                stack.append(child)
        return out

    def subtree_at_step(self, rank: int, step: int) -> list[int]:
        """Subtree of ``rank`` *considering only edges at steps > step − 1*…

        More precisely: the set of ranks whose data flows through ``rank``
        if the broadcast is cut before ``step`` — i.e. ``rank`` plus the
        subtrees of children attached at steps ``>= step``.
        """
        self._check_rank(rank)
        out: list[int] = [rank]
        for st, child in self._children[rank]:
            if st >= step:
                out.extend(self.subtree(child))
        return out

    def leaves(self) -> list[int]:
        """Ranks with no children."""
        return [r for r in range(self.p) if not self._children[r]]

    def depth(self, rank: int) -> int:
        """Number of edges between ``rank`` and the root."""
        d = 0
        node = rank
        while (par := self.parent(node)) is not None:
            node = par
            d += 1
        return d

    def all_edges(self) -> list[tuple[int, int, int]]:
        """Flat ``(step, parent, child)`` list over the whole broadcast."""
        return [(i, u, v) for i, es in enumerate(self.edges) for (u, v) in es]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} out of range for p={self.p}")


def build_tree(
    p: int,
    root: int,
    *,
    kind: str,
    recv_step: Callable[[int], int],
    partner: Callable[[int, int], int],
    num_steps: int | None = None,
    active_at: Callable[[int, int], bool] | None = None,
) -> Tree:
    """Materialise a :class:`Tree` from relative-rank rules.

    The broadcast is simulated step by step: every rank already holding the
    data forwards to ``partner(r, step)``; the receiver must report exactly
    this step from ``recv_step``, and must not have been reached before
    (strict spanning-tree check — non-power-of-two relaxations live in
    :mod:`repro.core.nonpow2`).

    ``active_at(r, step)`` optionally restricts which holders send at a given
    step (binomial distance-doubling trees need it: only ranks below the
    doubling frontier send).
    """
    if not 0 <= root < p:
        raise ValueError(f"root {root} out of range for p={p}")
    steps = log2_exact(p) if num_steps is None else num_steps

    recv = [-2] * p  # relative-rank indexed; -2 = unreached
    parent = [-1] * p
    children: list[list[tuple[int, int]]] = [[] for _ in range(p)]
    edges: list[list[tuple[int, int]]] = [[] for _ in range(steps)]

    recv[0] = -1
    holders = [0]
    for step in range(steps):
        new_holders = []
        for r in holders:
            if active_at is not None and not active_at(r, step):
                continue
            q = partner(r, step)
            if not 0 <= q < p:
                raise TreeError(f"{kind}: partner({r},{step}) = {q} out of range")
            if recv[q] != -2:
                raise TreeError(
                    f"{kind}: rank {q} reached twice (step {step}, from {r})"
                )
            expected = recv_step(q)
            if expected != step:
                raise TreeError(
                    f"{kind}: rank {q} reached at step {step}, "
                    f"recv_step predicts {expected}"
                )
            recv[q] = step
            parent[q] = r
            children[r].append((step, q))
            edges[step].append((r, q))
            new_holders.append(q)
        holders.extend(new_holders)
    unreached = [r for r in range(p) if recv[r] == -2]
    if unreached:
        raise TreeError(f"{kind}: ranks never reached: {unreached[:8]}…")

    # Rotate relative ranks onto absolute ones.
    def absr(r: int) -> int:
        return (r + root) % p

    abs_recv = [0] * p
    abs_parent = [-1] * p
    abs_children: list[tuple[tuple[int, int], ...]] = [()] * p
    for r in range(p):
        abs_recv[absr(r)] = recv[r]
        abs_parent[absr(r)] = -1 if parent[r] < 0 else absr(parent[r])
        abs_children[absr(r)] = tuple((st, absr(c)) for st, c in children[r])
    abs_edges = tuple(
        tuple((absr(u), absr(v)) for (u, v) in es) for es in edges
    )
    return Tree(
        p=p,
        root=root,
        kind=kind,
        num_steps=steps,
        edges=abs_edges,
        _recv_step=tuple(abs_recv),
        _parent=tuple(abs_parent),
        _children=tuple(abs_children),
    )
