"""Block permutations for contiguous transmission (Sec. 4.3.1, App. D.2).

The distance-doubling Bine butterfly sends *non-contiguous* block sets.  The
"permute" strategy fixes this by relocating block ``i`` to position
``reverse(ν(i))``: descendants share least-significant ν bits, so after bit
reversal they share most-significant position bits — i.e. they are contiguous.

Torus-optimised trees (App. D.2) instead use a DFS-postorder renumbering of
the tree, which serves the same purpose for arbitrary tree shapes.
"""

from __future__ import annotations

from repro.core.bine_tree import nu_labels
from repro.core.negabinary import bit_reverse
from repro.core.tree import Tree, log2_exact

__all__ = [
    "bine_block_permutation",
    "invert_permutation",
    "compose_permutations",
    "apply_permutation",
    "identity_permutation",
    "dfs_postorder_permutation",
    "rotation_permutation",
    "mirror_permutation",
]


def bine_block_permutation(p: int) -> list[int]:
    """``perm[i] = reverse(ν(i))`` — destination position of block ``i``.

    Paper Fig. 8: with this relocation, every send of the Bine
    reduce-scatter/allgather touches one contiguous region.
    """
    s = log2_exact(p)
    perm = [bit_reverse(nu, s) for nu in nu_labels(p)]
    _check_bijection(perm)
    return perm


def identity_permutation(p: int) -> list[int]:
    return list(range(p))


def rotation_permutation(p: int, shift: int) -> list[int]:
    """``perm[i] = (i + shift) mod p``."""
    return [(i + shift) % p for i in range(p)]


def mirror_permutation(p: int, pivot: int = 0) -> list[int]:
    """``perm[i] = (pivot − i) mod p`` — the odd-rank mirroring of Sec. 3.1."""
    return [(pivot - i) % p for i in range(p)]


def invert_permutation(perm: list[int]) -> list[int]:
    """Inverse permutation: ``inv[perm[i]] = i``."""
    _check_bijection(perm)
    inv = [0] * len(perm)
    for i, dst in enumerate(perm):
        inv[dst] = i
    return inv


def compose_permutations(first: list[int], then: list[int]) -> list[int]:
    """Permutation equal to applying ``first`` and then ``then``."""
    if len(first) != len(then):
        raise ValueError("permutation length mismatch")
    return [then[first[i]] for i in range(len(first))]


def apply_permutation(perm: list[int], items: list) -> list:
    """Place ``items[i]`` at position ``perm[i]`` in the output."""
    if len(perm) != len(items):
        raise ValueError("length mismatch")
    out = [None] * len(items)
    for i, dst in enumerate(perm):
        out[dst] = items[i]
    return out


def dfs_postorder_permutation(tree: Tree) -> list[int]:
    """Renumber ranks by DFS postorder of ``tree`` (App. D.2).

    ``perm[rank] = position``: a node is numbered after all its children, so
    every subtree occupies a contiguous positional range — the torus analogue
    of the ν bit-reversal trick.
    """
    perm = [-1] * tree.p
    counter = 0

    def visit(node: int) -> None:
        nonlocal counter
        for _, child in tree.children(node):
            visit(child)
        perm[node] = counter
        counter += 1

    visit(tree.root)
    _check_bijection(perm)
    return perm


def _check_bijection(perm: list[int]) -> None:
    if sorted(perm) != list(range(len(perm))):
        raise ValueError("not a bijection onto 0..p-1")
