"""Torus-optimised collectives for the Fugaku evaluation (Sec. 5.4, App. D).

Implemented algorithms:

* **torus-bine** — Bine trees/butterflies built per dimension
  (:mod:`repro.core.torus_opt`); broadcast/reduce use the torus tree,
  reduce-scatter/allgather/allreduce the interleaved butterfly;
* **torus-bine-multiport** — ``2·D`` rotated/mirrored sub-collectives on
  vector slices driving every NIC (App. D.4);
* **bucket** — the multi-dimensional ring of Jain & Sabharwal [32]:
  per-dimension ring reduce-scatter phases then the mirror allgather
  phases; bandwidth-optimal, linear step count;
* **trinaryx** — a Trinaryx-like pipelined multi-chain broadcast/reduce
  (Fujitsu MPI's torus-optimised algorithm [3, 25, 31]): three snake
  chains over rotated dimension orders, each carrying a third of the
  vector, pipelined (modelled with the ``pipelined`` cost flag);
* plain **binomial** trees (topology-agnostic, the paper's 40×-slower
  baseline) come straight from the generic registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.collectives.butterfly_collectives import (
    allgather_butterfly,
    allreduce_recursive,
    allreduce_reduce_scatter_allgather,
    reduce_scatter_butterfly,
)
from repro.collectives.common import Strategy, VEC
from repro.collectives.composed import remap_schedule
from repro.collectives.ring import ring_allgather, ring_reduce_scatter
from repro.collectives.tree_collectives import bcast_from_tree, reduce_from_tree
from repro.core.multiport import multiport_plans
from repro.core.torus_opt import (
    TorusShape,
    dimension_schedule,
    torus_bine_butterfly,
    torus_bine_tree,
)
from repro.core.tree import build_tree, log2_exact
from repro.runtime.schedule import Schedule, Step, Transfer

__all__ = [
    "torus_bine_bcast",
    "torus_bine_reduce",
    "torus_bine_allreduce",
    "torus_bine_allreduce_small",
    "torus_bine_reduce_scatter",
    "torus_bine_allgather",
    "torus_bine_allreduce_multiport",
    "bucket_allreduce",
    "bucket_reduce_scatter",
    "bucket_allgather",
    "trinaryx_bcast",
    "trinaryx_reduce",
    "TorusAlgorithmSpec",
    "TORUS_ALGORITHMS",
    "torus_specs",
]


# ---------------------------------------------------------------------------
# Torus Bine
# ---------------------------------------------------------------------------

def torus_bine_bcast(shape: TorusShape, n: int, root: int = 0) -> Schedule:
    """Broadcast along the torus-optimised Bine tree (Fig. 16 right)."""
    return bcast_from_tree(torus_bine_tree(shape, root), n)


def torus_bine_reduce(shape: TorusShape, n: int, root: int = 0, op: str = "sum") -> Schedule:
    """Reduce along the reversed torus Bine tree."""
    return reduce_from_tree(torus_bine_tree(shape, root), n, op)


def torus_bine_reduce_scatter(shape: TorusShape, n: int, op: str = "sum") -> Schedule:
    """Reduce-scatter on the per-dimension Bine butterfly (natural layout)."""
    return reduce_scatter_butterfly(
        torus_bine_butterfly(shape), n, op, Strategy.NATURAL
    )


def torus_bine_allgather(shape: TorusShape, n: int) -> Schedule:
    """Allgather reversing the torus Bine reduce-scatter."""
    return allgather_butterfly(torus_bine_butterfly(shape), n, Strategy.NATURAL)


def torus_bine_allreduce(shape: TorusShape, n: int, op: str = "sum") -> Schedule:
    """Allreduce: small-vector recursive exchange on the torus butterfly for
    tiny vectors is equivalent in structure; this is the RS+AG large form."""
    sched = allreduce_reduce_scatter_allgather(
        torus_bine_butterfly(shape), n, op, Strategy.NATURAL
    )
    sched.meta["algorithm"] = "torus-bine"
    return sched


def torus_bine_allreduce_small(shape: TorusShape, n: int, op: str = "sum") -> Schedule:
    """Small-vector torus allreduce: full-vector exchange per step."""
    sched = allreduce_recursive(torus_bine_butterfly(shape), n, op)
    sched.meta["algorithm"] = "torus-bine-small"
    return sched


def torus_bine_allreduce_multiport(
    shape: TorusShape, n: int, op: str = "sum"
) -> Schedule:
    """App. D.4: ``2·D`` parallel Bine allreduces on vector slices.

    Each sub-collective runs the per-dimension butterfly with its plan's
    rotated dimension order (mirrored for the second half), on its own
    ``n / 2D`` slice, so all NICs inject concurrently
    (``meta["ports_used"] = 2·D``).
    """
    plans = multiport_plans(shape)
    nports = len(plans)
    if n % nports:
        raise ValueError(f"multiport allreduce requires {nports} | n")
    slice_n = n // nports
    p = shape.num_ranks
    merged = Schedule(
        p,
        meta={
            "collective": "allreduce",
            "algorithm": "torus-bine-multiport",
            "p": p,
            "n": n,
            "op": op,
            "ports_used": nports,
        },
    )
    subs = []
    for plan in plans:
        bf = _butterfly_for_plan(shape, plan)
        sub = allreduce_reduce_scatter_allgather(bf, slice_n, op, Strategy.NATURAL)
        subs.append(
            remap_schedule(sub, rank_map=list(range(p)), elem_offset=plan.port * slice_n)
        )
    depth = max(s.num_steps for s in subs)
    for i in range(depth):
        transfers = []
        pre = []
        post = []
        for s in subs:
            if i < s.num_steps:
                transfers.extend(s.steps[i].transfers)
                pre.extend(s.steps[i].pre)
                post.extend(s.steps[i].post)
        merged.add(Step(transfers=tuple(transfers), pre=tuple(pre), post=tuple(post),
                        label=f"multiport step {i}"))
    return merged.finalize()


def _butterfly_for_plan(shape: TorusShape, plan):
    """Torus Bine butterfly following a port plan's dimension order/mirror."""
    from repro.core.butterfly import Butterfly, bine_sigma

    p = shape.num_ranks

    def partner_1d(coord: int, i: int, d: int) -> int:
        sigma = bine_sigma(i + 1)
        if plan.mirror:
            sigma = -sigma
        return (coord + sigma) % d if coord % 2 == 0 else (coord - sigma) % d

    partners = []
    for dim, i in plan.order:
        row = []
        for r in range(p):
            coords = list(shape.coords(r))
            coords[dim] = partner_1d(coords[dim], i, shape.dims[dim])
            row.append(shape.rank(tuple(coords)))
        partners.append(tuple(row))
    bf = Butterfly(p, f"bine-torus-port{plan.port}", tuple(partners))
    bf.validate()
    return bf


# ---------------------------------------------------------------------------
# Bucket (multi-dimensional ring) [32]
# ---------------------------------------------------------------------------

def _lines(shape: TorusShape, dim: int) -> list[list[int]]:
    """All torus lines along ``dim`` (ranks varying only that coordinate)."""
    lines = []
    buckets: dict[tuple, list[int]] = {}
    for r in range(shape.num_ranks):
        coords = shape.coords(r)
        key = tuple(c for k, c in enumerate(coords) if k != dim)
        buckets.setdefault(key, []).append(r)
    for key in sorted(buckets):
        line = sorted(buckets[key], key=lambda r: shape.coords(r)[dim])
        lines.append(line)
    return lines


def _nested_bounds(shape: TorusShape, rank: int, n: int, upto_dim: int) -> tuple[int, int]:
    """Element range owned by ``rank`` after RS phases over dims < upto_dim."""
    lo, hi = 0, n
    coords = shape.coords(rank)
    for dim in range(upto_dim):
        d = shape.dims[dim]
        size = (hi - lo) // d
        lo = lo + coords[dim] * size
        hi = lo + size
    return lo, hi


def bucket_reduce_scatter(shape: TorusShape, n: int, op: str = "sum") -> Schedule:
    """Per-dimension ring reduce-scatter phases (bucket algorithm [32])."""
    p = shape.num_ranks
    if n % p:
        raise ValueError("bucket requires p | n")
    sched = Schedule(
        p, meta={"collective": "reduce_scatter", "algorithm": "bucket",
                 "p": p, "n": n, "op": op, "segmented": True},
    )
    for dim in range(shape.num_dims):
        d = shape.dims[dim]
        if d == 1:
            continue
        subs = []
        for line in _lines(shape, dim):
            lo, hi = _nested_bounds(shape, line[0], n, dim)
            subs.append(
                remap_schedule(ring_reduce_scatter(d, hi - lo, op), line, lo)
            )
        _merge_into(sched, subs)
    return sched.finalize()


def bucket_allgather(shape: TorusShape, n: int) -> Schedule:
    """Per-dimension ring allgather phases (reverse dimension order)."""
    p = shape.num_ranks
    if n % p:
        raise ValueError("bucket requires p | n")
    sched = Schedule(
        p, meta={"collective": "allgather", "algorithm": "bucket",
                 "p": p, "n": n, "segmented": True},
    )
    for dim in reversed(range(shape.num_dims)):
        d = shape.dims[dim]
        if d == 1:
            continue
        subs = []
        for line in _lines(shape, dim):
            lo, hi = _nested_bounds(shape, line[0], n, dim)
            subs.append(remap_schedule(ring_allgather(d, hi - lo), line, lo))
        _merge_into(sched, subs)
    return sched.finalize()


def bucket_allreduce(shape: TorusShape, n: int, op: str = "sum") -> Schedule:
    """Bucket allreduce: RS phases forward, AG phases backward."""
    rs = bucket_reduce_scatter(shape, n, op)
    ag = bucket_allgather(shape, n)
    sched = Schedule(
        shape.num_ranks,
        meta={"collective": "allreduce", "algorithm": "bucket",
              "p": shape.num_ranks, "n": n, "op": op, "segmented": True,
              "ports_used": 2},
    )
    sched.steps = list(rs.steps) + list(ag.steps)
    return sched.finalize()


def _merge_into(sched: Schedule, subs: list[Schedule]) -> None:
    """Append parallel per-line schedules step-aligned into ``sched``."""
    depth = max(s.num_steps for s in subs)
    for i in range(depth):
        transfers = []
        for s in subs:
            if i < s.num_steps:
                transfers.extend(s.steps[i].transfers)
        sched.add(Step(transfers=tuple(transfers)))


# ---------------------------------------------------------------------------
# Trinaryx-like pipelined chains (Fujitsu MPI bcast/reduce baseline)
# ---------------------------------------------------------------------------

def _snake_order(shape: TorusShape, rotation: int) -> list[int]:
    """A Hamiltonian snake over the torus with rotated dimension priority."""
    ndims = shape.num_dims
    dims = [(k + rotation) % ndims for k in range(ndims)]
    order: list[int] = []

    def rec(coords: list[int | None], depth: int, forward: bool):
        dim = dims[depth]
        extent = shape.dims[dim]
        rng = range(extent) if forward else range(extent - 1, -1, -1)
        for i, c in enumerate(rng):
            coords[dim] = c
            if depth == ndims - 1:
                order.append(shape.rank(tuple(coords)))
            else:
                rec(coords, depth + 1, forward=(i % 2 == 0) == forward)
        coords[dim] = None

    rec([None] * ndims, 0, True)
    return order


def trinaryx_bcast(shape: TorusShape, n: int, root: int = 0) -> Schedule:
    """Trinaryx-like broadcast: 3 pipelined snake chains on vector thirds.

    Each chain forwards its slice hop by hop in a different dimension-rotated
    snake order, keeping every hop on a single torus link; the ``pipelined``
    meta flag makes the cost model overlap the chain (segment pipelining),
    and ``ports_used=3`` reflects the three concurrent injection directions.
    """
    p = shape.num_ranks
    chains = min(3, shape.num_dims * 2, p - 1) or 1
    if n % chains:
        chains = 1
    slice_n = n // chains
    sched = Schedule(
        p, meta={"collective": "bcast", "algorithm": "trinaryx", "p": p,
                 "n": n, "root": root, "pipelined": True, "ports_used": chains},
    )
    orders = []
    for c in range(chains):
        snake = _snake_order(shape, c % shape.num_dims)
        pos = snake.index(root)
        orders.append(snake[pos:] + snake[:pos])
    depth = p - 1
    for i in range(depth):
        transfers = []
        for c, snake in enumerate(orders):
            lo, hi = c * slice_n, (c + 1) * slice_n
            transfers.append(
                Transfer(
                    src=snake[i], dst=snake[i + 1], src_buf=VEC, dst_buf=VEC,
                    src_segments=((lo, hi),), dst_segments=((lo, hi),),
                    tag=f"trinaryx[{c}]",
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=f"chain hop {i}"))
    return sched.finalize()


def trinaryx_reduce(shape: TorusShape, n: int, root: int = 0, op: str = "sum") -> Schedule:
    """Trinaryx-like reduce: the chains run backwards with reduction."""
    bcast = trinaryx_bcast(shape, n, root)
    sched = Schedule(
        bcast.p, meta={**bcast.meta, "collective": "reduce", "op": op},
    )
    for step in reversed(bcast.steps):
        transfers = tuple(
            Transfer(
                src=t.dst, dst=t.src, src_buf=VEC, dst_buf=VEC,
                src_segments=t.src_segments, dst_segments=t.dst_segments,
                op=op, tag=t.tag,
            )
            for t in step.transfers
        )
        sched.add(Step(transfers=transfers, label=step.label))
    return sched.finalize()


# ---------------------------------------------------------------------------
# Torus algorithm catalog (Fig. 11b / App. D campaigns)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TorusAlgorithmSpec:
    """Catalog entry for the torus sweep path.

    Torus builders take a :class:`TorusShape` instead of a bare rank
    count, so they cannot live in the generic registry; this parallel
    catalog gives campaign manifests (``torus_dims`` grids) and the
    Fugaku benches one shared source of truth.  ``build(shape)`` returns
    the schedule at the algorithm's canonical profiling size — the exact
    sizes ``bench_fig11b_fugaku.py`` has always used, so records stay
    identical by construction.
    """

    collective: str
    name: str
    family: str
    build: Callable[[TorusShape], Schedule]
    description: str = ""


def _generic(collective: str, name: str) -> Callable[[TorusShape], Schedule]:
    def build(shape: TorusShape) -> Schedule:
        from repro.collectives.registry import build as build_registry

        p = shape.num_ranks
        return build_registry(collective, name, p, p)

    return build


#: ``(collective, name) -> spec``; names are what campaign manifests and
#: the Fig. 11b records use
TORUS_ALGORITHMS: dict[tuple[str, str], TorusAlgorithmSpec] = {
    (s.collective, s.name): s
    for s in (
        TorusAlgorithmSpec(
            "allreduce", "bine-multiport", "bine",
            lambda sh: torus_bine_allreduce_multiport(
                sh, 2 * sh.num_dims * sh.num_ranks
            ),
            "2*D rotated sub-collectives driving every NIC (App. D.4)",
        ),
        TorusAlgorithmSpec(
            "allreduce", "bine-torus", "bine",
            lambda sh: torus_bine_allreduce(sh, sh.num_ranks),
            "per-dimension Bine butterfly allreduce",
        ),
        TorusAlgorithmSpec(
            "allreduce", "bine-torus-small", "bine",
            lambda sh: torus_bine_allreduce_small(sh, sh.num_ranks),
            "latency-optimal torus Bine allreduce (small vectors)",
        ),
        TorusAlgorithmSpec(
            "allreduce", "bucket", "bucket",
            lambda sh: bucket_allreduce(sh, sh.num_ranks),
            "multi-dimensional ring (Jain & Sabharwal), bandwidth-optimal",
        ),
        TorusAlgorithmSpec(
            "allreduce", "binomial", "binomial",
            _generic("allreduce", "recursive-doubling"),
            "topology-agnostic recursive doubling baseline",
        ),
        TorusAlgorithmSpec(
            "allreduce", "rabenseifner", "sota",
            _generic("allreduce", "rabenseifner"),
            "topology-agnostic Rabenseifner baseline",
        ),
        TorusAlgorithmSpec(
            "bcast", "bine-torus", "bine",
            lambda sh: torus_bine_bcast(sh, sh.num_ranks),
            "torus-optimised Bine tree broadcast (Fig. 16)",
        ),
        TorusAlgorithmSpec(
            "bcast", "trinaryx", "trinaryx",
            lambda sh: trinaryx_bcast(sh, sh.num_ranks),
            "Trinaryx-like pipelined multi-chain broadcast (Fujitsu MPI)",
        ),
        TorusAlgorithmSpec(
            "bcast", "binomial", "binomial",
            _generic("bcast", "binomial-dd"),
            "topology-agnostic binomial tree baseline",
        ),
        TorusAlgorithmSpec(
            "reduce", "bine-torus", "bine",
            lambda sh: torus_bine_reduce(sh, sh.num_ranks),
            "reversed torus Bine tree reduce",
        ),
        TorusAlgorithmSpec(
            "reduce", "trinaryx", "trinaryx",
            lambda sh: trinaryx_reduce(sh, sh.num_ranks),
            "Trinaryx-like pipelined multi-chain reduce",
        ),
        TorusAlgorithmSpec(
            "reduce", "binomial", "binomial",
            _generic("reduce", "binomial-dd"),
            "topology-agnostic binomial tree baseline",
        ),
    )
}


def torus_specs(
    collectives=None, algorithms=None
) -> "list[TorusAlgorithmSpec]":
    """Catalog entries in deterministic (collective, name) sort order."""
    return [
        spec
        for key, spec in sorted(TORUS_ALGORITHMS.items())
        if (collectives is None or spec.collective in collectives)
        and (algorithms is None or spec.name in algorithms)
    ]
