"""Bruck-family allgathers: Bruck and the Sparbit baseline (Sec. 5, [37]).

Bruck's allgather doubles the held circular block range each round by
pulling from ``(r + h) mod p`` — ``⌈log2 p⌉`` rounds for any ``p``.  Since
block ranges are circular, a send linearises to at most two wire segments.

Sparbit [Loch & Koslovski] is a data-locality-aware logarithmic allgather
whose defining cost trait, for our model, is that blocks keep their natural
(non-rotated) placement, so late rounds ship *scattered* block sets: we
reproduce that by running the Bruck round structure with per-block wire
segments.  (The paper uses Sparbit purely as a non-contiguous log-time
baseline, which this captures; exact send ordering internals differ.)
"""

from __future__ import annotations

from repro.core.blocks import CircularRange, Partition
from repro.collectives.common import VEC
from repro.runtime.schedule import Schedule, Step, Transfer

__all__ = ["allgather_bruck", "allgather_sparbit"]


def _rounds(p: int):
    """Bruck round plan: yields (held_count, pulled_count) until all held."""
    h = 1
    while h < p:
        c = min(h, p - h)
        yield h, c
        h += c


def _build(p: int, n: int, name: str, per_block: bool) -> Schedule:
    part = Partition(n, p)
    sched = Schedule(
        p, meta={"collective": "allgather", "algorithm": name, "p": p, "n": n}
    )
    for k, (h, c) in enumerate(_rounds(p)):
        transfers = []
        for r in range(p):
            src = (r + h) % p
            # r pulls src's first c blocks [src, src+c) into the same slots.
            blocks = CircularRange(src, c, p).indices()
            if per_block:
                segs = tuple(part.bounds(b) for b in blocks)
            else:
                segs = tuple(part.segments(blocks))
            transfers.append(
                Transfer(
                    src=src, dst=r, src_buf=VEC, dst_buf=VEC,
                    src_segments=segs, dst_segments=segs,
                    tag=f"{name}[{k}]",
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=f"{name} round {k}"))
    return sched.finalize()


def allgather_bruck(p: int, n: int) -> Schedule:
    """Bruck allgather (any ``p``): ⌈log2 p⌉ rounds, ≤ 2 segments per send."""
    if p < 1:
        raise ValueError("p must be positive")
    return _build(p, n, "bruck", per_block=False)


def allgather_sparbit(p: int, n: int) -> Schedule:
    """Sparbit-like allgather: Bruck rounds with per-block (scattered) sends."""
    if p < 1:
        raise ValueError("p must be positive")
    return _build(p, n, "sparbit", per_block=True)
