"""Ground-truth verification of collective schedules against NumPy.

Every schedule carries ``meta["collective"]``; this module knows, for each of
the paper's eight collectives, how to initialise per-rank buffers with
deterministic rank-dependent data and what the post-condition is.  The
executor runs the schedule and :func:`check` compares outcomes elementwise —
the exact observable an MPI correctness test would assert.

Two execution engines share the oracle:

* :func:`run_and_check` — the reference interpreter
  (:func:`repro.runtime.executor.execute`), one seed at a time;
* :func:`run_and_check_compiled` — the columnar fast path
  (:mod:`repro.runtime.compiled`): compile the schedule once, execute *all*
  seeds in one batched pass, check each layer.  Plans are memoized per
  ``(collective, algorithm, p, n, root, op)`` cell
  (:func:`compiled_plan_for`) so grid-scale verification amortizes
  compilation across seeds and repeat runs.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.blocks import Partition
from repro.runtime.buffers import RankBuffers
from repro.runtime.compiled import (
    BufferLayout,
    CompiledPlan,
    buffers_used,
    compile_plan,
    matrix_to_buffers,
)
from repro.runtime.executor import execute
from repro.runtime.reduce_ops import named_op
from repro.runtime.schedule import Schedule

__all__ = [
    "init_buffers",
    "init_matrix",
    "expected_state",
    "check",
    "check_matrix",
    "run_and_check",
    "run_and_check_compiled",
    "compiled_plan_for",
    "clear_plan_cache",
]

_DTYPE = np.int64


def _pattern(rank: int, n: int, seed: int) -> np.ndarray:
    """Deterministic per-rank input vector (distinct across ranks/elements)."""
    rng = np.random.default_rng(seed * 100003 + rank)
    return rng.integers(-1000, 1000, size=n, dtype=_DTYPE)


#: stacked per-rank patterns, memoized per (p, n, seed) — one grid cell's
#: init *and* expected-state share a single generation pass, and cells of a
#: bulk verification sharing (p, n, seed) share it too.  Entries are
#: read-only by convention; bounded FIFO keeps 1024-rank tables from
#: accumulating.
_PATTERN_CACHE: dict[tuple[int, int, int], np.ndarray] = {}
_PATTERN_CACHE_MAX = 16


def _patterns(p: int, n: int, seed: int) -> np.ndarray:
    """``(p, n)`` matrix whose row ``r`` is ``_pattern(r, n, seed)``."""
    key = (p, n, seed)
    pats = _PATTERN_CACHE.get(key)
    if pats is None:
        obs.inc("cache.pattern.miss")
        pats = np.vstack([_pattern(r, n, seed) for r in range(p)])
        # freeze the entry: expected_state hands out views of it, and a
        # caller mutating one must get a loud error, not a corrupted cache
        pats.setflags(write=False)
        while len(_PATTERN_CACHE) >= _PATTERN_CACHE_MAX:
            _PATTERN_CACHE.pop(next(iter(_PATTERN_CACHE)))
        _PATTERN_CACHE[key] = pats
    else:
        obs.inc("cache.pattern.hit")
    return pats


def _buffers_used(schedule: Schedule) -> set[str]:
    return buffers_used(schedule) or {"vec"}


def _reduce_all(op, patterns: np.ndarray) -> np.ndarray:
    """Fold all rank rows with ``op`` — identical to the sequential loop.

    Built-in ops are NumPy ufuncs over int64, so ``ufunc.reduce`` along the
    rank axis is associative-exact; non-ufunc ops fall back to the loop.
    """
    if isinstance(op.fn, np.ufunc):
        return op.fn.reduce(patterns, axis=0)
    acc = patterns[0].copy()
    for r in range(1, patterns.shape[0]):
        acc = op(acc, patterns[r])
    return acc


def _block_diagonal(patterns: np.ndarray, part: Partition) -> np.ndarray:
    """``full`` vector with block ``b`` taken from rank ``b``'s pattern."""
    p, n = patterns.shape
    if n % p == 0:
        b = n // p
        ranks = np.arange(p)
        return patterns.reshape(p, p, b)[ranks, ranks].reshape(n)
    full = np.zeros(n, dtype=patterns.dtype)
    for r in range(p):
        lo, hi = part.bounds(r)
        full[lo:hi] = patterns[r, lo:hi]
    return full


def init_buffers(schedule: Schedule, seed: int = 0) -> RankBuffers:
    """Allocate and fill buffers according to the collective's precondition."""
    p, n = schedule.p, schedule.meta["n"]
    layout = BufferLayout({name: n for name in _buffers_used(schedule)})
    matrix = init_matrix(schedule, layout, seed)
    bufs = RankBuffers(p)
    for name in layout.names:
        bufs.allocate(name, n, dtype=_DTYPE, fill=0)
    return matrix_to_buffers(matrix, layout, bufs)


def expected_state(schedule: Schedule, seed: int = 0):
    """Post-condition: list of ``(rank, buffer, element_range, expected)``.

    Expected arrays may be read-only views into the shared pattern cache
    (writing to one raises); copy before mutating.
    """
    coll = schedule.meta["collective"]
    p, n = schedule.p, schedule.meta["n"]
    root = schedule.meta.get("root", 0)
    op = named_op(schedule.meta.get("op", "sum"))
    part = Partition(n, p)
    inputs = _patterns(p, n, seed)
    out = []

    if coll == "bcast":
        for r in range(p):
            out.append((r, "vec", (0, n), inputs[root]))
    elif coll == "reduce":
        out.append((root, "vec", (0, n), _reduce_all(op, inputs)))
    elif coll == "allreduce":
        acc = _reduce_all(op, inputs)
        for r in range(p):
            out.append((r, "vec", (0, n), acc))
    elif coll == "reduce_scatter":
        acc = _reduce_all(op, inputs)
        for r in range(p):
            lo, hi = part.bounds(r)
            out.append((r, "vec", (lo, hi), acc[lo:hi]))
    elif coll == "gather":
        out.append((root, "vec", (0, n), _block_diagonal(inputs, part)))
    elif coll == "allgather":
        full = _block_diagonal(inputs, part)
        for r in range(p):
            out.append((r, "vec", (0, n), full))
    elif coll == "scatter":
        for r in range(p):
            lo, hi = part.bounds(r)
            out.append((r, "vec", (lo, hi), inputs[root][lo:hi]))
    elif coll == "alltoall":
        # data rank o addressed to r sits in o's send block r; with uniform
        # blocks, rank r's recv is column-block r of the pattern matrix
        if n % p == 0:
            for r in range(p):
                rlo, rhi = part.bounds(r)
                out.append((r, "recv", (0, n), inputs[:, rlo:rhi].reshape(n)))
        else:
            for r in range(p):
                recv = np.zeros(n, dtype=_DTYPE)
                rlo, rhi = part.bounds(r)
                for o in range(p):
                    lo, hi = part.bounds(o)
                    recv[lo:hi] = inputs[o, rlo:rhi]
                out.append((r, "recv", (0, n), recv))
    else:
        raise ValueError(f"unknown collective {coll!r}")
    return out


def _assert_cell(schedule, rank, name, lo, hi, got, want) -> None:
    if not np.array_equal(got, want):
        bad = np.nonzero(got != want)[0][:5]
        raise AssertionError(
            f"{schedule.meta}: rank {rank} buffer {name!r}[{lo}:{hi}] wrong "
            f"at offsets {bad.tolist()}: got {got[bad].tolist()}, "
            f"want {want[bad].tolist()}"
        )


def check(schedule: Schedule, buffers: RankBuffers, seed: int = 0) -> None:
    """Assert the executor left ``buffers`` in the expected post-state."""
    for rank, name, (lo, hi), want in expected_state(schedule, seed):
        _assert_cell(schedule, rank, name, lo, hi, buffers.get(rank, name)[lo:hi], want)


def check_matrix(
    schedule: Schedule, matrix: np.ndarray, layout: BufferLayout, seed: int = 0
) -> None:
    """:func:`check` against a compiled-executor buffer matrix."""
    for rank, name, (lo, hi), want in expected_state(schedule, seed):
        off = layout.offsets[name]
        _assert_cell(
            schedule, rank, name, lo, hi, matrix[rank, off + lo : off + hi], want
        )


def run_and_check(schedule: Schedule, seed: int = 0) -> RankBuffers:
    """Initialise, execute, verify; returns the final buffers."""
    bufs = init_buffers(schedule, seed)
    execute(schedule, bufs)
    check(schedule, bufs, seed)
    return bufs


# -- compiled fast path ------------------------------------------------------


def init_matrix(
    schedule: Schedule, layout: BufferLayout, seed: int = 0
) -> np.ndarray:
    """The collective's precondition as a ``(p, layout.total)`` matrix.

    This is the single source of truth for input data — :func:`init_buffers`
    unpacks it into a :class:`RankBuffers` — and fills whole column slices
    with vectorized writes.  Buffers come from the layout's names (not the
    schedule's steps), so a metadata-only stub from
    :func:`compiled_plan_for` works.
    """
    coll = schedule.meta["collective"]
    p, n = schedule.p, schedule.meta["n"]
    root = schedule.meta.get("root", 0)
    matrix = np.zeros((p, layout.total), dtype=_DTYPE)

    def view(name: str) -> np.ndarray:
        off = layout.offsets[name]
        return matrix[:, off : off + n]

    if coll in ("bcast", "scatter"):
        view("vec")[root] = _patterns(p, n, seed)[root]
    elif coll in ("reduce", "allreduce", "reduce_scatter"):
        view("vec")[:] = _patterns(p, n, seed)
    elif coll in ("gather", "allgather"):
        pats = _patterns(p, n, seed)
        part = Partition(n, p)
        vec = view("vec")
        if n % p == 0:
            # build into a contiguous scratch (vec may be a column view whose
            # reshape would silently copy), then assign through the view
            b = n // p
            ranks = np.arange(p)
            tmp = np.zeros((p, n), dtype=_DTYPE)
            tmp.reshape(p, p, b)[ranks, ranks] = pats.reshape(p, p, b)[ranks, ranks]
            vec[:] = tmp
        else:
            for r in range(p):
                lo, hi = part.bounds(r)
                vec[r, lo:hi] = pats[r, lo:hi]
    elif coll == "alltoall":
        view("send")[:] = _patterns(p, n, seed)
    else:
        raise ValueError(f"unknown collective {coll!r}")
    return matrix


def run_and_check_compiled(
    schedule: Schedule,
    seeds: tuple[int, ...] = (0,),
    plan: CompiledPlan | None = None,
) -> np.ndarray:
    """Compile once, execute every seed in one batched pass, verify each.

    Returns the ``(len(seeds), p, total)`` stack of final buffer matrices
    (layer ``i`` is seed ``seeds[i]``), so callers can diff against the
    reference executor.  Pass a pre-compiled ``plan`` (e.g. from
    :func:`compiled_plan_for`) to amortize compilation across calls.
    """
    if plan is None:
        plan = compile_plan(schedule)
    matrices = np.stack(
        [init_matrix(schedule, plan.layout, seed) for seed in seeds]
    )
    plan.execute_batch(matrices)
    for i, seed in enumerate(seeds):
        check_matrix(schedule, matrices[i], plan.layout, seed)
    return matrices


#: plan memo — keyed per grid cell; bounded FIFO so 1024-rank plans (tens of
#: MB of index arrays each) cannot accumulate without limit
_PLAN_CACHE: dict[tuple, tuple[Schedule, CompiledPlan]] = {}
_PLAN_CACHE_MAX = 128


def compiled_plan_for(
    collective: str,
    algorithm: str,
    p: int,
    n: int,
    root: int = 0,
    op: str = "sum",
) -> tuple[Schedule, CompiledPlan]:
    """Cached ``(schedule stub, plan)`` for one registry cell.

    The schedule's *structure* depends on every key component (``n`` fixes
    segment offsets), so the memo key is the full build signature — the
    compiled analogue of the sweep layer's profile caches.  The returned
    schedule is a **steps-free stub** carrying only ``p`` and ``meta``:
    everything :func:`init_matrix` / :func:`check_matrix` /
    :func:`run_and_check_compiled` need, while the full step list (millions
    of ``Transfer`` objects for a 1024-rank ring) is dropped right after
    compilation instead of pinning memory for the cache's lifetime.
    Eviction is FIFO at ``_PLAN_CACHE_MAX`` entries; :func:`clear_plan_cache`
    (also reached via :func:`repro.analysis.sweep.clear_memo_caches`) drops
    everything.

    Example::

        >>> sched, plan = compiled_plan_for("bcast", "bine", 8, 8)
        >>> plan.num_steps, sched.num_steps  # stub drops the step list
        (3, 0)
    """
    from repro.collectives.registry import build

    key = (collective, algorithm, p, n, root, op)
    hit = _PLAN_CACHE.get(key)
    if hit is None:
        obs.inc("cache.plan.miss")
        with obs.span(
            "schedule.build", collective=collective, algorithm=algorithm, p=p
        ):
            schedule = build(collective, algorithm, p, n, root, op)
        stub = Schedule(p=schedule.p, steps=[], meta=dict(schedule.meta))
        with obs.span(
            "lower.plan", collective=collective, algorithm=algorithm, p=p, n=n
        ):
            hit = (stub, compile_plan(schedule))
        while len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
        _PLAN_CACHE[key] = hit
    else:
        obs.inc("cache.plan.hit")
    return hit


def clear_plan_cache() -> None:
    """Drop every memoized compiled plan (cold-start benchmarks, memory)."""
    _PLAN_CACHE.clear()
