"""Ground-truth verification of collective schedules against NumPy.

Every schedule carries ``meta["collective"]``; this module knows, for each of
the paper's eight collectives, how to initialise per-rank buffers with
deterministic rank-dependent data and what the post-condition is.  The
executor runs the schedule and :func:`check` compares outcomes elementwise —
the exact observable an MPI correctness test would assert.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import Partition
from repro.runtime.buffers import RankBuffers
from repro.runtime.executor import execute
from repro.runtime.reduce_ops import named_op
from repro.runtime.schedule import Schedule

__all__ = ["init_buffers", "expected_state", "check", "run_and_check"]

_DTYPE = np.int64


def _pattern(rank: int, n: int, seed: int) -> np.ndarray:
    """Deterministic per-rank input vector (distinct across ranks/elements)."""
    rng = np.random.default_rng(seed * 100003 + rank)
    return rng.integers(-1000, 1000, size=n, dtype=_DTYPE)


def _buffers_used(schedule: Schedule) -> set[str]:
    names: set[str] = set()
    for step in schedule.steps:
        for t in step.transfers:
            names.add(t.src_buf)
            names.add(t.dst_buf)
        for lc in list(step.pre) + list(step.post):
            names.add(lc.src_buf)
            names.add(lc.dst_buf)
    return names or {"vec"}


def init_buffers(schedule: Schedule, seed: int = 0) -> RankBuffers:
    """Allocate and fill buffers according to the collective's precondition."""
    coll = schedule.meta["collective"]
    p, n = schedule.p, schedule.meta["n"]
    root = schedule.meta.get("root", 0)
    part = Partition(n, p)
    bufs = RankBuffers(p)
    for name in _buffers_used(schedule):
        bufs.allocate(name, n, dtype=_DTYPE, fill=0)

    if coll == "bcast":
        bufs.set(root, "vec", _pattern(root, n, seed))
    elif coll in ("reduce", "allreduce", "reduce_scatter"):
        for r in range(p):
            bufs.set(r, "vec", _pattern(r, n, seed))
    elif coll in ("gather", "allgather"):
        for r in range(p):
            vec = np.zeros(n, dtype=_DTYPE)
            lo, hi = part.bounds(r)
            vec[lo:hi] = _pattern(r, n, seed)[lo:hi]
            bufs.set(r, "vec", vec)
    elif coll == "alltoall":
        for r in range(p):
            bufs.set(r, "send", _pattern(r, n, seed))
    elif coll == "scatter":
        bufs.set(root, "vec", _pattern(root, n, seed))
    else:
        raise ValueError(f"unknown collective {coll!r}")
    return bufs


def expected_state(schedule: Schedule, seed: int = 0):
    """Post-condition: list of ``(rank, buffer, element_range, expected)``."""
    coll = schedule.meta["collective"]
    p, n = schedule.p, schedule.meta["n"]
    root = schedule.meta.get("root", 0)
    op = named_op(schedule.meta.get("op", "sum"))
    part = Partition(n, p)
    inputs = [_pattern(r, n, seed) for r in range(p)]
    out = []

    if coll == "bcast":
        for r in range(p):
            out.append((r, "vec", (0, n), inputs[root]))
    elif coll == "reduce":
        acc = inputs[0].copy()
        for r in range(1, p):
            acc = op(acc, inputs[r])
        out.append((root, "vec", (0, n), acc))
    elif coll == "allreduce":
        acc = inputs[0].copy()
        for r in range(1, p):
            acc = op(acc, inputs[r])
        for r in range(p):
            out.append((r, "vec", (0, n), acc))
    elif coll == "reduce_scatter":
        acc = inputs[0].copy()
        for r in range(1, p):
            acc = op(acc, inputs[r])
        for r in range(p):
            lo, hi = part.bounds(r)
            out.append((r, "vec", (lo, hi), acc[lo:hi]))
    elif coll == "gather":
        full = np.zeros(n, dtype=_DTYPE)
        for b in range(p):
            lo, hi = part.bounds(b)
            full[lo:hi] = inputs[b][lo:hi]
        out.append((root, "vec", (0, n), full))
    elif coll == "allgather":
        full = np.zeros(n, dtype=_DTYPE)
        for b in range(p):
            lo, hi = part.bounds(b)
            full[lo:hi] = inputs[b][lo:hi]
        for r in range(p):
            out.append((r, "vec", (0, n), full))
    elif coll == "scatter":
        for r in range(p):
            lo, hi = part.bounds(r)
            out.append((r, "vec", (lo, hi), inputs[root][lo:hi]))
    elif coll == "alltoall":
        for r in range(p):
            recv = np.zeros(n, dtype=_DTYPE)
            for o in range(p):
                lo, hi = part.bounds(o)
                # data rank o addressed to r sits in o's send block r
                rlo, rhi = part.bounds(r)
                recv[lo:hi] = inputs[o][rlo:rhi]
            out.append((r, "recv", (0, n), recv))
    else:
        raise ValueError(f"unknown collective {coll!r}")
    return out


def check(schedule: Schedule, buffers: RankBuffers, seed: int = 0) -> None:
    """Assert the executor left ``buffers`` in the expected post-state."""
    for rank, name, (lo, hi), want in expected_state(schedule, seed):
        got = buffers.get(rank, name)[lo:hi]
        if not np.array_equal(got, want):
            bad = np.nonzero(got != want)[0][:5]
            raise AssertionError(
                f"{schedule.meta}: rank {rank} buffer {name!r}[{lo}:{hi}] wrong "
                f"at offsets {bad.tolist()}: got {got[bad].tolist()}, "
                f"want {want[bad].tolist()}"
            )


def run_and_check(schedule: Schedule, seed: int = 0) -> RankBuffers:
    """Initialise, execute, verify; returns the final buffers."""
    bufs = init_buffers(schedule, seed)
    execute(schedule, bufs)
    check(schedule, bufs, seed)
    return bufs
