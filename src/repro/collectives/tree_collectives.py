"""Tree-shaped collectives: broadcast, reduce, gather, scatter (paper Sec. 4).

All four are generated from a :class:`~repro.core.tree.Tree` (Bine or
binomial, any variant), so a single implementation covers every tree family:

* **broadcast** — data flows root→leaves along tree edges in step order;
* **reduce** — the exact reverse: children send partial reductions to
  parents, steps run backwards (small-vector algorithm of Sec. 4.5);
* **gather** — like reduce but concatenating *blocks*: a child sends the
  circular block range of its whole subtree (Fig. 7);
* **scatter** — the reverse of gather: a parent sends each child its
  subtree's circular block range (Sec. 4.2).

Gather and scatter rely on subtrees being circularly contiguous block
ranges, which holds for distance-halving Bine trees and binomial trees
(validated in the test suite); wrapped ranges linearise into at most two
wire segments — the "two transmissions" of Sec. 4.3.1.
"""

from __future__ import annotations

from typing import Callable

from repro.core.blocks import Partition, wrap_range_from_set
from repro.core.tree import Tree
from repro.collectives.common import VEC
from repro.runtime.schedule import Schedule, Step, Transfer

__all__ = [
    "bcast_from_tree",
    "reduce_from_tree",
    "gather_from_tree",
    "scatter_from_tree",
]

# PrunedTree (Appendix C) quacks like Tree for every query used here.
TreeLike = Tree


def _meta(tree: TreeLike, collective: str, n: int, **extra) -> dict:
    return {
        "collective": collective,
        "algorithm": tree.kind,
        "p": tree.p,
        "n": n,
        "root": tree.root,
        **extra,
    }


def bcast_from_tree(tree: TreeLike, n: int) -> Schedule:
    """Broadcast ``n`` elements from ``tree.root`` along ``tree``.

    Every rank's ``vec`` ends equal to the root's.  Each edge carries the
    full vector — the small-vector algorithm; see
    :mod:`repro.collectives.composed` for the scatter+allgather large-vector
    variant.
    """
    sched = Schedule(tree.p, meta=_meta(tree, "bcast", n))
    for step_idx in range(tree.num_steps):
        transfers = tuple(
            Transfer(
                src=u,
                dst=v,
                src_buf=VEC,
                dst_buf=VEC,
                src_segments=((0, n),),
                dst_segments=((0, n),),
                tag=f"bcast[{step_idx}]",
            )
            for (u, v) in tree.edges[step_idx]
        )
        sched.add(Step(transfers=transfers, label=f"bcast step {step_idx}"))
    return sched.finalize()


def reduce_from_tree(tree: TreeLike, n: int, op: str = "sum") -> Schedule:
    """Reduce ``n``-element contributions to ``tree.root`` (reverse broadcast).

    Every rank's ``vec`` starts as its contribution; the root's ``vec`` ends
    as the elementwise reduction.  Non-root buffers hold partial sums
    afterwards (same garbage-on-exit behaviour as MPI_Reduce send buffers).
    """
    sched = Schedule(tree.p, meta=_meta(tree, "reduce", n, op=op))
    for step_idx in reversed(range(tree.num_steps)):
        transfers = tuple(
            Transfer(
                src=v,
                dst=u,
                src_buf=VEC,
                dst_buf=VEC,
                src_segments=((0, n),),
                dst_segments=((0, n),),
                op=op,
                tag=f"reduce[{step_idx}]",
            )
            for (u, v) in tree.edges[step_idx]
        )
        sched.add(Step(transfers=transfers, label=f"reduce step {step_idx}"))
    return sched.finalize()


def _subtree_segments(tree: TreeLike, rank: int, part: Partition):
    """Element segments (≤ 2) of ``rank``'s subtree block range."""
    crange = wrap_range_from_set(tree.subtree(rank), tree.p)
    return tuple(crange.segments(part))


def gather_from_tree(tree: TreeLike, n: int) -> Schedule:
    """Gather one block per rank to ``tree.root`` (paper Fig. 7).

    Every rank's ``vec`` is the full ``n``-element space with only its own
    block meaningful; the root ends holding all blocks in natural positions.
    Children send at the *reverse* of their broadcast step, transmitting the
    circular block range of their entire subtree in one go.
    """
    part = Partition(n, tree.p)
    sched = Schedule(tree.p, meta=_meta(tree, "gather", n))
    for step_idx in reversed(range(tree.num_steps)):
        transfers = []
        for (u, v) in tree.edges[step_idx]:
            segs = _subtree_segments(tree, v, part)
            transfers.append(
                Transfer(
                    src=v,
                    dst=u,
                    src_buf=VEC,
                    dst_buf=VEC,
                    src_segments=segs,
                    dst_segments=segs,
                    tag=f"gather[{step_idx}]",
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=f"gather step {step_idx}"))
    return sched.finalize()


def scatter_from_tree(tree: TreeLike, n: int) -> Schedule:
    """Scatter blocks from ``tree.root`` (Sec. 4.2, reverse of gather).

    The root starts with the full vector; every rank ends with its own block
    at its natural position.  At each broadcast step a parent forwards the
    receiving child's whole subtree range.
    """
    part = Partition(n, tree.p)
    sched = Schedule(tree.p, meta=_meta(tree, "scatter", n))
    for step_idx in range(tree.num_steps):
        transfers = []
        for (u, v) in tree.edges[step_idx]:
            segs = _subtree_segments(tree, v, part)
            transfers.append(
                Transfer(
                    src=u,
                    dst=v,
                    src_buf=VEC,
                    dst_buf=VEC,
                    src_segments=segs,
                    dst_segments=segs,
                    tag=f"scatter[{step_idx}]",
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=f"scatter step {step_idx}"))
    return sched.finalize()
