"""Alltoall algorithms: Bruck, pairwise/linear, and Bine (paper Sec. 4.4).

All log-step alltoalls here share one mechanism: each rank owns ``p`` block
*slots*; every step it ships some held blocks to a peer and the freed slots
absorb the incoming ones.  The builder tracks ``(origin, destination)`` of
every slot exactly, so schedules are correct by construction and a final
local pass unpacks slots into the natural ``recv`` layout.

* **Bine** (Sec. 4.4): "a small-vector allreduce where received data is
  concatenated rather than aggregated" — at step ``j`` of the Bine
  distance-doubling butterfly a rank forwards every held block whose
  destination lies on the partner's side (``resp(partner, j+1)``), sending
  ``n/2`` bytes per step over Bine-short distances.
* **Bruck**: at phase ``k`` send to ``(r + 2^k) mod p`` all blocks whose
  relative destination offset has bit ``k`` set; works for any ``p``.
* **Pairwise**: ``p − 1`` direct exchanges (the linear baseline that wins at
  small scale / big vectors, Sec. 5.1.2).

Buffers: ``"send"`` (input, block ``d`` = data for rank ``d``), ``"slots"``
(staging), ``"recv"`` (output, block ``o`` = data from rank ``o``).
"""

from __future__ import annotations

from repro.core.butterfly import Butterfly, bine_butterfly_doubling
from repro.core.coverage import responsibility, segments_of
from repro.runtime.schedule import LocalCopy, Schedule, Step, Transfer

__all__ = ["alltoall_bine", "alltoall_bruck", "alltoall_pairwise"]

SEND = "send"
SLOTS = "slots"
RECV = "recv"


def _slot_segments(slots: list[int], bs: int):
    return tuple((lo * bs, hi * bs) for lo, hi in segments_of(set(slots)))


class _SlotTracker:
    """Exact bookkeeping of which (origin, dst) block sits in which slot."""

    def __init__(self, p: int):
        self.p = p
        # contents[r][slot] = (origin, dst)
        self.contents: list[list[tuple[int, int] | None]] = [
            [(r, d) for d in range(p)] for r in range(p)
        ]

    def held_with(self, rank: int, pred) -> list[int]:
        """Slots of ``rank`` whose block satisfies ``pred(origin, dst)``."""
        return [
            s
            for s, blk in enumerate(self.contents[rank])
            if blk is not None and pred(*blk)
        ]

    def move(self, src: int, src_slots: list[int], dst: int, dst_slots: list[int]):
        """Relocate blocks between ranks; slot lists pair up in order."""
        assert len(src_slots) == len(dst_slots)
        blocks = [self.contents[src][s] for s in src_slots]
        for s in src_slots:
            self.contents[src][s] = None
        for s, blk in zip(dst_slots, blocks):
            assert self.contents[dst][s] is None
            self.contents[dst][s] = blk

    def free_slots(self, rank: int, count: int) -> list[int]:
        free = [s for s, blk in enumerate(self.contents[rank]) if blk is None]
        assert len(free) >= count
        return free[:count]

    def finish(self, sched: Schedule, bs: int) -> None:
        """Assert every rank holds exactly its own inbound blocks; unpack."""
        post = []
        for r in range(self.p):
            origins = []
            for s, blk in enumerate(self.contents[r]):
                assert blk is not None, f"rank {r} slot {s} empty at finish"
                origin, dst = blk
                assert dst == r, f"rank {r} holds stray block {blk}"
                origins.append((s, origin))
            assert sorted(o for _, o in origins) == list(range(self.p))
            post.append(
                LocalCopy(
                    rank=r, src_buf=SLOTS, dst_buf=RECV,
                    src_segments=tuple((s * bs, (s + 1) * bs) for s, _ in origins),
                    dst_segments=tuple((o * bs, (o + 1) * bs) for _, o in origins),
                    tag="alltoall unpack",
                )
            )
        sched.add(Step(post=tuple(post), label="alltoall unpack"))


def _init_step(p: int, n: int) -> Step:
    """Copy ``send`` into the slot staging buffer (slot d = block for d)."""
    pre = tuple(
        LocalCopy(
            rank=r, src_buf=SEND, dst_buf=SLOTS,
            src_segments=((0, n),), dst_segments=((0, n),),
            tag="alltoall stage",
        )
        for r in range(p)
    )
    return Step(pre=pre, label="alltoall stage")


def alltoall_bine(p: int, n: int, bf: Butterfly | None = None) -> Schedule:
    """Bine butterfly alltoall (Sec. 4.4); requires power-of-two ``p``, p | n."""
    if n % p:
        raise ValueError("alltoall requires p | n")
    if bf is None:
        bf = bine_butterfly_doubling(p)
    return _build_bine(p, n, bf)


def _run_slot_rounds(sched: Schedule, tracker: _SlotTracker, rounds, bs: int):
    """Execute communication rounds on the tracker, emitting transfers.

    ``rounds`` yields lists of ``(src, outgoing_slots, dst)`` moves per step;
    within a step all sends happen concurrently (snapshot semantics), so
    blocks are detached first, then landed into slots freed this step.
    """
    for label, moves in rounds:
        detached: list[tuple[int, list[int], int, list] ] = []
        for src, out_slots, dst in moves:
            blocks = [tracker.contents[src][s] for s in out_slots]
            assert all(b is not None for b in blocks)
            for s in out_slots:
                tracker.contents[src][s] = None
            detached.append((src, out_slots, dst, blocks))
        transfers = []
        for src, out_slots, dst, blocks in detached:
            land = tracker.free_slots(dst, len(blocks))
            for s, blk in zip(land, blocks):
                tracker.contents[dst][s] = blk
            if not blocks:
                continue
            transfers.append(
                Transfer(
                    src=src, dst=dst, src_buf=SLOTS, dst_buf=SLOTS,
                    src_segments=_slot_segments(out_slots, bs),
                    dst_segments=tuple((s * bs, (s + 1) * bs) for s in land),
                    tag=label,
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=label))


def _build_bine(p: int, n: int, bf: Butterfly) -> Schedule:
    bs = n // p
    sched = Schedule(
        p, meta={"collective": "alltoall", "algorithm": "bine", "p": p, "n": n}
    )
    sched.add(_init_step(p, n))
    tracker = _SlotTracker(p)

    def rounds():
        for j in range(bf.num_steps):
            moves = []
            for r in range(p):
                q = bf.partner(r, j)
                side = responsibility(bf, q, j + 1)
                out = sorted(tracker.held_with(r, lambda _o, d: d in side))
                moves.append((r, out, q))
            yield f"bine-a2a[{j}]", moves

    _run_slot_rounds(sched, tracker, rounds(), bs)
    tracker.finish(sched, bs)
    return sched.finalize()


def alltoall_bruck(p: int, n: int) -> Schedule:
    """Bruck alltoall: ``⌈log2 p⌉`` phases, any ``p`` (requires p | n)."""
    if n % p:
        raise ValueError("alltoall requires p | n")
    bs = n // p
    sched = Schedule(
        p, meta={"collective": "alltoall", "algorithm": "bruck", "p": p, "n": n}
    )
    sched.add(_init_step(p, n))
    tracker = _SlotTracker(p)
    phases = max(1, (p - 1).bit_length()) if p > 1 else 0

    def rounds():
        for k in range(phases):
            moves = []
            for r in range(p):
                out = sorted(
                    tracker.held_with(
                        r, lambda _o, d, r=r, k=k: ((d - r) % p) >> k & 1
                    )
                )
                moves.append((r, out, (r + (1 << k)) % p))
            yield f"bruck[{k}]", moves

    _run_slot_rounds(sched, tracker, rounds(), bs)
    tracker.finish(sched, bs)
    return sched.finalize()


def alltoall_pairwise(p: int, n: int) -> Schedule:
    """Pairwise-exchange alltoall: ``p − 1`` direct rounds (requires p | n)."""
    if n % p:
        raise ValueError("alltoall requires p | n")
    bs = n // p
    sched = Schedule(
        p, meta={"collective": "alltoall", "algorithm": "pairwise", "p": p, "n": n}
    )
    sched.add(_init_step(p, n))
    tracker = _SlotTracker(p)

    def rounds():
        for k in range(1, p):
            moves = []
            for r in range(p):
                dst = (r + k) % p
                out = tracker.held_with(r, lambda _o, d, dst=dst: d == dst)
                moves.append((r, sorted(out), dst))
            yield f"pairwise[{k}]", moves

    _run_slot_rounds(sched, tracker, rounds(), bs)
    tracker.finish(sched, bs)
    return sched.finalize()
