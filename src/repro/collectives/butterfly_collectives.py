"""Butterfly collectives: reduce-scatter, allgather, allreduce (Secs. 4.3-4.4).

All three are position-preserving flows over a butterfly's responsibility
sets (:mod:`repro.core.coverage`):

* **reduce-scatter** runs the butterfly forward: at step ``j`` rank ``r``
  sends its partial sums for ``resp(partner, j+1)`` and reduces the incoming
  ``resp(r, j+1)`` into place — vector-halving;
* **allgather** is the exact reverse flow with ``op=None`` — vector-doubling;
* **allreduce** is either recursive doubling (small vectors: whole-vector
  exchange+reduce each step) or reduce-scatter + allgather (large vectors).

The four non-contiguous-data strategies of Sec. 4.3.1 map onto layouts:

========================  ============================================
``Strategy.NATURAL``      coalesced natural-layout segments (Swing-like)
``Strategy.BLOCKS``       one wire segment per block
``Strategy.PERMUTE``      local pre/post permutation into π space; all
                          sends single-segment
``Strategy.SEND``         π-space flow without the permutation; results
                          land at π positions; an optional fix-up exchange
                          (or the paired allgather) restores order
``Strategy.TWO_TRANSMISSIONS``  run the *distance-halving* butterfly whose
                          natural responsibility sets are circular ranges
                          (≤ 2 segments) at the price of more global traffic
========================  ============================================
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import Partition
from repro.core.butterfly import (
    Butterfly,
    bine_butterfly_doubling,
    bine_butterfly_halving,
    recursive_halving_butterfly,
    swing_butterfly,
)
from repro.collectives.common import (
    TMP,
    VEC,
    Strategy,
    global_pi,
    global_pi_inv,
    require_divisible,
)
from repro.collectives.fastresp import resp_backend, sorted_runs
from repro.runtime.schedule import LocalCopy, Schedule, Step, Transfer

__all__ = [
    "reduce_scatter_butterfly",
    "allgather_butterfly",
    "allreduce_recursive",
    "allreduce_reduce_scatter_allgather",
    "rs_butterfly_for",
    "RS_FLAVORS",
]

#: reduce-scatter flavors → (butterfly builder, strategy)
RS_FLAVORS = {
    "bine-natural": (bine_butterfly_doubling, Strategy.NATURAL),
    "bine-blocks": (bine_butterfly_doubling, Strategy.BLOCKS),
    "bine-permute": (bine_butterfly_doubling, Strategy.PERMUTE),
    "bine-send": (bine_butterfly_doubling, Strategy.SEND),
    "bine-two-transmissions": (bine_butterfly_halving, Strategy.TWO_TRANSMISSIONS),
    "swing": (swing_butterfly, Strategy.NATURAL),
    "recursive-halving": (recursive_halving_butterfly, Strategy.NATURAL),
}


def rs_butterfly_for(flavor: str, p: int) -> tuple[Butterfly, Strategy]:
    """Resolve a reduce-scatter flavor name to its butterfly and strategy."""
    try:
        builder, strategy = RS_FLAVORS[flavor]
    except KeyError:
        raise KeyError(f"unknown RS flavor {flavor!r}; have {sorted(RS_FLAVORS)}") from None
    return builder(p), strategy


def _segments_for(part: Partition, blocks: np.ndarray, strategy: Strategy):
    """Wire segments for a sorted block array under a segmentation policy."""
    if strategy is Strategy.BLOCKS:
        return tuple(part.bounds(int(b)) for b in blocks)
    if part.n == part.p:
        # canonical build size: block index == element offset
        return tuple(sorted_runs(blocks))
    return tuple(part.segments(blocks.tolist()))


#: butterfly kinds whose matching (hence responsibility sets) is a pure
#: function of (kind, p) — safe keys for the cross-schedule segment cache.
#: Swing shares the distance-doubling Bine sets, so the two kinds alias.
_CACHEABLE_KINDS = {
    "bine-doubling": "bine-doubling",
    "swing": "bine-doubling",
    "bine-halving": "bine-halving",
    "recdoub": "recdoub",
    "rechalv": "rechalv",
}

#: (kind, p, strategy/π, step, rank) → segment tuple at the canonical build
#: size.  Reduce-scatter and allgather walk the same responsibility sets
#: (allreduce builds both back to back, and sweep campaigns revisit the same
#: butterflies per collective), so entries are reused several times over.
_SEG_CACHE: dict[tuple, tuple] = {}


def _seg_getter(bf: Butterfly, part: Partition, resp, strategy: Strategy):
    """``segs(rank, step)`` with cross-schedule caching at canonical size."""
    ckind = _CACHEABLE_KINDS.get(bf.kind)
    if ckind is None or part.n != part.p:
        return lambda rank, step: _segments_for(part, resp(rank, step), strategy)

    prefix = (ckind, part.p, strategy.value)

    def segs(rank: int, step: int):
        key = prefix + (step, rank)
        out = _SEG_CACHE.get(key)
        if out is None:
            out = _SEG_CACHE[key] = _segments_for(part, resp(rank, step), strategy)
        return out

    return segs


def _pi_window_getter(bf: Butterfly, resp, pi_arr: np.ndarray, block_size: int):
    """``window(rank, step)`` for π-space flows, cached like :func:`_seg_getter`."""
    ckind = _CACHEABLE_KINDS.get(bf.kind)
    p = bf.p

    def compute(rank: int, step: int):
        return _pi_window(
            pi_arr, resp(rank, step), block_size, f"{bf.kind} rank {rank} step {step}"
        )

    if ckind is None:
        return compute
    prefix = (ckind, p, "pi", block_size)

    def window(rank: int, step: int):
        key = prefix + (step, rank)
        out = _SEG_CACHE.get(key)
        if out is None:
            out = _SEG_CACHE[key] = compute(rank, step)
        return out

    return window


def _pi_window(pi_arr: np.ndarray, blocks: np.ndarray, block_size: int, ctx: str):
    """Single contiguous element segment covering π(blocks), or raise."""
    positions = pi_arr[blocks]
    lo = int(positions.min())
    hi = int(positions.max()) + 1
    if hi - lo != positions.size:
        raise AssertionError(f"π window not contiguous for {ctx}")
    return ((lo * block_size, hi * block_size),)


def _permute_segments(p: int, n: int, pi: list[int]):
    """``(natural, permuted)`` segment tuples of the Fig. 8 block permutation.

    Identical for every rank, so builders compute them once per schedule and
    share the tuples across all ``p`` local copies.
    """
    bs = n // p
    natural = tuple((b * bs, (b + 1) * bs) for b in range(p))
    permuted = tuple((pi[b] * bs, (pi[b] + 1) * bs) for b in range(p))
    return natural, permuted


def _permute_pack(
    rank: int, src: str, dst: str, tag: str, segs
) -> LocalCopy:
    """Local copy moving natural block ``b`` to π(b) positions (Fig. 8)."""
    natural, permuted = segs
    return LocalCopy(
        rank=rank,
        src_buf=src,
        dst_buf=dst,
        src_segments=natural,
        dst_segments=permuted,
        tag=tag,
    )


def _permute_unpack(
    rank: int, src: str, dst: str, tag: str, segs
) -> LocalCopy:
    """Inverse of :func:`_permute_pack`."""
    natural, permuted = segs
    return LocalCopy(
        rank=rank,
        src_buf=src,
        dst_buf=dst,
        src_segments=permuted,
        dst_segments=natural,
        tag=tag,
    )


def reduce_scatter_butterfly(
    bf: Butterfly,
    n: int,
    op: str = "sum",
    strategy: Strategy = Strategy.NATURAL,
    *,
    fixup: bool = True,
) -> Schedule:
    """Vector-halving reduce-scatter over butterfly ``bf``.

    Every rank's ``vec`` starts as its full contribution.  On exit rank ``r``
    holds the reduced block ``r`` at its natural position — except under
    ``Strategy.SEND`` with ``fixup=False``, where rank ``r`` holds reduced
    block ``π(r)`` at position ``π(r)`` (the state the paired allgather
    consumes; see :func:`allreduce_reduce_scatter_allgather`).
    """
    p, s = bf.p, bf.num_steps
    part = Partition(n, p)
    meta = {
        "collective": "reduce_scatter",
        "algorithm": bf.kind,
        "strategy": strategy.value,
        "p": p,
        "n": n,
        "op": op,
    }
    sched = Schedule(p, meta=meta)

    resp = resp_backend(bf)

    if strategy in (Strategy.NATURAL, Strategy.BLOCKS, Strategy.TWO_TRANSMISSIONS):
        seg_of = _seg_getter(bf, part, resp, strategy)
        for j in range(s):
            transfers = []
            for r in range(p):
                q = bf.partner(r, j)
                segs = seg_of(q, j + 1)
                transfers.append(
                    Transfer(
                        src=r, dst=q, src_buf=VEC, dst_buf=VEC,
                        src_segments=segs, dst_segments=segs, op=op,
                        tag=f"rs[{j}]",
                    )
                )
            sched.add(Step(transfers=tuple(transfers), label=f"rs step {j}"))
        return sched.finalize()

    # π-space flows (permute / send)
    bs = require_divisible(n, p, f"reduce-scatter strategy {strategy.value}")
    pi = global_pi(p)
    pi_arr = np.array(pi)
    window = _pi_window_getter(bf, resp, pi_arr, bs)
    work = TMP if strategy is Strategy.PERMUTE else VEC
    for j in range(s):
        pre = ()
        if j == 0 and strategy is Strategy.PERMUTE:
            segs2 = _permute_segments(p, n, pi)
            pre = tuple(
                _permute_pack(r, VEC, TMP, "rs permute-in", segs2) for r in range(p)
            )
        transfers = []
        for r in range(p):
            q = bf.partner(r, j)
            segs = window(q, j + 1)
            transfers.append(
                Transfer(
                    src=r, dst=q, src_buf=work, dst_buf=work,
                    src_segments=segs, dst_segments=segs, op=op,
                    tag=f"rs[{j}]",
                )
            )
        post = ()
        if j == s - 1 and strategy is Strategy.PERMUTE:
            post = tuple(
                LocalCopy(
                    rank=r, src_buf=TMP, dst_buf=VEC,
                    src_segments=((pi[r] * bs, (pi[r] + 1) * bs),),
                    dst_segments=((r * bs, (r + 1) * bs),),
                    tag="rs permute-out",
                )
                for r in range(p)
            )
        sched.add(Step(transfers=tuple(transfers), pre=pre, post=post, label=f"rs step {j}"))

    if strategy is Strategy.SEND and fixup:
        # Final exchange: rank r holds block π(r); ship it home (Sec. 4.3.1).
        transfers = tuple(
            Transfer(
                src=r, dst=pi[r], src_buf=VEC, dst_buf=VEC,
                src_segments=((pi[r] * bs, (pi[r] + 1) * bs),),
                dst_segments=((pi[r] * bs, (pi[r] + 1) * bs),),
                tag="rs send-fixup",
            )
            for r in range(p)
            if pi[r] != r
        )
        sched.add(Step(transfers=transfers, label="rs send fixup"))
    return sched.finalize()


def allgather_butterfly(
    bf: Butterfly,
    n: int,
    strategy: Strategy = Strategy.NATURAL,
    *,
    initial_exchange: bool = True,
) -> Schedule:
    """Vector-doubling allgather: the reverse flow of ``reduce_scatter(bf)``.

    ``bf`` is the butterfly of the reduce-scatter being reversed, so the
    *matchings run backwards* (for Bine pass the distance-doubling butterfly
    and the allgather becomes distance-halving, Eq. 4).  Every rank's ``vec``
    starts with only its own block meaningful; all ranks end with the full
    vector.

    Under ``Strategy.SEND``, ``initial_exchange=True`` prepends the
    paper's reordering transmission (rank ``v`` ships its block to
    ``π⁻¹(v)``); ``False`` assumes ranks already hold block ``π(r)`` at
    position ``π(r)`` — the reduce-scatter(SEND, fixup=False) exit state.
    """
    p, s = bf.p, bf.num_steps
    part = Partition(n, p)
    meta = {
        "collective": "allgather",
        "algorithm": bf.kind,
        "strategy": strategy.value,
        "p": p,
        "n": n,
    }
    sched = Schedule(p, meta=meta)

    resp = resp_backend(bf)

    if strategy in (Strategy.NATURAL, Strategy.BLOCKS, Strategy.TWO_TRANSMISSIONS):
        seg_of = _seg_getter(bf, part, resp, strategy)
        for k in range(s):
            j = s - 1 - k
            transfers = []
            for r in range(p):
                q = bf.partner(r, j)
                segs = seg_of(r, j + 1)
                transfers.append(
                    Transfer(
                        src=r, dst=q, src_buf=VEC, dst_buf=VEC,
                        src_segments=segs, dst_segments=segs,
                        tag=f"ag[{k}]",
                    )
                )
            sched.add(Step(transfers=tuple(transfers), label=f"ag step {k}"))
        return sched.finalize()

    bs = require_divisible(n, p, f"allgather strategy {strategy.value}")
    pi = global_pi(p)
    pi_arr = np.array(pi)
    pi_inv = global_pi_inv(p)
    work = TMP if strategy is Strategy.PERMUTE else VEC

    if strategy is Strategy.PERMUTE:
        pre = tuple(
            LocalCopy(
                rank=r, src_buf=VEC, dst_buf=TMP,
                src_segments=((r * bs, (r + 1) * bs),),
                dst_segments=((pi[r] * bs, (pi[r] + 1) * bs),),
                tag="ag permute-in",
            )
            for r in range(p)
        )
        sched.add(Step(pre=pre, label="ag permute in"))
    elif strategy is Strategy.SEND and initial_exchange:
        transfers = tuple(
            Transfer(
                src=v, dst=pi_inv[v], src_buf=VEC, dst_buf=VEC,
                src_segments=((v * bs, (v + 1) * bs),),
                dst_segments=((v * bs, (v + 1) * bs),),
                tag="ag send-reorder",
            )
            for v in range(p)
            if pi_inv[v] != v
        )
        sched.add(Step(transfers=transfers, label="ag send reorder"))

    window = _pi_window_getter(bf, resp, pi_arr, bs)
    for k in range(s):
        j = s - 1 - k
        transfers = []
        for r in range(p):
            q = bf.partner(r, j)
            segs = window(r, j + 1)
            transfers.append(
                Transfer(
                    src=r, dst=q, src_buf=work, dst_buf=work,
                    src_segments=segs, dst_segments=segs,
                    tag=f"ag[{k}]",
                )
            )
        post = ()
        if k == s - 1 and strategy is Strategy.PERMUTE:
            segs2 = _permute_segments(p, n, pi)
            post = tuple(
                _permute_unpack(r, TMP, VEC, "ag permute-out", segs2) for r in range(p)
            )
        sched.add(Step(transfers=tuple(transfers), post=post, label=f"ag step {k}"))
    if strategy is Strategy.SEND:
        # π-space content is natural blocks at natural positions already.
        pass
    return sched.finalize()


def allreduce_recursive(bf: Butterfly, n: int, op: str = "sum") -> Schedule:
    """Small-vector allreduce: whole-vector exchange + reduce every step.

    Works on any proper butterfly; with the Bine distance-halving butterfly
    this is the paper's small-vector Bine allreduce (Sec. 4.4).
    """
    p, s = bf.p, bf.num_steps
    sched = Schedule(
        p,
        meta={
            "collective": "allreduce",
            "algorithm": f"recursive-{bf.kind}",
            "p": p,
            "n": n,
            "op": op,
        },
    )
    for j in range(s):
        transfers = tuple(
            Transfer(
                src=r, dst=bf.partner(r, j), src_buf=VEC, dst_buf=VEC,
                src_segments=((0, n),), dst_segments=((0, n),), op=op,
                tag=f"ar[{j}]",
            )
            for r in range(p)
        )
        sched.add(Step(transfers=transfers, label=f"allreduce step {j}"))
    return sched.finalize()


def allreduce_reduce_scatter_allgather(
    bf: Butterfly,
    n: int,
    op: str = "sum",
    strategy: Strategy = Strategy.NATURAL,
    *,
    segmented: bool = False,
) -> Schedule:
    """Large-vector allreduce: reduce-scatter followed by allgather.

    Under ``Strategy.SEND`` neither phase performs any data reordering: the
    allgather implicitly undoes the reduce-scatter's implicit permutation
    (the paper's key Bine trick for contiguous transmission).  ``segmented``
    marks the schedule for pipelined execution in the cost model
    (Sec. 5.2.2); it does not change the bytes moved.
    """
    rs = reduce_scatter_butterfly(bf, n, op, strategy, fixup=False)
    ag = allgather_butterfly(bf, n, strategy, initial_exchange=False)
    sched = Schedule(
        bf.p,
        meta={
            "collective": "allreduce",
            "algorithm": f"rsag-{bf.kind}",
            "strategy": strategy.value,
            "p": bf.p,
            "n": n,
            "op": op,
            "segmented": segmented,
        },
    )
    if strategy is Strategy.PERMUTE:
        # One permute in, one permute out — skip the RS's unpack and the
        # AG's pack, keeping the flow in π space across the seam.
        rs_steps = list(rs.steps)
        rs_steps[-1] = Step(
            transfers=rs_steps[-1].transfers, pre=rs_steps[-1].pre,
            post=(), label=rs_steps[-1].label,
        )
        ag_steps = [st for st in ag.steps if st.transfers or st.post]
        ag_steps = [st for st in ag_steps if st.label != "ag permute in"]
        sched.steps = rs_steps + ag_steps
    else:
        sched.steps = list(rs.steps) + list(ag.steps)
    return sched.finalize()
