"""String-keyed registry of every collective algorithm in the library.

The sweep harness (:mod:`repro.analysis.sweep`) and the benchmarks address
algorithms as ``(collective, name)``.  Each entry knows its family (``bine``
/ ``binomial`` / ``ring`` / …) so the paper's "Bine vs binomial" and
"Bine vs best state-of-the-art" summaries can group correctly, plus its
constraints (power-of-two ranks, divisibility).

Builders share the signature ``build(p, n, root=0, op="sum") -> Schedule``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bine_tree import (
    bine_tree_distance_doubling,
    bine_tree_distance_halving,
)
from repro.core.binomial_tree import (
    binomial_tree_distance_doubling,
    binomial_tree_distance_halving,
)
from repro.core.butterfly import (
    bine_butterfly_doubling,
    bine_butterfly_halving,
    recursive_doubling_butterfly,
    recursive_halving_butterfly,
    swing_butterfly,
)
from repro.collectives import alltoall as a2a
from repro.collectives import ring as ringmod
from repro.collectives.bruck_allgather import allgather_bruck, allgather_sparbit
from repro.collectives.butterfly_collectives import (
    allgather_butterfly,
    allreduce_recursive,
    allreduce_reduce_scatter_allgather,
    reduce_scatter_butterfly,
)
from repro.collectives.common import Strategy
from repro.collectives.composed import (
    bcast_scatter_allgather_bine,
    bcast_scatter_allgather_binomial,
    reduce_rsag_bine,
    reduce_rsag_rabenseifner,
)
from repro.collectives.tree_collectives import (
    bcast_from_tree,
    gather_from_tree,
    reduce_from_tree,
    scatter_from_tree,
)
from repro.runtime.schedule import Schedule

__all__ = [
    "AlgorithmSpec",
    "ALGORITHMS",
    "build",
    "algorithms_for",
    "COLLECTIVES",
    "spec_for",
    "iter_specs",
    "families",
]

COLLECTIVES = (
    "bcast",
    "reduce",
    "gather",
    "scatter",
    "allgather",
    "reduce_scatter",
    "allreduce",
    "alltoall",
)


@dataclass(frozen=True)
class AlgorithmSpec:
    collective: str
    name: str
    family: str  # 'bine' | 'binomial' | 'ring' | 'bruck' | 'swing' | 'linear' | 'sota'
    builder: Callable[..., Schedule]
    pow2_only: bool = True
    needs_divisible: bool = False
    description: str = ""
    #: optional sweep cap: schedules with Θ(p²) wire segments (per-block
    #: strategies) are skipped above this rank count
    max_p: int | None = None

    def build(self, p: int, n: int, root: int = 0, op: str = "sum") -> Schedule:
        return self.builder(p, n, root, op)

    @property
    def constraints(self) -> tuple[str, ...]:
        """Human-readable applicability constraints, for catalogs and CLIs.

        >>> from repro.collectives.registry import spec_for
        >>> spec_for("allreduce", "bine-rsag").constraints
        ('p power of two', 'n divisible by p')
        """
        out: list[str] = []
        if self.pow2_only:
            out.append("p power of two")
        if self.needs_divisible:
            out.append("n divisible by p")
        if self.max_p is not None:
            out.append(f"sweeps cap p at {self.max_p}")
        return tuple(out)


ALGORITHMS: dict[tuple[str, str], AlgorithmSpec] = {}


def _register(spec: AlgorithmSpec) -> None:
    key = (spec.collective, spec.name)
    if key in ALGORITHMS:
        raise ValueError(f"duplicate algorithm {key}")
    ALGORITHMS[key] = spec


def build(collective: str, name: str, p: int, n: int, root: int = 0, op: str = "sum") -> Schedule:
    """Build a schedule for a registered algorithm.

    >>> from repro.collectives.registry import build
    >>> build("bcast", "bine", 8, 8).num_steps
    3
    """
    return spec_for(collective, name).build(p, n, root, op)


def algorithms_for(collective: str) -> list[str]:
    """Registered algorithm names for a collective.

    >>> from repro.collectives.registry import algorithms_for
    >>> "bine" in algorithms_for("bcast")
    True
    """
    return sorted(name for (c, name) in ALGORITHMS if c == collective)


def spec_for(collective: str, name: str) -> AlgorithmSpec:
    """The registered :class:`AlgorithmSpec`, with a helpful lookup error.

    >>> from repro.collectives.registry import spec_for
    >>> spec_for("allreduce", "ring").family
    'ring'
    """
    try:
        return ALGORITHMS[(collective, name)]
    except KeyError:
        raise KeyError(
            f"no algorithm {name!r} for {collective!r}; "
            f"have {algorithms_for(collective)}"
        ) from None


def iter_specs(
    collective: str | None = None, family: str | None = None
) -> list[AlgorithmSpec]:
    """Registry entries in deterministic ``(collective, name)`` order.

    Both filters are optional; this is the introspection entry point the
    CLI's ``repro list`` (and the generated algorithm catalog) sit on.

    >>> from repro.collectives.registry import iter_specs
    >>> [s.name for s in iter_specs("alltoall", family="bine")]
    ['bine']
    """
    return [
        spec
        for (coll, _), spec in sorted(ALGORITHMS.items())
        if (collective is None or coll == collective)
        and (family is None or spec.family == family)
    ]


def families() -> list[str]:
    """All algorithm families present in the registry, sorted.

    >>> from repro.collectives.registry import families
    >>> {"bine", "binomial", "ring"} <= set(families())
    True
    """
    return sorted({spec.family for spec in ALGORITHMS.values()})


# --------------------------------------------------------------------------
# bcast
# --------------------------------------------------------------------------
_register(AlgorithmSpec(
    "bcast", "binomial-dd", "binomial",
    lambda p, n, root, op: bcast_from_tree(binomial_tree_distance_doubling(p, root), n),
    description="Open MPI binomial broadcast (distance doubling, Fig. 1 top)",
))
_register(AlgorithmSpec(
    "bcast", "binomial-dh", "binomial",
    lambda p, n, root, op: bcast_from_tree(binomial_tree_distance_halving(p, root), n),
    description="MPICH binomial broadcast (distance halving, Fig. 1 bottom)",
))
_register(AlgorithmSpec(
    "bcast", "bine", "bine",
    lambda p, n, root, op: bcast_from_tree(bine_tree_distance_halving(p, root), n),
    description="Bine distance-halving tree broadcast (Listing 1)",
))
_register(AlgorithmSpec(
    "bcast", "scatter-allgather", "binomial",
    lambda p, n, root, op: bcast_scatter_allgather_binomial(p, n, root),
    description="MPICH large-vector broadcast: binomial scatter + recdoub allgather",
))
_register(AlgorithmSpec(
    "bcast", "bine-scatter-allgather", "bine",
    lambda p, n, root, op: bcast_scatter_allgather_bine(p, n, root),
    needs_divisible=True,
    description="Bine large-vector broadcast: dd-tree π scatter + dh butterfly allgather",
))

# --------------------------------------------------------------------------
# reduce
# --------------------------------------------------------------------------
_register(AlgorithmSpec(
    "reduce", "binomial-dd", "binomial",
    lambda p, n, root, op: reduce_from_tree(binomial_tree_distance_doubling(p, root), n, op),
    description="binomial tree reduce (distance doubling)",
))
_register(AlgorithmSpec(
    "reduce", "binomial-dh", "binomial",
    lambda p, n, root, op: reduce_from_tree(binomial_tree_distance_halving(p, root), n, op),
    description="binomial tree reduce (distance halving)",
))
_register(AlgorithmSpec(
    "reduce", "bine", "bine",
    lambda p, n, root, op: reduce_from_tree(bine_tree_distance_halving(p, root), n, op),
    description="Bine distance-halving tree reduce (small vectors)",
))
_register(AlgorithmSpec(
    "reduce", "rabenseifner", "binomial",
    lambda p, n, root, op: reduce_rsag_rabenseifner(p, n, root, op),
    description="reduce-scatter + binomial gather (the standard butterfly large reduce)",
))
_register(AlgorithmSpec(
    "reduce", "bine-rsag", "bine",
    lambda p, n, root, op: reduce_rsag_bine(p, n, root, op),
    needs_divisible=True,
    description="Bine large reduce: dd butterfly RS (send) + reversed dd-tree gather",
))

# --------------------------------------------------------------------------
# gather / scatter
# --------------------------------------------------------------------------
_register(AlgorithmSpec(
    "gather", "binomial", "binomial",
    lambda p, n, root, op: gather_from_tree(binomial_tree_distance_halving(p, root), n),
    description="binomial gather (contiguous subtree ranges)",
))
_register(AlgorithmSpec(
    "gather", "bine", "bine",
    lambda p, n, root, op: gather_from_tree(bine_tree_distance_halving(p, root), n),
    description="Bine gather with circular ranges (Fig. 7)",
))
_register(AlgorithmSpec(
    "gather", "linear", "linear",
    lambda p, n, root, op: ringmod.linear_gather(p, n, root),
    pow2_only=False,
    description="flat gather: everyone sends directly to the root",
))
_register(AlgorithmSpec(
    "scatter", "binomial", "binomial",
    lambda p, n, root, op: scatter_from_tree(binomial_tree_distance_halving(p, root), n),
    description="binomial scatter",
))
_register(AlgorithmSpec(
    "scatter", "bine", "bine",
    lambda p, n, root, op: scatter_from_tree(bine_tree_distance_halving(p, root), n),
    description="Bine scatter (Sec. 4.2)",
))
_register(AlgorithmSpec(
    "scatter", "linear", "linear",
    lambda p, n, root, op: ringmod.linear_scatter(p, n, root),
    pow2_only=False,
    description="flat scatter",
))

# --------------------------------------------------------------------------
# allgather
# --------------------------------------------------------------------------
_register(AlgorithmSpec(
    "allgather", "recursive-doubling", "binomial",
    lambda p, n, root, op: allgather_butterfly(recursive_halving_butterfly(p), n, Strategy.NATURAL),
    description="standard recursive-doubling allgather (contiguous)",
))
_register(AlgorithmSpec(
    "allgather", "ring", "ring",
    lambda p, n, root, op: ringmod.ring_allgather(p, n),
    pow2_only=False,
    description="ring allgather",
))
_register(AlgorithmSpec(
    "allgather", "bruck", "bruck",
    lambda p, n, root, op: allgather_bruck(p, n),
    pow2_only=False,
    description="Bruck allgather",
))
_register(AlgorithmSpec(
    "allgather", "sparbit", "sota",
    lambda p, n, root, op: allgather_sparbit(p, n),
    pow2_only=False, max_p=512,
    description="sparbit-like allgather (log steps, per-block sends)",
))
_register(AlgorithmSpec(
    "allgather", "swing", "swing",
    lambda p, n, root, op: allgather_butterfly(swing_butterfly(p), n, Strategy.NATURAL),
    description="Swing allgather (Bine matchings, natural non-contiguous blocks)",
))
for _strat, _div in (
    (Strategy.NATURAL, False), (Strategy.BLOCKS, False),
    (Strategy.PERMUTE, True), (Strategy.SEND, True),
):
    _register(AlgorithmSpec(
        "allgather", f"bine-{_strat.value}", "bine",
        (lambda strat: lambda p, n, root, op: allgather_butterfly(
            bine_butterfly_doubling(p), n, strat))(_strat),
        needs_divisible=_div,
        max_p=512 if _strat is Strategy.BLOCKS else None,
        description=f"Bine allgather, {_strat.value} strategy (Sec. 4.3.1)",
    ))
_register(AlgorithmSpec(
    "allgather", "bine-two-transmissions", "bine",
    lambda p, n, root, op: allgather_butterfly(
        bine_butterfly_halving(p), n, Strategy.TWO_TRANSMISSIONS),
    description="Bine allgather via dist-halving-RS reversal (≤2 segments)",
))

# --------------------------------------------------------------------------
# reduce_scatter
# --------------------------------------------------------------------------
_register(AlgorithmSpec(
    "reduce_scatter", "recursive-halving", "binomial",
    lambda p, n, root, op: reduce_scatter_butterfly(
        recursive_halving_butterfly(p), n, op, Strategy.NATURAL),
    description="standard recursive-halving reduce-scatter",
))
_register(AlgorithmSpec(
    "reduce_scatter", "ring", "ring",
    lambda p, n, root, op: ringmod.ring_reduce_scatter(p, n, op),
    pow2_only=False,
    description="ring reduce-scatter",
))
_register(AlgorithmSpec(
    "reduce_scatter", "swing", "swing",
    lambda p, n, root, op: reduce_scatter_butterfly(
        swing_butterfly(p), n, op, Strategy.NATURAL),
    description="Swing reduce-scatter (natural non-contiguous blocks)",
))
for _strat, _div in (
    (Strategy.NATURAL, False), (Strategy.BLOCKS, False),
    (Strategy.PERMUTE, True), (Strategy.SEND, True),
):
    _register(AlgorithmSpec(
        "reduce_scatter", f"bine-{_strat.value}", "bine",
        (lambda strat: lambda p, n, root, op: reduce_scatter_butterfly(
            bine_butterfly_doubling(p), n, op, strat))(_strat),
        needs_divisible=_div,
        max_p=512 if _strat is Strategy.BLOCKS else None,
        description=f"Bine reduce-scatter, {_strat.value} strategy",
    ))
_register(AlgorithmSpec(
    "reduce_scatter", "bine-two-transmissions", "bine",
    lambda p, n, root, op: reduce_scatter_butterfly(
        bine_butterfly_halving(p), n, op, Strategy.TWO_TRANSMISSIONS),
    description="Bine reduce-scatter on the dist-halving butterfly (≤2 segments)",
))

# --------------------------------------------------------------------------
# allreduce
# --------------------------------------------------------------------------
_register(AlgorithmSpec(
    "allreduce", "recursive-doubling", "binomial",
    lambda p, n, root, op: allreduce_recursive(recursive_doubling_butterfly(p), n, op),
    description="recursive-doubling allreduce (small vectors)",
))
_register(AlgorithmSpec(
    "allreduce", "ring", "ring",
    lambda p, n, root, op: ringmod.ring_allreduce(p, n, op),
    pow2_only=False,
    description="ring allreduce (RS + AG)",
))
_register(AlgorithmSpec(
    "allreduce", "rabenseifner", "binomial",
    lambda p, n, root, op: allreduce_reduce_scatter_allgather(
        recursive_halving_butterfly(p), n, op, Strategy.NATURAL),
    description="Rabenseifner allreduce: recursive halving RS + recdoub AG "
                "(the standard butterfly large allreduce)",
))
_register(AlgorithmSpec(
    "allreduce", "swing", "swing",
    lambda p, n, root, op: allreduce_reduce_scatter_allgather(
        swing_butterfly(p), n, op, Strategy.NATURAL),
    description="Swing allreduce (non-contiguous multi-segment sends)",
))
_register(AlgorithmSpec(
    "allreduce", "bine-small", "bine",
    lambda p, n, root, op: allreduce_recursive(bine_butterfly_halving(p), n, op),
    description="Bine small-vector allreduce: recursive doubling on Bine butterfly",
))
_register(AlgorithmSpec(
    "allreduce", "bine-rsag", "bine",
    lambda p, n, root, op: allreduce_reduce_scatter_allgather(
        bine_butterfly_doubling(p), n, op, Strategy.SEND),
    needs_divisible=True,
    description="Bine large-vector allreduce: RS + AG in send mode (zero reordering)",
))
_register(AlgorithmSpec(
    "allreduce", "bine-rsag-segmented", "bine",
    lambda p, n, root, op: allreduce_reduce_scatter_allgather(
        bine_butterfly_doubling(p), n, op, Strategy.SEND, segmented=True),
    needs_divisible=True,
    description="segmented Bine allreduce (pipelined chunks, Sec. 5.2.2)",
))

# --------------------------------------------------------------------------
# alltoall
# --------------------------------------------------------------------------
_register(AlgorithmSpec(
    "alltoall", "bruck", "bruck",
    lambda p, n, root, op: a2a.alltoall_bruck(p, n),
    pow2_only=False, needs_divisible=True,
    description="Bruck alltoall (log steps)",
))
_register(AlgorithmSpec(
    "alltoall", "pairwise", "linear",
    lambda p, n, root, op: a2a.alltoall_pairwise(p, n),
    pow2_only=False, needs_divisible=True,
    description="pairwise-exchange alltoall (p−1 steps)",
))
_register(AlgorithmSpec(
    "alltoall", "bine", "bine",
    lambda p, n, root, op: a2a.alltoall_bine(p, n),
    needs_divisible=True,
    description="Bine butterfly alltoall (Sec. 4.4)",
))
