"""Shared helpers for collective schedule builders.

Conventions used across the package:

* every rank owns an ``n``-element main buffer named ``"vec"``; composed
  algorithms may add ``"tmp"`` (permuted staging) and alltoall uses
  ``"slots"``/``"recv"``;
* blocks are the MPI-style split of ``n`` elements over ``p`` ranks
  (:class:`repro.core.blocks.Partition`);
* the *global Bine permutation* π(b) = ``reverse(ν(b))`` (paper Fig. 8) maps
  block indices to positions; all permuted-layout algorithms are
  position-preserving flows in π space, which is what makes the "send"
  strategy able to skip data movement entirely.
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache

from repro.core.blocks import Partition
from repro.core.bine_tree import nu_labels
from repro.core.negabinary import bit_reverse
from repro.core.tree import log2_exact
from repro.runtime.schedule import Segment

__all__ = [
    "Strategy",
    "VEC",
    "TMP",
    "global_pi",
    "global_pi_inv",
    "block_segments",
    "blocks_as_segments",
    "per_block_segments",
    "require_pow2",
    "require_divisible",
]

#: main working buffer name
VEC = "vec"
#: permuted staging buffer name
TMP = "tmp"


class Strategy(str, Enum):
    """Non-contiguous-data handling strategies of paper Sec. 4.3.1."""

    #: every block is its own wire segment (max overlap, max overhead)
    BLOCKS = "blocks"
    #: pre/post local permutation into π space; single-segment sends
    PERMUTE = "permute"
    #: transmit as if permuted; single-segment sends; result lands permuted
    SEND = "send"
    #: distance-halving direction with circular ranges; ≤ 2 segments
    TWO_TRANSMISSIONS = "two_transmissions"
    #: coalesced natural-layout segments (what Swing does)
    NATURAL = "natural"


@lru_cache(maxsize=None)
def _pi_table(p: int) -> tuple[int, ...]:
    """Memoized π table — builders look π up per transfer, so cache per p."""
    s = log2_exact(p)
    return tuple(bit_reverse(nu, s) for nu in nu_labels(p))


@lru_cache(maxsize=None)
def _pi_inv_table(p: int) -> tuple[int, ...]:
    inv = [0] * p
    for b, pos in enumerate(_pi_table(p)):
        inv[pos] = b
    return tuple(inv)


def global_pi(p: int) -> list[int]:
    """π(b) = reverse(ν(b)): position of block ``b`` in the permuted layout."""
    return list(_pi_table(p))


def global_pi_inv(p: int) -> list[int]:
    """Block stored at each position: ``inv[π(b)] = b``."""
    return list(_pi_inv_table(p))


def block_segments(part: Partition, blocks) -> tuple[Segment, ...]:
    """Coalesced element segments covering ``blocks`` (natural layout)."""
    return tuple(part.segments(blocks))


def per_block_segments(part: Partition, blocks) -> tuple[Segment, ...]:
    """One element segment per block, never coalesced (block-by-block)."""
    return tuple(part.bounds(b) for b in sorted(set(blocks)))


def blocks_as_segments(part: Partition, blocks, strategy: Strategy) -> tuple[Segment, ...]:
    """Segments for a block set under the requested segmentation policy."""
    if strategy is Strategy.BLOCKS:
        return per_block_segments(part, blocks)
    return block_segments(part, blocks)


def require_pow2(p: int, what: str) -> int:
    try:
        return log2_exact(p)
    except ValueError:
        raise ValueError(
            f"{what} requires a power-of-two rank count (got p={p}); "
            "wrap with repro.collectives.nonpow2 helpers for other counts"
        ) from None


def require_divisible(n: int, p: int, what: str) -> int:
    if n % p != 0:
        raise ValueError(
            f"{what} requires the vector length to be divisible by p "
            f"(got n={n}, p={p}); use the 'natural' or 'blocks' strategy instead"
        )
    return n // p
