"""Fast responsibility-set backends for large rank counts.

The generic recursion in :mod:`repro.core.coverage` materialises
``Θ(p²)`` set elements per butterfly — fine for correctness tests at small
``p``, prohibitive for profiling Leonardo-scale (2048-rank) sweeps.  This
module provides per-kind fast backends used by the schedule builders:

* ``bine-doubling`` / ``swing`` — the paper's ν-mask closed form
  (Sec. 3.2.3) vectorised: ``resp(r, j) = (r ± {b : ν(b) & ones(j) = 0})``;
* ``recdoub`` / ``rechalv`` — classic hypercube closed forms;
* ``bine-halving`` (and any butterfly with circular-contiguous sets) — an
  ``O(p log p)`` circular-range recursion: ranges of partners merge
  adjacently, so only ``(start, length)`` pairs are memoised.

All backends return **sorted NumPy block arrays**, and are cross-checked
against the generic recursion in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.bine_tree import nu_labels
from repro.core.butterfly import Butterfly
from repro.core.coverage import responsibility

__all__ = ["resp_backend", "sorted_runs"]


def sorted_runs(arr: np.ndarray) -> list[tuple[int, int]]:
    """Maximal runs of consecutive values in a sorted int array."""
    n = arr.size
    if n == 0:
        return []
    if n <= 128:
        # small arrays: a plain scan beats the fixed cost of the array ops
        vals = arr.tolist()
        out = []
        lo = prev = vals[0]
        for v in vals[1:]:
            if v != prev + 1:
                out.append((lo, prev + 1))
                lo = v
            prev = v
        out.append((lo, prev + 1))
        return out
    breaks = np.nonzero(arr[1:] != arr[:-1] + 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [arr.size - 1]))
    # bulk .tolist() yields Python ints far faster than per-element int()
    return list(zip(arr[starts].tolist(), (arr[ends] + 1).tolist()))


def _bine_dd_backend(bf: Butterfly):
    p = bf.p
    nus = np.array(nu_labels(p), dtype=np.int64)
    base: dict[int, np.ndarray] = {}

    def resp(rank: int, step: int) -> np.ndarray:
        if step not in base:
            mask = (1 << step) - 1
            base[step] = np.nonzero((nus & mask) == 0)[0]
        b = base[step]
        if rank % 2 == 0:
            return np.sort((rank + b) % p)
        return np.sort((rank - b) % p)

    return resp


def _recdoub_backend(bf: Butterfly):
    p = bf.p

    def resp(rank: int, step: int) -> np.ndarray:
        mask = (1 << step) - 1
        all_b = np.arange(p)
        return all_b[(all_b ^ rank) & mask == 0]

    return resp


def _rechalv_backend(bf: Butterfly):
    p = bf.p
    s = p.bit_length() - 1

    def resp(rank: int, step: int) -> np.ndarray:
        width = s - step
        lo = (rank >> width) << width
        return np.arange(lo, lo + (1 << width))

    return resp


def _circular_backend(bf: Butterfly):
    """O(p log p) recursion over (start, length) circular ranges."""
    p, s = bf.p, bf.num_steps
    memo: dict[tuple[int, int], tuple[int, int]] = {}

    def crange(rank: int, step: int) -> tuple[int, int]:
        key = (rank, step)
        if key in memo:
            return memo[key]
        if step == s:
            out = (rank, 1)
        else:
            a_start, a_len = crange(rank, step + 1)
            b_start, b_len = crange(bf.partner(rank, step), step + 1)
            if (a_start + a_len) % p == b_start:
                out = (a_start, a_len + b_len)
            elif (b_start + b_len) % p == a_start:
                out = (b_start, a_len + b_len)
            else:
                raise ValueError(
                    f"{bf.kind}: responsibility sets not circular-contiguous "
                    f"at rank {rank} step {step}"
                )
        memo[key] = out
        return out

    def resp(rank: int, step: int) -> np.ndarray:
        start, length = crange(rank, step)
        return np.sort(np.arange(start, start + length) % p)

    return resp


def _generic_backend(bf: Butterfly):
    def resp(rank: int, step: int) -> np.ndarray:
        return np.array(sorted(responsibility(bf, rank, step)), dtype=np.int64)

    return resp


def resp_backend(bf: Butterfly):
    """Pick the fastest valid backend for ``bf``; returns resp(rank, step)."""
    if bf.kind in ("bine-doubling", "swing"):
        return _bine_dd_backend(bf)
    if bf.kind == "recdoub":
        return _recdoub_backend(bf)
    if bf.kind == "rechalv":
        return _rechalv_backend(bf)
    if bf.kind in ("bine-halving",):
        return _circular_backend(bf)
    return _generic_backend(bf)
