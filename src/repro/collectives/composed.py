"""Large-vector composed collectives (paper Secs. 4.4-4.5).

* **broadcast (large)** — scatter + allgather.  MPICH composes a binomial
  distance-halving scatter with a recursive-doubling allgather; the Bine
  version composes a distance-doubling Bine *tree* scatter with the
  distance-halving Bine butterfly allgather, both in π ("send") space, so no
  data is ever reordered locally and every transfer is contiguous.
* **reduce (large, Rabenseifner)** — reduce-scatter + gather.  Bine runs the
  distance-doubling butterfly reduce-scatter in send mode and gathers along
  the reversed distance-doubling Bine tree: the gather inverts the implicit
  permutation, delivering the natural vector at the root with contiguous
  sends (for root 0; other roots are correct but may need extra segments).
* **hierarchical allreduce** (Sec. 6.2) — intra-node reduce-scatter →
  inter-node Bine allreduce per GPU slice → intra-node allgather.
"""

from __future__ import annotations

from repro.core.bine_tree import (
    bine_tree_distance_doubling,
    bine_tree_distance_halving,
)
from repro.core.binomial_tree import binomial_tree_distance_halving
from repro.core.butterfly import (
    bine_butterfly_doubling,
    recursive_halving_butterfly,
)
from repro.core.coverage import segments_of
from repro.core.tree import Tree
from repro.collectives.butterfly_collectives import (
    allgather_butterfly,
    allreduce_reduce_scatter_allgather,
    reduce_scatter_butterfly,
)
from repro.collectives.common import (
    Strategy,
    VEC,
    global_pi,
    require_divisible,
    require_pow2,
)
from repro.collectives.tree_collectives import gather_from_tree, scatter_from_tree
from repro.runtime.schedule import Schedule, Step, Transfer

__all__ = [
    "bcast_scatter_allgather_binomial",
    "bcast_scatter_allgather_bine",
    "reduce_rsag_rabenseifner",
    "reduce_rsag_bine",
    "hierarchical_allreduce_bine",
    "remap_schedule",
]


def _concat(meta: dict, *parts: Schedule) -> Schedule:
    p = parts[0].p
    sched = Schedule(p, meta=meta)
    for part in parts:
        sched.steps.extend(part.steps)
    return sched.finalize()


def bcast_scatter_allgather_binomial(p: int, n: int, root: int = 0) -> Schedule:
    """MPICH-style large broadcast: binomial-dh scatter + recursive-doubling AG.

    The paper's Fig. 1 / Sec. 5.1.1 baseline whose allgather phase floods
    global links — the configuration where Bine cuts up to 94 % of traffic.
    """
    require_pow2(p, "scatter+allgather broadcast")
    tree = binomial_tree_distance_halving(p, root)
    scatter = scatter_from_tree(tree, n)
    ag = allgather_butterfly(recursive_halving_butterfly(p), n, Strategy.NATURAL)
    return _concat(
        {"collective": "bcast", "algorithm": "scatter-allgather-binomial",
         "p": p, "n": n, "root": root},
        scatter, ag,
    )


def _pi_tree_scatter(tree: Tree, n: int) -> Schedule:
    """Scatter along a tree whose subtree *π windows* are the payload.

    The root holds the natural vector; each edge forwards the receiving
    child's subtree π-position window untouched (send semantics): the data
    that lands at rank ``r`` is the natural block π(r) — exactly the state
    the π-space allgather resumes from.
    """
    p = tree.p
    bs = require_divisible(n, p, "bine large broadcast")
    pi = global_pi(p)
    sched = Schedule(
        p, meta={"collective": "scatter", "algorithm": f"pi-{tree.kind}",
                 "p": p, "n": n, "root": tree.root},
    )
    for step_idx in range(tree.num_steps):
        transfers = []
        for (u, v) in tree.edges[step_idx]:
            positions = {pi[x] for x in tree.subtree(v)}
            segs = tuple(
                (lo * bs, hi * bs) for lo, hi in segments_of(positions)
            )
            transfers.append(
                Transfer(
                    src=u, dst=v, src_buf=VEC, dst_buf=VEC,
                    src_segments=segs, dst_segments=segs,
                    tag=f"pi-scatter[{step_idx}]",
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=f"pi scatter {step_idx}"))
    return sched.finalize()


def bcast_scatter_allgather_bine(p: int, n: int, root: int = 0) -> Schedule:
    """Bine large broadcast: dd-tree π scatter + dh butterfly allgather (Sec. 4.5).

    No local permutes anywhere: the scatter distributes π windows and the
    send-mode allgather reassembles the natural vector on every rank.
    """
    require_pow2(p, "bine large broadcast")
    tree = bine_tree_distance_doubling(p, root)
    scatter = _pi_tree_scatter(tree, n)
    ag = allgather_butterfly(
        bine_butterfly_doubling(p), n, Strategy.SEND, initial_exchange=False
    )
    return _concat(
        {"collective": "bcast", "algorithm": "scatter-allgather-bine",
         "p": p, "n": n, "root": root},
        scatter, ag,
    )


def reduce_rsag_rabenseifner(p: int, n: int, root: int = 0, op: str = "sum") -> Schedule:
    """Rabenseifner reduce: recursive-halving RS + binomial gather to root."""
    require_pow2(p, "Rabenseifner reduce")
    rs = reduce_scatter_butterfly(
        recursive_halving_butterfly(p), n, op, Strategy.NATURAL
    )
    gather = gather_from_tree(binomial_tree_distance_halving(p, root), n)
    return _concat(
        {"collective": "reduce", "algorithm": "rabenseifner",
         "p": p, "n": n, "root": root, "op": op},
        rs, gather,
    )


def _pi_tree_gather(tree: Tree, n: int) -> Schedule:
    """Gather π windows to the tree root (reverse of :func:`_pi_tree_scatter`)."""
    p = tree.p
    bs = require_divisible(n, p, "bine large reduce")
    pi = global_pi(p)
    sched = Schedule(
        p, meta={"collective": "gather", "algorithm": f"pi-{tree.kind}",
                 "p": p, "n": n, "root": tree.root},
    )
    for step_idx in reversed(range(tree.num_steps)):
        transfers = []
        for (u, v) in tree.edges[step_idx]:
            positions = {pi[x] for x in tree.subtree(v)}
            segs = tuple(
                (lo * bs, hi * bs) for lo, hi in segments_of(positions)
            )
            transfers.append(
                Transfer(
                    src=v, dst=u, src_buf=VEC, dst_buf=VEC,
                    src_segments=segs, dst_segments=segs,
                    tag=f"pi-gather[{step_idx}]",
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=f"pi gather {step_idx}"))
    return sched.finalize()


def reduce_rsag_bine(p: int, n: int, root: int = 0, op: str = "sum") -> Schedule:
    """Bine large reduce: dd-butterfly RS (send) + reversed dd-tree gather.

    After the send-mode reduce-scatter rank ``r`` holds reduced block π(r) at
    position π(r); gathering those windows up the distance-doubling tree
    reassembles the natural reduced vector at the root — "the gather inverts
    the block permutation done by the reduce-scatter" (Sec. 4.5).
    """
    require_pow2(p, "bine large reduce")
    rs = reduce_scatter_butterfly(
        bine_butterfly_doubling(p), n, op, Strategy.SEND, fixup=False
    )
    gather = _pi_tree_gather(bine_tree_distance_doubling(p, root), n)
    return _concat(
        {"collective": "reduce", "algorithm": "rsag-bine",
         "p": p, "n": n, "root": root, "op": op},
        rs, gather,
    )


def remap_schedule(sched: Schedule, rank_map, elem_offset: int) -> Schedule:
    """Embed a schedule into a larger job: relabel ranks and shift elements.

    ``rank_map[i]`` is the global rank acting as local rank ``i``;
    ``elem_offset`` shifts every segment (the sub-vector this instance
    operates on).  Buffer names are preserved.
    """

    def shift(segs):
        return tuple((lo + elem_offset, hi + elem_offset) for lo, hi in segs)

    out = Schedule(max(rank_map) + 1, meta=dict(sched.meta))
    for step in sched.steps:
        out.add(
            Step(
                transfers=tuple(
                    Transfer(
                        src=rank_map[t.src], dst=rank_map[t.dst],
                        src_buf=t.src_buf, dst_buf=t.dst_buf,
                        src_segments=shift(t.src_segments),
                        dst_segments=shift(t.dst_segments),
                        op=t.op, tag=t.tag,
                    )
                    for t in step.transfers
                ),
                pre=tuple(
                    type(lc)(
                        rank=rank_map[lc.rank], src_buf=lc.src_buf,
                        dst_buf=lc.dst_buf,
                        src_segments=shift(lc.src_segments),
                        dst_segments=shift(lc.dst_segments),
                        op=lc.op, tag=lc.tag,
                    )
                    for lc in step.pre
                ),
                post=tuple(
                    type(lc)(
                        rank=rank_map[lc.rank], src_buf=lc.src_buf,
                        dst_buf=lc.dst_buf,
                        src_segments=shift(lc.src_segments),
                        dst_segments=shift(lc.dst_segments),
                        op=lc.op, tag=lc.tag,
                    )
                    for lc in step.post
                ),
                label=step.label,
            )
        )
    return out


def _merge_parallel(p: int, meta: dict, schedules: list[Schedule]) -> Schedule:
    """Overlay independent schedules step-by-step (they must not conflict)."""
    out = Schedule(p, meta=meta)
    depth = max(s.num_steps for s in schedules)
    for i in range(depth):
        transfers: list = []
        pre: list = []
        post: list = []
        label = ""
        for s in schedules:
            if i < s.num_steps:
                st = s.steps[i]
                transfers.extend(st.transfers)
                pre.extend(st.pre)
                post.extend(st.post)
                label = label or st.label
        out.add(Step(transfers=tuple(transfers), pre=tuple(pre), post=tuple(post), label=label))
    return out.finalize()


def hierarchical_allreduce_bine(
    num_nodes: int, gpus_per_node: int, n: int, op: str = "sum"
) -> Schedule:
    """Hierarchical GPU allreduce (paper Sec. 6.2).

    Phase 1: intra-node reduce-scatter over each node's fully connected
    GPUs (one direct exchange round per peer).  Phase 2: ``gpus_per_node``
    concurrent inter-node Bine allreduces, each over the slice its local-id
    owns.  Phase 3: intra-node allgather mirroring phase 1.

    Global rank numbering is ``node * gpus_per_node + local_gpu``.
    """
    require_pow2(num_nodes, "hierarchical bine allreduce")
    require_pow2(gpus_per_node, "hierarchical bine allreduce")
    p = num_nodes * gpus_per_node
    require_divisible(n, gpus_per_node, "hierarchical bine allreduce")
    slice_n = n // gpus_per_node

    def gslice(g: int) -> tuple[int, int]:
        return (g * slice_n, (g + 1) * slice_n)

    meta = {
        "collective": "allreduce", "algorithm": "hierarchical-bine",
        "p": p, "n": n, "op": op,
        "num_nodes": num_nodes, "gpus_per_node": gpus_per_node,
        "hierarchical": True,
    }
    sched = Schedule(p, meta=meta)

    # Phase 1 — intra-node reduce-scatter: every GPU pushes each peer's slice
    # to that peer in one fully-connected round (all-port concurrent).
    transfers = []
    for node in range(num_nodes):
        base = node * gpus_per_node
        for g_src in range(gpus_per_node):
            for g_dst in range(gpus_per_node):
                if g_src == g_dst:
                    continue
                seg = (gslice(g_dst),)
                transfers.append(
                    Transfer(
                        src=base + g_src, dst=base + g_dst,
                        src_buf=VEC, dst_buf=VEC,
                        src_segments=seg, dst_segments=seg, op=op,
                        tag="intra rs",
                    )
                )
    sched.add(Step(transfers=tuple(transfers), label="intra-node reduce-scatter"))

    # Phase 2 — inter-node Bine allreduce per local GPU id on its slice.
    inner = [
        remap_schedule(
            allreduce_reduce_scatter_allgather(
                bine_butterfly_doubling(num_nodes), slice_n, op, Strategy.SEND
            ),
            rank_map=[node * gpus_per_node + g for node in range(num_nodes)],
            elem_offset=g * slice_n,
        )
        for g in range(gpus_per_node)
    ]
    merged = _merge_parallel(p, {}, inner)
    sched.steps.extend(merged.steps)

    # Phase 3 — intra-node allgather (reverse of phase 1, no reduction).
    transfers = []
    for node in range(num_nodes):
        base = node * gpus_per_node
        for g_src in range(gpus_per_node):
            seg = (gslice(g_src),)
            for g_dst in range(gpus_per_node):
                if g_src == g_dst:
                    continue
                transfers.append(
                    Transfer(
                        src=base + g_src, dst=base + g_dst,
                        src_buf=VEC, dst_buf=VEC,
                        src_segments=seg, dst_segments=seg,
                        tag="intra ag",
                    )
                )
    sched.add(Step(transfers=tuple(transfers), label="intra-node allgather"))
    return sched.finalize()
