"""Ring and linear baselines (paper Sec. 5: ring allreduce, linear algorithms).

Ring algorithms move one block to a neighbour per step for ``p − 1`` steps:
bandwidth-optimal and perfectly local, but linear in step count — the
regime where the paper shows Bine winning on small/medium vectors and large
node counts (Fig. 9a/10a).  Linear (flat) gather/scatter/alltoall send every
block directly and model the "linear algorithms often outperform logarithmic
ones at small scale" effect (Sec. 5.3.2).
"""

from __future__ import annotations

from repro.core.blocks import Partition
from repro.collectives.common import VEC
from repro.runtime.schedule import Schedule, Step, Transfer

__all__ = [
    "ring_reduce_scatter",
    "ring_allgather",
    "ring_allreduce",
    "linear_gather",
    "linear_scatter",
]


def _seg(part: Partition, block: int):
    return (part.bounds(block),)


def ring_reduce_scatter(p: int, n: int, op: str = "sum") -> Schedule:
    """Ring reduce-scatter: rank ``r`` ends holding reduced block ``r``.

    At step ``k`` rank ``r`` forwards its running partial of block
    ``(r − 1 − k) mod p`` to ``r + 1`` and reduces the incoming partial of
    block ``(r − 2 − k) mod p``.
    """
    if p < 2:
        raise ValueError("ring needs p >= 2")
    part = Partition(n, p)
    sched = Schedule(
        p, meta={"collective": "reduce_scatter", "algorithm": "ring", "p": p, "n": n, "op": op}
    )
    for k in range(p - 1):
        transfers = []
        for r in range(p):
            block = (r - 1 - k) % p
            transfers.append(
                Transfer(
                    src=r, dst=(r + 1) % p, src_buf=VEC, dst_buf=VEC,
                    src_segments=_seg(part, block), dst_segments=_seg(part, block),
                    op=op, tag=f"ring-rs[{k}]",
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=f"ring rs step {k}"))
    return sched.finalize()


def ring_allgather(p: int, n: int) -> Schedule:
    """Ring allgather: each rank starts with block ``r``, ends with all."""
    if p < 2:
        raise ValueError("ring needs p >= 2")
    part = Partition(n, p)
    sched = Schedule(
        p, meta={"collective": "allgather", "algorithm": "ring", "p": p, "n": n}
    )
    for k in range(p - 1):
        transfers = []
        for r in range(p):
            block = (r - k) % p
            transfers.append(
                Transfer(
                    src=r, dst=(r + 1) % p, src_buf=VEC, dst_buf=VEC,
                    src_segments=_seg(part, block), dst_segments=_seg(part, block),
                    tag=f"ring-ag[{k}]",
                )
            )
        sched.add(Step(transfers=tuple(transfers), label=f"ring ag step {k}"))
    return sched.finalize()


def ring_allreduce(p: int, n: int, op: str = "sum") -> Schedule:
    """Ring allreduce = ring reduce-scatter + ring allgather (NCCL-style)."""
    rs = ring_reduce_scatter(p, n, op)
    ag = ring_allgather(p, n)
    sched = Schedule(
        p,
        meta={
            "collective": "allreduce", "algorithm": "ring", "p": p, "n": n, "op": op,
            # Rings inherently pipeline fine-grained chunks (Sec. 5.2.2).
            "segmented": True,
        },
    )
    sched.steps = list(rs.steps) + list(ag.steps)
    return sched.finalize()


def linear_gather(p: int, n: int, root: int = 0) -> Schedule:
    """Flat gather: every rank sends its block straight to the root."""
    part = Partition(n, p)
    transfers = tuple(
        Transfer(
            src=r, dst=root, src_buf=VEC, dst_buf=VEC,
            src_segments=_seg(part, r), dst_segments=_seg(part, r),
            tag="linear-gather",
        )
        for r in range(p)
        if r != root
    )
    sched = Schedule(
        p, meta={"collective": "gather", "algorithm": "linear", "p": p, "n": n, "root": root}
    )
    sched.add(Step(transfers=transfers, label="linear gather"))
    return sched.finalize()


def linear_scatter(p: int, n: int, root: int = 0) -> Schedule:
    """Flat scatter: the root sends each rank its block directly."""
    part = Partition(n, p)
    transfers = tuple(
        Transfer(
            src=root, dst=r, src_buf=VEC, dst_buf=VEC,
            src_segments=_seg(part, r), dst_segments=_seg(part, r),
            tag="linear-scatter",
        )
        for r in range(p)
        if r != root
    )
    sched = Schedule(
        p, meta={"collective": "scatter", "algorithm": "linear", "p": p, "n": n, "root": root}
    )
    sched.add(Step(transfers=transfers, label="linear scatter"))
    return sched.finalize()
