"""The eight collectives of the paper, Bine and baseline algorithms alike.

Use :func:`repro.collectives.registry.build` to construct schedules by name:

>>> from repro.collectives.registry import build
>>> sched = build("allreduce", "bine-rsag", p=16, n=1024)

and :func:`repro.collectives.verify.run_and_check` to execute + verify one.
"""

from repro.collectives.common import Strategy
from repro.collectives.registry import ALGORITHMS, COLLECTIVES, algorithms_for, build
from repro.collectives.verify import run_and_check

__all__ = [
    "Strategy",
    "ALGORITHMS",
    "COLLECTIVES",
    "algorithms_for",
    "build",
    "run_and_check",
]
