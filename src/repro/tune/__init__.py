"""Algorithm-selection oracle: decision-table build + vectorized serving.

``repro tune`` compiles campaign sweep records into a versioned,
digest-sealed decision-table artifact (:mod:`repro.tune.tables`); the
serving API (:mod:`repro.tune.serve`) answers "which algorithm for
``(collective, system, p, ppn, n_bytes)``" queries from it — scalar or
vectorized, with explicit ``exact | nearest | refuse`` off-grid
policies.  See ``docs/tuning.md`` for the artifact and policy contract.
"""

from repro.tune.serve import (
    POLICIES,
    Selection,
    load_table,
    lookup,
    select_algorithm,
    select_algorithms,
)
from repro.tune.tables import (
    SCHEMA,
    SCHEMA_VERSION,
    DecisionTable,
    SubTable,
    build_decision_table,
)

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "DecisionTable",
    "SubTable",
    "build_decision_table",
    "POLICIES",
    "Selection",
    "load_table",
    "lookup",
    "select_algorithm",
    "select_algorithms",
]
