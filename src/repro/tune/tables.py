"""Decision-table construction: compile sweep records into a tuning artifact.

This is the repo's answer to "which algorithm wins for ``(collective,
system, p, ppn, n_bytes)``" made queryable: the Fig. 9a/10a heatmap
winner per grid cell, frozen into a versioned JSON artifact that a
serving layer (:mod:`repro.tune.serve`) can answer from at production
rates — the decision-table idiom of *Fast Tuning of Intra-Cluster
Collective Communications* applied to this reproduction's sweep records.

The artifact contract:

* **One sub-table per** ``(system, scenario, collective, ppn)``; each
  maps the sorted ``(p, n_bytes)`` grid of its source records to the
  winning algorithm, its family, and the winner's *margin* over the
  runner-up algorithm (``runner_up_time / winner_time``; ``null`` when
  the cell has a single applicable algorithm).  The scenario label is
  the record's static ``faults`` label, with ``@<timeline>`` appended
  for records produced under a fault timeline — DES runs under
  different timelines never share a sub-table.
* **Stalled records never pick winners.**  A DES record whose run
  stalled (partitioned fabric, ``stalled=True``) carries no meaningful
  completion time, so it is excluded before the winner computation; the
  provenance ``records_digest`` still covers the full unfiltered input.
* **Winners are the heatmap's winners.**  Cells are computed through
  :func:`repro.analysis.summarize.best_algorithm_cells` — the exact
  function behind the Fig. 9a figures — so a table and the figure
  rendered from the same records can never disagree.
* **Deterministic bytes.**  Building from the same record *set* always
  produces the same JSON bytes, whatever the record order, worker count
  or profile engine that produced them (ties break on the algorithm
  name, grids are sorted, JSON keys are sorted).
* **Two digests.** ``records_digest`` ties the table to its source sweep
  (:func:`repro.report.artifacts.records_digest`, order-independent);
  ``digest`` is an integrity hash over the artifact's own payload.  A
  loaded table whose payload fails its integrity digest raises
  :class:`~repro.runtime.errors.TuneArtifactError` (CLI exit code 7) —
  a tampered or bit-rotted tuning file must never serve answers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import obs
from repro.analysis.summarize import best_algorithm_cells
from repro.analysis.sweep import SweepRecord
from repro.report.artifacts import records_digest
from repro.runtime.errors import TuneArtifactError

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "SubTable",
    "DecisionTable",
    "build_decision_table",
]

#: schema identifier stamped into (and required of) every artifact
SCHEMA = "repro/decision-table"

#: bump when the artifact layout changes incompatibly
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SubTable:
    """The decision grid for one ``(system, scenario, collective, ppn)``.

    ``faults`` holds the scenario label: the static fault label, plus
    ``@<timeline>`` when the source records ran under a fault timeline.

    ``winner``/``family``/``margin`` are row-major matrices indexed
    ``[p_index][n_index]`` over the sorted ``p_grid`` × ``n_grid`` axes;
    a grid cell with no source records (sparse campaigns) holds ``None``
    in all three.
    """

    system: str
    faults: str
    collective: str
    ppn: int
    p_grid: tuple[int, ...]
    n_grid: tuple[int, ...]
    winner: tuple[tuple[str | None, ...], ...]
    family: tuple[tuple[str | None, ...], ...]
    margin: tuple[tuple[float | None, ...], ...]

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.system, self.faults, self.collective, self.ppn)

    @property
    def cells(self) -> int:
        """Populated (non-``None``) cells of the grid."""
        return sum(w is not None for row in self.winner for w in row)

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "faults": self.faults,
            "collective": self.collective,
            "ppn": self.ppn,
            "p_grid": list(self.p_grid),
            "n_grid": list(self.n_grid),
            "winner": [list(row) for row in self.winner],
            "family": [list(row) for row in self.family],
            "margin": [list(row) for row in self.margin],
        }

    @classmethod
    def from_dict(cls, d: Mapping, where: str) -> "SubTable":
        try:
            sub = cls(
                system=str(d["system"]),
                faults=str(d["faults"]),
                collective=str(d["collective"]),
                ppn=int(d["ppn"]),
                p_grid=tuple(int(p) for p in d["p_grid"]),
                n_grid=tuple(int(n) for n in d["n_grid"]),
                winner=tuple(tuple(row) for row in d["winner"]),
                family=tuple(tuple(row) for row in d["family"]),
                margin=tuple(tuple(row) for row in d["margin"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuneArtifactError(f"{where}: malformed sub-table ({exc})") from None
        shape_ok = all(
            len(m) == len(sub.p_grid)
            and all(len(row) == len(sub.n_grid) for row in m)
            for m in (sub.winner, sub.family, sub.margin)
        )
        if not shape_ok:
            raise TuneArtifactError(
                f"{where}: sub-table {sub.key} matrices do not match the "
                f"{len(sub.p_grid)}x{len(sub.n_grid)} grid"
            )
        if list(sub.p_grid) != sorted(set(sub.p_grid)) or list(
            sub.n_grid
        ) != sorted(set(sub.n_grid)):
            raise TuneArtifactError(
                f"{where}: sub-table {sub.key} grids must be sorted and unique"
            )
        return sub


def _payload_digest(payload: dict) -> str:
    """Integrity hash over the canonical JSON of everything but ``digest``."""
    body = {k: v for k, v in payload.items() if k != "digest"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class DecisionTable:
    """A versioned, digest-sealed set of :class:`SubTable` grids."""

    name: str
    source: str
    records_digest: str
    record_count: int
    tables: tuple[SubTable, ...]

    @property
    def cells(self) -> int:
        return sum(t.cells for t in self.tables)

    def subtable(self, key: tuple[str, str, str, int]) -> SubTable | None:
        """The sub-table for ``(system, faults, collective, ppn)``, if any."""
        for t in self.tables:
            if t.key == key:
                return t
        return None

    def to_dict(self) -> dict:
        payload = {
            "schema": SCHEMA,
            "version": SCHEMA_VERSION,
            "name": self.name,
            "source": self.source,
            "records_digest": self.records_digest,
            "record_count": self.record_count,
            "tables": [t.to_dict() for t in self.tables],
        }
        payload["digest"] = _payload_digest(payload)
        return payload

    def to_json(self) -> str:
        """Canonical artifact bytes (sorted keys — byte-deterministic)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping, label: str = "decision table") -> "DecisionTable":
        """Validate a parsed artifact; :class:`TuneArtifactError` if unsound.

        Checks, in order: schema identifier, schema version, integrity
        digest (the payload must hash to its embedded ``digest``), then
        per-sub-table shape.  Example::

            >>> t = build_decision_table([], name="empty", source="-")
            >>> DecisionTable.from_dict(t.to_dict()).record_count
            0
        """
        if not isinstance(data, Mapping) or data.get("schema") != SCHEMA:
            raise TuneArtifactError(
                f"{label}: not a decision-table artifact "
                f"(missing schema = {SCHEMA!r})"
            )
        version = data.get("version")
        if version != SCHEMA_VERSION:
            raise TuneArtifactError(
                f"{label}: unsupported schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        embedded = data.get("digest")
        actual = _payload_digest(dict(data))
        if embedded != actual:
            raise TuneArtifactError(
                f"{label}: integrity digest mismatch (artifact says "
                f"{embedded!r}, payload hashes to {actual!r}) — the table "
                "was edited or corrupted and must not serve answers"
            )
        try:
            tables = tuple(
                SubTable.from_dict(t, label) for t in data["tables"]
            )
            table = cls(
                name=str(data["name"]),
                source=str(data["source"]),
                records_digest=str(data["records_digest"]),
                record_count=int(data["record_count"]),
                tables=tables,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuneArtifactError(f"{label}: malformed artifact ({exc})") from None
        return table

    def verify_against_records(self, records: Sequence[SweepRecord]) -> None:
        """Raise :class:`TuneArtifactError` unless ``records`` built this table.

        The order-independent provenance digest must match — the gate for
        "is this tuning file still the one my campaign produced?".
        """
        actual = records_digest(records)
        if actual != self.records_digest:
            raise TuneArtifactError(
                f"decision table {self.name!r} was built from records with "
                f"digest {self.records_digest}, but the given records hash "
                f"to {actual} — rebuild the table from the current sweep"
            )


def build_decision_table(
    records: Sequence[SweepRecord], *, name: str = "", source: str = ""
) -> DecisionTable:
    """Compile sweep records into a :class:`DecisionTable`.

    Records are grouped per ``(system, scenario, collective, ppn)``,
    where the scenario is the static fault label plus ``@<timeline>``
    when the record ran under a fault timeline; each group's sorted
    ``(p, n_bytes)`` grid is resolved through
    :func:`~repro.analysis.summarize.best_algorithm_cells` — the heatmap
    winner function — so the table can never disagree with the Fig. 9a
    figures rendered from the same records.  The margin is the winner's
    lead over the best *other* algorithm in the cell.  Stalled records
    (DES runs cut off by a partitioning timeline) are dropped before
    winners are computed but still count toward ``records_digest`` /
    ``record_count`` provenance.

    Example::

        >>> recs = [
        ...     SweepRecord("lumi", "bcast", "bine", "bine", 16, 32, 1.0, 8.0),
        ...     SweepRecord("lumi", "bcast", "ring", "ring", 16, 32, 2.0, 8.0),
        ... ]
        >>> table = build_decision_table(recs, name="t", source="-")
        >>> table.tables[0].winner
        (('bine',),)
        >>> table.tables[0].margin
        ((2.0,),)
    """
    with obs.span("tune.build", records=len(records), table=name):
        return _build_decision_table(records, name, source)


def _build_decision_table(
    records: Sequence[SweepRecord], name: str, source: str
) -> DecisionTable:
    groups: dict[tuple[str, str, str, int], list[SweepRecord]] = {}
    for r in records:
        if r.stalled:
            continue  # a stalled run has no completion time to rank
        scenario = r.faults if r.timeline == "none" else f"{r.faults}@{r.timeline}"
        groups.setdefault((r.system, scenario, r.collective, r.ppn), []).append(r)
    tables = []
    for key in sorted(groups):
        system, faults, collective, ppn = key
        own = groups[key]
        # the heatmap winner function, on exactly this sub-table's slice
        cells = best_algorithm_cells(own, collective)
        by_cell: dict[tuple[int, int], list[SweepRecord]] = {}
        for r in own:
            by_cell.setdefault((r.p, r.n_bytes), []).append(r)
        p_grid = tuple(sorted({r.p for r in own}))
        n_grid = tuple(sorted({r.n_bytes for r in own}))
        winner_m, family_m, margin_m = [], [], []
        for p in p_grid:
            winner_row: list[str | None] = []
            family_row: list[str | None] = []
            margin_row: list[float | None] = []
            for nb in n_grid:
                entry = cells.get((p, nb))
                if entry is None:
                    winner_row.append(None)
                    family_row.append(None)
                    margin_row.append(None)
                    continue
                best, _bine_ratio = entry
                others = [
                    r for r in by_cell[(p, nb)]
                    if r.algorithm != best.algorithm
                ]
                margin = (
                    min(r.time for r in others) / best.time if others else None
                )
                winner_row.append(best.algorithm)
                family_row.append(best.family)
                margin_row.append(margin)
            winner_m.append(tuple(winner_row))
            family_m.append(tuple(family_row))
            margin_m.append(tuple(margin_row))
        tables.append(
            SubTable(
                system=system,
                faults=faults,
                collective=collective,
                ppn=ppn,
                p_grid=p_grid,
                n_grid=n_grid,
                winner=tuple(winner_m),
                family=tuple(family_m),
                margin=tuple(margin_m),
            )
        )
    return DecisionTable(
        name=name,
        source=source,
        records_digest=records_digest(records),
        record_count=len(records),
        tables=tuple(tables),
    )
