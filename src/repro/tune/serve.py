"""Serving layer: answer algorithm-selection queries from a decision table.

:func:`select_algorithm` is the scalar oracle — "which algorithm should
``(collective, system, p, ppn, n_bytes)`` use?" — and
:func:`select_algorithms` is its vectorized batch twin (numpy
``searchsorted`` over the compiled grids; 10k warm queries run in a few
milliseconds).  Both share one off-grid policy vocabulary:

``exact``
    The query must land on a populated grid cell; anything else raises
    :class:`~repro.runtime.errors.TuneQueryError`.
``nearest``
    ``p`` and ``n_bytes`` snap independently to the nearest grid value in
    log2 space (ties snap *down*); a snapped cell with no source records
    still raises — the table simply has no answer there.
``refuse``
    Off-grid or unanswerable queries return ``None`` instead of raising.

Tables are compiled to numpy lookup structures once and memoized in the
module-level ``_SERVE_CACHE`` (registered with
:func:`repro.analysis.sweep.memo_cache_registry`, so resilience tooling
can clear and audit it like every other process-level cache).
"""

from __future__ import annotations

import bisect
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import obs
from repro.runtime.errors import TuneArtifactError, TuneQueryError
from repro.tune.tables import DecisionTable, SubTable

__all__ = [
    "POLICIES",
    "Selection",
    "load_table",
    "lookup",
    "select_algorithm",
    "select_algorithms",
]

POLICIES = ("exact", "nearest", "refuse")

#: compiled-table memo: integrity-keyed, cleared via memo_cache_registry()
_SERVE_CACHE: dict = {}


@dataclass(frozen=True)
class Selection:
    """One answered query: the winner plus the grid cell that answered it."""

    algorithm: str
    family: str
    margin: float | None
    p: int
    n_bytes: int
    exact: bool

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "family": self.family,
            "margin": self.margin,
            "p": self.p,
            "n_bytes": self.n_bytes,
            "exact": self.exact,
        }


class _CompiledSubTable:
    """Numpy mirror of one :class:`SubTable` for O(log grid) lookups."""

    def __init__(self, sub: SubTable):
        self.p_grid = np.asarray(sub.p_grid, dtype=np.int64)
        self.n_grid = np.asarray(sub.n_grid, dtype=np.int64)
        self.p_list = list(sub.p_grid)
        self.n_list = list(sub.n_grid)
        self.log_p = np.log2(self.p_grid.astype(np.float64))
        self.log_n = np.log2(self.n_grid.astype(np.float64))
        shape = (len(sub.p_grid), len(sub.n_grid))
        self.winner = np.empty(shape, dtype=object)
        self.family = np.empty(shape, dtype=object)
        self.margin = np.full(shape, np.nan, dtype=np.float64)
        for i, row in enumerate(sub.winner):
            for j, w in enumerate(row):
                self.winner[i, j] = w
                self.family[i, j] = sub.family[i][j]
                if sub.margin[i][j] is not None:
                    self.margin[i, j] = sub.margin[i][j]
        self.populated = np.not_equal(self.winner, None)


class _CompiledTable:
    def __init__(self, table: DecisionTable):
        self.name = table.name
        self.subs = {t.key: _CompiledSubTable(t) for t in table.tables}


def _compiled(table: DecisionTable) -> _CompiledTable:
    # keyed on (id, provenance digest): same-digest tables are built from
    # the same record set and compile identically, so an id collision
    # after GC can only ever serve equivalent answers
    key = (id(table), table.records_digest, table.record_count)
    hit = _SERVE_CACHE.get(key)
    if hit is None:
        obs.inc("cache.serve.miss")
        hit = _SERVE_CACHE[key] = _CompiledTable(table)
    else:
        obs.inc("cache.serve.hit")
    return hit


def load_table(path) -> DecisionTable:
    """Read and validate a decision-table artifact from ``path``.

    Raises :class:`TuneArtifactError` when the file is unreadable, not a
    decision table, or fails its integrity digest.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TuneArtifactError(f"{path}: cannot read decision table ({exc})") from None
    return DecisionTable.from_dict(data, label=str(path))


def _check_policy(policy: str) -> None:
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r} (expected one of {POLICIES})")


def _subtable_miss(key, name: str, policy: str):
    if policy == "refuse":
        return None
    system, faults, collective, ppn = key
    raise TuneQueryError(
        f"decision table {name!r} has no sub-table for system={system!r} "
        f"faults={faults!r} collective={collective!r} ppn={ppn} — "
        "the source campaign never swept that slice"
    )


def _snap_scalar(value: int, grid: list, log_grid) -> int:
    """Nearest grid index in log2 space; ties snap to the lower cell."""
    x = math.log2(value)
    hi = bisect.bisect_left(grid, value)
    if hi == 0:
        return 0
    if hi == len(grid):
        return len(grid) - 1
    lo = hi - 1
    return lo if x - log_grid[lo] <= log_grid[hi] - x else hi


def lookup(
    table: DecisionTable,
    collective: str,
    system: str,
    p: int,
    ppn: int,
    n_bytes: int,
    *,
    faults: str = "none",
    policy: str = "exact",
) -> Selection | None:
    """Answer one query with full detail (winner, margin, answering cell).

    This is the scalar reference path — plain Python ``bisect`` over the
    compiled grids.  :func:`select_algorithms` must agree with a loop over
    this function for every policy (a tested metamorphic property).
    """
    _check_policy(policy)
    if p <= 0 or n_bytes <= 0:
        raise TuneQueryError(f"coordinates must be positive (p={p}, n_bytes={n_bytes})")
    sub = _compiled(table).subs.get((system, faults, collective, int(ppn)))
    if sub is None:
        return _subtable_miss((system, faults, collective, int(ppn)), table.name, policy)

    def axis(value: int, grid: list, log_grid, label: str) -> int | None:
        pos = bisect.bisect_left(grid, value)
        if pos < len(grid) and grid[pos] == value:
            return pos
        if policy == "refuse":
            return None
        if policy == "exact" or not grid:
            raise TuneQueryError(
                f"{label}={value} is off the table grid {grid} (policy={policy})"
            )
        return _snap_scalar(value, grid, log_grid)

    i = axis(int(p), sub.p_list, sub.log_p, "p")
    j = axis(int(n_bytes), sub.n_list, sub.log_n, "n_bytes")
    if i is None or j is None:
        return None
    winner = sub.winner[i, j]
    if winner is None:
        if policy == "refuse":
            return None
        raise TuneQueryError(
            f"grid cell (p={int(sub.p_grid[i])}, n_bytes={int(sub.n_grid[j])}) "
            f"of {collective!r} on {system!r} has no source records"
        )
    margin = float(sub.margin[i, j])
    return Selection(
        algorithm=str(winner),
        family=str(sub.family[i, j]),
        margin=None if math.isnan(margin) else margin,
        p=int(sub.p_grid[i]),
        n_bytes=int(sub.n_grid[j]),
        exact=int(sub.p_grid[i]) == int(p) and int(sub.n_grid[j]) == int(n_bytes),
    )


def select_algorithm(
    table: DecisionTable,
    collective: str,
    system: str,
    p: int,
    ppn: int,
    n_bytes: int,
    *,
    faults: str = "none",
    policy: str = "exact",
) -> str | None:
    """The scalar oracle: winning algorithm name (``None`` on refuse-miss)."""
    sel = lookup(
        table, collective, system, p, ppn, n_bytes, faults=faults, policy=policy
    )
    return None if sel is None else sel.algorithm


def _axis_indices(
    values: np.ndarray, grid: np.ndarray, log_grid: np.ndarray, label: str, policy: str
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized grid resolution: (index array, answerable mask)."""
    if len(grid) == 0:
        if policy == "refuse":
            return np.zeros_like(values), np.zeros(values.shape, dtype=bool)
        raise TuneQueryError(f"{label} grid is empty (policy={policy})")
    pos = np.searchsorted(grid, values)
    clipped = np.minimum(pos, len(grid) - 1)
    on_grid = grid[clipped] == values
    if policy == "exact":
        if not np.all(on_grid):
            bad = values[~on_grid][0]
            raise TuneQueryError(
                f"{label}={int(bad)} is off the table grid "
                f"{[int(g) for g in grid]} (policy=exact)"
            )
        return clipped, on_grid
    if policy == "refuse":
        return clipped, on_grid
    # nearest: compare log2 distance to the bracketing cells, ties snap down
    logs = np.log2(values.astype(np.float64))
    lo = np.clip(pos - 1, 0, len(grid) - 1)
    hi = np.clip(pos, 0, len(grid) - 1)
    snap_down = logs - log_grid[lo] <= log_grid[hi] - logs
    idx = np.where(on_grid, clipped, np.where(snap_down, lo, hi))
    return idx, np.ones_like(on_grid)


def select_algorithms(
    table: DecisionTable,
    collective: str,
    system: str,
    p: Sequence[int],
    ppn: int,
    n_bytes: Sequence[int],
    *,
    faults: str = "none",
    policy: str = "exact",
) -> list[str | None]:
    """Vectorized batch oracle over one ``(collective, system, ppn, faults)``.

    ``p`` and ``n_bytes`` are equal-length (or broadcastable) sequences of
    query coordinates; the result is a list aligned with the broadcast
    shape, element-for-element equal to a :func:`select_algorithm` loop.
    """
    _check_policy(policy)
    p_arr, n_arr = np.broadcast_arrays(
        np.atleast_1d(np.asarray(p, dtype=np.int64)),
        np.atleast_1d(np.asarray(n_bytes, dtype=np.int64)),
    )
    p_arr, n_arr = p_arr.ravel(), n_arr.ravel()
    if p_arr.size and (p_arr.min() <= 0 or n_arr.min() <= 0):
        bad = (p_arr[p_arr <= 0], n_arr[n_arr <= 0])
        raise TuneQueryError(
            f"coordinates must be positive (p={bad[0][:1]}, n_bytes={bad[1][:1]})"
        )
    sub = _compiled(table).subs.get((system, faults, collective, int(ppn)))
    if sub is None:
        miss = _subtable_miss((system, faults, collective, int(ppn)), table.name, policy)
        return [miss] * p_arr.size
    i, p_ok = _axis_indices(p_arr, sub.p_grid, sub.log_p, "p", policy)
    j, n_ok = _axis_indices(n_arr, sub.n_grid, sub.log_n, "n_bytes", policy)
    answerable = p_ok & n_ok
    winners = sub.winner[i, j]
    empty = answerable & ~sub.populated[i, j]
    if np.any(empty):
        if policy == "refuse":
            answerable &= ~empty
        else:
            k = int(np.argmax(empty))
            raise TuneQueryError(
                f"grid cell (p={int(sub.p_grid[i[k]])}, "
                f"n_bytes={int(sub.n_grid[j[k]])}) of {collective!r} on "
                f"{system!r} has no source records"
            )
    return [
        str(w) if ok else None for w, ok in zip(winners, answerable)
    ]
