"""Reproduction of *Bine Trees: Enhancing Collective Operations by
Optimizing Communication Locality* (SC '25).

Layers (see ``docs/architecture.md``):

* :mod:`repro.core`        — Bine/binomial trees, butterflies, negabinary labels
* :mod:`repro.collectives` — schedule builders + the algorithm registry
* :mod:`repro.runtime`     — the Schedule IR, NumPy executor, verification
* :mod:`repro.topology`    — Dragonfly(+)/fat-tree/torus models, placements
* :mod:`repro.model`       — routing, traffic accounting, α-β cost model
* :mod:`repro.systems`     — LUMI / Leonardo / MareNostrum 5 / Fugaku presets
* :mod:`repro.analysis`    — sweeps, paper-style summaries, plots
* :mod:`repro.cli`         — the ``repro`` command-line front door
"""

__version__ = "1.0.0"
