"""Schedule IR — the common language between algorithms and backends.

Every collective algorithm in :mod:`repro.collectives` compiles to a
:class:`Schedule`: an ordered list of :class:`Step`s, each holding

* ``pre``   — local data movement inside ranks (pack/permute),
* ``transfers`` — point-to-point messages active in this step, and
* ``post``  — local movement after the exchange (unpack/reduce staging).

One schedule feeds three independent backends:

* the **executor** (:mod:`repro.runtime.executor`) moves real NumPy bytes and
  is the correctness oracle;
* the **traffic counter** (:mod:`repro.model.traffic`) routes transfers over
  a topology and accumulates per-link/global bytes;
* the **cost model** (:mod:`repro.model.cost`) turns steps into time.

Segments are half-open element ranges ``(lo, hi)`` into named per-rank
buffers; a transfer carries parallel segment lists for source and
destination whose total lengths must match.  ``op=None`` overwrites the
destination, otherwise the named associative reduce op combines into it.

Builders finish with :meth:`Schedule.finalize`, which validates the
schedule only when validation is enabled: always under normal library use
and pytest, toggled off by the sweep layer (which rebuilds the same
schedules thousands of times) and overridable either way through the
``REPRO_VALIDATE`` environment variable (``1``/``0``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.runtime.errors import BufferMismatchError, ScheduleError

__all__ = [
    "Segment",
    "Transfer",
    "LocalCopy",
    "Step",
    "Schedule",
    "total_elems",
    "validation_enabled",
    "schedule_validation",
]

Segment = tuple[int, int]

#: process-local override installed by :func:`schedule_validation`; ``None``
#: means "use the default" (validate).  The ``REPRO_VALIDATE`` environment
#: variable, when set, wins over both.
_VALIDATE_OVERRIDE: bool | None = None


def validation_enabled() -> bool:
    """Whether :meth:`Schedule.finalize` should run the full validation pass.

    Resolution order: ``REPRO_VALIDATE`` env var (``0``/``false``/``off``
    disable, anything else enables) → :func:`schedule_validation` override →
    default *on*.  The default keeps library users and the test suite fully
    checked; sweeps opt out explicitly because they rebuild known-good
    schedules in bulk.
    """
    env = os.environ.get("REPRO_VALIDATE")
    if env is not None and env.strip():  # empty string behaves like unset
        return env.strip().lower() not in ("0", "false", "off", "no")
    if _VALIDATE_OVERRIDE is not None:
        return _VALIDATE_OVERRIDE
    return True


@contextmanager
def schedule_validation(enabled: bool) -> Iterator[None]:
    """Temporarily force schedule validation on or off for this process."""
    global _VALIDATE_OVERRIDE
    prev = _VALIDATE_OVERRIDE
    _VALIDATE_OVERRIDE = enabled
    try:
        yield
    finally:
        _VALIDATE_OVERRIDE = prev


def total_elems(segments: Sequence[Segment]) -> int:
    """Sum of segment lengths, validating each segment."""
    total = 0
    for lo, hi in segments:
        if lo < 0 or hi < lo:
            raise ScheduleError(f"invalid segment ({lo}, {hi})")
        total += hi - lo
    return total


@dataclass(frozen=True)
class Transfer:
    """One point-to-point message inside a step."""

    src: int
    dst: int
    src_buf: str
    dst_buf: str
    src_segments: tuple[Segment, ...]
    dst_segments: tuple[Segment, ...]
    op: str | None = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ScheduleError(f"transfer to self at rank {self.src} ({self.tag})")
        sent = total_elems(self.src_segments)
        # butterfly builders pass one tuple as both ends — skip the re-sum
        if self.dst_segments is not self.src_segments and sent != total_elems(
            self.dst_segments
        ):
            raise BufferMismatchError(
                f"transfer {self.src}->{self.dst} ({self.tag}): "
                f"{sent} elems sent, "
                f"{total_elems(self.dst_segments)} expected"
            )
        # frozen dataclass: stash the size computed during validation so the
        # profiling layer doesn't re-sum segment lists per access
        object.__setattr__(self, "_nelems", sent)

    @property
    def nelems(self) -> int:
        return self._nelems

    @property
    def num_segments(self) -> int:
        """Distinct wire segments — the paper's non-contiguity cost driver."""
        return max(len(self.src_segments), len(self.dst_segments))


@dataclass(frozen=True)
class LocalCopy:
    """Local data movement within one rank (pack, unpack, permute)."""

    rank: int
    src_buf: str
    dst_buf: str
    src_segments: tuple[Segment, ...]
    dst_segments: tuple[Segment, ...]
    op: str | None = None
    tag: str = ""

    def __post_init__(self) -> None:
        moved = total_elems(self.src_segments)
        if moved != total_elems(self.dst_segments):
            raise BufferMismatchError(
                f"local copy at rank {self.rank} ({self.tag}): segment size mismatch"
            )
        object.__setattr__(self, "_nelems", moved)

    @property
    def nelems(self) -> int:
        return self._nelems


@dataclass(frozen=True)
class Step:
    """One communication round; all transfers logically concurrent."""

    transfers: tuple[Transfer, ...] = ()
    pre: tuple[LocalCopy, ...] = ()
    post: tuple[LocalCopy, ...] = ()
    label: str = ""

    def validate(self, p: int) -> None:
        # Overlapping destination writes within one step are nondeterministic
        # (two messages landing on the same region) — reject unless reducing.
        # Non-reducing writes are grouped by (rank, buf) in the same single
        # pass that checks rank ranges, so validation stays O(transfers).
        non_reduce: dict[tuple[int, str], list[Segment]] = {}
        for t in self.transfers:
            for r in (t.src, t.dst):
                if not 0 <= r < p:
                    raise ScheduleError(f"rank {r} out of range in step {self.label!r}")
            if t.op is None:
                non_reduce.setdefault((t.dst, t.dst_buf), []).extend(t.dst_segments)
        for (rank, buf), segs in non_reduce.items():
            _check_disjoint(segs, f"step {self.label!r} rank {rank} buf {buf}")

    def comm_bytes(self, itemsize: int) -> int:
        return sum(t.nelems for t in self.transfers) * itemsize


@dataclass
class Schedule:
    """An ordered sequence of steps over ``p`` ranks."""

    p: int
    steps: list[Step] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, step: Step) -> None:
        self.steps.append(step)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def validate(self) -> "Schedule":
        if self.p <= 0:
            raise ScheduleError("schedule needs p > 0")
        for step in self.steps:
            step.validate(self.p)
        return self

    def finalize(self) -> "Schedule":
        """Builder exit hook: validate unless validation is switched off.

        All schedule builders return through here so the expensive
        whole-schedule check is a single toggle (see
        :func:`validation_enabled`) instead of 20+ unconditional call sites.
        """
        if validation_enabled():
            return self.validate()
        return self

    def all_transfers(self) -> Iterable[tuple[int, Transfer]]:
        """``(step_index, transfer)`` over the whole schedule."""
        for i, step in enumerate(self.steps):
            for t in step.transfers:
                yield i, t

    def total_comm_elems(self) -> int:
        return sum(t.nelems for _, t in self.all_transfers())

    def max_rank_send_elems(self) -> int:
        """Largest per-rank total send volume (elements) across the schedule."""
        sends: dict[int, int] = {}
        for _, t in self.all_transfers():
            sends[t.src] = sends.get(t.src, 0) + t.nelems
        return max(sends.values(), default=0)


def _check_disjoint(segments: list[Segment], where: str) -> None:
    segs = sorted(segments)
    for (al, ah), (bl, bh) in zip(segs, segs[1:]):
        if bl < ah:
            raise ScheduleError(
                f"overlapping non-reducing writes [{al},{ah}) and [{bl},{bh}) in {where}"
            )
