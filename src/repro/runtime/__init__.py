"""In-process message-passing substrate: schedule IR + deterministic executor."""

from repro.runtime.buffers import RankBuffers
from repro.runtime.compiled import (
    BufferLayout,
    CompiledPlan,
    compile_plan,
    matrix_from_buffers,
    matrix_to_buffers,
)
from repro.runtime.errors import (
    BufferMismatchError,
    RuntimeSubstrateError,
    ScheduleError,
)
from repro.runtime.executor import ExecutionTrace, execute, execute_step
from repro.runtime.reduce_ops import BAND, BOR, BXOR, MAX, MIN, PROD, SUM, ReduceOp, named_op
from repro.runtime.schedule import LocalCopy, Schedule, Segment, Step, Transfer

__all__ = [
    "RankBuffers",
    "Schedule",
    "Step",
    "Transfer",
    "LocalCopy",
    "Segment",
    "execute",
    "execute_step",
    "ExecutionTrace",
    "BufferLayout",
    "CompiledPlan",
    "compile_plan",
    "matrix_from_buffers",
    "matrix_to_buffers",
    "ReduceOp",
    "named_op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "BAND",
    "BOR",
    "BXOR",
    "RuntimeSubstrateError",
    "ScheduleError",
    "BufferMismatchError",
]
