"""Loud parsing for numeric environment knobs.

Every ``REPRO_*`` knob that tunes execution (shard timeouts, chaos
injection, trace clock origins) used to fall back to its default
*silently* when the variable held garbage — ``REPRO_SHARD_TIMEOUT=5m``
quietly meant 300 s, which is exactly the kind of misconfiguration that
only surfaces three hours into a campaign.  These helpers keep the
fallback (a bad knob must never crash a run) but emit a once-per-process
:class:`RuntimeWarning` naming the variable and the bad value.

Example::

    >>> import os, warnings
    >>> os.environ["REPRO_DEMO_KNOB"] = "fast"
    >>> with warnings.catch_warnings(record=True) as caught:
    ...     warnings.simplefilter("always")
    ...     env_float("REPRO_DEMO_KNOB", 3.0)
    3.0
    >>> "REPRO_DEMO_KNOB" in str(caught[0].message)
    True
    >>> del os.environ["REPRO_DEMO_KNOB"]
"""

from __future__ import annotations

import os
import warnings

__all__ = ["env_float", "env_int", "env_flag"]

#: ``(name, bad value)`` pairs already warned about this process — a
#: campaign re-reading a knob thousands of times reports it once
_WARNED: set[tuple[str, str]] = set()


def _warn_once(name: str, value: str, expected: str) -> None:
    token = (name, value)
    if token in _WARNED:
        return
    _WARNED.add(token)
    warnings.warn(
        f"{name}={value!r} is not {expected}; using the default",
        RuntimeWarning,
        stacklevel=3,
    )


def env_float(name: str, default: float) -> float:
    """``float(os.environ[name])`` with a warn-once fallback to ``default``."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        _warn_once(name, raw, "a number")
        return default


def env_int(name: str, default: int) -> int:
    """``int(os.environ[name])`` with a warn-once fallback to ``default``."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        _warn_once(name, raw, "an integer")
        return default


def env_flag(name: str, default: bool) -> bool:
    """A strict ``0``/``1`` boolean knob with a warn-once fallback.

    The old pattern (``os.environ.get(name, "1") == "0"``) silently read
    ``REPRO_SHARD_FALLBACK=no`` as *enabled*; anything but ``"0"`` or
    ``"1"`` now warns before falling back.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw in ("0", "1"):
        return raw == "1"
    _warn_once(name, raw, "'0' or '1'")
    return default
