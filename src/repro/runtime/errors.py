"""Structured errors for the runtime substrate."""

from __future__ import annotations

__all__ = ["RuntimeSubstrateError", "ScheduleError", "BufferMismatchError"]


class RuntimeSubstrateError(Exception):
    """Base class for all runtime-substrate failures."""


class ScheduleError(RuntimeSubstrateError):
    """A schedule is structurally invalid (bad ranks, overlapping writes, …)."""


class BufferMismatchError(RuntimeSubstrateError):
    """A transfer's source and destination segment sizes disagree."""
