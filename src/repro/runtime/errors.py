"""Structured errors for the runtime substrate and campaign execution.

The CLI maps each leaf class to a distinct exit code (see
``repro.cli.main.EXIT_CODES`` and ``docs/robustness.md``) so scripted
campaigns can tell *why* a run failed from the code alone.
"""

from __future__ import annotations

__all__ = [
    "RuntimeSubstrateError",
    "ScheduleError",
    "BufferMismatchError",
    "FaultSpecError",
    "TopologyPartitionedError",
    "CacheCorruptionError",
    "WorkerShardError",
    "TuneArtifactError",
    "TuneQueryError",
    "DESEngineError",
    "InterruptedRunError",
    "JournalError",
]


class RuntimeSubstrateError(Exception):
    """Base class for all runtime-substrate failures."""


class ScheduleError(RuntimeSubstrateError):
    """A schedule is structurally invalid (bad ranks, overlapping writes, …)."""


class BufferMismatchError(RuntimeSubstrateError):
    """A transfer's source and destination segment sizes disagree."""


class FaultSpecError(RuntimeSubstrateError):
    """A fault specification is invalid or inapplicable to the topology."""


class TopologyPartitionedError(RuntimeSubstrateError):
    """A degraded topology has no surviving route between two nodes.

    Carries the unreachable pair so callers (and the CLI diagnostic) can
    name it: ``exc.src`` / ``exc.dst``.
    """

    def __init__(self, src: int, dst: int, detail: str = ""):
        self.src = src
        self.dst = dst
        message = f"no surviving route between nodes {src} and {dst}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class CacheCorruptionError(RuntimeSubstrateError):
    """An on-disk profile-cache entry is truncated, stale, or unreadable."""


class WorkerShardError(RuntimeSubstrateError):
    """A parallel sweep shard failed even after retries (fallback disabled)."""


class TuneArtifactError(RuntimeSubstrateError):
    """A decision-table artifact is structurally unsound or fails its digest.

    Raised when loading a table whose schema/version is unknown, whose
    payload does not match its embedded integrity digest (a hand-edited
    or corrupted file), or whose provenance digest does not match the
    records it claims to be built from.  Serving layers must never answer
    queries from such a table.
    """


class DESEngineError(RuntimeSubstrateError):
    """The discrete-event fabric engine cannot execute the requested cell.

    Raised when a fault timeline is combined with an engine that cannot
    replay it (``profile_engine`` other than ``"des"``), when a timeline
    is asked of a cell the DES engine has no transfer program for
    (analytic-profile cells: ``alltoall`` and rank counts above
    ``ANALYTIC_THRESHOLD``), or when a timeline event is inapplicable to
    the fabric mid-run.  Mapped to CLI exit code 8.
    """


class InterruptedRunError(RuntimeSubstrateError):
    """A campaign drained gracefully after SIGINT/SIGTERM.

    Raised at the next cell boundary once a drain was requested: no new
    cells are dispatched, in-flight shards finish (or time out), and the
    record journal is flushed before this propagates.  Carries the
    progress made so the CLI diagnostic (exit code 9) can tell the
    operator how much of the run survives in the journal.
    """

    def __init__(self, signal_name: str, done: int, remaining: int):
        self.signal_name = signal_name
        self.done = done
        self.remaining = remaining
        super().__init__(
            f"run drained after {signal_name}: {done} cell(s) journaled, "
            f"{remaining} remaining (resume with --resume)"
        )


class JournalError(RuntimeSubstrateError):
    """A record journal is unusable for the requested operation.

    Raised when a journal file is corrupt beyond its torn tail (a bad
    CRC followed by further entries), when its sealed header does not
    match the campaign being resumed (different manifest digest, engine
    or scenario set), or when a fresh run would clobber an existing
    journal without ``--resume``.  Mapped to CLI exit code 10.
    """


class TuneQueryError(RuntimeSubstrateError):
    """A selection query cannot be answered by the loaded decision table.

    Covers unknown ``(collective, system, ppn, faults)`` sub-tables and
    off-grid ``(p, n_bytes)`` coordinates under the ``exact`` policy (the
    ``refuse`` policy returns ``None`` instead of raising; ``nearest``
    snaps to the closest populated grid cell)."""
