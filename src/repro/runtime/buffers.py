"""Per-rank named buffer sets for the executor."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.runtime.errors import BufferMismatchError

__all__ = ["RankBuffers", "gather_segments", "scatter_segments"]


class RankBuffers:
    """Named NumPy buffers for each of ``p`` simulated ranks.

    ``buffers[rank][name]`` is that rank's view of buffer ``name``.  All
    ranks of a given buffer share dtype but may differ in length (e.g. only
    the root owns a big recv buffer in a gather).
    """

    def __init__(self, p: int):
        if p <= 0:
            raise ValueError("p must be positive")
        self.p = p
        self._store: list[dict[str, np.ndarray]] = [dict() for _ in range(p)]

    def allocate(
        self,
        name: str,
        shape_per_rank: int | Iterable[int],
        dtype=np.int64,
        fill=0,
    ) -> None:
        """Allocate buffer ``name`` on every rank."""
        if isinstance(shape_per_rank, int):
            sizes = [shape_per_rank] * self.p
        else:
            sizes = list(shape_per_rank)
            if len(sizes) != self.p:
                raise ValueError("per-rank size list length mismatch")
        for r, size in enumerate(sizes):
            self._store[r][name] = np.full(size, fill, dtype=dtype)

    def set(self, rank: int, name: str, data: np.ndarray) -> None:
        """Install ``data`` (copied) as buffer ``name`` on ``rank``."""
        self._store[rank][name] = np.array(data, copy=True)

    def get(self, rank: int, name: str) -> np.ndarray:
        try:
            return self._store[rank][name]
        except KeyError:
            raise BufferMismatchError(
                f"rank {rank} has no buffer {name!r} "
                f"(has {sorted(self._store[rank])})"
            ) from None

    def has(self, rank: int, name: str) -> bool:
        return name in self._store[rank]

    def names(self, rank: int) -> list[str]:
        return sorted(self._store[rank])

    def snapshot(self) -> "RankBuffers":
        """Deep copy — used by tests to diff executor effects."""
        out = RankBuffers(self.p)
        for r in range(self.p):
            for name, arr in self._store[r].items():
                out._store[r][name] = arr.copy()
        return out


def gather_segments(buf: np.ndarray, segments) -> np.ndarray:
    """Concatenate buffer slices for a segment list (the 'pack' step).

    Ownership contract: the result is always a **freshly allocated** array
    the caller owns — never a view into ``buf`` — so callers may stage it
    across later writes to ``buf`` without a defensive copy (the executor's
    sendrecv snapshot relies on this).
    """
    parts = []
    for lo, hi in segments:
        if hi > buf.shape[0]:
            raise BufferMismatchError(
                f"segment ({lo},{hi}) exceeds buffer of {buf.shape[0]} elems"
            )
        parts.append(buf[lo:hi])
    if not parts:
        return np.empty(0, dtype=buf.dtype)
    if len(parts) == 1:
        return parts[0].copy()  # np.concatenate would copy too; be explicit
    return np.concatenate(parts)


def scatter_segments(buf: np.ndarray, segments, data: np.ndarray, op=None) -> None:
    """Write (or reduce) packed ``data`` back into buffer ``segments``."""
    offset = 0
    for lo, hi in segments:
        if hi > buf.shape[0]:
            raise BufferMismatchError(
                f"segment ({lo},{hi}) exceeds buffer of {buf.shape[0]} elems"
            )
        chunk = data[offset : offset + (hi - lo)]
        if op is None:
            buf[lo:hi] = chunk
        else:
            buf[lo:hi] = op(buf[lo:hi], chunk)
        offset += hi - lo
    if offset != data.shape[0]:
        raise BufferMismatchError("packed data longer than destination segments")
