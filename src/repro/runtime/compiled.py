"""Compiled columnar execution plans — the correctness oracle's fast path.

:func:`compile_plan` lowers a finalized :class:`~repro.runtime.schedule.Schedule`
*once* into a structure-of-arrays plan: flat ``intp`` index arrays (per-element
source and destination positions, write-group boundaries, reduce ufunc per
group) addressing a single 2-D buffer matrix of shape
``(p, total_buffer_elems)`` in which every named per-rank buffer owns a fixed
column slice (:class:`BufferLayout`).  Indices are pre-flattened
(``rank * total + column``), so :meth:`CompiledPlan.execute` replays a step as
one ``np.take`` gather plus one vectorized scatter (or ``ufunc.at`` when
reduce destinations genuinely collide) per write group — no per-transfer
Python, no dict lookups, no ``np.concatenate`` staging — and is bit-identical
to :func:`repro.runtime.executor.execute` (asserted across the whole registry
in ``tests/test_compiled_executor.py``).

Semantics preserved exactly:

* **sendrecv snapshot** — each step gathers *every* transfer source before any
  destination is written, so pairwise exchanges read pre-step values;
* **write order** — consecutive same-op transfers form one write group;
  groups apply in transfer order, so a later reduce sees an earlier
  overwrite's value exactly as the sequential executor would.  Within an
  overwrite group duplicate destinations keep the *last* write (the reference
  executor's later-transfer-wins order), made explicit by a compile-time
  dedup rather than relying on NumPy's fancy-assignment iteration order;
* **reduce accumulation** — groups whose destinations are pairwise distinct
  (checked at compile time) reduce via one vectorized
  ``gather → op → scatter``; colliding groups fall back to ``ufunc.at``,
  which applies repeated indices one by one in element order — both match
  the reference's sequential ``buf[lo:hi] = op(buf[lo:hi], chunk)`` loop
  (exact for the integer dtypes the oracle uses, and the same accumulation
  order even for floats);
* **local copies** — ``pre``/``post`` copies run in order; consecutive copies
  touching pairwise-distinct ranks (and sharing one op) are batched into a
  single gather/scatter phase, which cannot change results because a local
  copy only ever reads and writes its own rank.

The payoff is batching: :meth:`CompiledPlan.execute_batch` runs a stack of
``(seeds, p, total_elems)`` matrices through the same index arrays in one
pass, so verifying many seeds costs one compile plus a few vectorized ops per
step (see :func:`repro.collectives.verify.run_and_check_compiled` and the
``repro verify`` CLI).  Compilation itself is a single linear pass over the
schedule and is memoized per grid cell by
:func:`repro.collectives.verify.compiled_plan_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.runtime.buffers import RankBuffers
from repro.runtime.errors import BufferMismatchError, ScheduleError
from repro.runtime.executor import ExecutionTrace
from repro.runtime.reduce_ops import named_op
from repro.runtime.schedule import LocalCopy, Schedule, Step

__all__ = [
    "BufferLayout",
    "CompiledPlan",
    "compile_plan",
    "buffers_used",
    "matrix_from_buffers",
    "matrix_to_buffers",
]


def buffers_used(schedule: Schedule) -> set[str]:
    """Every named buffer referenced by the schedule's transfers and copies."""
    names: set[str] = set()
    for step in schedule.steps:
        for t in step.transfers:
            names.add(t.src_buf)
            names.add(t.dst_buf)
        for lc in step.pre + step.post:
            names.add(lc.src_buf)
            names.add(lc.dst_buf)
    return names


class BufferLayout:
    """Column layout packing every named buffer into one 2-D matrix.

    Buffer ``name`` occupies columns ``[offsets[name], offsets[name] +
    widths[name])`` of a ``(p, total)`` matrix; rank ``r``'s view of the
    buffer is row ``r`` of that slice.  Names are laid out in sorted order so
    layouts are deterministic.

    Example::

        >>> layout = BufferLayout({"vec": 4, "tmp": 2})
        >>> layout.names, layout.total
        (('tmp', 'vec'), 6)
        >>> layout.offsets["vec"]
        2
    """

    __slots__ = ("names", "widths", "offsets", "total")

    def __init__(self, widths: Mapping[str, int]):
        if not widths:
            raise ValueError("a BufferLayout needs at least one buffer")
        self.names = tuple(sorted(widths))
        self.widths = {name: int(widths[name]) for name in self.names}
        offsets: dict[str, int] = {}
        total = 0
        for name in self.names:
            if self.widths[name] < 0:
                raise ValueError(f"negative width for buffer {name!r}")
            offsets[name] = total
            total += self.widths[name]
        self.offsets = offsets
        self.total = total

    @classmethod
    def for_schedule(cls, schedule: Schedule) -> "BufferLayout":
        """Layout matching what :func:`~repro.collectives.verify.init_buffers`
        allocates: every buffer the schedule touches, ``meta["n"]`` elements
        wide (falling back to the largest segment bound when ``n`` is absent).
        """
        names = buffers_used(schedule) or {"vec"}
        n = schedule.meta.get("n")
        if n is None:
            n = 0
            for step in schedule.steps:
                for item in step.transfers + step.pre + step.post:
                    for lo, hi in item.src_segments + item.dst_segments:
                        n = max(n, hi)
        return cls({name: n for name in names})


def matrix_from_buffers(
    buffers: RankBuffers, layout: BufferLayout, dtype=None
) -> np.ndarray:
    """Pack a :class:`RankBuffers` into a fresh ``(p, layout.total)`` matrix.

    Ranks whose copy of a buffer is narrower than the layout width are
    zero-padded on the right; ranks missing a buffer entirely contribute a
    zero row slice.  ``dtype`` defaults to the first buffer's dtype
    (``int64`` when there are none).
    """
    if dtype is None:
        dtype = np.int64
        for r in range(buffers.p):
            names = buffers.names(r)
            if names:
                dtype = buffers.get(r, names[0]).dtype
                break
    matrix = np.zeros((buffers.p, layout.total), dtype=dtype)
    for name in layout.names:
        off, width = layout.offsets[name], layout.widths[name]
        for r in range(buffers.p):
            if not buffers.has(r, name):
                continue
            arr = buffers.get(r, name)
            if arr.shape[0] > width:
                raise BufferMismatchError(
                    f"rank {r} buffer {name!r} has {arr.shape[0]} elems, "
                    f"layout width is {width}"
                )
            matrix[r, off : off + arr.shape[0]] = arr
    return matrix


def matrix_to_buffers(
    matrix: np.ndarray, layout: BufferLayout, buffers: RankBuffers
) -> RankBuffers:
    """Write a matrix back into an allocated :class:`RankBuffers`, in place.

    Each rank/buffer receives exactly as many leading columns as its array
    holds, so layouts wider than a rank's buffer round-trip losslessly.
    """
    for name in layout.names:
        off = layout.offsets[name]
        for r in range(buffers.p):
            if not buffers.has(r, name):
                continue
            arr = buffers.get(r, name)
            arr[:] = matrix[r, off : off + arr.shape[0]]
    return buffers


# -- plan structure ----------------------------------------------------------


@dataclass(frozen=True)
class _Write:
    """One write group: a contiguous run of same-op staged elements."""

    sel: object  # slice (or intp array after overwrite dedup) into staged
    idx: np.ndarray  # flat destination positions (rank * total + column)
    ufunc: np.ufunc | None  # None = overwrite
    disjoint: bool  # destinations pairwise distinct → vectorized reduce


@dataclass(frozen=True)
class _Phase:
    """Gather-then-scatter with snapshot semantics (all reads before writes)."""

    src: np.ndarray  # flat source positions, staged in transfer order
    writes: tuple[_Write, ...]


@dataclass(frozen=True)
class _StepPlan:
    phases: tuple[_Phase, ...]
    comm_elems: int


@dataclass(frozen=True)
class CompiledPlan:
    """A schedule lowered to flat index arrays over one buffer matrix."""

    p: int
    layout: BufferLayout
    steps: tuple[_StepPlan, ...]
    transfers_run: int
    local_elems: int

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def new_matrix(self, dtype=np.int64) -> np.ndarray:
        """A zeroed buffer matrix of the right shape for this plan."""
        return np.zeros((self.p, self.layout.total), dtype=dtype)

    def _trace(self) -> ExecutionTrace:
        per_step = [s.comm_elems for s in self.steps]
        return ExecutionTrace(
            steps_run=len(self.steps),
            transfers_run=self.transfers_run,
            elems_moved=sum(per_step),
            local_elems_moved=self.local_elems,
            per_step_elems=per_step,
        )

    def _flat_view(self, matrix: np.ndarray, shape: tuple) -> np.ndarray:
        if matrix.shape != shape:
            raise ValueError(
                f"matrix shape {matrix.shape} does not match plan {shape}"
            )
        if not matrix.flags.c_contiguous:
            raise ValueError("compiled execution needs a C-contiguous matrix")
        return matrix.reshape(matrix.shape[:-2] + (-1,))

    def execute(self, matrix: np.ndarray) -> ExecutionTrace:
        """Run the plan on one ``(p, total)`` matrix, mutating it in place.

        Returns the same :class:`ExecutionTrace` the reference executor
        would produce for this schedule.
        """
        flat = self._flat_view(matrix, (self.p, self.layout.total))
        take = np.take
        for step in self.steps:
            for phase in step.phases:
                staged = take(flat, phase.src)
                for w in phase.writes:
                    chunk = staged[w.sel]
                    if w.ufunc is None:
                        flat[w.idx] = chunk
                    elif w.disjoint:
                        flat[w.idx] = w.ufunc(take(flat, w.idx), chunk)
                    else:
                        w.ufunc.at(flat, w.idx, chunk)
        return self._trace()

    def execute_batch(self, matrices: np.ndarray) -> ExecutionTrace:
        """Run the plan on a ``(batch, p, total)`` stack in one pass.

        Every layer evolves exactly as :meth:`execute` would evolve it alone
        (the plan's index arrays broadcast over the leading axis), so one
        batched call verifies many seeds for one compile.  The returned trace
        describes a single run — all layers share the schedule structure.
        """
        if matrices.ndim != 3:
            raise ValueError(f"expected a 3-D batch, got shape {matrices.shape}")
        flat = self._flat_view(
            matrices, (matrices.shape[0],) + (self.p, self.layout.total)
        )
        batch = np.arange(matrices.shape[0], dtype=np.intp)[:, None]
        take = np.take
        for step in self.steps:
            for phase in step.phases:
                staged = take(flat, phase.src, axis=1)
                for w in phase.writes:
                    chunk = staged[:, w.sel]
                    if w.ufunc is None:
                        flat[:, w.idx] = chunk
                    elif w.disjoint:
                        flat[:, w.idx] = w.ufunc(take(flat, w.idx, axis=1), chunk)
                    else:
                        w.ufunc.at(flat, (batch, w.idx[None, :]), chunk)
        return self._trace()


# -- compilation -------------------------------------------------------------


def _ufunc_for(op_name: str) -> np.ufunc:
    fn = named_op(op_name).fn
    if not isinstance(fn, np.ufunc):
        raise ScheduleError(
            f"reduce op {op_name!r} is not ufunc-backed; the compiled "
            "executor needs np.ufunc ops (use the reference executor)"
        )
    return fn


def _expand_flat(los: list[int], lens: list[int]) -> np.ndarray:
    """Segment (start, length) lists → one flat per-element index array.

    ``los`` are already flattened start positions (``rank * total + offset +
    lo``); segment ``j`` expands to ``los[j] .. los[j] + lens[j])``.
    """
    if not lens:
        return np.empty(0, dtype=np.intp)
    len_arr = np.asarray(lens, dtype=np.intp)
    lo_arr = np.asarray(los, dtype=np.intp)
    total = int(len_arr.sum())
    cum = np.cumsum(len_arr)
    return np.repeat(lo_arr - (cum - len_arr), len_arr) + np.arange(
        total, dtype=np.intp
    )


def _make_write(sel: slice, idx: np.ndarray, op_name: str | None) -> _Write:
    """Finalize one write group: resolve the ufunc, classify destinations.

    Overwrite groups with duplicate destinations keep only the last write per
    position (the reference's later-transfer-wins order); reduce groups are
    flagged ``disjoint`` when no position repeats, unlocking the vectorized
    reduce path.  Both classifications cost one ``np.unique`` per group, paid
    once at compile time.
    """
    uniq, first_rev = np.unique(idx[::-1], return_index=True)
    disjoint = uniq.size == idx.size
    if op_name is None:
        if not disjoint:
            keep = np.sort(idx.size - 1 - first_rev)
            return _Write(keep + sel.start, idx[keep], None, True)
        return _Write(sel, idx, None, True)
    return _Write(sel, idx, _ufunc_for(op_name), disjoint)


class _PhaseBuilder:
    """Accumulates one gather/scatter phase as flat (start, length) scalars."""

    __slots__ = ("layout", "total", "s_los", "s_lens", "d_los", "d_lens",
                 "groups", "pos", "where")

    def __init__(self, layout: BufferLayout, where: str):
        self.layout = layout
        self.total = layout.total
        self.s_los: list[int] = []
        self.s_lens: list[int] = []
        self.d_los: list[int] = []
        self.d_lens: list[int] = []
        # write groups: [op_name, start_elem, stop_elem] in transfer order
        self.groups: list[list] = []
        self.pos = 0
        self.where = where

    def add(self, src_rank, src_buf, src_segments, dst_rank, dst_buf,
            dst_segments, op_name, tag: str) -> int:
        layout, where = self.layout, self.where
        groups = self.groups
        if not groups or groups[-1][0] != op_name:
            groups.append([op_name, self.pos, self.pos])
        try:
            s_base = src_rank * self.total + layout.offsets[src_buf]
            s_width = layout.widths[src_buf]
            d_base = dst_rank * self.total + layout.offsets[dst_buf]
            d_width = layout.widths[dst_buf]
        except KeyError as exc:
            raise BufferMismatchError(
                f"buffer {exc.args[0]!r} not in layout {layout.names} "
                f"({where}, {tag!r})"
            ) from None
        sent = self._segments(src_segments, s_base, s_width, self.s_los,
                              self.s_lens, tag)
        got = self._segments(dst_segments, d_base, d_width, self.d_los,
                             self.d_lens, tag)
        if sent != got:
            raise BufferMismatchError(
                f"{where} ({tag!r}): {sent} elems sent, {got} expected"
            )
        self.pos += sent
        groups[-1][2] = self.pos
        return sent

    def _segments(self, segments, base, width, los, lens, tag) -> int:
        moved = 0
        for lo, hi in segments:
            if lo < 0 or hi < lo:
                raise ScheduleError(
                    f"invalid segment ({lo}, {hi}) in {self.where} ({tag!r})"
                )
            if hi > width:
                raise BufferMismatchError(
                    f"segment ({lo},{hi}) exceeds buffer of {width} elems "
                    f"in {self.where} ({tag!r})"
                )
            los.append(base + lo)
            lens.append(hi - lo)
            moved += hi - lo
        return moved

    def build(self) -> _Phase | None:
        if self.pos == 0 and not self.groups:
            return None
        src = _expand_flat(self.s_los, self.s_lens)
        dst = _expand_flat(self.d_los, self.d_lens)
        writes = tuple(
            _make_write(slice(start, stop), dst[start:stop], op_name)
            for op_name, start, stop in self.groups
        )
        return _Phase(src, writes)


def _compile_transfers(step: Step, layout: BufferLayout, p: int, where: str) -> _Phase | None:
    """All transfers of a step → one snapshot-gather phase with write groups."""
    if not step.transfers:
        return None
    builder = _PhaseBuilder(layout, where)
    for t in step.transfers:
        if not (0 <= t.src < p and 0 <= t.dst < p):
            raise ScheduleError(f"rank out of range in {where} ({t.tag!r})")
        builder.add(t.src, t.src_buf, t.src_segments, t.dst, t.dst_buf,
                    t.dst_segments, t.op, t.tag)
    return builder.build()


def _compile_locals(
    ops: tuple[LocalCopy, ...], layout: BufferLayout, p: int, where: str
) -> tuple[list[_Phase], int]:
    """Sequential local copies → phases, batching independent ranks.

    Consecutive copies are merged into one gather/scatter phase while they
    share a reduce op and touch pairwise-distinct ranks; a repeated rank (or
    an op change) starts a new phase, preserving the reference executor's
    sequential semantics.
    """
    phases: list[_Phase] = []
    moved_total = 0
    builder: _PhaseBuilder | None = None
    cur_op: object = None
    cur_ranks: set[int] = set()
    for op in ops:
        if not 0 <= op.rank < p:
            raise ScheduleError(
                f"rank {op.rank} out of range in {where} ({op.tag!r})"
            )
        if builder is not None and (op.op != cur_op or op.rank in cur_ranks):
            phase = builder.build()
            if phase is not None:
                phases.append(phase)
            builder = None
        if builder is None:
            builder = _PhaseBuilder(layout, where)
            cur_op, cur_ranks = op.op, set()
        cur_ranks.add(op.rank)
        moved_total += builder.add(op.rank, op.src_buf, op.src_segments,
                                   op.rank, op.dst_buf, op.dst_segments,
                                   op.op, op.tag)
    if builder is not None:
        phase = builder.build()
        if phase is not None:
            phases.append(phase)
    return phases, moved_total


def compile_plan(schedule: Schedule, layout: BufferLayout | None = None) -> CompiledPlan:
    """Lower a schedule into a :class:`CompiledPlan`.

    ``layout`` defaults to :meth:`BufferLayout.for_schedule` — the columnar
    equivalent of what :func:`repro.collectives.verify.init_buffers`
    allocates.  Compilation validates ranks, segment bounds, and transfer
    size balance (the checks the reference executor performs while running),
    so a plan that compiles executes without further checks.

    Example::

        >>> from repro.collectives.registry import build
        >>> plan = compile_plan(build("bcast", "bine", 8, 8))
        >>> plan.num_steps
        3
    """
    if schedule.p <= 0:
        raise ScheduleError("schedule needs p > 0")
    layout = layout or BufferLayout.for_schedule(schedule)
    steps: list[_StepPlan] = []
    transfers_run = 0
    local_elems = 0
    for i, step in enumerate(schedule.steps):
        where = f"step {i}" + (f" [{step.label}]" if step.label else "")
        pre, pre_elems = _compile_locals(step.pre, layout, schedule.p, where)
        xfer = _compile_transfers(step, layout, schedule.p, where)
        post, post_elems = _compile_locals(step.post, layout, schedule.p, where)
        phases = pre + ([xfer] if xfer is not None else []) + post
        comm = sum(t.nelems for t in step.transfers)
        steps.append(_StepPlan(tuple(phases), comm))
        transfers_run += len(step.transfers)
        local_elems += pre_elems + post_elems
    return CompiledPlan(
        p=schedule.p,
        layout=layout,
        steps=tuple(steps),
        transfers_run=transfers_run,
        local_elems=local_elems,
    )
