"""Deterministic schedule executor — the correctness oracle.

Runs a :class:`~repro.runtime.schedule.Schedule` against
:class:`~repro.runtime.buffers.RankBuffers`, emulating what an MPI job would
do.  Within a step all transfers are *logically concurrent* (pairwise
sendrecv): every source region is read into staging **before** any
destination is written, so exchanges that swap data between partners behave
exactly as in MPI.

Execution order inside a step: ``pre`` local copies (sequential, in order) →
snapshot-read of all transfer sources → writes/reductions → ``post`` local
copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.buffers import RankBuffers, gather_segments, scatter_segments
from repro.runtime.reduce_ops import named_op
from repro.runtime.schedule import Schedule, Step, validation_enabled

__all__ = ["ExecutionTrace", "execute", "execute_step"]


@dataclass
class ExecutionTrace:
    """Per-step accounting produced by :func:`execute`."""

    steps_run: int = 0
    transfers_run: int = 0
    elems_moved: int = 0
    local_elems_moved: int = 0
    per_step_elems: list[int] = field(default_factory=list)


def execute(schedule: Schedule, buffers: RankBuffers) -> ExecutionTrace:
    """Run the whole schedule, mutating ``buffers``; returns a trace.

    Validation follows the same switch as :meth:`Schedule.finalize`
    (:func:`validation_enabled`): on by default, toggled off by bulk
    verification, which re-runs known-good schedules many times and should
    not pay the structural pass twice per run.
    """
    if validation_enabled():
        schedule.validate()
    if buffers.p != schedule.p:
        raise ValueError(
            f"buffers built for p={buffers.p}, schedule for p={schedule.p}"
        )
    trace = ExecutionTrace()
    for step in schedule.steps:
        execute_step(step, buffers, trace)
    return trace


def execute_step(step: Step, buffers: RankBuffers, trace: ExecutionTrace | None = None) -> None:
    """Run a single step with MPI sendrecv semantics."""
    if trace is None:
        trace = ExecutionTrace()
    for op in step.pre:
        _apply_local(op, buffers, trace)

    # gather_segments returns a freshly allocated array (see its ownership
    # contract in runtime/buffers.py), so staging needs no defensive copy
    staged: list[tuple[object, np.ndarray]] = []
    for t in step.transfers:
        data = gather_segments(buffers.get(t.src, t.src_buf), t.src_segments)
        staged.append((t, data))
    step_elems = 0
    for t, data in staged:
        reduce_fn = named_op(t.op) if t.op is not None else None
        scatter_segments(buffers.get(t.dst, t.dst_buf), t.dst_segments, data, reduce_fn)
        step_elems += data.shape[0]
        trace.transfers_run += 1

    for op in step.post:
        _apply_local(op, buffers, trace)

    trace.steps_run += 1
    trace.elems_moved += step_elems
    trace.per_step_elems.append(step_elems)


def _apply_local(op, buffers: RankBuffers, trace: ExecutionTrace) -> None:
    src = buffers.get(op.rank, op.src_buf)
    data = gather_segments(src, op.src_segments)
    reduce_fn = named_op(op.op) if op.op is not None else None
    scatter_segments(buffers.get(op.rank, op.dst_buf), op.dst_segments, data, reduce_fn)
    trace.local_elems_moved += data.shape[0]
