"""Reduction operators — the MPI_Op equivalents used by reducing collectives.

Operators must be associative (MPI's default assumption, which the paper
relies on for arbitrary rank-to-node mappings); commutativity is tracked
separately because tree reductions may combine contributions out of rank
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ReduceOp", "SUM", "PROD", "MAX", "MIN", "BAND", "BOR", "BXOR", "named_op"]


@dataclass(frozen=True)
class ReduceOp:
    """An associative elementwise reduction ``acc = fn(acc, incoming)``."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    commutative: bool = True

    def __call__(self, acc: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        return self.fn(acc, incoming)


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MAX = ReduceOp("max", np.maximum)
MIN = ReduceOp("min", np.minimum)
BAND = ReduceOp("band", np.bitwise_and)
BOR = ReduceOp("bor", np.bitwise_or)
BXOR = ReduceOp("bxor", np.bitwise_xor)

_REGISTRY = {op.name: op for op in (SUM, PROD, MAX, MIN, BAND, BOR, BXOR)}


def named_op(name: str) -> ReduceOp:
    """Look up a built-in operator by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown reduce op {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
