"""Tests for butterfly matchings (paper Sec. 3.1, Eq. 3-5, Appendix A)."""

import pytest

from repro.core.butterfly import (
    BUTTERFLY_BUILDERS,
    Butterfly,
    bine_butterfly_doubling,
    bine_butterfly_halving,
    bine_sigma,
    recursive_doubling_butterfly,
    recursive_halving_butterfly,
    swing_butterfly,
)
from repro.core.distance import modulo_distance

POWERS = [2, 4, 8, 16, 32, 64, 128, 256]


class TestSigma:
    def test_values(self):
        # Σ_{k<w} (−2)^k: 0, 1, −1, 3, −5, 11, −21, 43 …
        assert [bine_sigma(w) for w in range(8)] == [0, 1, -1, 3, -5, 11, -21, 43]

    def test_always_integer(self):
        for w in range(40):
            assert (1 - (-2) ** w) % 3 == 0

    def test_magnitude_near_two_thirds(self):
        # |σ(w)| ≈ 2^w / 3 (Sec. 2.4.1)
        for w in range(4, 30):
            assert abs(abs(bine_sigma(w)) / 2**w - 1 / 3) < 0.2 / 2**w * 2**w * 0.5 + 1 / 3 * 0.51


class TestMatchingValidity:
    @pytest.mark.parametrize("name", sorted(BUTTERFLY_BUILDERS))
    @pytest.mark.parametrize("p", POWERS)
    def test_perfect_matching_every_step(self, name, p):
        bf = BUTTERFLY_BUILDERS[name](p)
        bf.validate()
        assert bf.num_steps == p.bit_length() - 1

    @pytest.mark.parametrize("p", POWERS)
    def test_even_odd_pairing(self, p):
        # Sec. 3.1: Bine butterflies always pair even ranks with odd ranks.
        if p < 2:
            return
        for bf in (bine_butterfly_doubling(p), bine_butterfly_halving(p)):
            for j in range(bf.num_steps):
                for r in range(p):
                    assert (r + bf.partner(r, j)) % 2 == 1


class TestPaperExamples:
    def test_fig6_dd_pairs_p8(self):
        bf = bine_butterfly_doubling(8)
        # step 0: (0,1),(2,3),(4,5),(6,7); step 1: (0,7),(1,2),(3,4),(5,6)
        assert bf.matching(0) == [(0, 1), (2, 3), (4, 5), (6, 7)]
        assert sorted(bf.matching(1)) == [(0, 7), (1, 2), (3, 4), (5, 6)]

    def test_eq4_step0_rank2(self):
        # Fig. 6 annotation: at step i=0 rank 2 talks to rank 5 (σ(3)=3).
        bf = bine_butterfly_halving(8)
        assert bf.partner(2, 0) == 5

    def test_halving_is_reversed_doubling(self):
        # Eq. 4 at step i equals Eq. 5 at step s−1−i — the allgather is the
        # exact reverse of the reduce-scatter.
        for p in (4, 8, 16, 64):
            dd = bine_butterfly_doubling(p)
            dh = bine_butterfly_halving(p)
            s = dd.num_steps
            for i in range(s):
                assert dh.partners[i] == dd.partners[s - 1 - i]

    def test_swing_shares_bine_matchings(self):
        # Sec. 4.4: Swing's communication pattern equals Bine's; only the
        # data layout differs.
        for p in (8, 32):
            assert swing_butterfly(p).partners == bine_butterfly_doubling(p).partners


class TestDistances:
    @pytest.mark.parametrize("p", [8, 16, 32, 64, 128, 256])
    def test_bine_distances_two_thirds_of_binomial(self, p):
        # Eq. 2: per step, Bine partners are ~2/3 the modulo distance of
        # recursive-doubling partners.
        dd = bine_butterfly_doubling(p)
        rd = recursive_doubling_butterfly(p)
        for j in range(dd.num_steps):
            d_bine = modulo_distance(0, dd.partner(0, j), p)
            d_binom = modulo_distance(0, rd.partner(0, j), p)
            assert d_bine <= d_binom
            if j >= 2:
                assert abs(d_bine / d_binom - 2 / 3) < 0.15

    def test_doubling_distances_grow(self):
        bf = bine_butterfly_doubling(64)
        dists = [modulo_distance(0, bf.partner(0, j), 64) for j in range(bf.num_steps)]
        assert dists == sorted(dists)


class TestReversed:
    def test_reversed_roundtrip(self):
        bf = recursive_halving_butterfly(16)
        assert bf.reversed().reversed().partners == bf.partners

    def test_invalid_partner_rejected(self):
        bad = Butterfly(4, "bad", ((1, 0, 3, 2), (2, 3, 0, 0)))
        with pytest.raises(ValueError):
            bad.validate()

    def test_self_partner_rejected(self):
        bad = Butterfly(2, "bad", ((0, 1),))
        with pytest.raises(ValueError):
            bad.validate()
