"""Unit tests for negabinary arithmetic (paper Sec. 2.3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.negabinary import (
    bit_reverse,
    from_negabinary,
    max_positive,
    min_negabinary,
    nb_digits,
    nb_to_rank,
    nb_width,
    ones_mask,
    rank_to_nb,
    to_negabinary,
    trailing_equal_bits,
)


class TestToFromNegabinary:
    def test_paper_example_two(self):
        # Sec. 2.3.1: 2 is 110₋₂ since 4 − 2 = 2.
        assert to_negabinary(2) == 0b110
        assert from_negabinary(0b110) == 2

    def test_paper_example_minus_one(self):
        # Sec. 2.3.1: 011₋₂ = −1.
        assert from_negabinary(0b011) == -1
        assert to_negabinary(-1) == 0b11

    def test_paper_example_minus_two(self):
        # Fig. 3 box G: 010₋₂ = −2.
        assert from_negabinary(0b010) == -2
        assert to_negabinary(-2) == 0b10

    def test_zero(self):
        assert to_negabinary(0) == 0
        assert from_negabinary(0) == 0

    def test_small_table(self):
        expected = {
            1: 0b1, 2: 0b110, 3: 0b111, 4: 0b100, 5: 0b101,
            -1: 0b11, -2: 0b10, -3: 0b1101, -4: 0b1100,
        }
        for value, bits in expected.items():
            assert to_negabinary(value) == bits, value
            assert from_negabinary(bits) == value, value

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_roundtrip(self, value):
        assert from_negabinary(to_negabinary(value)) == value

    @given(st.integers(min_value=0, max_value=2**20))
    def test_patterns_unique(self, bits):
        # from_negabinary is injective: re-encoding gives the same pattern.
        assert to_negabinary(from_negabinary(bits)) == bits

    def test_from_negabinary_rejects_negative_pattern(self):
        with pytest.raises(ValueError):
            from_negabinary(-1)


class TestDigitWindows:
    def test_max_positive_paper_values(self):
        # Sec. 2.3.1: m = 010101₋₂ = 21 on six digits; 101₋₂ = 5 on three.
        assert max_positive(6) == 21
        assert max_positive(3) == 5

    def test_window_width_is_power_of_two(self):
        for s in range(0, 16):
            width = max_positive(s) - min_negabinary(s) + 1
            assert width == 2**s

    @given(st.integers(min_value=1, max_value=18))
    def test_window_is_exactly_representable(self, s):
        lo, hi = min_negabinary(s), max_positive(s)
        for value in (lo, hi, 0):
            assert nb_width(value) <= s
        assert nb_width(hi + 1) > s
        assert nb_width(lo - 1) > s


class TestRankEncoding:
    def test_paper_examples_p8(self):
        # Sec. 2.3.1: rank2nb(2, 8) = 110 and rank2nb(6, 8) = 010 (= −2).
        assert rank_to_nb(2, 8) == 0b110
        assert rank_to_nb(6, 8) == 0b010

    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32, 64, 128, 256])
    def test_bijection(self, p):
        seen = set()
        for r in range(p):
            bits = rank_to_nb(r, p)
            assert bits < p  # fits in s digits
            assert nb_to_rank(bits, p) == r
            seen.add(bits)
        assert len(seen) == p

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            rank_to_nb(0, 6)

    def test_rejects_out_of_range_rank(self):
        with pytest.raises(ValueError):
            rank_to_nb(8, 8)


class TestBitUtilities:
    def test_ones_mask(self):
        assert ones_mask(0) == 0
        assert ones_mask(3) == 0b111
        with pytest.raises(ValueError):
            ones_mask(-1)

    def test_trailing_equal_bits_paper_examples(self):
        # Sec. 2.3.2: u = 3 for 1000 and u = 2 for 1011 (s = 4).
        assert trailing_equal_bits(0b1000, 4) == 3
        assert trailing_equal_bits(0b1011, 4) == 2

    def test_trailing_all_same(self):
        assert trailing_equal_bits(0b0000, 4) == 4
        assert trailing_equal_bits(0b1111, 4) == 4

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_bit_reverse_involution(self, bits):
        assert bit_reverse(bit_reverse(bits, 12), 12) == bits

    def test_bit_reverse_known(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011

    def test_nb_digits_format(self):
        assert nb_digits(0b101, 5) == "00101"
