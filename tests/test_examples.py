"""Smoke tests: every example script runs end to end (small configs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, argv=None):
    old = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "verified against NumPy" in out
    assert "bine-rsag" in out


def test_algorithm_playground(capsys):
    _run("algorithm_playground.py", ["8"])
    out = capsys.readouterr().out
    assert "negabinary rank labels" in out
    assert "reduce-scatter block responsibility" in out


@pytest.mark.slow
def test_traffic_study(capsys):
    _run("traffic_study.py")
    out = capsys.readouterr().out
    assert "6.0n" in out and "3.0n" in out
    assert "theoretical bound: 33%" in out


@pytest.mark.slow
def test_torus_collectives(capsys):
    _run("torus_collectives.py")
    out = capsys.readouterr().out
    assert "verified against NumPy" in out
