"""Tests for traffic accounting and the cost model."""

import pytest

from repro.collectives.registry import build
from repro.model.cost import CostParams
from repro.model.simulator import evaluate_time, profile_schedule
from repro.model.traffic import (
    global_traffic_elems,
    link_loads_per_step,
    traffic_by_class,
    traffic_reduction,
)
from repro.topology.base import LinkClass
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.mapping import block_mapping


@pytest.fixture
def lumi_like():
    return Dragonfly(4, 8, links_per_group_pair=4)


class TestTraffic:
    def test_fig1_exact(self):
        ft = FatTree(4, 2, 2.0)
        groups = [ft.group_of(i) for i in range(8)]
        n = 8
        assert global_traffic_elems(build("bcast", "binomial-dd", 8, n), groups) == 6 * n
        assert global_traffic_elems(build("bcast", "binomial-dh", 8, n), groups) == 3 * n

    def test_single_group_no_global(self, lumi_like):
        groups = [0] * 8
        sched = build("allreduce", "bine-rsag", 8, 16)
        assert global_traffic_elems(sched, groups) == 0

    def test_traffic_by_class(self, lumi_like):
        sched = build("allreduce", "rabenseifner", 16, 32)
        by_class = traffic_by_class(sched, lumi_like, block_mapping(16))
        assert by_class[LinkClass.GLOBAL] > 0
        assert by_class[LinkClass.LOCAL] > 0

    def test_link_loads_shape(self, lumi_like):
        sched = build("allreduce", "recursive-doubling", 8, 16)
        loads = link_loads_per_step(sched, lumi_like, block_mapping(8))
        assert len(loads) == sched.num_steps

    def test_traffic_reduction(self):
        assert traffic_reduction(100, 67) == pytest.approx(0.33)
        assert traffic_reduction(0, 0) == 0.0
        assert traffic_reduction(100, 150) == pytest.approx(-0.5)


class TestCostModel:
    def test_time_scales_with_bytes(self, lumi_like):
        sched = build("allreduce", "bine-rsag", 16, 16)
        prof = profile_schedule(sched, lumi_like, block_mapping(16))
        params = CostParams()
        t_small = evaluate_time(prof, params, 1024).time
        t_big = evaluate_time(prof, params, 1024 * 1024).time
        assert t_big > t_small
        # at large n the time is bandwidth-bound: 8x data ≈ 8x time
        t_bigger = evaluate_time(prof, params, 8 * 1024 * 1024).time
        assert 4 < t_bigger / t_big < 12

    def test_latency_floor(self, lumi_like):
        sched = build("allreduce", "recursive-doubling", 16, 16)
        prof = profile_schedule(sched, lumi_like, block_mapping(16))
        params = CostParams()
        t = evaluate_time(prof, params, 1).time
        assert t >= sched.num_steps * params.alpha

    def test_ring_latency_dominates_small_vectors(self, lumi_like):
        p = 32
        ring = profile_schedule(
            build("allreduce", "ring", p, p), lumi_like, block_mapping(p))
        bine = profile_schedule(
            build("allreduce", "bine-small", p, p), lumi_like, block_mapping(p))
        params = CostParams()
        n_small = 8  # 32 B
        assert evaluate_time(bine, params, n_small).time < evaluate_time(
            ring, params, n_small).time

    def test_ring_wins_huge_vectors(self, lumi_like):
        p = 16
        ring = profile_schedule(
            build("allreduce", "ring", p, p), lumi_like, block_mapping(p))
        bine = profile_schedule(
            build("allreduce", "bine-rsag", p, p), lumi_like, block_mapping(p))
        params = CostParams()
        n_huge = 128 * 1024 * 1024
        assert evaluate_time(ring, params, n_huge).time < evaluate_time(
            bine, params, n_huge).time

    def test_segment_overhead_punishes_swing(self, lumi_like):
        p = 32
        params = CostParams()
        swing = profile_schedule(
            build("reduce_scatter", "swing", p, p), lumi_like, block_mapping(p))
        bine = profile_schedule(
            build("reduce_scatter", "bine-send", p, p), lumi_like, block_mapping(p))
        n = 256  # latency-dominated regime where segments matter
        assert evaluate_time(bine, params, n).time < evaluate_time(swing, params, n).time

    def test_ports_divide_injection(self, lumi_like):
        sched = build("allreduce", "bine-rsag", 16, 16)
        sched.meta["ports_used"] = 4
        prof = profile_schedule(sched, lumi_like, block_mapping(16))
        one = CostParams(ports=1)
        four = CostParams(ports=4)
        n = 64 * 1024 * 1024
        assert evaluate_time(prof, four, n).time <= evaluate_time(prof, one, n).time

    def test_global_bytes_scale(self, lumi_like):
        sched = build("allreduce", "rabenseifner", 16, 16)
        prof = profile_schedule(sched, lumi_like, block_mapping(16))
        params = CostParams()
        m1 = evaluate_time(prof, params, 1000)
        m2 = evaluate_time(prof, params, 2000)
        assert m2.global_bytes == pytest.approx(2 * m1.global_bytes)

    def test_mapping_size_mismatch(self, lumi_like):
        sched = build("allreduce", "bine-rsag", 16, 16)
        with pytest.raises(ValueError):
            profile_schedule(sched, lumi_like, block_mapping(8))


class TestAnalyticProfiles:
    """Analytic fast profiles must agree with exact schedule profiling."""

    @pytest.mark.parametrize("variant", ["reduce_scatter", "allgather", "allreduce"])
    def test_ring_matches_exact(self, lumi_like, variant):
        from repro.model.analytic import ring_profile

        p = 16
        mapping = block_mapping(p)
        analytic = ring_profile(p, lumi_like, mapping, variant)
        name = {"reduce_scatter": "reduce_scatter", "allgather": "allgather",
                "allreduce": "allreduce"}[variant]
        exact = profile_schedule(build(name, "ring", p, p), lumi_like, mapping)
        params = CostParams()
        for n in (64, 1024 * 1024):
            ta = evaluate_time(analytic, params, n).time
            te = evaluate_time(exact, params, n).time
            assert ta == pytest.approx(te, rel=0.05), (variant, n)

    def test_bine_alltoall_bytes_match_exact(self, lumi_like):
        """The analytic (packed) profile moves the same bytes over the same
        routes as the executor's slot-tracking builder; only the wire
        segmentation/pack trade-off differs (Sec. 4.4's two data handlings)."""
        from repro.model.analytic import bine_alltoall_profile

        p = 32
        mapping = block_mapping(p)
        analytic = bine_alltoall_profile(p, lumi_like, mapping)
        exact = profile_schedule(build("alltoall", "bine", p, p), lumi_like, mapping)
        assert analytic.total_global_elems() == exact.total_global_elems()
        # Times intentionally differ: the packed implementation trades
        # per-step rotation copies for contiguous wire segments, the
        # slot-tracking executor does the opposite (Sec. 4.4) — but both
        # move identical bytes over identical routes (checked above).

    def test_bruck_alltoall_bytes_match_exact(self, lumi_like):
        from repro.model.analytic import bruck_alltoall_profile

        p = 32
        mapping = block_mapping(p)
        analytic = bruck_alltoall_profile(p, lumi_like, mapping)
        exact = profile_schedule(build("alltoall", "bruck", p, p), lumi_like, mapping)
        assert analytic.total_global_elems() == exact.total_global_elems()
