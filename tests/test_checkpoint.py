"""Crash-safe campaigns: journal format, resume identity, drain, chaos.

The contract under test (ISSUE 10 / docs/robustness.md): a campaign
interrupted at any cell boundary — SIGKILL via the chaos harness, or a
graceful SIGINT/SIGTERM drain — and then resumed with ``--resume``
produces records, summaries, and tune-table digests **byte-identical**
to an uninterrupted run, across serial/parallel execution, both analytic
engines, the DES engine, and fault scenarios.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkpoint import (
    JOURNAL_SCHEMA,
    CampaignJournal,
    JournalWriter,
    journal_path,
    manifest_digest,
    read_journal,
    summarize_journal,
)
from repro.checkpoint.journal import JOURNAL_VERSION
from repro.cli.campaign import run_campaign
from repro.cli.main import main
from repro.cli.manifest import manifest_from_dict
from repro.faults import FaultSpec
from repro.runtime.errors import InterruptedRunError, JournalError

REPO_ROOT = Path(__file__).resolve().parent.parent

TINY_MANIFEST = {
    "campaign": {"name": "tiny", "system": "lumi"},
    "grid": [{
        "collectives": ["bcast", "allgather"],
        "node_counts": [8, 16],
        "vector_bytes": [1024, 65536],
    }],
    "summary": {"family": "bine", "baseline": "binomial"},
}

TINY_TOML = """
[campaign]
name = "tiny"
system = "lumi"

[[grid]]
collectives = ["bcast", "allgather"]
node_counts = [8, 16]
vector_bytes = [1024, 65536]

[summary]
family = "bine"
baseline = "binomial"
"""

FAULTS_TOML = TINY_TOML + """
[[faults]]

[[faults]]
failed_links = 1
seed = 13
"""

DES_TOML = """
[campaign]
name = "tiny-des"
system = "lumi"
engine = "des"

[[grid]]
collectives = ["bcast", "allgather"]
node_counts = [8, 16]
vector_bytes = [1024, 65536]

[[faults]]
timeline = "at=0.001:links=2,seed=5;at=0.01:heal=links"
"""


def tiny_manifest():
    return manifest_from_dict(TINY_MANIFEST)


def record_dicts(result):
    return [r.to_dict() for r in result.records]


# -- journal file format -----------------------------------------------------


class TestJournalFormat:
    def _header(self):
        return {"kind": "header", "schema": JOURNAL_SCHEMA,
                "version": JOURNAL_VERSION}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.journal"
        with JournalWriter(path, self._header()) as w:
            w.append({"kind": "cell", "collective": "bcast", "p": 16,
                      "records": []})
        doc = read_journal(path)
        assert doc.header["schema"] == JOURNAL_SCHEMA
        assert doc.entries[0]["collective"] == "bcast"
        assert not doc.truncated

    def test_torn_tail_dropped_and_repaired(self, tmp_path):
        path = tmp_path / "t.journal"
        with JournalWriter(path, self._header()) as w:
            w.append({"kind": "cell", "p": 8})
        sound = path.read_bytes()
        # a crash mid-flush leaves a partial line (no trailing newline)
        path.write_bytes(sound + b'0badc0de {"kind": "cel')
        doc = read_journal(path)
        assert doc.truncated and len(doc.entries) == 1
        assert path.read_bytes() != sound  # plain read never mutates
        read_journal(path, repair=True)
        assert path.read_bytes() == sound  # repair truncates the torn tail

    def test_mid_file_corruption_is_hard_error(self, tmp_path):
        path = tmp_path / "t.journal"
        with JournalWriter(path, self._header()) as w:
            w.append({"kind": "cell", "p": 8})
            w.append({"kind": "cell", "p": 16})
        blob = bytearray(path.read_bytes())
        # flip one payload byte of the middle line
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(JournalError, match="damaged, not torn"):
            read_journal(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not.journal"
        path.write_text('{"traceEvents": []}\n')
        with pytest.raises(JournalError):
            read_journal(path)

    def test_manifest_digest_tracks_campaign_identity(self):
        a = manifest_digest(tiny_manifest())
        changed = dict(TINY_MANIFEST, campaign={"name": "tiny",
                                                "system": "lumi", "seed": 8})
        b = manifest_digest(manifest_from_dict(changed))
        assert a == manifest_digest(tiny_manifest())
        assert a != b


# -- resume identity (in-process) -------------------------------------------


class TestResumeIdentity:
    def test_journaled_run_identical_to_plain(self, tmp_path):
        plain = run_campaign(tiny_manifest())
        journaled = run_campaign(tiny_manifest(), journal=tmp_path)
        assert record_dicts(journaled) == record_dicts(plain)
        assert journaled.summaries == plain.summaries

    def test_resume_from_partial_journal_identical(self, tmp_path):
        plain = run_campaign(tiny_manifest())
        run_campaign(tiny_manifest(), journal=tmp_path)
        path = journal_path(tmp_path, "tiny")
        # keep the header, the plan, and the first two of four cells
        lines = path.read_bytes().splitlines(keepends=True)
        kinds = [json.loads(l[9:]).get("kind") for l in lines]
        assert kinds.count("cell") == 4
        kept, cells = [], 0
        for line, kind in zip(lines, kinds):
            if kind == "cell":
                cells += 1
                if cells > 2:
                    continue
            kept.append(line)
        path.write_bytes(b"".join(kept))
        resumed = run_campaign(tiny_manifest(), journal=tmp_path, resume=True)
        assert record_dicts(resumed) == record_dicts(plain)
        assert resumed.summaries == plain.summaries
        assert summarize_journal(read_journal(path))["resumes"] == 1

    def test_parallel_journaled_and_resume_identical(self, tmp_path):
        plain = run_campaign(tiny_manifest())
        parallel = run_campaign(tiny_manifest(), journal=tmp_path, workers=2)
        assert record_dicts(parallel) == record_dicts(plain)
        resumed = run_campaign(tiny_manifest(), journal=tmp_path,
                               resume=True, workers=2)
        assert record_dicts(resumed) == record_dicts(plain)

    def test_tune_digest_identical_after_resume(self, tmp_path):
        from repro.tune.tables import build_decision_table

        plain = run_campaign(tiny_manifest())
        run_campaign(tiny_manifest(), journal=tmp_path)
        resumed = run_campaign(tiny_manifest(), journal=tmp_path, resume=True)
        ref = build_decision_table(plain.records, name="t", source="-")
        got = build_decision_table(resumed.records, name="t", source="-")
        assert got.records_digest == ref.records_digest
        assert got.to_dict() == ref.to_dict()

    def test_faults_scenarios_resume_identical(self, tmp_path):
        scenarios = (FaultSpec(), FaultSpec(failed_links=1, seed=13))
        plain = run_campaign(tiny_manifest(), faults=scenarios)
        run_campaign(tiny_manifest(), faults=scenarios, journal=tmp_path)
        resumed = run_campaign(tiny_manifest(), faults=scenarios,
                               journal=tmp_path, resume=True)
        assert record_dicts(resumed) == record_dicts(plain)

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        run_campaign(tiny_manifest(), journal=tmp_path)
        with pytest.raises(JournalError, match="--resume"):
            run_campaign(tiny_manifest(), journal=tmp_path)

    def test_resume_refuses_foreign_campaign(self, tmp_path):
        run_campaign(tiny_manifest(), journal=tmp_path)
        other = manifest_from_dict({
            "campaign": {"name": "tiny", "system": "lumi", "seed": 8},
            "grid": TINY_MANIFEST["grid"],
        })
        with pytest.raises(JournalError, match="manifest_digest"):
            run_campaign(other, journal=tmp_path, resume=True)

    def test_resume_refuses_engine_switch(self, tmp_path):
        run_campaign(tiny_manifest(), journal=tmp_path)
        with pytest.raises(JournalError, match="engine"):
            run_campaign(tiny_manifest(), journal=tmp_path, resume=True,
                         profile_engine="python")

    def test_checkpoint_counters(self, tmp_path):
        from repro.obs import metrics

        base = metrics.counters().get("checkpoint.journal.append", 0)
        run_campaign(tiny_manifest(), journal=tmp_path)
        counters = metrics.counters()
        assert counters["checkpoint.journal.append"] > base
        skipped = counters.get("checkpoint.resume.skipped", 0)
        run_campaign(tiny_manifest(), journal=tmp_path, resume=True)
        assert metrics.counters()["checkpoint.resume.skipped"] == skipped + 4


# -- chaos harness (subprocess) ----------------------------------------------


def _run_repro(args, *, chaos=None, cwd=None):
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    env.pop("REPRO_CHAOS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd or REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=600,
    )


def _chaos_until_done(manifest, workdir, *, extra=(), signal_mode="kill",
                      seed=3):
    """Kill/resume loop; returns (reference bytes, final bytes, kills)."""
    ref = workdir / "ref.json"
    out = workdir / "out.json"
    proc = _run_repro(["campaign", str(manifest), "--format", "json",
                       "-o", str(ref), *extra])
    assert proc.returncode == 0, proc.stderr
    base = ["campaign", str(manifest), "--journal", str(workdir / "j"),
            "--format", "json", "-o", str(out), *extra]
    kills = 0
    for attempt in range(32):
        chaos = f"kill_after=1,seed={seed + attempt}"
        if signal_mode != "kill":
            chaos += f",signal={signal_mode}"
        proc = _run_repro(base + (["--resume"] if attempt else []),
                          chaos=chaos)
        if proc.returncode == 0:
            return ref.read_bytes(), out.read_bytes(), kills
        assert proc.returncode in (-9, 137, 9), (
            f"unexpected exit {proc.returncode}: {proc.stderr}"
        )
        kills += 1
    raise AssertionError("chaos loop did not converge in 32 attempts")


class TestChaosHarness:
    @pytest.fixture()
    def faults_manifest(self, tmp_path):
        path = tmp_path / "faults.toml"
        path.write_text(FAULTS_TOML)
        return path

    def test_serial_faults_killed_resume_identical(self, faults_manifest,
                                                   tmp_path):
        ref, out, kills = _chaos_until_done(faults_manifest, tmp_path)
        assert kills >= 3  # ≥3 random cell-boundary kills (acceptance)
        assert ref == out

    def test_workers_killed_resume_identical(self, tmp_path):
        manifest = tmp_path / "tiny.toml"
        manifest.write_text(TINY_TOML)
        ref, out, kills = _chaos_until_done(
            manifest, tmp_path, extra=("--workers", "2"), seed=17,
        )
        assert kills >= 3
        assert ref == out

    def test_des_timeline_killed_resume_identical(self, tmp_path):
        manifest = tmp_path / "des.toml"
        manifest.write_text(DES_TOML)
        ref, out, kills = _chaos_until_done(manifest, tmp_path, seed=29)
        assert kills >= 3
        assert ref == out

    def test_sigint_drains_to_exit_9_with_flushed_journal(self, tmp_path):
        manifest = tmp_path / "tiny.toml"
        manifest.write_text(TINY_TOML)
        proc = _run_repro(
            ["campaign", str(manifest), "--journal", str(tmp_path / "j")],
            chaos="kill_after=2,signal=int",
        )
        assert proc.returncode == 9
        assert "InterruptedRunError" in proc.stderr
        assert "--resume" in proc.stderr
        # the journal was flushed before exit: 2 cells are durable
        doc = read_journal(journal_path(tmp_path / "j", "tiny"))
        summary = summarize_journal(doc)
        assert summary["cells_done"] == 2
        assert summary["cells_planned"] == 4
        # and the drained run resumes to the uninterrupted result
        ref = tmp_path / "ref.json"
        out = tmp_path / "out.json"
        assert _run_repro(["campaign", str(manifest), "--format", "json",
                           "-o", str(ref)]).returncode == 0
        proc = _run_repro(["campaign", str(manifest), "--journal",
                           str(tmp_path / "j"), "--resume",
                           "--format", "json", "-o", str(out)])
        assert proc.returncode == 0, proc.stderr
        assert ref.read_bytes() == out.read_bytes()

    def test_chaos_driver_script(self, tmp_path):
        manifest = tmp_path / "tiny.toml"
        manifest.write_text(TINY_TOML)
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tests" / "chaos.py"),
             str(manifest), "--kill-after", "1", "--seed", "5"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "byte-identical" in proc.stdout


# -- CLI surface -------------------------------------------------------------


class TestCheckpointCli:
    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro.cli import commands

        def _interrupt(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(commands, "cmd_list", _interrupt)
        assert main(["list"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_resume_without_journal_is_usage_error(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.toml"
        manifest.write_text(TINY_TOML)
        assert main(["campaign", str(manifest), "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_corrupt_journal_exits_10(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.toml"
        manifest.write_text(TINY_TOML)
        run_campaign(tiny_manifest(), journal=tmp_path / "j")
        path = journal_path(tmp_path / "j", "tiny")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        code = main(["campaign", str(manifest), "--journal",
                     str(tmp_path / "j"), "--resume"])
        assert code == 10
        assert "JournalError" in capsys.readouterr().err

    def test_stats_summarizes_journal(self, tmp_path, capsys):
        run_campaign(tiny_manifest(), journal=tmp_path)
        run_campaign(tiny_manifest(), journal=tmp_path, resume=True)
        path = journal_path(tmp_path, "tiny")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cells: 4/4 done, 0 remaining" in out
        assert "resumes: 1" in out
        assert main(["stats", str(path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scenarios"]["none"]["done"] == 4
        assert doc["resumes"] == 1

    def test_stats_validates_journal(self, tmp_path, capsys):
        run_campaign(tiny_manifest(), journal=tmp_path)
        path = journal_path(tmp_path, "tiny")
        assert main(["stats", str(path), "--validate"]) == 0
        assert "ok" in capsys.readouterr().out
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert main(["stats", str(path), "--validate"]) == 10
        assert "JournalError" in capsys.readouterr().err

    def test_campaign_journal_resume_via_cli(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.toml"
        manifest.write_text(TINY_TOML)
        ref = tmp_path / "ref.json"
        out = tmp_path / "out.json"
        assert main(["campaign", str(manifest), "--format", "json",
                     "-o", str(ref)]) == 0
        capsys.readouterr()
        assert main(["campaign", str(manifest), "--journal",
                     str(tmp_path / "j"), "--format", "json",
                     "-o", str(out)]) == 0
        assert "journal" in capsys.readouterr().err
        assert ref.read_bytes() == out.read_bytes()
        assert main(["campaign", str(manifest), "--journal",
                     str(tmp_path / "j"), "--resume", "--format", "json",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        assert ref.read_bytes() == out.read_bytes()


# -- drain scope (in-process) ------------------------------------------------


class TestDrainScope:
    def test_first_signal_requests_drain_second_aborts(self):
        import signal as _signal

        from repro.checkpoint.drain import drain_requested, drain_scope

        with drain_scope():
            assert drain_requested() is None
            os.kill(os.getpid(), _signal.SIGINT)
            assert drain_requested() == "SIGINT"
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), _signal.SIGINT)
        # scope exit restores default handlers and clears the request
        assert drain_requested() is None

    def test_interrupted_error_carries_progress(self):
        err = InterruptedRunError("SIGTERM", 3, 5)
        assert err.signal_name == "SIGTERM"
        assert "3 cell(s) journaled" in str(err)
        assert "--resume" in str(err)
