"""Tests for the schedule IR and executor (the MPI-substitute substrate)."""

import numpy as np
import pytest

from repro.runtime import (
    BufferMismatchError,
    LocalCopy,
    RankBuffers,
    Schedule,
    ScheduleError,
    Step,
    Transfer,
    execute,
    named_op,
)
from repro.runtime.buffers import gather_segments, scatter_segments


def make_buffers(p, n, fill_rank_id=True):
    bufs = RankBuffers(p)
    bufs.allocate("vec", n, dtype=np.int64)
    if fill_rank_id:
        for r in range(p):
            bufs.set(r, "vec", np.full(n, r, dtype=np.int64))
    return bufs


class TestTransferValidation:
    def test_size_mismatch_rejected(self):
        with pytest.raises(BufferMismatchError):
            Transfer(0, 1, "vec", "vec", ((0, 4),), ((0, 3),))

    def test_self_send_rejected(self):
        with pytest.raises(ScheduleError):
            Transfer(2, 2, "vec", "vec", ((0, 4),), ((0, 4),))

    def test_negative_segment_rejected(self):
        with pytest.raises(ScheduleError):
            Transfer(0, 1, "vec", "vec", ((4, 2),), ((4, 2),))

    def test_num_segments(self):
        t = Transfer(0, 1, "vec", "vec", ((0, 2), (4, 6)), ((0, 4),))
        assert t.num_segments == 2
        assert t.nelems == 4


class TestStepValidation:
    def test_overlapping_overwrites_rejected(self):
        step = Step(
            transfers=(
                Transfer(0, 2, "vec", "vec", ((0, 4),), ((0, 4),)),
                Transfer(1, 2, "vec", "vec", ((0, 4),), ((2, 6),)),
            )
        )
        with pytest.raises(ScheduleError):
            step.validate(3)

    def test_overlapping_reduces_allowed(self):
        step = Step(
            transfers=(
                Transfer(0, 2, "vec", "vec", ((0, 4),), ((0, 4),), op="sum"),
                Transfer(1, 2, "vec", "vec", ((0, 4),), ((0, 4),), op="sum"),
            )
        )
        step.validate(3)  # no raise

    def test_out_of_range_rank_rejected(self):
        step = Step(transfers=(Transfer(0, 5, "vec", "vec", ((0, 1),), ((0, 1),)),))
        with pytest.raises(ScheduleError):
            step.validate(2)


class TestExecutorSemantics:
    def test_simple_copy(self):
        bufs = make_buffers(2, 4)
        sched = Schedule(2, meta={})
        sched.add(Step(transfers=(Transfer(0, 1, "vec", "vec", ((0, 4),), ((0, 4),)),)))
        execute(sched, bufs)
        assert (bufs.get(1, "vec") == 0).all()

    def test_concurrent_swap_uses_pre_state(self):
        """Pairwise sendrecv: both sides must read pre-step values."""
        bufs = make_buffers(2, 4)
        sched = Schedule(2, meta={})
        sched.add(
            Step(
                transfers=(
                    Transfer(0, 1, "vec", "vec", ((0, 4),), ((0, 4),)),
                    Transfer(1, 0, "vec", "vec", ((0, 4),), ((0, 4),)),
                )
            )
        )
        execute(sched, bufs)
        assert (bufs.get(0, "vec") == 1).all()
        assert (bufs.get(1, "vec") == 0).all()

    def test_reduce_op_applied(self):
        bufs = make_buffers(2, 4)
        sched = Schedule(2, meta={})
        sched.add(
            Step(transfers=(Transfer(0, 1, "vec", "vec", ((0, 4),), ((0, 4),), op="sum"),))
        )
        execute(sched, bufs)
        assert (bufs.get(1, "vec") == 1).all()  # 1 + 0

    def test_multi_segment_pack_unpack(self):
        bufs = RankBuffers(2)
        bufs.allocate("vec", 6, dtype=np.int64)
        bufs.set(0, "vec", np.arange(6, dtype=np.int64))
        sched = Schedule(2, meta={})
        sched.add(
            Step(
                transfers=(
                    Transfer(0, 1, "vec", "vec", ((0, 2), (4, 6)), ((2, 6),)),
                )
            )
        )
        execute(sched, bufs)
        assert bufs.get(1, "vec").tolist() == [0, 0, 0, 1, 4, 5]

    def test_local_copy_pre_and_post(self):
        bufs = RankBuffers(1)
        bufs.allocate("vec", 4, dtype=np.int64)
        bufs.allocate("tmp", 4, dtype=np.int64)
        bufs.set(0, "vec", np.array([1, 2, 3, 4], dtype=np.int64))
        sched = Schedule(1, meta={})
        sched.add(
            Step(
                pre=(LocalCopy(0, "vec", "tmp", ((0, 4),), ((0, 4),)),),
                post=(LocalCopy(0, "tmp", "vec", ((0, 2),), ((2, 4),)),),
            )
        )
        execute(sched, bufs)
        assert bufs.get(0, "vec").tolist() == [1, 2, 1, 2]
        assert bufs.get(0, "tmp").tolist() == [1, 2, 3, 4]

    def test_trace_accounting(self):
        bufs = make_buffers(2, 4)
        sched = Schedule(2, meta={})
        sched.add(Step(transfers=(Transfer(0, 1, "vec", "vec", ((0, 4),), ((0, 4),)),)))
        sched.add(Step(transfers=(Transfer(1, 0, "vec", "vec", ((0, 2),), ((0, 2),)),)))
        trace = execute(sched, bufs)
        assert trace.steps_run == 2
        assert trace.transfers_run == 2
        assert trace.elems_moved == 6
        assert trace.per_step_elems == [4, 2]

    def test_p_mismatch_rejected(self):
        bufs = make_buffers(2, 4)
        sched = Schedule(3, meta={})
        with pytest.raises(ValueError):
            execute(sched, bufs)

    def test_segment_beyond_buffer_rejected(self):
        bufs = make_buffers(2, 4)
        sched = Schedule(2, meta={})
        sched.add(Step(transfers=(Transfer(0, 1, "vec", "vec", ((0, 8),), ((0, 8),)),)))
        with pytest.raises(BufferMismatchError):
            execute(sched, bufs)


class TestReduceOps:
    @pytest.mark.parametrize(
        "name,a,b,expect",
        [
            ("sum", 5, 3, 8),
            ("prod", 5, 3, 15),
            ("max", 5, 3, 5),
            ("min", 5, 3, 3),
            ("band", 0b110, 0b011, 0b010),
            ("bor", 0b110, 0b011, 0b111),
            ("bxor", 0b110, 0b011, 0b101),
        ],
    )
    def test_builtin_ops(self, name, a, b, expect):
        op = named_op(name)
        out = op(np.array([a]), np.array([b]))
        assert out[0] == expect

    def test_unknown_op(self):
        with pytest.raises(KeyError):
            named_op("avg")


class TestBufferHelpers:
    def test_gather_segments(self):
        buf = np.arange(10)
        out = gather_segments(buf, [(0, 3), (7, 10)])
        assert out.tolist() == [0, 1, 2, 7, 8, 9]

    def test_scatter_segments_reduce(self):
        buf = np.zeros(6, dtype=np.int64)
        scatter_segments(buf, [(0, 3)], np.array([1, 2, 3]), named_op("sum"))
        scatter_segments(buf, [(0, 3)], np.array([1, 2, 3]), named_op("sum"))
        assert buf.tolist() == [2, 4, 6, 0, 0, 0]

    def test_scatter_length_mismatch(self):
        buf = np.zeros(6, dtype=np.int64)
        with pytest.raises(BufferMismatchError):
            scatter_segments(buf, [(0, 2)], np.array([1, 2, 3]))

    def test_missing_buffer_error(self):
        bufs = RankBuffers(2)
        with pytest.raises(BufferMismatchError):
            bufs.get(0, "nope")

    def test_snapshot_is_deep(self):
        bufs = make_buffers(2, 4)
        snap = bufs.snapshot()
        bufs.get(0, "vec")[:] = 99
        assert (snap.get(0, "vec") == 0).all()
