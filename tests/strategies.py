"""Seeded, stdlib-only generators for property/metamorphic tests.

A miniature hypothesis-style toolkit: every generator takes an explicit
``random.Random`` (or a seed) so failures reproduce exactly, and builds
plausible *sweep-record grids* — the input domain shared by the tune,
summarize, report and diff layers.  Used by ``tests/test_tune_properties.py``
and available to any test that wants randomized-but-deterministic record
sets.

No third-party dependency: the point is metamorphic coverage (build is
order-invariant, batch == scalar loop, winner == argmin), not shrinking.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.analysis.sweep import SweepRecord
from repro.faults import HEAL_TARGETS, FaultTimeline, TimelineEvent

#: plausible algorithm inventory per family, mirroring the registry's shape
FAMILIES = {
    "bine": ("bine", "bine-rsag", "bine-scatter-allgather"),
    "binomial": ("binomial", "binomial-scatter-allgather"),
    "ring": ("ring",),
    "bruck": ("bruck",),
}

SYSTEMS = ("lumi", "leonardo", "fugaku")
COLLECTIVES = ("bcast", "allgather", "allreduce", "alltoall")
FAULT_LABELS = ("none", "links2-seed13", "links1-global0.5")


def rng_for(seed: int) -> random.Random:
    """A fresh deterministic stream; use one per test for isolation."""
    return random.Random(seed)


def grid_axes(rng: random.Random) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """A sorted (p_grid, n_grid) pair of power-of-two axes."""
    p_count = rng.randint(1, 4)
    n_count = rng.randint(1, 4)
    p_grid = sorted(rng.sample([2 ** k for k in range(2, 11)], p_count))
    n_grid = sorted(rng.sample([32 * 8 ** k for k in range(7)], n_count))
    return tuple(p_grid), tuple(n_grid)


def record_grid(
    rng: random.Random,
    *,
    systems: Sequence[str] = ("lumi",),
    collectives: Sequence[str] = ("bcast",),
    faults: Sequence[str] = ("none",),
    ppns: Sequence[int] = (1,),
    tie_fraction: float = 0.0,
) -> list[SweepRecord]:
    """A full cross-product record grid with randomized times.

    Every ``(system, faults, collective, ppn, p, n)`` cell gets one record
    per algorithm of 2–4 randomly chosen families, so cells always have a
    well-defined argmin winner.  ``tie_fraction`` forces that share of
    cells to contain two records with *exactly equal* best times — the
    adversarial case for order-invariance (the tie must break on the
    algorithm name, not on input order).
    """
    p_grid, n_grid = grid_axes(rng)
    fams = rng.sample(sorted(FAMILIES), rng.randint(2, len(FAMILIES)))
    records = []
    for system in systems:
        for fault in faults:
            for coll in collectives:
                for ppn in ppns:
                    for p in p_grid:
                        for nb in n_grid:
                            cell = []
                            for fam in fams:
                                for algo in FAMILIES[fam]:
                                    t = rng.uniform(1e-6, 1e-2)
                                    cell.append(SweepRecord(
                                        system, coll, algo, fam, p, nb,
                                        t, float(nb * p // 2),
                                        faults=fault, ppn=ppn,
                                    ))
                            if len(cell) >= 2 and rng.random() < tie_fraction:
                                best = min(cell, key=lambda r: r.time)
                                other = rng.choice(
                                    [r for r in cell if r is not best]
                                )
                                cell[cell.index(other)] = SweepRecord(
                                    other.system, other.collective,
                                    other.algorithm, other.family,
                                    other.p, other.n_bytes, best.time,
                                    other.global_bytes,
                                    faults=other.faults, ppn=other.ppn,
                                )
                            records.extend(cell)
    return records


#: link classes a timeline derate event may target (labels, not enums)
TIMELINE_CLASSES = ("local", "global", "torus", "intra")


def timeline_event(rng: random.Random, at: float) -> TimelineEvent:
    """One plausible :class:`TimelineEvent` at time ``at``.

    Covers all three event shapes the grammar allows — damage (victim
    counts), rate changes (derate / background) and heals — while never
    generating an invalid event (the constructor rejects no-op and mixed
    heal+damage events).
    """
    kind = rng.choice(("damage", "rates", "heal"))
    if kind == "heal":
        return TimelineEvent(at=at, heal=rng.choice(HEAL_TARGETS))
    if kind == "rates":
        if rng.random() < 0.5:
            cls = rng.choice(TIMELINE_CLASSES)
            return TimelineEvent(
                at=at, derate={cls: rng.choice((0.25, 0.5, 0.75, 1.0))}
            )
        return TimelineEvent(at=at, background=rng.choice((0.0, 0.125, 0.5, 0.9)))
    return TimelineEvent(
        at=at,
        links=rng.randint(1, 3),  # >= 1 so the event is never a no-op
        nodes=rng.randint(0, 2),
        nics=rng.randint(0, 2),
        seed=rng.randint(0, 99),
    )


def timeline(rng: random.Random, *, max_events: int = 4) -> FaultTimeline:
    """A random :class:`FaultTimeline` of 0–``max_events`` distinct-time events."""
    count = rng.randint(0, max_events)
    ats: set[float] = set()
    while len(ats) < count:
        ats.add(round(rng.uniform(0.0, 0.05), rng.randint(3, 9)))
    return FaultTimeline(tuple(timeline_event(rng, at) for at in sorted(ats)))


def shuffled(records: Sequence[SweepRecord], rng: random.Random) -> list[SweepRecord]:
    """An independently shuffled copy (the metamorphic transform)."""
    out = list(records)
    rng.shuffle(out)
    return out


def queries_for(
    records: Sequence[SweepRecord], rng: random.Random, count: int,
    *, off_grid: bool = False,
) -> list[tuple[int, int]]:
    """``count`` (p, n_bytes) query points drawn from the records' grid.

    With ``off_grid`` the points are perturbed off the grid values, which
    only the ``nearest``/``refuse`` policies can answer.
    """
    ps = sorted({r.p for r in records})
    ns = sorted({r.n_bytes for r in records})
    out = []
    for _ in range(count):
        p, nb = rng.choice(ps), rng.choice(ns)
        if off_grid:
            p = max(1, p + rng.choice((-1, 1)) * rng.randint(1, max(1, p // 3)))
            nb = max(1, nb + rng.choice((-1, 1)) * rng.randint(1, max(1, nb // 3)))
        out.append((p, nb))
    return out
