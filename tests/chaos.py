"""Chaos driver: kill a journaled campaign repeatedly, assert resume-to-identical.

Runs one campaign manifest to completion uninterrupted, then replays it
under ``REPRO_CHAOS`` — the process SIGKILLs itself at a seeded random
cell boundary — resuming after every kill until the run completes, and
asserts that the final records are **byte-identical** to the
uninterrupted run's.  This is the executable form of the checkpoint
subsystem's contract (see docs/robustness.md), used by CI's chaos-smoke
step and runnable by hand::

    $ PYTHONPATH=src python tests/chaos.py campaigns/table3_lumi.toml \\
          --workers 2 --seed 11 --min-kills 3

Exit code 0 when the chaos loop converged byte-identically; 1 on any
divergence, unexpected exit code, or a loop that fails to converge.
"""

from __future__ import annotations

import argparse
import os
import random
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: exit codes the chaos loop treats as "killed as planned, resume and go on"
KILLED_CODES = {
    -9, 137,   # SIGKILL (signal=kill, the default)
    9,         # graceful drain (signal=term / signal=int)
}


def run_repro(args, *, env=None, check=False) -> subprocess.CompletedProcess:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": "src", **(env or {})},
        capture_output=True,
        text=True,
    )
    if check and proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"repro {args[0]} failed with {proc.returncode}")
    return proc


def chaos_loop(
    manifest: str,
    workdir: Path,
    *,
    workers: int | None,
    engine: str | None,
    seed: int,
    kill_after: int,
    signal_mode: str,
    max_attempts: int,
) -> tuple[Path, int]:
    """Kill/resume until the campaign completes; returns (records, kills)."""
    journal_dir = workdir / "journal"
    out = workdir / "chaos_records.json"
    base = ["campaign", manifest, "--journal", str(journal_dir),
            "--format", "json", "--output", str(out)]
    if workers:
        base += ["--workers", str(workers)]
    if engine:
        base += ["--profile-engine", engine]
    rng = random.Random(seed)
    kills = 0
    for attempt in range(max_attempts):
        chaos = f"kill_after={kill_after},seed={rng.randrange(1 << 30)}"
        if signal_mode != "kill":
            chaos += f",signal={signal_mode}"
        cmd = base + (["--resume"] if attempt else [])
        proc = run_repro(cmd, env={"REPRO_CHAOS": chaos})
        if proc.returncode == 0:
            print(f"  converged after {kills} kill(s), {attempt + 1} run(s)")
            return out, kills
        if proc.returncode not in KILLED_CODES:
            sys.stderr.write(proc.stderr)
            raise SystemExit(
                f"unexpected exit code {proc.returncode} on attempt {attempt}"
            )
        kills += 1
    raise SystemExit(f"no convergence after {max_attempts} attempts")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("manifest", help="campaign manifest to torture")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--engine", default=None,
                        help="--profile-engine for both runs")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos boundary RNG seed (default: 7)")
    parser.add_argument("--kill-after", type=int, default=2, metavar="N",
                        help="kill boundary drawn from [1, N] per run "
                        "(default: 2)")
    parser.add_argument("--signal", choices=("kill", "term", "int"),
                        default="kill", dest="signal_mode",
                        help="how the chaos harness kills the run "
                        "(default: kill = SIGKILL)")
    parser.add_argument("--min-kills", type=int, default=3,
                        help="fail unless the loop killed the campaign at "
                        "least this many times (default: 3)")
    parser.add_argument("--max-attempts", type=int, default=64)
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for inspection")
    args = parser.parse_args(argv)

    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        print(f"# uninterrupted reference run: {args.manifest}")
        ref = workdir / "ref_records.json"
        base = ["campaign", args.manifest, "--format", "json",
                "--output", str(ref)]
        if args.workers:
            base += ["--workers", str(args.workers)]
        if args.engine:
            base += ["--profile-engine", args.engine]
        run_repro(base, check=True)

        print(f"# chaos loop: kill_after<={args.kill_after}, "
              f"signal={args.signal_mode}, seed={args.seed}")
        out, kills = chaos_loop(
            args.manifest, workdir,
            workers=args.workers, engine=args.engine, seed=args.seed,
            kill_after=args.kill_after, signal_mode=args.signal_mode,
            max_attempts=args.max_attempts,
        )
        if kills < args.min_kills:
            print(f"FAIL: only {kills} kill(s) < --min-kills {args.min_kills} "
                  "(grid too small or kill_after too large?)")
            return 1
        if ref.read_bytes() != out.read_bytes():
            print("FAIL: resumed records differ from the uninterrupted run")
            return 1
        print(f"OK: byte-identical after {kills} kill(s)")
        return 0
    finally:
        if args.keep:
            print(f"# scratch kept at {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
