"""Tests for torus-optimised collectives (Sec. 5.4, Appendix D)."""

import pytest

from repro.collectives.torus import (
    bucket_allgather,
    bucket_allreduce,
    bucket_reduce_scatter,
    torus_bine_allgather,
    torus_bine_allreduce,
    torus_bine_allreduce_multiport,
    torus_bine_allreduce_small,
    torus_bine_bcast,
    torus_bine_reduce,
    torus_bine_reduce_scatter,
    trinaryx_bcast,
    trinaryx_reduce,
)
from repro.collectives.verify import run_and_check
from repro.core.multiport import multiport_plans, rotated_dimension_schedule
from repro.core.torus_opt import TorusShape, dimension_schedule, torus_bine_tree
from repro.topology.torus import Torus

SHAPES = [(4, 4), (2, 4, 2), (2, 2, 2), (8, 4)]


class TestTorusShape:
    def test_coords_roundtrip(self):
        sh = TorusShape((4, 2, 8))
        for r in range(sh.num_ranks):
            assert sh.rank(sh.coords(r)) == r

    def test_rejects_non_pow2_extent(self):
        with pytest.raises(ValueError):
            TorusShape((4, 3))

    def test_dimension_schedule_interleaves(self):
        # 4x4: last dim first within each round (Fig. 16)
        assert dimension_schedule(TorusShape((4, 4))) == [
            (1, 0), (0, 0), (1, 1), (0, 1)]

    def test_rectangular_dims_drop_out(self):
        # 8x2: dim 1 has one step, dim 0 has three
        sched = dimension_schedule(TorusShape((8, 2)))
        assert sched == [(1, 0), (0, 0), (0, 1), (0, 2)]


class TestTorusBineTree:
    def test_fig16_children(self):
        tree = torus_bine_tree(TorusShape((4, 4)))
        assert [c for _, c in tree.children(0)] == [3, 12, 1, 4]

    @pytest.mark.parametrize("dims", SHAPES)
    def test_single_dimension_edges(self, dims):
        """Every tree edge moves along exactly one torus dimension."""
        sh = TorusShape(dims)
        tree = torus_bine_tree(sh)
        for _, u, v in tree.all_edges():
            cu, cv = sh.coords(u), sh.coords(v)
            assert sum(a != b for a, b in zip(cu, cv)) == 1

    @pytest.mark.parametrize("dims", SHAPES)
    def test_fewer_crossed_links_than_flat(self, dims):
        from repro.core.bine_tree import bine_tree_distance_halving

        sh = TorusShape(dims)
        torus = Torus(dims)
        flat = bine_tree_distance_halving(sh.num_ranks)
        opt = torus_bine_tree(sh)

        def crossed(tree):
            return sum(torus.torus_distance(u, v) for _, u, v in tree.all_edges())

        assert crossed(opt) <= crossed(flat)


@pytest.mark.parametrize("dims", SHAPES)
class TestTorusCollectivesCorrect:
    def test_bcast(self, dims):
        run_and_check(torus_bine_bcast(TorusShape(dims), 13))

    def test_reduce(self, dims):
        run_and_check(torus_bine_reduce(TorusShape(dims), 13))

    def test_reduce_scatter(self, dims):
        sh = TorusShape(dims)
        run_and_check(torus_bine_reduce_scatter(sh, 4 * sh.num_ranks))

    def test_allgather(self, dims):
        sh = TorusShape(dims)
        run_and_check(torus_bine_allgather(sh, 4 * sh.num_ranks))

    def test_allreduce(self, dims):
        sh = TorusShape(dims)
        run_and_check(torus_bine_allreduce(sh, 4 * sh.num_ranks))

    def test_allreduce_small(self, dims):
        run_and_check(torus_bine_allreduce_small(TorusShape(dims), 9))

    def test_allreduce_multiport(self, dims):
        sh = TorusShape(dims)
        n = 2 * sh.num_dims * sh.num_ranks
        sched = torus_bine_allreduce_multiport(sh, n)
        assert sched.meta["ports_used"] == 2 * sh.num_dims
        run_and_check(sched)

    def test_bucket_allreduce(self, dims):
        sh = TorusShape(dims)
        run_and_check(bucket_allreduce(sh, 2 * sh.num_ranks))

    def test_bucket_rs_ag(self, dims):
        sh = TorusShape(dims)
        run_and_check(bucket_reduce_scatter(sh, 2 * sh.num_ranks))
        run_and_check(bucket_allgather(sh, 2 * sh.num_ranks))

    def test_trinaryx(self, dims):
        sh = TorusShape(dims)
        run_and_check(trinaryx_bcast(sh, 12))
        run_and_check(trinaryx_reduce(sh, 12))


class TestMultiportPlans:
    def test_plan_count_and_ports(self):
        plans = multiport_plans(TorusShape((4, 4, 4)))
        assert len(plans) == 6
        assert [p.port for p in plans] == list(range(6))
        assert sum(p.mirror for p in plans) == 3

    def test_rotations_differ(self):
        sh = TorusShape((4, 4))
        a = rotated_dimension_schedule(sh, 0)
        b = rotated_dimension_schedule(sh, 1)
        assert a != b
        assert sorted(a) == sorted(b)  # same steps, different order

    def test_bucket_step_count_linear(self):
        # bucket is Θ(Σ dims) steps; torus bine is Θ(log p)
        sh = TorusShape((8, 8))
        bucket = bucket_allreduce(sh, sh.num_ranks)
        bine = torus_bine_allreduce(sh, sh.num_ranks)
        assert bucket.num_steps > bine.num_steps

    def test_trinaryx_edges_single_hop(self):
        sh = TorusShape((4, 4))
        torus = Torus((4, 4))
        sched = trinaryx_bcast(sh, 12)
        for _, t in sched.all_transfers():
            assert torus.torus_distance(t.src, t.dst) == 1
