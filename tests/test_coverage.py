"""Tests for responsibility/coverage sets (paper Secs. 3.2.3, 4.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import wrap_range_from_set
from repro.core.butterfly import (
    bine_butterfly_doubling,
    bine_butterfly_halving,
    recursive_doubling_butterfly,
    recursive_halving_butterfly,
    swing_butterfly,
)
from repro.core.coverage import (
    bine_dd_responsibility,
    count_segments,
    count_segments_circular,
    keep_blocks,
    recdoub_responsibility,
    rechalv_responsibility,
    responsibility,
    segments_of,
    send_blocks,
)

POWERS = [2, 4, 8, 16, 32, 64]


class TestInvariants:
    @pytest.mark.parametrize("p", POWERS)
    @pytest.mark.parametrize(
        "builder",
        [bine_butterfly_doubling, bine_butterfly_halving,
         recursive_doubling_butterfly, recursive_halving_butterfly],
    )
    def test_halving_invariant(self, p, builder):
        """resp(r, j) = resp(r, j+1) ⊎ resp(partner, j+1); sizes halve."""
        bf = builder(p)
        s = bf.num_steps
        for r in range(p):
            assert responsibility(bf, r, s) == frozenset({r})
            assert responsibility(bf, r, 0) == frozenset(range(p))
            for j in range(s):
                q = bf.partner(r, j)
                own = responsibility(bf, r, j + 1)
                other = responsibility(bf, q, j + 1)
                assert not own & other
                assert own | other == responsibility(bf, r, j)
                assert len(responsibility(bf, r, j)) == p >> j

    @pytest.mark.parametrize("p", POWERS)
    def test_send_keep_partition(self, p):
        bf = bine_butterfly_doubling(p)
        for r in range(p):
            for j in range(bf.num_steps):
                s_ = send_blocks(bf, r, j)
                k_ = keep_blocks(bf, r, j)
                assert s_ | k_ == responsibility(bf, r, j)
                assert not s_ & k_


class TestClosedForms:
    @pytest.mark.parametrize("p", POWERS)
    def test_bine_dd_closed_form(self, p):
        """Generic recursion equals the paper's ν-mask characterisation."""
        bf = bine_butterfly_doubling(p)
        for r in range(p):
            for j in range(bf.num_steps + 1):
                assert responsibility(bf, r, j) == bine_dd_responsibility(p, r, j)

    @pytest.mark.parametrize("p", POWERS)
    def test_recdoub_closed_form(self, p):
        bf = recursive_doubling_butterfly(p)
        for r in range(p):
            for j in range(bf.num_steps + 1):
                assert responsibility(bf, r, j) == recdoub_responsibility(p, r, j)

    @pytest.mark.parametrize("p", POWERS)
    def test_rechalv_closed_form_contiguous(self, p):
        bf = recursive_halving_butterfly(p)
        for r in range(p):
            for j in range(bf.num_steps + 1):
                got = responsibility(bf, r, j)
                assert got == rechalv_responsibility(p, r, j)
                # aligned contiguous range — binomial sends are 1 segment
                assert count_segments(got) == 1

    @pytest.mark.parametrize("p", POWERS)
    def test_dh_butterfly_sets_circular(self, p):
        """Two-transmissions variant: ≤ 2 linear segments (Sec. 4.3.1)."""
        bf = bine_butterfly_halving(p)
        for r in range(p):
            for j in range(bf.num_steps + 1):
                blocks = responsibility(bf, r, j)
                wrap_range_from_set(blocks, p)  # circular-contiguous
                assert count_segments(blocks) <= 2

    @pytest.mark.parametrize("p", [8, 16, 32, 64])
    def test_swing_sets_non_contiguous(self, p):
        """Swing's natural-layout sends fragment — the cost the paper beats."""
        bf = swing_butterfly(p)
        worst = max(
            count_segments(send_blocks(bf, r, j))
            for r in range(p)
            for j in range(bf.num_steps)
        )
        assert worst > 2  # strictly worse than the two-transmission bound


class TestSegmentCounting:
    def test_count_segments(self):
        assert count_segments(set()) == 0
        assert count_segments({0, 1, 2}) == 1
        assert count_segments({0, 2, 4}) == 3
        assert count_segments({0, 1, 5, 6, 9}) == 3

    def test_count_segments_circular(self):
        assert count_segments_circular({7, 0, 1}, 8) == 1
        assert count_segments_circular({0, 1, 7}, 8) == 1
        assert count_segments_circular({0, 2}, 8) == 2
        assert count_segments_circular(set(range(8)), 8) == 1
        assert count_segments_circular(set(), 8) == 0

    def test_segments_of(self):
        assert segments_of({0, 1, 2, 5, 6}) == [(0, 3), (5, 7)]
        assert segments_of(set()) == []
        assert segments_of({3}) == [(3, 4)]

    @given(st.sets(st.integers(min_value=0, max_value=63)))
    @settings(max_examples=200)
    def test_segments_cover_exactly(self, blocks):
        segs = segments_of(blocks)
        covered = {i for lo, hi in segs for i in range(lo, hi)}
        assert covered == blocks
        assert len(segs) == count_segments(blocks)


class TestOverlapDetection:
    def test_invalid_overlap_raises(self):
        """A broken butterfly (non-involutive) must be caught, not silently
        produce overlapping responsibility sets."""
        from repro.core.butterfly import Butterfly

        # partners valid per-step but inconsistent across steps: rank 0 meets
        # rank 1 twice → resp sets overlap at step 0.
        bad = Butterfly(4, "dup", ((1, 0, 3, 2), (1, 0, 3, 2)))
        with pytest.raises(AssertionError):
            responsibility(bad, 0, 0)
