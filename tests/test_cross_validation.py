"""Cross-backend validation: executor, traffic counter, and cost model must
agree on the facts they share for the same schedule."""

import pytest

from repro.collectives.registry import ALGORITHMS, build
from repro.collectives.verify import init_buffers
from repro.model.simulator import evaluate_time, profile_schedule
from repro.model.traffic import global_traffic_elems, traffic_by_class
from repro.runtime import execute
from repro.topology.dragonfly import Dragonfly
from repro.topology.mapping import block_mapping

KEYS = sorted(ALGORITHMS)


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(4, 4, links_per_group_pair=2)


@pytest.mark.parametrize("key", KEYS, ids=lambda k: f"{k[0]}-{k[1]}")
def test_executor_moves_what_schedule_declares(key):
    """Trace element counts equal the schedule's declared communication."""
    sched = build(*key, 8, 32)
    bufs = init_buffers(sched)
    trace = execute(sched, bufs)
    assert trace.elems_moved == sched.total_comm_elems()
    assert trace.transfers_run == sum(len(s.transfers) for s in sched.steps)


@pytest.mark.parametrize("key", KEYS, ids=lambda k: f"{k[0]}-{k[1]}")
def test_profile_global_bytes_match_traffic_counter(key, topo):
    """The profile's global bytes equal the standalone traffic metric."""
    p = 16
    sched = build(*key, p, p)
    mapping = block_mapping(p)
    groups = mapping.groups(topo)
    direct = global_traffic_elems(sched, groups)
    profile = profile_schedule(sched, topo, mapping)
    assert profile.total_global_elems() == direct


@pytest.mark.parametrize("key", KEYS, ids=lambda k: f"{k[0]}-{k[1]}")
def test_profile_class_totals_match_traffic_by_class(key, topo):
    p = 16
    sched = build(*key, p, p)
    mapping = block_mapping(p)
    assert profile_schedule(sched, topo, mapping).total_class_elems() == (
        traffic_by_class(sched, topo, mapping)
    )


@pytest.mark.parametrize(
    "key",
    [("allreduce", "bine-rsag"), ("allreduce", "ring"),
     ("bcast", "bine"), ("alltoall", "bruck")],
    ids=lambda k: f"{k[0]}-{k[1]}",
)
def test_time_monotone_in_size(key, topo):
    """More bytes never make the modelled collective faster."""
    from repro.model.cost import CostParams

    sched = build(*key, 16, 16)
    profile = profile_schedule(sched, topo, block_mapping(16))
    params = CostParams()
    times = [evaluate_time(profile, params, n).time for n in (8, 64, 512, 4096, 32768)]
    assert times == sorted(times)
