"""Telemetry is a pure sidecar: tracing never changes a single byte.

The contract under test (see ``docs/observability.md``):

* **Purity** — records, baseline checks and tune digests are identical
  with tracing on or off, including under ``--workers 2`` and the DES
  engine with a fault timeline.
* **Soundness** — every emitted trace passes the documented schema
  (``validate_trace``): names/phases/pids present, ``B``/``E`` spans
  balanced per track, shard events merged with their own pids.
* **Coverage** — a traced Table 3 campaign contains spans from at least
  six subsystems, and DES traces carry reroute/stall/link-busy events.
* **Metrics** — counters live in the memo-cache registry (cleared by
  ``clear_memo_caches``), ``repro stats --caches`` lists every
  registered cache, and a campaign warns exactly once when worker
  shards fall back to serial (direct ``sweep_system`` keeps warning
  every time).
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro import obs
from repro.analysis.sweep import (
    clear_memo_caches,
    memo_cache_registry,
    memo_cache_sizes,
    sweep_system,
)
from repro.cli.campaign import run_campaign
from repro.cli.main import main
from repro.cli.manifest import manifest_from_dict
from repro.faults import FaultSpec
from repro.systems import lumi
from repro.tune import build_decision_table

REPO_ROOT = Path(__file__).resolve().parent.parent

#: a grid with enough cells to shard across two workers
SHARD_KWARGS = dict(
    collectives=("allgather",),
    node_counts=(8, 16),
    vector_bytes=(1024, 65536),
)

#: the p=64 link-failure scenario from test_timeline: seed 54 kills the
#: one global bundle the mapping routes over, forcing genuine detours
REROUTE_GRID = dict(
    collectives=("allgather",),
    algorithms=("bine-send",),
    node_counts=(64,),
    vector_bytes=(16777216,),
)
REROUTE_TIMELINE = "at=1e-05:links=2,seed=54"

#: kills all but 6 of LUMI's nodes — every flow on a 16-node grid stalls
STALL_TIMELINE = "at=1e-09:nodes=2970,seed=1"


class TestSpanApi:
    def test_disabled_is_shared_noop(self):
        assert not obs.tracing_enabled()
        sp = obs.span("x.thing", p=8)
        assert sp is obs.span("y.other")  # one object, zero allocation
        with sp:
            sp.set(result=1)
        obs.instant("x.marker", step=3)
        obs.counter_event("x.counter", {"v": 1.0})

    def test_in_memory_session_is_balanced(self):
        obs.begin_session(None)
        try:
            with obs.span("outer.work", p=4) as sp:
                with obs.span("inner.step"):
                    obs.instant("inner.mark")
                sp.set(cells=2)
            obs.counter_event("outer.gauge", {"v": 1.5})
        finally:
            trace_doc, stats_doc = obs.end_session()
        assert not obs.tracing_enabled()
        assert obs.validate_trace(trace_doc) == []
        spans = stats_doc["spans"]
        assert spans["outer.work"]["count"] == 1
        assert spans["inner.step"]["count"] == 1
        ends = [
            e for e in trace_doc["traceEvents"]
            if e["name"] == "outer.work" and e["ph"] == "E"
        ]
        assert ends[0]["args"] == {"cells": 2}  # .set() lands on the E event

    def test_double_begin_and_bare_end_rejected(self):
        obs.begin_session(None)
        try:
            with pytest.raises(RuntimeError, match="already active"):
                obs.begin_session(None)
        finally:
            obs.end_session()
        with pytest.raises(RuntimeError, match="no active"):
            obs.end_session()


class TestMetricsRegistry:
    def test_metrics_registered_and_cleared_with_caches(self):
        assert "obs.metrics" in memo_cache_registry()
        obs.inc("test.counter")
        obs.set_gauge("test.gauge", 2.0)
        assert memo_cache_sizes()["obs.metrics"] >= 2
        clear_memo_caches()
        assert memo_cache_sizes()["obs.metrics"] == 0
        assert obs.counters() == {}
        assert obs.gauges() == {}

    def test_stats_caches_lists_every_registered_cache(self, capsys):
        assert main(["stats", "--caches"]) == 0
        out = capsys.readouterr().out
        for name in memo_cache_registry():
            assert name in out
        data = None
        assert main(["stats", "--caches", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == set(memo_cache_registry())

    def test_cache_hit_and_miss_counters(self):
        from repro.analysis.sweep import ProfileCache

        clear_memo_caches()
        preset = lumi()
        cache = ProfileCache(preset)
        kwargs = dict(
            collectives=("bcast",), node_counts=(16,), vector_bytes=(1024,)
        )
        obs.begin_session(None)
        try:
            sweep_system(preset, cache=cache, **kwargs)
            sweep_system(preset, cache=cache, **kwargs)  # all warm
        finally:
            _, stats_doc = obs.end_session()
        counters = stats_doc["counters"]
        assert counters["cache.profile.miss"] >= 1
        assert counters["cache.profile.hit"] >= 1
        assert counters["cache.table.miss"] >= 1

    def test_caches_does_not_combine_with_file(self, capsys):
        assert main(["stats", "--caches", "some.json"]) == 2
        assert "does not combine" in capsys.readouterr().err


class TestTable3TraceIdentity:
    """Satellite 3 + the acceptance scenario, in one (heavy) test."""

    def test_traced_campaign_byte_identical(self, tmp_path, capsys):
        manifest = str(REPO_ROOT / "campaigns" / "table3_lumi.toml")
        plain = tmp_path / "plain.json"
        traced = tmp_path / "traced.json"
        trace = tmp_path / "run.trace.json"
        assert main(["campaign", manifest, "--format", "json",
                     "--output", str(plain)]) == 0
        clear_memo_caches()  # cold traced run: schedule builds re-traced
        assert main(["campaign", manifest, "--format", "json",
                     "--output", str(traced), "--trace", str(trace)]) == 0
        assert traced.read_bytes() == plain.read_bytes()

        # the committed baseline accepts the traced run's records
        assert main(["compare",
                     str(REPO_ROOT / "campaigns/baselines/table3_lumi.json"),
                     str(traced)]) == 0

        # tune artifact bytes (digest included) are trace-independent
        from repro.report.diff import load_record_set

        records = load_record_set(str(plain)).to_records()
        table_plain = build_decision_table(records, name="t3", source="test")
        with obs.trace_session(None):
            table_traced = build_decision_table(
                records, name="t3", source="test"
            )
        assert table_traced.to_json() == table_plain.to_json()

        # trace soundness + subsystem coverage
        doc = json.loads(trace.read_text())
        assert obs.validate_trace(doc) == []
        cats = {e.get("cat") for e in doc["traceEvents"] if e.get("cat")}
        assert {"campaign", "sweep", "evaluate", "profile",
                "schedule", "cache"} <= cats

        # the sidecar reports cache hit/miss counts through `repro stats`
        sidecar = obs.sidecar_path(trace)
        counters = json.loads(sidecar.read_text())["counters"]
        assert counters["cache.profile.miss"] > 0
        assert counters["profile.built"] > 0
        capsys.readouterr()
        assert main(["stats", str(sidecar)]) == 0
        out = capsys.readouterr().out
        assert "cache.profile.miss" in out
        assert main(["stats", str(trace), "--validate"]) == 0


class TestWorkersTraced:
    def test_parallel_traced_identical_and_shard_tagged(self, tmp_path):
        serial = sweep_system(lumi(), **SHARD_KWARGS)
        clear_memo_caches()
        trace = tmp_path / "w2.trace.json"
        with obs.trace_session(trace):
            parallel = sweep_system(lumi(), workers=2, **SHARD_KWARGS)
        assert parallel == serial
        doc = json.loads(trace.read_text())
        assert obs.validate_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert len(pids) >= 2  # parent + at least one worker shard
        assert any(e["name"] == "shard.run" and e["ph"] == "B"
                   for e in doc["traceEvents"])
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert "repro" in names
        assert any(n.startswith("repro shard") for n in names)
        # shard metric deltas were folded into the session counters
        counters = json.loads(obs.sidecar_path(trace).read_text())["counters"]
        assert counters["profile.built"] >= 1


class TestDesTraced:
    def test_des_reroute_timeline_traced_identical(self, tmp_path):
        faults = FaultSpec(timeline=REROUTE_TIMELINE)
        plain = sweep_system(
            lumi(), profile_engine="des", faults=faults, **REROUTE_GRID
        )
        clear_memo_caches()
        trace = tmp_path / "des.trace.json"
        with obs.trace_session(trace):
            traced = sweep_system(
                lumi(), profile_engine="des", faults=faults, **REROUTE_GRID
            )
        assert traced == plain
        doc = json.loads(trace.read_text())
        assert obs.validate_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "des.simulate" in names
        assert "des.reroute" in names  # flows genuinely detoured
        assert "des.link_busy" in names  # per-link busy-time samples
        counters = json.loads(obs.sidecar_path(trace).read_text())["counters"]
        assert counters["des.reroutes"] >= 1
        assert counters["des.events"] > 0

    def test_des_stalls_are_counted_and_marked(self):
        faults = FaultSpec(timeline=STALL_TIMELINE)
        obs.begin_session(None)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                records = sweep_system(
                    lumi(), ("bcast",), node_counts=(16,),
                    vector_bytes=(1024,), profile_engine="des", faults=faults,
                )
        finally:
            trace_doc, stats_doc = obs.end_session()
        assert all(r.stalled for r in records)
        assert stats_doc["counters"]["des.stalls"] > 0
        assert "des.stall" in {e["name"] for e in trace_doc["traceEvents"]}


class TestShardFallbackWarnOnce:
    """Satellite 2: one warning per campaign, not one per grid."""

    CRASHY = {
        "campaign": {"name": "crashy", "system": "lumi"},
        "grid": [
            {"collectives": ["allgather"], "node_counts": [8, 16],
             "vector_bytes": [1024, 65536]},
            {"collectives": ["bcast"], "node_counts": [8, 16],
             "vector_bytes": [1024, 65536]},
        ],
    }

    def test_campaign_warns_once_across_grids(self, monkeypatch):
        manifest = manifest_from_dict(self.CRASHY)
        serial = run_campaign(manifest)
        monkeypatch.setenv("REPRO_TEST_CRASH_SHARD", "1")
        obs.reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_campaign(manifest, workers=2)
        fallback = [w for w in caught
                    if "crashed or timed out" in str(w.message)]
        assert len(fallback) == 1  # both grids fell back; one warning
        assert obs.counters()["shard.fallback_serial"] >= 2
        assert result.records == serial.records

    def test_direct_sweep_still_warns_every_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_SHARD", "1")
        for _ in range(2):
            with pytest.warns(RuntimeWarning, match="crashed or timed out"):
                sweep_system(lumi(), workers=2, **SHARD_KWARGS)


class TestStatsCli:
    def test_validate_flags_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1},
        ]}))
        assert main(["stats", str(bad), "--validate"]) == 1
        assert "schema violation" in capsys.readouterr().err

    def test_validate_accepts_sound_trace(self, tmp_path, capsys):
        good = tmp_path / "good.trace.json"
        good.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1},
        ]}))
        assert main(["stats", str(good), "--validate"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        assert main(["stats"]) == 2
        assert main(["stats", str(tmp_path / "missing.json")]) == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        assert main(["stats", str(garbage)]) == 2
        sidecar = tmp_path / "x.stats.json"
        sidecar.write_text(json.dumps({"schema": "repro/trace-stats",
                                       "counters": {}, "spans": {}}))
        assert main(["stats", str(sidecar), "--validate"]) == 2
        capsys.readouterr()

    def test_env_var_traces_any_traceable_command(self, tmp_path,
                                                  monkeypatch, capsys):
        trace = tmp_path / "env.trace.json"
        monkeypatch.setenv(obs.TRACE_ENV, str(trace))
        assert main(["verify", "--quick", "--collective", "bcast",
                     "--algorithm", "bine", "--format", "summary"]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        assert obs.validate_trace(doc) == []
        assert any(e.get("name") == "verify.cell"
                   for e in doc["traceEvents"])
        # commands without the --trace knob never start a session
        monkeypatch.setenv(obs.TRACE_ENV, str(tmp_path / "never.json"))
        assert main(["stats", str(trace)]) == 0
        assert not (tmp_path / "never.json").exists()
        capsys.readouterr()
