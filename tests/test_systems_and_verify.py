"""Tests for system presets and the verification oracle itself."""

import numpy as np
import pytest

from repro.collectives.registry import build
from repro.collectives.verify import check, expected_state, init_buffers
from repro.runtime import execute
from repro.systems import ALL_SYSTEMS, fugaku, leonardo, lumi, marenostrum5, system_for
from repro.topology.base import LinkClass


class TestSystemPresets:
    @pytest.mark.parametrize("name", sorted(ALL_SYSTEMS))
    def test_builds(self, name):
        preset = system_for(name)
        topo = preset.build_topology()
        assert topo.num_nodes > 0
        assert preset.params.alpha > 0
        assert len(preset.vector_bytes) == 9  # the paper's 32 B … 512 MiB grid

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            system_for("summit")

    def test_paper_shapes(self):
        assert lumi().build_topology().num_groups == 24
        assert leonardo().build_topology().num_groups == 23
        mn5 = marenostrum5().build_topology()
        assert mn5.nodes_per_subtree == 160
        assert mn5.uplinks_per_subtree == 80  # 2:1 oversubscription

    def test_global_slower_than_local(self):
        for name in ("lumi", "leonardo", "marenostrum5"):
            params = system_for(name).params
            assert params.beta[LinkClass.GLOBAL] > params.beta[LinkClass.LOCAL]

    def test_fugaku_ports(self):
        preset = fugaku((4, 4, 4))
        assert preset.params.ports == 6
        assert preset.build_topology().num_nodes == 64

    def test_vector_grid_matches_paper(self):
        # 32 B to 512 MiB in factors of 8
        grid = lumi().vector_bytes
        assert grid[0] == 32
        assert grid[-1] == 512 * 1024 * 1024


class TestVerifyOracle:
    """The oracle must catch wrong results, not just bless right ones."""

    def test_detects_corrupted_bcast(self):
        sched = build("bcast", "bine", 8, 16)
        bufs = init_buffers(sched)
        execute(sched, bufs)
        bufs.get(3, "vec")[5] += 1  # inject a fault
        with pytest.raises(AssertionError):
            check(sched, bufs)

    def test_detects_missing_reduction(self):
        sched = build("allreduce", "bine-rsag", 8, 16)
        bufs = init_buffers(sched)
        # run only half the schedule: result must be wrong
        import copy

        half = copy.copy(sched)
        half.steps = sched.steps[: len(sched.steps) // 2]
        execute(half, bufs)
        with pytest.raises(AssertionError):
            check(sched, bufs)

    def test_detects_swapped_alltoall_blocks(self):
        sched = build("alltoall", "pairwise", 4, 8)
        bufs = init_buffers(sched)
        execute(sched, bufs)
        recv = bufs.get(0, "recv")
        recv[[0, 2]] = recv[[2, 0]]
        with pytest.raises(AssertionError):
            check(sched, bufs)

    def test_expected_state_shapes(self):
        sched = build("gather", "bine", 8, 24, root=2)
        states = expected_state(sched)
        assert len(states) == 1  # only the root is constrained
        rank, buf, (lo, hi), want = states[0]
        assert rank == 2 and buf == "vec" and (lo, hi) == (0, 24)
        assert want.shape == (24,)

    def test_seed_changes_data(self):
        sched = build("bcast", "bine", 4, 8)
        a = init_buffers(sched, seed=1).get(0, "vec")
        b = init_buffers(sched, seed=2).get(0, "vec")
        assert not np.array_equal(a, b)

    def test_unknown_collective_rejected(self):
        sched = build("bcast", "bine", 4, 8)
        sched.meta["collective"] = "scan"
        with pytest.raises(ValueError):
            init_buffers(sched)


class TestScheduleIntrospection:
    def test_total_comm_elems(self):
        sched = build("bcast", "bine", 8, 16)
        # 7 tree edges × full 16-element vector
        assert sched.total_comm_elems() == 7 * 16

    def test_max_rank_send(self):
        sched = build("gather", "linear", 8, 16)
        assert sched.max_rank_send_elems() == 2  # one block of 2 elems each

    def test_comm_bytes_per_step(self):
        sched = build("bcast", "binomial-dd", 8, 16)
        step_bytes = [s.comm_bytes(4) for s in sched.steps]
        # doubling tree: 1, 2, 4 transfers of the full vector
        assert step_bytes == [64, 128, 256]
