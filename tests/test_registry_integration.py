"""Registry-wide integration and property tests: every algorithm, executed."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.registry import ALGORITHMS, COLLECTIVES, algorithms_for, build
from repro.collectives.verify import run_and_check

ALL_KEYS = sorted(ALGORITHMS)


class TestRegistry:
    def test_every_collective_has_bine_and_baseline(self):
        for coll in COLLECTIVES:
            families = {ALGORITHMS[(coll, a)].family for a in algorithms_for(coll)}
            assert "bine" in families, coll
            assert families - {"bine"}, coll  # at least one baseline

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            build("allreduce", "does-not-exist", 8, 8)

    def test_descriptions_present(self):
        for spec in ALGORITHMS.values():
            assert spec.description


@pytest.mark.parametrize("key", ALL_KEYS, ids=lambda k: f"{k[0]}-{k[1]}")
class TestEveryAlgorithmRuns:
    def test_p8(self, key):
        run_and_check(build(*key, 8, 32))

    def test_p16_nonzero_root(self, key):
        spec = ALGORITHMS[key]
        root = 3 if key[0] in ("bcast", "reduce", "gather", "scatter") else 0
        run_and_check(build(*key, 16, 64, root=root))


class TestMetaConsistency:
    @pytest.mark.parametrize("key", ALL_KEYS, ids=lambda k: f"{k[0]}-{k[1]}")
    def test_meta_fields(self, key):
        sched = build(*key, 8, 32)
        assert sched.meta["collective"] == key[0]
        assert sched.meta["p"] == 8
        assert sched.meta["n"] == 32

    @pytest.mark.parametrize("key", ALL_KEYS, ids=lambda k: f"{k[0]}-{k[1]}")
    def test_schedule_validates(self, key):
        build(*key, 16, 32).validate()


@given(
    p_exp=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=25, deadline=None)
def test_property_bine_allreduce_any_size(p_exp, seed):
    """Bine allreduce is correct for every power-of-two p and random data."""
    p = 1 << p_exp
    run_and_check(build("allreduce", "bine-rsag", p, 4 * p), seed=seed)


@given(
    p_exp=st.integers(min_value=1, max_value=5),
    mult=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_property_bine_gather_scatter_roundtrip(p_exp, mult):
    """Gather then scatter over the same Bine tree are mutual inverses in
    terms of data placement (both verified independently)."""
    p = 1 << p_exp
    n = mult * p + (mult % 3)
    run_and_check(build("gather", "bine", p, n))
    run_and_check(build("scatter", "bine", p, n))


@given(root=st.integers(min_value=0, max_value=31))
@settings(max_examples=16, deadline=None)
def test_property_bcast_any_root(root):
    run_and_check(build("bcast", "bine", 32, 48, root=root))
