"""Tests for Appendix C: non-power-of-two rank counts."""

import pytest

from repro.collectives.tree_collectives import bcast_from_tree, reduce_from_tree
from repro.collectives.verify import run_and_check
from repro.core.nonpow2 import (
    bine_tree_dh_pruned,
    ceil_log2,
    fold_plan,
)
from repro.core.tree import TreeError

EVEN_PS = [2, 6, 10, 12, 14, 18, 20, 22, 24, 26, 30, 34, 40, 48, 50, 62, 100, 126]


class TestCeilLog2:
    def test_values(self):
        assert [ceil_log2(p) for p in (1, 2, 3, 4, 5, 8, 9, 1023, 1024)] == [
            0, 1, 2, 2, 3, 3, 4, 10, 10]

    def test_invalid(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestPrunedTrees:
    @pytest.mark.parametrize("p", EVEN_PS)
    def test_spanning(self, p):
        tree = bine_tree_dh_pruned(p)
        reached = {v for _, _, v in tree.all_edges()}
        assert reached == set(range(1, p)) if tree.root == 0 else True
        assert len(tree.all_edges()) == p - 1

    @pytest.mark.parametrize("p", EVEN_PS)
    def test_no_extra_volume(self, p):
        # The whole point of pruning (vs folding): exactly p−1 transfers.
        tree = bine_tree_dh_pruned(p)
        sched = bcast_from_tree(tree, 8)
        assert sum(len(s.transfers) for s in sched.steps) == p - 1

    @pytest.mark.parametrize("p", [6, 10, 20, 34, 126])
    def test_bcast_reduce_correct(self, p):
        tree = bine_tree_dh_pruned(p)
        run_and_check(bcast_from_tree(tree, 11))
        run_and_check(reduce_from_tree(tree, 11))

    @pytest.mark.parametrize("p", [6, 10, 20])
    def test_nonzero_roots(self, p):
        for root in (1, p // 2):
            tree = bine_tree_dh_pruned(p, root)
            run_and_check(bcast_from_tree(tree, 9))

    def test_six_node_example(self):
        # Appendix C / Fig. 15: p=6 prunes the duplicate 4↔5 subtree sends.
        tree = bine_tree_dh_pruned(6)
        assert len(tree.pruned_edges) == 2
        pruned_ranks = {v for _, _, v in tree.pruned_edges}
        assert pruned_ranks <= {4, 5}

    def test_power_of_two_prunes_nothing(self):
        for p in (4, 16, 64):
            tree = bine_tree_dh_pruned(p)
            assert tree.pruned_edges == ()

    @pytest.mark.parametrize("p", [3, 5, 7, 9, 15])
    def test_odd_p_rejected(self, p):
        # "this approach cannot be directly applied if p is odd" (App. C)
        with pytest.raises(TreeError):
            bine_tree_dh_pruned(p)


class TestFoldPlan:
    def test_power_of_two_noop(self):
        fp = fold_plan(16)
        assert fp.p_prime == 16 and fp.pre_pairs == () and fp.extra == 0

    @pytest.mark.parametrize("p", [3, 5, 6, 7, 9, 10, 100])
    def test_fold_structure(self, p):
        fp = fold_plan(p)
        assert fp.p_prime & (fp.p_prime - 1) == 0
        assert fp.p_prime <= p < 2 * fp.p_prime
        assert len(fp.pre_pairs) == p - fp.p_prime
        for extra, proxy in fp.pre_pairs:
            assert extra >= fp.p_prime
            assert proxy == extra - fp.p_prime < fp.p_prime

    def test_post_pairs_mirror_pre(self):
        fp = fold_plan(10)
        assert fp.post_pairs == tuple((b, a) for a, b in fp.pre_pairs)

    def test_proxy_of(self):
        fp = fold_plan(10)
        assert fp.proxy_of(9) == 1
        assert fp.proxy_of(3) == 3
