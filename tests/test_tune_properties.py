"""Property/metamorphic tests for the algorithm-selection oracle.

Every test draws randomized-but-seeded record grids from
``tests/strategies.py`` and checks an *invariant*, not an example:

* building a decision table is order-invariant over its input records
  (byte-identical JSON, even with exact-tie cells);
* every table winner equals the argmin over its source records and the
  Fig. 9a heatmap winner (:func:`best_algorithm_cells`) for that cell;
* ``select_algorithms`` (vectorized) equals a ``select_algorithm`` loop
  element for element, under every off-grid policy;
* a tampered artifact raises :class:`TuneArtifactError` and exits the
  CLI with code 7; off-grid ``exact`` queries raise
  :class:`TuneQueryError`, ``refuse`` returns ``None``, and ``nearest``
  snaps to the log2-closest grid cell (ties down);
* the same discipline holds one layer down: ``records_digest`` is
  order-invariant and ``diff_record_sets(a, shuffle(a))`` is clean.
"""

from __future__ import annotations

import json
import math

import pytest
from strategies import (
    grid_axes,
    queries_for,
    record_grid,
    rng_for,
    shuffled,
)

from repro.analysis.summarize import best_algorithm_cells
from repro.analysis.sweep import SweepRecord
from repro.cli.main import main
from repro.report.artifacts import records_digest
from repro.report.diff import diff_record_sets, record_set_from_records
from repro.runtime.errors import TuneArtifactError, TuneQueryError
from repro.tune import (
    DecisionTable,
    build_decision_table,
    load_table,
    lookup,
    select_algorithm,
    select_algorithms,
)

SEEDS = (0, 1, 2, 3)


class TestBuildInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_order_invariant_bytes(self, seed):
        rng = rng_for(seed)
        records = record_grid(
            rng, collectives=("bcast", "allreduce"), faults=("none", "f1"),
            ppns=(1, 2), tie_fraction=0.5,
        )
        reference = build_decision_table(records, name="t", source="s")
        for k in range(3):
            again = build_decision_table(
                shuffled(records, rng_for(1000 * seed + k)),
                name="t", source="s",
            )
            assert again.to_json() == reference.to_json()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_winner_is_argmin_and_heatmap_winner(self, seed):
        rng = rng_for(10 + seed)
        records = record_grid(rng, collectives=("bcast", "alltoall"))
        table = build_decision_table(records, name="t", source="s")
        for sub in table.tables:
            own = [
                r for r in records
                if (r.system, r.faults, r.collective, r.ppn) == sub.key
            ]
            heatmap = best_algorithm_cells(own, sub.collective)
            for i, p in enumerate(sub.p_grid):
                for j, nb in enumerate(sub.n_grid):
                    cell = [r for r in own if (r.p, r.n_bytes) == (p, nb)]
                    assert cell, "cross-product grid cannot have holes"
                    argmin = min(cell, key=lambda r: (r.time, r.algorithm))
                    assert sub.winner[i][j] == argmin.algorithm
                    assert sub.winner[i][j] == heatmap[(p, nb)][0].algorithm
                    assert sub.family[i][j] == argmin.family

    def test_margin_is_runner_up_ratio(self):
        records = [
            SweepRecord("lumi", "bcast", "a", "bine", 8, 64, 2.0, 1.0),
            SweepRecord("lumi", "bcast", "b", "ring", 8, 64, 3.0, 1.0),
            SweepRecord("lumi", "bcast", "c", "bruck", 8, 64, 7.0, 1.0),
        ]
        table = build_decision_table(records, name="t", source="s")
        assert table.tables[0].winner == (("a",),)
        assert table.tables[0].margin == ((1.5,),)

    def test_single_algorithm_cell_has_no_margin(self):
        records = [SweepRecord("lumi", "bcast", "a", "bine", 8, 64, 2.0, 1.0)]
        table = build_decision_table(records, name="t", source="s")
        assert table.tables[0].margin == ((None,),)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_fault_label_keys_distinct_subtables(self, seed):
        rng = rng_for(20 + seed)
        records = record_grid(rng, faults=("none", "links2-seed13"))
        table = build_decision_table(records, name="t", source="s")
        faults = {sub.faults for sub in table.tables}
        assert faults == {"none", "links2-seed13"}
        # the pristine and degraded sub-tables answer independently
        sub_none = [t for t in table.tables if t.faults == "none"][0]
        sub_deg = [t for t in table.tables if t.faults != "none"][0]
        assert sub_none.key != sub_deg.key
        assert sub_none.p_grid == sub_deg.p_grid


class TestArtifactIntegrity:
    def _table(self, seed=0):
        return build_decision_table(
            record_grid(rng_for(30 + seed)), name="t", source="s"
        )

    def test_round_trip(self):
        table = self._table()
        again = DecisionTable.from_dict(json.loads(table.to_json()))
        assert again.to_json() == table.to_json()

    @pytest.mark.parametrize("corrupt", [
        lambda d: d.update(record_count=d["record_count"] + 1),
        lambda d: d.update(records_digest="0" * 16),
        lambda d: d["tables"][0].update(system="other"),
        lambda d: d["tables"][0]["winner"][0].__setitem__(0, "evil"),
        lambda d: d.update(digest="deadbeefdeadbeef"),
    ])
    def test_any_payload_edit_is_caught(self, corrupt):
        data = self._table().to_dict()
        corrupt(data)
        with pytest.raises(TuneArtifactError, match="digest mismatch"):
            DecisionTable.from_dict(data)

    def test_wrong_schema_and_version(self):
        data = self._table().to_dict()
        with pytest.raises(TuneArtifactError, match="not a decision-table"):
            DecisionTable.from_dict({**data, "schema": "something/else"})
        rev = {**data, "version": 99}
        with pytest.raises(TuneArtifactError, match="version"):
            DecisionTable.from_dict(rev)

    def test_provenance_gate(self):
        rng = rng_for(31)
        records = record_grid(rng)
        table = build_decision_table(records, name="t", source="s")
        table.verify_against_records(shuffled(records, rng))  # order-free
        with pytest.raises(TuneArtifactError, match="rebuild the table"):
            table.verify_against_records(records[:-1])

    def test_corrupted_artifact_exits_7(self, tmp_path, capsys):
        data = self._table().to_dict()
        data["record_count"] += 1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        code = main(["tune", str(path)])
        assert code == 7
        assert "TuneArtifactError" in capsys.readouterr().err

    def test_load_table_rejects_non_table_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(TuneArtifactError):
            load_table(path)


class TestServing:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", ["exact", "nearest", "refuse"])
    def test_batch_equals_scalar_loop(self, seed, policy):
        rng = rng_for(40 + seed)
        records = record_grid(rng, collectives=("bcast",))
        table = build_decision_table(records, name="t", source="s")
        off = policy != "exact"
        points = queries_for(records, rng, 64, off_grid=off)
        points += queries_for(records, rng, 64)  # always some on-grid hits
        ps = [p for p, _ in points]
        ns = [nb for _, nb in points]
        batch = select_algorithms(
            table, "bcast", "lumi", ps, 1, ns, policy=policy
        )
        assert len(batch) == len(points)
        for k, (p, nb) in enumerate(points):
            scalar = select_algorithm(
                table, "bcast", "lumi", p, 1, nb, policy=policy
            )
            assert batch[k] == scalar

    def test_exact_raises_off_grid_refuse_returns_none(self):
        records = record_grid(rng_for(50))
        table = build_decision_table(records, name="t", source="s")
        p_grid = sorted({r.p for r in records})
        off_p = p_grid[0] + 1
        assert off_p not in p_grid
        nb = records[0].n_bytes
        with pytest.raises(TuneQueryError, match="off the table grid"):
            select_algorithm(table, "bcast", "lumi", off_p, 1, nb)
        assert select_algorithm(
            table, "bcast", "lumi", off_p, 1, nb, policy="refuse"
        ) is None

    def test_unknown_subtable(self):
        table = build_decision_table(record_grid(rng_for(51)), name="t", source="s")
        with pytest.raises(TuneQueryError, match="no sub-table"):
            select_algorithm(table, "bcast", "mars", 8, 1, 64)
        assert select_algorithm(
            table, "bcast", "mars", 8, 1, 64, policy="refuse"
        ) is None
        # batch path agrees
        assert select_algorithms(
            table, "bcast", "mars", [8, 8], 1, [64, 64], policy="refuse"
        ) == [None, None]

    def test_unknown_policy_rejected(self):
        table = build_decision_table(record_grid(rng_for(52)), name="t", source="s")
        with pytest.raises(ValueError, match="unknown policy"):
            select_algorithm(table, "bcast", "lumi", 8, 1, 64, policy="best")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_nearest_snaps_to_log2_closest(self, seed):
        rng = rng_for(60 + seed)
        records = record_grid(rng)
        table = build_decision_table(records, name="t", source="s")
        p_grid = sorted({r.p for r in records})
        n_grid = sorted({r.n_bytes for r in records})

        def closest(value, grid):
            # ties snap down: minimal log2 distance, lower value preferred
            return min(grid, key=lambda g: (abs(math.log2(value) - math.log2(g)), g))

        for p, nb in queries_for(records, rng, 50, off_grid=True):
            sel = lookup(table, "bcast", "lumi", p, 1, nb, policy="nearest")
            assert sel is not None
            assert sel.p == closest(p, p_grid)
            assert sel.n_bytes == closest(nb, n_grid)
            assert sel.exact == (p in p_grid and nb in n_grid)

    def test_nearest_is_identity_on_grid(self):
        records = record_grid(rng_for(70))
        table = build_decision_table(records, name="t", source="s")
        for r in records[:20]:
            exact = select_algorithm(table, "bcast", "lumi", r.p, 1, r.n_bytes)
            near = select_algorithm(
                table, "bcast", "lumi", r.p, 1, r.n_bytes, policy="nearest"
            )
            assert exact == near

    def test_warm_batch_is_fast(self):
        import time

        rng = rng_for(80)
        records = record_grid(rng, collectives=("bcast",))
        table = build_decision_table(records, name="t", source="s")
        points = queries_for(records, rng, 10_000)
        ps = [p for p, _ in points]
        ns = [nb for _, nb in points]
        select_algorithms(table, "bcast", "lumi", ps, 1, ns)  # warm the cache
        t0 = time.perf_counter()
        out = select_algorithms(table, "bcast", "lumi", ps, 1, ns)
        elapsed = time.perf_counter() - t0
        assert len(out) == 10_000 and all(isinstance(a, str) for a in out)
        assert elapsed < 0.050, f"10k warm queries took {elapsed * 1e3:.1f} ms"

    def test_serve_cache_registered_and_clearable(self):
        from repro.analysis.sweep import clear_memo_caches, memo_cache_sizes

        table = build_decision_table(record_grid(rng_for(81)), name="t", source="s")
        select_algorithm(table, "bcast", "lumi",
                         table.tables[0].p_grid[0], 1, table.tables[0].n_grid[0])
        assert memo_cache_sizes()["tune.serve._SERVE_CACHE"] >= 1
        clear_memo_caches()
        assert memo_cache_sizes()["tune.serve._SERVE_CACHE"] == 0


class TestRetrofittedLayerProperties:
    """The same metamorphic discipline applied one layer down."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_records_digest_order_invariant(self, seed):
        rng = rng_for(90 + seed)
        records = record_grid(rng)
        assert records_digest(records) == records_digest(
            shuffled(records, rng)
        )
        assert records_digest(records) != records_digest(records[:-1])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_diff_of_shuffle_is_clean(self, seed):
        rng = rng_for(100 + seed)
        records = record_grid(rng, ppns=(1, 2))
        diff = diff_record_sets(
            record_set_from_records(records),
            record_set_from_records(shuffled(records, rng)),
        )
        assert not diff.drifted
        assert diff.unchanged == len(records)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sweep_record_round_trip(self, seed):
        rng = rng_for(110 + seed)
        for r in record_grid(rng, ppns=(1, 4), faults=("none", "f"))[:50]:
            assert SweepRecord.from_dict(r.to_dict()) == r

    def test_ppn_differentiates_cells(self):
        # the documented pre-PR collision: records differing only in ppn
        # now diff as distinct cells instead of raising on duplicates
        a = SweepRecord("lumi", "bcast", "x", "bine", 8, 64, 1.0, 2.0, ppn=1)
        b = SweepRecord("lumi", "bcast", "x", "bine", 8, 64, 9.0, 2.0, ppn=2)
        diff = diff_record_sets(
            record_set_from_records([a, b]), record_set_from_records([a, b])
        )
        assert diff.unchanged == 2

    def test_grid_axes_are_sorted_unique(self):
        for seed in range(20):
            p_grid, n_grid = grid_axes(rng_for(seed))
            assert list(p_grid) == sorted(set(p_grid))
            assert list(n_grid) == sorted(set(n_grid))
