"""Tests for the analysis layer: sweeps, summaries, heatmaps, Fig. 5 study."""

import pytest

from repro.analysis.boxplot import box_stats, format_box_row
from repro.analysis.heatmap import (
    FAMILY_LETTERS,
    families_without_letter,
    family_letter,
    human_bytes,
    render_heatmap,
)
from repro.analysis.jobs import allreduce_traffic_reduction, run_study
from repro.analysis.summarize import (
    best_algorithm_cells,
    bine_improvement_distribution,
    family_duel,
    format_duel_table,
    geometric_mean,
)
from repro.analysis.sweep import ProfileCache, SweepRecord, sweep_system
from repro.systems import lumi, marenostrum5
from repro.topology.allocation import SystemShape


@pytest.fixture(scope="module")
def small_sweep():
    preset = marenostrum5()
    cache = ProfileCache(preset, placement="scheduler", seed=1)
    return sweep_system(
        preset,
        ("allreduce", "bcast"),
        node_counts=(8, 32),
        vector_bytes=(256, 64 * 1024, 8 * 1024**2),
        cache=cache,
    )


class TestSweep:
    def test_record_fields(self, small_sweep):
        assert small_sweep
        r = small_sweep[0]
        assert r.system == "marenostrum5"
        assert r.time > 0
        assert r.global_bytes >= 0

    def test_grid_coverage(self, small_sweep):
        cells = {(r.collective, r.p, r.n_bytes) for r in small_sweep}
        assert ("allreduce", 8, 256) in cells
        assert ("bcast", 32, 8 * 1024**2) in cells

    def test_block_placement_differs(self):
        # 256 nodes exceed one 160-node subtree, so placement matters.
        preset = marenostrum5()
        rec_sched = sweep_system(
            preset, ("allreduce",), node_counts=(256,), vector_bytes=(64 * 1024,),
            algorithms=("bine-rsag",), placement="scheduler",
        )
        rec_block = sweep_system(
            preset, ("allreduce",), node_counts=(256,), vector_bytes=(64 * 1024,),
            algorithms=("bine-rsag",), placement="block",
        )
        assert rec_sched[0].time != rec_block[0].time or (
            rec_sched[0].global_bytes != rec_block[0].global_bytes
        )

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError):
            ProfileCache(marenostrum5(), placement="nope")


class TestSummaries:
    def test_family_duel(self, small_sweep):
        duel = family_duel(small_sweep, "allreduce")
        assert duel.cells == 6
        assert 0 <= duel.win_pct <= 100
        assert duel.win_pct + duel.loss_pct <= 100

    def test_duel_formatting(self, small_sweep):
        text = format_duel_table([family_duel(small_sweep, "allreduce")])
        assert "allreduce" in text

    def test_missing_collective(self, small_sweep):
        with pytest.raises(ValueError):
            family_duel(small_sweep, "alltoall")

    def test_best_cells_and_distribution(self, small_sweep):
        cells = best_algorithm_cells(small_sweep, "allreduce")
        assert len(cells) == 6
        pct, improvements = bine_improvement_distribution(small_sweep, "allreduce")
        assert 0 <= pct <= 100
        assert all(i > 0 for i in improvements)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0


class TestRendering:
    def test_human_bytes(self):
        assert human_bytes(32) == "32 B"
        assert human_bytes(2048) == "2 KiB"
        assert human_bytes(8 * 1024**2) == "8 MiB"

    def test_heatmap_renders(self, small_sweep):
        cells = best_algorithm_cells(small_sweep, "allreduce")
        text = render_heatmap(cells, (8, 32), (256, 64 * 1024, 8 * 1024**2))
        assert "64 KiB" in text

    def test_box_stats(self):
        stats = box_stats([1, 2, 3, 4, 100])
        assert stats.median == 3
        assert stats.whisker_hi < 100  # outlier excluded from whisker
        assert stats.max == 100
        assert "med=" in format_box_row("x", stats)

    def test_box_stats_empty(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_box_stats_single_sample(self):
        stats = box_stats([7.5])
        assert stats.count == 1
        assert stats.q1 == stats.median == stats.q3 == 7.5
        assert stats.whisker_lo == stats.whisker_hi == 7.5
        assert stats.mean == stats.min == stats.max == 7.5

    def test_box_stats_zero_iqr(self):
        # all-identical values: IQR is 0, whiskers must collapse, not crash
        stats = box_stats([3.0] * 12)
        assert stats.q1 == stats.q3 == stats.median == 3.0
        assert stats.whisker_lo == stats.whisker_hi == 3.0


class TestFamilyLetters:
    def mk(self, family, p=8, nb=1024):
        return SweepRecord("s", "bcast", "algo", family, p, nb, 1e-6, 8.0)

    def test_known_letters(self):
        assert family_letter("ring") == "R"
        assert family_letter("binomial") == "N"

    def test_unknown_family_fails_loudly(self):
        with pytest.raises(ValueError, match="carrier-pigeon"):
            family_letter("carrier-pigeon")

    def test_registry_families_all_covered(self):
        # a newly registered family without a FAMILY_LETTERS entry would
        # break heatmap rendering — fail here first, naming the family
        assert families_without_letter() == []

    def test_render_heatmap_unknown_family_fails_loudly(self):
        cells = {(8, 1024): (self.mk("carrier-pigeon"), None)}
        with pytest.raises(ValueError, match="carrier-pigeon"):
            render_heatmap(cells, (8,), (1024,))

    def test_render_heatmap_missing_cells_blank(self):
        # only one of four grid cells present: the rest render as blanks
        cells = {(8, 1024): (self.mk("ring"), None)}
        text = render_heatmap(cells, (8, 32), (1024, 65536))
        assert "R" in text
        assert len([ln for ln in text.splitlines() if ln.strip()]) >= 4

    def test_render_heatmap_non_pow2_nodes(self):
        cells = {
            (6, 1024): (self.mk("ring", p=6), None),
            (24, 1024): (self.mk("bine", p=24), 1.23),
        }
        text = render_heatmap(cells, (6, 24), (1024,), title="non-pow2")
        assert "non-pow2" in text and "1.23" in text

    def test_render_heatmap_bine_without_ratio(self):
        cells = {(8, 1024): (self.mk("bine"), None)}
        assert "BINE" in render_heatmap(cells, (8,), (1024,))

    def test_letters_are_unique(self):
        letters = list(FAMILY_LETTERS.values())
        assert len(letters) == len(set(letters))


class TestFig5Study:
    def test_single_group_zero_reduction(self):
        assert allreduce_traffic_reduction([0] * 16) == 0.0

    def test_irregular_groups_positive_reduction(self):
        # 256 ranks over ~96-node groups (non-power-of-two, like real
        # systems' 124/180): Bine cuts global traffic.
        groups = [min(r // 96, 2) for r in range(256)]
        red = allreduce_traffic_reduction(groups)
        assert 0 < red <= 1 / 3 + 1e-9

    def test_aligned_pow2_groups_are_adversarial(self):
        # With perfectly aligned power-of-two groups, recursive doubling's
        # crossings are minimal and Bine can *increase* traffic — the
        # counterexample class the paper concedes in Sec. 2.2.
        groups = [r // 128 for r in range(256)]
        red = allreduce_traffic_reduction(groups)
        assert red < 0

    def test_study_shape(self):
        shape = SystemShape("t", 8, 32)
        study = run_study(shape, (8, 64), jobs_per_count=5, seed=0,
                          busy_fraction=0.7)
        assert set(study.reductions) == {8, 64}
        assert all(len(v) == 5 for v in study.reductions.values())
        for vals in study.reductions.values():
            assert all(v <= 1 / 3 + 1e-9 for v in vals)
