"""Documentation freshness checks, wired into tier-1.

Two contracts keep the docs from rotting:

* ``docs/algorithms.md`` must be byte-identical to freshly generated
  ``repro list --markdown`` output — the catalog can never drift from
  the registry;
* every fenced snippet in the README quickstart (``$ repro ...`` console
  lines and the ``python`` block) must actually run — a doctest-style
  pass over the documented commands.

Plus light cross-reference checks: every shipped campaign manifest and
every bench script must be documented in ``docs/reproducing.md``.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import main
from repro.cli.formatters import algorithms_markdown

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
REPRODUCING = REPO_ROOT / "docs" / "reproducing.md"

REGEN_HINT = (
    "docs/algorithms.md is stale — regenerate with: "
    "PYTHONPATH=src python -m repro list --markdown > docs/algorithms.md"
)


def fenced_blocks(text: str, language: str) -> list[str]:
    """Bodies of ```<language> fenced blocks, in order."""
    return re.findall(rf"```{language}\n(.*?)```", text, flags=re.DOTALL)


def test_algorithms_md_is_fresh():
    committed = (REPO_ROOT / "docs" / "algorithms.md").read_text()
    assert committed == algorithms_markdown() + "\n", REGEN_HINT


def test_readme_console_quickstart_runs(monkeypatch, capsys):
    """Every ``$ repro ...`` line in README console blocks must exit 0."""
    monkeypatch.chdir(REPO_ROOT)  # manifest paths are repo-relative
    commands = [
        line[len("$ repro "):]
        for block in fenced_blocks(README.read_text(), "console")
        for line in block.splitlines()
        if line.startswith("$ repro ")
    ]
    assert commands, "README quickstart lost its `$ repro ...` lines"
    for command in commands:
        assert main(shlex.split(command)) == 0, f"README command failed: {command}"
        capsys.readouterr()  # keep snippet output out of the test log


def test_readme_python_snippets_run():
    blocks = fenced_blocks(README.read_text(), "python")
    assert blocks, "README lost its python quickstart block"
    for i, block in enumerate(blocks):
        exec(compile(block, f"README.md#python-block-{i}", "exec"), {})


def test_reproducing_documents_every_campaign_manifest():
    text = REPRODUCING.read_text()
    manifests = sorted((REPO_ROOT / "campaigns").glob("*.toml"))
    assert manifests
    for manifest in manifests:
        assert f"campaigns/{manifest.name}" in text, (
            f"{manifest.name} missing from docs/reproducing.md"
        )


def test_reproducing_documents_every_bench_script():
    text = REPRODUCING.read_text()
    tokens = {
        tok
        for match in re.findall(r"`repro bench ([a-z0-9_ ]+)`", text)
        for tok in match.split()
    }
    benches = sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))
    assert benches
    undocumented = [
        b.stem for b in benches if not any(tok in b.stem for tok in tokens)
    ]
    assert not undocumented, (
        f"bench scripts missing from docs/reproducing.md: {undocumented}"
    )


def test_readme_references_exist():
    """Paths mentioned in README tables/links must exist on disk."""
    text = README.read_text()
    for rel in re.findall(r"\]\(([A-Za-z0-9_./-]+\.md)\)", text):
        assert (REPO_ROOT / rel).exists(), f"README links to missing {rel}"
    for rel in re.findall(r"campaigns/[a-z0-9_]+\.toml", text):
        assert (REPO_ROOT / rel).exists(), f"README references missing {rel}"
