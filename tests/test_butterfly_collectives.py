"""End-to-end correctness of butterfly collectives and the four strategies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.butterfly_collectives import (
    RS_FLAVORS,
    allgather_butterfly,
    allreduce_recursive,
    allreduce_reduce_scatter_allgather,
    reduce_scatter_butterfly,
    rs_butterfly_for,
)
from repro.collectives.common import Strategy
from repro.collectives.verify import run_and_check
from repro.core.butterfly import (
    bine_butterfly_doubling,
    bine_butterfly_halving,
    recursive_doubling_butterfly,
    recursive_halving_butterfly,
    swing_butterfly,
)

POWERS = [2, 4, 8, 16, 32]


@pytest.mark.parametrize("flavor", sorted(RS_FLAVORS))
@pytest.mark.parametrize("p", POWERS)
class TestReduceScatterAllgatherFlavors:
    def test_reduce_scatter(self, flavor, p):
        bf, strategy = rs_butterfly_for(flavor, p)
        run_and_check(reduce_scatter_butterfly(bf, 4 * p, "sum", strategy))

    def test_allgather(self, flavor, p):
        bf, strategy = rs_butterfly_for(flavor, p)
        run_and_check(allgather_butterfly(bf, 4 * p, strategy))


class TestUnevenVectors:
    @pytest.mark.parametrize("n_extra", [1, 3, 7])
    def test_natural_strategy_uneven(self, n_extra):
        p = 8
        bf = bine_butterfly_doubling(p)
        run_and_check(reduce_scatter_butterfly(bf, 4 * p + n_extra, "sum", Strategy.NATURAL))
        run_and_check(allgather_butterfly(bf, 4 * p + n_extra, Strategy.NATURAL))

    def test_permute_requires_divisible(self):
        bf = bine_butterfly_doubling(8)
        with pytest.raises(ValueError):
            reduce_scatter_butterfly(bf, 33, "sum", Strategy.PERMUTE)

    def test_send_requires_divisible(self):
        bf = bine_butterfly_doubling(8)
        with pytest.raises(ValueError):
            allgather_butterfly(bf, 33, Strategy.SEND)


class TestAllreduce:
    @pytest.mark.parametrize("p", POWERS)
    @pytest.mark.parametrize(
        "builder",
        [bine_butterfly_halving, bine_butterfly_doubling,
         recursive_doubling_butterfly, swing_butterfly],
    )
    def test_recursive(self, p, builder):
        run_and_check(allreduce_recursive(builder(p), 11))

    @pytest.mark.parametrize("p", POWERS)
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_rsag(self, p, strategy):
        if strategy is Strategy.TWO_TRANSMISSIONS:
            bf = bine_butterfly_halving(p)
        else:
            bf = bine_butterfly_doubling(p)
        run_and_check(allreduce_reduce_scatter_allgather(bf, 4 * p, "sum", strategy))

    def test_rabenseifner(self):
        run_and_check(
            allreduce_reduce_scatter_allgather(
                recursive_halving_butterfly(16), 64, "sum", Strategy.NATURAL
            )
        )

    @pytest.mark.parametrize("op", ["sum", "max", "min", "prod"])
    def test_ops(self, op):
        run_and_check(
            allreduce_reduce_scatter_allgather(
                bine_butterfly_doubling(8), 32, op, Strategy.SEND
            )
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_random_data(self, seed):
        """Allreduce result is correct for arbitrary input data."""
        sched = allreduce_reduce_scatter_allgather(
            bine_butterfly_doubling(8), 32, "sum", Strategy.SEND
        )
        run_and_check(sched, seed=seed)


class TestContiguityClaims:
    """The paper's Sec. 4.3.1 contiguity properties, as schedule facts."""

    @pytest.mark.parametrize("p", [8, 16, 32, 64])
    def test_send_strategy_single_segment(self, p):
        sched = reduce_scatter_butterfly(
            bine_butterfly_doubling(p), p * 4, "sum", Strategy.SEND, fixup=False
        )
        assert all(t.num_segments == 1 for _, t in sched.all_transfers())

    @pytest.mark.parametrize("p", [8, 16, 32, 64])
    def test_permute_strategy_single_segment(self, p):
        sched = reduce_scatter_butterfly(
            bine_butterfly_doubling(p), p * 4, "sum", Strategy.PERMUTE
        )
        assert all(t.num_segments == 1 for _, t in sched.all_transfers())

    @pytest.mark.parametrize("p", [8, 16, 32, 64])
    def test_two_transmissions_at_most_two(self, p):
        sched = reduce_scatter_butterfly(
            bine_butterfly_halving(p), p * 4, "sum", Strategy.TWO_TRANSMISSIONS
        )
        assert max(t.num_segments for _, t in sched.all_transfers()) <= 2

    @pytest.mark.parametrize("p", [16, 32, 64])
    def test_swing_fragments(self, p):
        sched = reduce_scatter_butterfly(
            swing_butterfly(p), p * 4, "sum", Strategy.NATURAL
        )
        assert max(t.num_segments for _, t in sched.all_transfers()) > 2

    @pytest.mark.parametrize("p", [8, 16, 32])
    def test_rsag_send_has_no_local_copies(self, p):
        """The headline trick: allreduce(SEND) never moves data locally."""
        sched = allreduce_reduce_scatter_allgather(
            bine_butterfly_doubling(p), p * 4, "sum", Strategy.SEND
        )
        for step in sched.steps:
            assert not step.pre and not step.post

    @pytest.mark.parametrize("p", [8, 16, 32])
    def test_rsag_volume_optimal(self, p):
        """Each rank sends n(p−1)/p per phase: 2n(p−1)/p total (Sec. 4.3)."""
        n = p * 8
        sched = allreduce_reduce_scatter_allgather(
            bine_butterfly_doubling(p), n, "sum", Strategy.SEND
        )
        per_rank = sched.max_rank_send_elems()
        assert per_rank == 2 * n * (p - 1) // p
