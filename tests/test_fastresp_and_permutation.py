"""Tests for the fast responsibility backends and block permutations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.fastresp import resp_backend, sorted_runs
from repro.core.butterfly import (
    bine_butterfly_doubling,
    bine_butterfly_halving,
    recursive_doubling_butterfly,
    recursive_halving_butterfly,
    swing_butterfly,
)
from repro.core.coverage import responsibility
from repro.core.bine_tree import bine_tree_distance_halving
from repro.core.permutation import (
    apply_permutation,
    bine_block_permutation,
    compose_permutations,
    dfs_postorder_permutation,
    identity_permutation,
    invert_permutation,
    mirror_permutation,
    rotation_permutation,
)

BUILDERS = [
    bine_butterfly_doubling,
    bine_butterfly_halving,
    recursive_doubling_butterfly,
    recursive_halving_butterfly,
    swing_butterfly,
]


class TestFastResp:
    @pytest.mark.parametrize("builder", BUILDERS)
    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_agrees_with_generic(self, builder, p):
        bf = builder(p)
        fast = resp_backend(bf)
        for r in range(p):
            for j in range(bf.num_steps + 1):
                want = np.array(sorted(responsibility(bf, r, j)))
                assert np.array_equal(fast(r, j), want), (bf.kind, r, j)

    def test_large_p_cheap(self):
        # the closed form must not materialise Θ(p²) sets
        bf = bine_butterfly_doubling(4096)
        fast = resp_backend(bf)
        out = fast(123, 11)
        assert out.size == 2

    def test_sorted_runs(self):
        assert sorted_runs(np.array([0, 1, 2, 5, 6, 9])) == [(0, 3), (5, 7), (9, 10)]
        assert sorted_runs(np.array([], dtype=int)) == []
        assert sorted_runs(np.array([4])) == [(4, 5)]

    @given(blocks=st.sets(st.integers(min_value=0, max_value=100)))
    @settings(max_examples=100)
    def test_sorted_runs_cover(self, blocks):
        arr = np.array(sorted(blocks), dtype=int)
        covered = {i for lo, hi in sorted_runs(arr) for i in range(lo, hi)}
        assert covered == blocks


class TestPermutations:
    @pytest.mark.parametrize("p", [2, 4, 8, 16, 64])
    def test_bine_block_permutation_bijective(self, p):
        perm = bine_block_permutation(p)
        assert sorted(perm) == list(range(p))

    def test_fig8_example(self):
        # Fig. 8 (p=8): blocks {1,2,5,6} (ν LSB = 1) land in positions 4-7.
        perm = bine_block_permutation(8)
        assert {perm[b] for b in (1, 2, 5, 6)} == {4, 5, 6, 7}

    def test_invert(self):
        perm = bine_block_permutation(16)
        inv = invert_permutation(perm)
        assert compose_permutations(perm, inv) == identity_permutation(16)

    def test_compose_order(self):
        rot = rotation_permutation(4, 1)
        mir = mirror_permutation(4)
        ab = compose_permutations(rot, mir)
        items = list("abcd")
        assert apply_permutation(ab, items) == apply_permutation(
            mir, apply_permutation(rot, items)
        )

    def test_apply(self):
        perm = [2, 0, 1]
        assert apply_permutation(perm, ["a", "b", "c"]) == ["b", "c", "a"]

    @pytest.mark.parametrize("p", [4, 8, 32])
    def test_dfs_postorder_contiguous_subtrees(self, p):
        tree = bine_tree_distance_halving(p)
        perm = dfs_postorder_permutation(tree)
        for r in range(p):
            pos = sorted(perm[v] for v in tree.subtree(r))
            assert pos == list(range(pos[0], pos[0] + len(pos)))

    def test_root_is_last_in_postorder(self):
        tree = bine_tree_distance_halving(8)
        perm = dfs_postorder_permutation(tree)
        assert perm[tree.root] == 7

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError):
            invert_permutation([0, 0, 1])
