"""Compiled profile pipeline == Python reference, bit for bit.

The ``profile_engine="compiled"`` path (transfer tables, CSR route
matrices, grid evaluation — :mod:`repro.model.compiled`) must be a pure
optimization: every :class:`StepProfile`, every evaluated time and every
sweep record must equal the scalar pipeline's output exactly, not merely
within tolerance.  These tests pin that contract across the whole
algorithm registry (including non-power-of-two rank counts), the analytic
profile builders, the torus catalog, and the sweep layer itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import (
    ProfileCache,
    clear_memo_caches,
    sweep_system,
    sweep_torus,
)
from repro.collectives.registry import ALGORITHMS, spec_for
from repro.model.analytic import ANALYTIC_PROFILES
from repro.model.compiled import (
    CompiledRouteTable,
    _seq_sum,
    evaluate_grid,
    lower_schedule,
    profile_table,
    resolve_profile_engine,
    transfer_table_for,
)
from repro.model.simulator import (
    RouteTable,
    evaluate_time,
    profile_schedule,
)
from repro.runtime.schedule import schedule_validation
from repro.systems import fugaku, lumi
from repro.topology.mapping import block_mapping

RANK_COUNTS = (4, 8, 16, 17, 32)
#: geometric size grid (the paper's 32 B ... 512 MiB ladder, thinned)
N_BYTES = tuple(32 * 8**k for k in range(0, 9, 2))


def _buildable_schedules(p):
    """Every registry schedule that exists at ``p`` (validation off)."""
    for (coll, name), spec in sorted(ALGORITHMS.items()):
        if spec.max_p is not None and p > spec.max_p:
            continue
        try:
            with schedule_validation(False):
                yield coll, name, spec.build(p, p)
        except ValueError:
            continue  # pow2/divisibility constraint not met


class TestStepProfileEquivalence:
    @pytest.mark.parametrize("p", RANK_COUNTS)
    def test_registry_profiles_bit_identical(self, p):
        preset = lumi()
        topo = preset.build_topology()
        mapping = block_mapping(p)
        routes = RouteTable(topo)
        croutes = CompiledRouteTable(topo)
        checked = 0
        for coll, name, sched in _buildable_schedules(p):
            py = profile_schedule(sched, topo, mapping, routes=routes)
            co = profile_table(
                lower_schedule(sched), topo, mapping, routes=croutes
            )
            assert py == co, f"{coll}/{name} p={p}"
            checked += 1
        # the registry actually covered this p (non-pow2 thins the field)
        assert checked >= (10 if p & (p - 1) == 0 else 8)

    def test_ppn2_same_node_copies_bit_identical(self):
        # ppn > 1 exercises the intra-node (shared-memory copy) branch
        preset = lumi()
        topo = preset.build_topology()
        mapping = block_mapping(16, ppn=2)
        for coll, name in (("allreduce", "bine-rsag"), ("bcast", "binomial-dd")):
            sched = ALGORITHMS[(coll, name)].build(16, 16)
            py = profile_schedule(sched, topo, mapping)
            co = profile_table(lower_schedule(sched), topo, mapping)
            assert py == co

    def test_analytic_builders_share_the_kernel(self):
        # analytic profiles call profile_step, which dispatches on the
        # routes type: a CompiledRouteTable must give identical profiles
        preset = lumi()
        topo = preset.build_topology()
        routes = RouteTable(topo)
        croutes = CompiledRouteTable(topo)
        for (coll, name), builder in sorted(ANALYTIC_PROFILES.items()):
            for p in (16, 256):
                mapping = block_mapping(p)
                assert builder(p, topo, mapping, routes=routes) == builder(
                    p, topo, mapping, routes=croutes
                ), f"analytic {coll}/{name} p={p}"

    def test_profile_table_rejects_foreign_topology(self):
        topo_a = lumi().build_topology()
        topo_b = lumi().build_topology()
        sched = ALGORITHMS[("bcast", "bine")].build(8, 8)
        with pytest.raises(ValueError, match="different topology"):
            profile_table(
                lower_schedule(sched), topo_a, block_mapping(8),
                routes=CompiledRouteTable(topo_b),
            )

    def test_profile_table_rejects_mapping_mismatch(self):
        topo = lumi().build_topology()
        sched = ALGORITHMS[("bcast", "bine")].build(8, 8)
        with pytest.raises(ValueError, match="8"):
            profile_table(lower_schedule(sched), topo, block_mapping(4))


class TestEvaluateGrid:
    def _profiles(self):
        preset = lumi()
        topo = preset.build_topology()
        out = []
        for coll, name, p in (
            ("allreduce", "bine-rsag", 32),           # plain step sum
            ("allreduce", "bine-rsag-segmented", 32), # segmented overlap
            ("allreduce", "ring", 16),                # segmented, many steps
            ("allgather", "bruck", 17),               # non-pow2, local copies
        ):
            sched = ALGORITHMS[(coll, name)].build(p, p)
            out.append(profile_schedule(sched, topo, block_mapping(p)))
        return preset, out

    def test_matches_per_size_evaluate_time(self):
        preset, profiles = self._profiles()
        n_elems = [nb / preset.params.itemsize for nb in N_BYTES]
        for profile in profiles:
            grid = evaluate_grid(profile, preset.params, n_elems)
            for j, n in enumerate(n_elems):
                m = evaluate_time(profile, preset.params, n)
                assert grid.time[j] == m.time
                assert grid.global_bytes[j] == m.global_bytes
                assert {
                    cls: arr[j] for cls, arr in grid.bytes_by_class.items()
                } == m.bytes_by_class

    def test_pipelined_meta_matches(self):
        # the trinaryx torus chains carry the ``pipelined`` cost flag
        from repro.collectives.torus import torus_specs
        from repro.core.torus_opt import TorusShape
        from repro.topology.torus import Torus

        preset = fugaku()
        shape, topo = TorusShape((2, 2, 2)), Torus((2, 2, 2))
        mapping = block_mapping(shape.num_ranks)
        seen_pipelined = False
        for spec in torus_specs():
            with schedule_validation(False):
                sched = spec.build(shape)
            seen_pipelined |= bool(sched.meta.get("pipelined"))
            profile = profile_schedule(sched, topo, mapping)
            n_elems = [nb / 4 for nb in N_BYTES]
            grid = evaluate_grid(profile, preset.params, n_elems)
            for j, n in enumerate(n_elems):
                assert grid.time[j] == evaluate_time(profile, preset.params, n).time
        assert seen_pipelined  # the flag's code path was actually exercised

    def test_analytic_ring_large_p(self):
        # thousands of replicated steps: the _lat_array id-memo path
        preset = lumi()
        topo = preset.build_topology()
        profile = ANALYTIC_PROFILES[("allreduce", "ring")](
            1024, topo, block_mapping(1024)
        )
        n_elems = [nb / preset.params.itemsize for nb in N_BYTES]
        grid = evaluate_grid(profile, preset.params, n_elems)
        for j, n in enumerate(n_elems):
            assert grid.time[j] == evaluate_time(profile, preset.params, n).time

    def test_seq_sum_matches_sequential_loop(self):
        # the summation must add rows in step order (no pairwise
        # regrouping) — the property the bit-identity contract leans on;
        # single-column matrices are the historical trap (np.add.reduce
        # regroups them)
        rng = np.random.default_rng(7)
        for cols in (1, 9):
            term = rng.random((4097, cols)) * np.logspace(-18, 3, 4097)[:, None]
            expect = np.zeros(cols)
            for row in term:
                expect = expect + row
            assert np.array_equal(_seq_sum(term, cols), expect)
            assert np.array_equal(_seq_sum(np.asfortranarray(term), cols), expect)
            assert np.array_equal(_seq_sum(term[:0], cols), np.zeros(cols))


class TestSweepRecordEquivalence:
    def test_sweep_records_bit_identical_across_engines(self):
        preset = lumi()
        kwargs = dict(
            node_counts=(8, 16, 17, 32),
            vector_bytes=N_BYTES,
            max_p={"alltoall": 16},
        )
        collectives = tuple(sorted({c for c, _ in ALGORITHMS}))
        py = sweep_system(preset, collectives, profile_engine="python", **kwargs)
        co = sweep_system(preset, collectives, profile_engine="compiled", **kwargs)
        assert py == co
        assert len(py) > 300

    def test_reference_lumi_campaign_bit_identical(self):
        # the BENCH_sweep.json campaign's shape (3 collectives, the nine
        # paper sizes) — the acceptance contract for the compiled engine
        preset = lumi()
        kwargs = dict(
            node_counts=(16, 64, 256),
            vector_bytes=tuple(32 * 8**k for k in range(9)),
        )
        collectives = ("allreduce", "allgather", "bcast")
        py = sweep_system(preset, collectives, profile_engine="python", **kwargs)
        co = sweep_system(preset, collectives, profile_engine="compiled", **kwargs)
        assert py == co
        assert len(py) > 500

    def test_sweep_records_identical_with_ppn(self):
        preset = lumi()
        kwargs = dict(node_counts=(16, 32), vector_bytes=(1024,), ppn=2)
        py = sweep_system(preset, ("allreduce",), profile_engine="python", **kwargs)
        co = sweep_system(preset, ("allreduce",), profile_engine="compiled", **kwargs)
        assert py == co and py

    def test_torus_sweep_bit_identical(self):
        preset = fugaku()
        kwargs = dict(vector_bytes=N_BYTES)
        for dims in ((2, 4), (2, 2, 2)):
            py = sweep_torus(
                preset, dims, ("bcast", "allreduce", "allgather"),
                profile_engine="python", **kwargs
            )
            co = sweep_torus(
                preset, dims, ("bcast", "allreduce", "allgather"),
                profile_engine="compiled", **kwargs
            )
            assert py == co and py

    def test_profile_cache_engines_agree_including_analytic(self):
        # p=256 allreduce/ring crosses ANALYTIC_THRESHOLD: the compiled
        # cache must hand the analytic builder its CSR table and still
        # produce the same profile object graph
        preset = lumi()
        spec = spec_for("allreduce", "ring")
        py = ProfileCache(preset, profile_engine="python")
        co = ProfileCache(preset, profile_engine="compiled")
        assert py.get(spec, 256) == co.get(spec, 256)
        assert py.get(spec, 16) == co.get(spec, 16)


class TestTransferTableMemo:
    def test_memoized_per_registry_cell(self):
        clear_memo_caches()
        spec = spec_for("bcast", "bine")
        first = transfer_table_for(spec, 16)
        assert first is transfer_table_for(spec, 16)
        clear_memo_caches()
        rebuilt = transfer_table_for(spec, 16)
        assert rebuilt is not first
        assert np.array_equal(rebuilt.src, first.src)
        assert np.array_equal(rebuilt.nelems, first.nelems)

    def test_constraint_miss_cached_as_none(self):
        spec = spec_for("bcast", "bine")  # pow2-only
        assert transfer_table_for(spec, 24) is None
        assert transfer_table_for(spec, 24) is None

    def test_lowering_matches_schedule(self):
        sched = spec_for("allreduce", "bine-rsag").build(16, 16)
        table = lower_schedule(sched)
        assert table.num_steps == sched.num_steps
        assert table.num_transfers == sum(
            len(s.transfers) for s in sched.steps
        )
        assert int(table.nelems.sum()) == sched.total_comm_elems()
        # local ops keep pre-then-post step order
        for i, step in enumerate(sched.steps):
            lo, hi = table.local_off[i], table.local_off[i + 1]
            assert hi - lo == len(step.pre) + len(step.post)


class TestEngineKnob:
    def test_default_is_compiled(self):
        assert resolve_profile_engine() == "compiled"
        assert resolve_profile_engine("python") == "python"

    def test_env_var_sets_default_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_ENGINE", "python")
        assert resolve_profile_engine() == "python"
        # an explicit engine must survive the env var: the perf bench and
        # this suite pin both engines to compare them against each other
        assert resolve_profile_engine("compiled") == "compiled"
        monkeypatch.setenv("REPRO_PROFILE_ENGINE", "")
        assert resolve_profile_engine() == "compiled"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown profile engine"):
            resolve_profile_engine("fortran")
        with pytest.raises(ValueError, match="unknown profile engine"):
            ProfileCache(lumi(), profile_engine="fortran")
