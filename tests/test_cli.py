"""End-to-end tests for the ``repro`` CLI on tiny (p ≤ 16) grids.

Every subcommand is exercised through :func:`repro.cli.main` in-process
(stdout captured with capsys), plus one subprocess test for the
``python -m repro`` module entry point and one for ``repro bench``'s
pytest dispatch.  The campaign tests pin the acceptance contract:
manifest → ``repro campaign`` → records identical to the equivalent
direct :func:`sweep_system` call, under any ``--workers`` /
``--disk-cache`` combination.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.sweep import ProfileCache, SweepRecord, sweep_system
from repro.cli import main
from repro.cli.manifest import (
    CampaignManifest,
    GridSpec,
    ManifestError,
    SummarySpec,
    dump_manifest,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
)
from repro.systems import lumi

REPO_ROOT = Path(__file__).resolve().parent.parent

TINY_SWEEP = [
    "sweep", "--system", "lumi", "--collective", "bcast",
    "--nodes", "16", "--sizes", "1024,65536",
]

TINY_MANIFEST = {
    "campaign": {"name": "tiny", "system": "lumi", "description": "tiny grid"},
    "grid": [
        {
            "collectives": ["bcast", "allreduce"],
            "node_counts": [8, 16],
            "vector_bytes": [1024, 65536],
        }
    ],
    "summary": {"family": "bine", "baseline": "binomial"},
}


def tiny_direct_records() -> list[SweepRecord]:
    """The direct sweep_system equivalent of TINY_MANIFEST."""
    preset = lumi()
    cache = ProfileCache(preset, placement="scheduler", seed=7, busy_fraction=0.55)
    return sweep_system(
        preset,
        ("bcast", "allreduce"),
        node_counts=(8, 16),
        vector_bytes=(1024, 65536),
        cache=cache,
    )


# -- repro list --------------------------------------------------------------


class TestList:
    def test_text_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "systems: fugaku, leonardo, lumi, marenostrum5" in out
        assert "bcast:" in out and "alltoall:" in out
        assert "bine" in out

    def test_collective_filter(self, capsys):
        assert main(["list", "--collective", "alltoall"]) == 0
        out = capsys.readouterr().out
        assert "alltoall:" in out and "bcast:" not in out

    def test_family_filter(self, capsys):
        assert main(["list", "--family", "ring"]) == 0
        out = capsys.readouterr().out
        assert "ring allreduce" in out and "binomial scatter" not in out

    def test_json_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert {"systems", "collectives", "families", "algorithms"} <= set(catalog)
        names = {(a["collective"], a["name"]) for a in catalog["algorithms"]}
        assert ("allreduce", "bine-rsag") in names
        assert len(names) >= 40

    def test_markdown_catalog(self, capsys):
        assert main(["list", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Algorithm catalog")
        assert "| `bine-rsag` | bine |" in out

    def test_unknown_collective_fails(self, capsys):
        assert main(["list", "--collective", "bogus"]) == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_json_respects_filters(self, capsys):
        assert main(["list", "--json", "--collective", "alltoall"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert {a["collective"] for a in catalog["algorithms"]} == {"alltoall"}

    def test_markdown_rejects_filters(self, capsys):
        assert main(["list", "--markdown", "--collective", "bcast"]) == 2
        assert "full docs/algorithms.md catalog" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "catalog.md"
        assert main(["list", "--markdown", "--output", str(target)]) == 0
        assert target.read_text().startswith("# Algorithm catalog")


# -- repro schedule ----------------------------------------------------------


class TestSchedule:
    def test_pretty_print(self, capsys):
        assert main(["schedule", "allreduce", "bine-rsag", "-p", "16"]) == 0
        out = capsys.readouterr().out
        assert "schedule allreduce/bine-rsag: p=16" in out
        assert "step 0" in out and "validation: on" in out

    def test_verify_runs_executor(self, capsys):
        assert main(["schedule", "bcast", "bine", "-p", "8", "--verify"]) == 0
        assert "verify: executor output matches" in capsys.readouterr().out

    def test_truncation(self, capsys):
        assert main(
            ["schedule", "allgather", "ring", "-p", "16", "--max-steps", "2"]
        ) == 0
        assert "more steps" in capsys.readouterr().out

    def test_unknown_algorithm_fails(self, capsys):
        assert main(["schedule", "bcast", "nope", "-p", "8"]) == 2
        assert "no algorithm" in capsys.readouterr().err

    def test_constraint_violation_fails(self, capsys):
        # bine bcast is pow2-only; p=12 must fail with a clear message
        assert main(["schedule", "bcast", "bine", "-p", "12"]) == 2
        assert "cannot build" in capsys.readouterr().err


# -- repro sweep -------------------------------------------------------------


class TestSweep:
    def direct(self) -> list[SweepRecord]:
        preset = lumi()
        cache = ProfileCache(
            preset, placement="scheduler", seed=7, busy_fraction=0.55
        )
        return sweep_system(
            preset, ("bcast",), node_counts=(16,),
            vector_bytes=(1024, 65536), cache=cache,
        )

    def test_json_matches_direct_call(self, capsys):
        assert main(TINY_SWEEP + ["--format", "json"]) == 0
        got = [SweepRecord.from_dict(d) for d in json.loads(capsys.readouterr().out)]
        assert got == self.direct()

    def test_csv_shape(self, capsys):
        assert main(TINY_SWEEP + ["--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("system,collective,algorithm")
        assert len(lines) == len(self.direct()) + 1

    def test_markdown_shape(self, capsys):
        assert main(TINY_SWEEP + ["--format", "markdown"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("| system |") or lines[0].startswith("| system")
        assert len(lines) == len(self.direct()) + 2

    def test_summary_default(self, capsys):
        assert main(TINY_SWEEP) == 0
        out = capsys.readouterr().out
        assert "Coll." in out and "bcast" in out

    def test_workers_identical_to_serial(self, capsys):
        assert main(TINY_SWEEP + ["--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert main(TINY_SWEEP + ["--format", "json", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_disk_cache_warm_identical(self, tmp_path, capsys):
        flags = ["--format", "json", "--disk-cache", str(tmp_path / "c")]
        assert main(TINY_SWEEP + flags) == 0
        cold = capsys.readouterr().out
        assert list((tmp_path / "c").rglob("*.pkl")), "cache not populated"
        assert main(TINY_SWEEP + flags) == 0
        assert capsys.readouterr().out == cold

    def test_unknown_system_fails(self, capsys):
        assert main(["sweep", "--system", "summit"]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_unknown_algorithm_fails(self, capsys):
        assert main(TINY_SWEEP + ["--algorithm", "bien"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_summary_json(self, capsys):
        assert main(TINY_SWEEP + ["--format", "summary-json"]) == 0
        duels = json.loads(capsys.readouterr().out)
        assert duels and duels[0]["collective"] == "bcast"
        assert "win_pct" in duels[0]


# -- repro campaign ----------------------------------------------------------


class TestCampaign:
    def test_manifest_records_identical_to_direct(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        assert main(["campaign", str(manifest), "--format", "json"]) == 0
        got = [SweepRecord.from_dict(d) for d in json.loads(capsys.readouterr().out)]
        assert got == tiny_direct_records()

    def test_toml_json_equivalence(self, tmp_path, capsys):
        toml = tmp_path / "tiny.toml"
        toml.write_text(
            '[campaign]\nname = "tiny"\nsystem = "lumi"\n'
            "[[grid]]\n"
            'collectives = ["bcast", "allreduce"]\n'
            "node_counts = [8, 16]\n"
            "vector_bytes = [1024, 65536]\n"
        )
        assert main(["campaign", str(toml), "--format", "json"]) == 0
        got = [SweepRecord.from_dict(d) for d in json.loads(capsys.readouterr().out)]
        assert got == tiny_direct_records()

    def test_workers_and_disk_cache_identical(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        flags = ["--format", "json", "--workers", "2",
                 "--disk-cache", str(tmp_path / "cache")]
        assert main(["campaign", str(manifest)] + flags) == 0
        first = capsys.readouterr().out
        assert main(["campaign", str(manifest)] + flags) == 0  # warm
        assert capsys.readouterr().out == first
        assert [SweepRecord.from_dict(d) for d in json.loads(first)] == (
            tiny_direct_records()
        )

    def test_summary_output(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        assert main(["campaign", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "tiny grid" in out and "Coll." in out

    def test_summary_json_output(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        assert main(["campaign", str(manifest), "--format", "summary-json"]) == 0
        duels = json.loads(capsys.readouterr().out)
        assert {d["collective"] for d in duels} == {"bcast", "allreduce"}

    def test_missing_manifest_fails(self, capsys):
        assert main(["campaign", "nope.toml"]) == 2

    def test_invalid_manifest_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"campaign": {"name": "x", "system": "lumi"}}))
        assert main(["campaign", str(bad)]) == 2
        assert "[[grid]]" in capsys.readouterr().err


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = CampaignManifest(
            name="rt",
            system="lumi",
            grids=(
                GridSpec(
                    collectives=("bcast",),
                    node_counts=(16,),
                    vector_bytes=(1024,),
                    algorithms=("bine",),
                    max_p={"bcast": 64},
                ),
            ),
            summary=SummarySpec(baseline_overrides={"alltoall": "bruck"}),
        )
        path = tmp_path / "rt.json"
        dump_manifest(manifest, path)
        assert load_manifest(path) == manifest
        assert manifest_from_dict(manifest_to_dict(manifest)) == manifest

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d["campaign"].update(system="summit"), "unknown system"),
            (lambda d: d["campaign"].update(placement="banana"), "placement"),
            (lambda d: d.update(extra=1), "unknown key"),
            (lambda d: d["grid"][0].update(collectives=["bogus"]), "collective"),
            (lambda d: d["grid"][0].update(collectives=[]), "at least one"),
            (lambda d: d["grid"][0].update(node_counts=[]), "positive integer"),
            (lambda d: d["grid"][0].update(node_counts="16"), "got a string"),
            (lambda d: d["grid"][0].pop("node_counts"), "missing required"),
            (lambda d: d["grid"][0].update(algorithms=["bien"]), "unknown algorithm"),
            (lambda d: d["summary"].update(family="bien"), "unknown family"),
            (lambda d: d["summary"].update(
                baseline_overrides={"bogus": "bruck"}), "unknown collective"),
        ],
    )
    def test_validation_errors(self, mutate, message):
        data = json.loads(json.dumps(TINY_MANIFEST))  # deep copy
        mutate(data)
        with pytest.raises(ManifestError, match=message):
            manifest_from_dict(data)

    def test_shipped_manifests_load(self):
        campaigns = sorted((REPO_ROOT / "campaigns").glob("*.toml"))
        assert len(campaigns) >= 3
        systems = set()
        for path in campaigns:
            m = load_manifest(path)
            systems.add(m.system)
            assert m.grids and m.summary is not None
            assert m.summary.baseline_for("alltoall") == "bruck"
        assert {"lumi", "leonardo", "marenostrum5"} <= systems

    def test_paper_vector_keyword(self):
        data = json.loads(json.dumps(TINY_MANIFEST))
        data["grid"][0]["vector_bytes"] = "paper"
        m = manifest_from_dict(data)
        assert m.grids[0].vector_bytes == tuple(32 * 8**k for k in range(9))


# -- repro verify ------------------------------------------------------------


class TestVerify:
    def test_quick_smoke_grid(self, capsys):
        """The tier-1 oracle smoke: every registry cell at p=4,8, one seed."""
        assert main(["verify", "--quick"]) == 0
        captured = capsys.readouterr()
        assert "0 failed" in captured.err
        assert "total:" in captured.out and " ok" in captured.out

    def test_quick_cross_check_engines(self, capsys):
        assert main(["verify", "--quick", "--engine", "both",
                     "--collective", "allreduce"]) == 0
        out = capsys.readouterr().out
        assert "allreduce" in out and "failed" in out

    def test_json_records(self, capsys):
        assert main(["verify", "--collective", "bcast", "--nodes", "8,12",
                     "--seeds", "0", "--format", "json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert {r["status"] for r in records} == {"ok", "skipped"}
        assert {r["p"] for r in records} == {8, 12}  # pow2-only cells skip at 12
        assert all(r["engine"] == "compiled" for r in records)

    def test_markdown_and_table(self, capsys):
        assert main(["verify", "--quick", "--collective", "scatter",
                     "--format", "markdown"]) == 0
        assert capsys.readouterr().out.startswith("| collective |")
        assert main(["verify", "--quick", "--collective", "scatter",
                     "--format", "table"]) == 0
        assert "scatter" in capsys.readouterr().out

    def test_workers_identical_to_serial(self, capsys):
        args = ["verify", "--quick", "--collective", "gather", "--format", "json"]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        strip = lambda rs: [{**r, "elapsed_s": 0} for r in rs]
        assert strip(serial) == strip(parallel)

    def test_failure_exits_one(self, capsys, monkeypatch):
        from repro.collectives.registry import ALGORITHMS, AlgorithmSpec
        from repro.collectives.verify import clear_plan_cache
        from repro.runtime.schedule import Schedule

        spec = AlgorithmSpec(
            "bcast", "broken", "bine",
            lambda p, n, root, op: Schedule(
                p, meta={"collective": "bcast", "n": n, "root": 0}
            ),
            pow2_only=False,
        )
        monkeypatch.setitem(ALGORITHMS, ("bcast", "broken"), spec)
        assert main(["verify", "--quick", "--collective", "bcast",
                     "--algorithm", "broken"]) == 1
        captured = capsys.readouterr()
        assert "1 failed" in captured.err or "2 failed" in captured.err
        assert "failures:" in captured.out
        clear_plan_cache()

    def test_unknown_collective_fails(self, capsys):
        assert main(["verify", "--collective", "bogus"]) == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_unknown_algorithm_fails(self, capsys):
        assert main(["verify", "--collective", "bcast", "--algorithm", "bien"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "verify.json"
        assert main(["verify", "--quick", "--collective", "alltoall",
                     "--format", "json", "--output", str(target)]) == 0
        records = json.loads(target.read_text())
        assert records and all(r["collective"] == "alltoall" for r in records)


# -- repro bench -------------------------------------------------------------


class TestBench:
    def test_list_inventory(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_table3_lumi" in out and "bench_fig01_bcast_traffic" in out
        assert "Table 3" in out  # docstring first lines shown

    def test_pattern_filter(self, capsys):
        assert main(["bench", "--list", "table"]) == 0
        out = capsys.readouterr().out
        assert "bench_table5_mn5" in out and "bench_fig01" not in out

    def test_no_match_fails(self, capsys):
        assert main(["bench", "zzz-not-a-bench"]) == 2

    def test_runs_one_bench_via_pytest(self):
        # cheapest bench: Eq. 2 distance ratios (pure arithmetic)
        assert main(["bench", "eq02"]) == 0


# -- python -m repro ---------------------------------------------------------


def test_module_entry_point():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "list", "--collective", "bcast"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "bcast:" in proc.stdout
