"""End-to-end tests for the ``repro`` CLI on tiny (p ≤ 16) grids.

Every subcommand is exercised through :func:`repro.cli.main` in-process
(stdout captured with capsys), plus one subprocess test for the
``python -m repro`` module entry point and one for ``repro bench``'s
pytest dispatch.  The campaign tests pin the acceptance contract:
manifest → ``repro campaign`` → records identical to the equivalent
direct :func:`sweep_system` call, under any ``--workers`` /
``--disk-cache`` combination.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.sweep import ProfileCache, SweepRecord, sweep_system
from repro.cli import main
from repro.cli.manifest import (
    CampaignManifest,
    GridSpec,
    ManifestError,
    SummarySpec,
    dump_manifest,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
)
from repro.systems import lumi

REPO_ROOT = Path(__file__).resolve().parent.parent

TINY_SWEEP = [
    "sweep", "--system", "lumi", "--collective", "bcast",
    "--nodes", "16", "--sizes", "1024,65536",
]

TINY_MANIFEST = {
    "campaign": {"name": "tiny", "system": "lumi", "description": "tiny grid"},
    "grid": [
        {
            "collectives": ["bcast", "allreduce"],
            "node_counts": [8, 16],
            "vector_bytes": [1024, 65536],
        }
    ],
    "summary": {"family": "bine", "baseline": "binomial"},
}


def tiny_direct_records() -> list[SweepRecord]:
    """The direct sweep_system equivalent of TINY_MANIFEST."""
    preset = lumi()
    cache = ProfileCache(preset, placement="scheduler", seed=7, busy_fraction=0.55)
    return sweep_system(
        preset,
        ("bcast", "allreduce"),
        node_counts=(8, 16),
        vector_bytes=(1024, 65536),
        cache=cache,
    )


# -- repro list --------------------------------------------------------------


class TestList:
    def test_text_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "systems: fugaku, leonardo, lumi, marenostrum5" in out
        assert "bcast:" in out and "alltoall:" in out
        assert "bine" in out

    def test_collective_filter(self, capsys):
        assert main(["list", "--collective", "alltoall"]) == 0
        out = capsys.readouterr().out
        assert "alltoall:" in out and "bcast:" not in out

    def test_family_filter(self, capsys):
        assert main(["list", "--family", "ring"]) == 0
        out = capsys.readouterr().out
        assert "ring allreduce" in out and "binomial scatter" not in out

    def test_json_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert {"systems", "collectives", "families", "algorithms"} <= set(catalog)
        names = {(a["collective"], a["name"]) for a in catalog["algorithms"]}
        assert ("allreduce", "bine-rsag") in names
        assert len(names) >= 40

    def test_markdown_catalog(self, capsys):
        assert main(["list", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Algorithm catalog")
        assert "| `bine-rsag` | bine |" in out

    def test_unknown_collective_fails(self, capsys):
        assert main(["list", "--collective", "bogus"]) == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_json_respects_filters(self, capsys):
        assert main(["list", "--json", "--collective", "alltoall"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert {a["collective"] for a in catalog["algorithms"]} == {"alltoall"}

    def test_markdown_rejects_filters(self, capsys):
        assert main(["list", "--markdown", "--collective", "bcast"]) == 2
        assert "full docs/algorithms.md catalog" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "catalog.md"
        assert main(["list", "--markdown", "--output", str(target)]) == 0
        assert target.read_text().startswith("# Algorithm catalog")


# -- repro schedule ----------------------------------------------------------


class TestSchedule:
    def test_pretty_print(self, capsys):
        assert main(["schedule", "allreduce", "bine-rsag", "-p", "16"]) == 0
        out = capsys.readouterr().out
        assert "schedule allreduce/bine-rsag: p=16" in out
        assert "step 0" in out and "validation: on" in out

    def test_verify_runs_executor(self, capsys):
        assert main(["schedule", "bcast", "bine", "-p", "8", "--verify"]) == 0
        assert "verify: executor output matches" in capsys.readouterr().out

    def test_truncation(self, capsys):
        assert main(
            ["schedule", "allgather", "ring", "-p", "16", "--max-steps", "2"]
        ) == 0
        assert "more steps" in capsys.readouterr().out

    def test_unknown_algorithm_fails(self, capsys):
        assert main(["schedule", "bcast", "nope", "-p", "8"]) == 2
        assert "no algorithm" in capsys.readouterr().err

    def test_constraint_violation_fails(self, capsys):
        # bine bcast is pow2-only; p=12 must fail with a clear message
        assert main(["schedule", "bcast", "bine", "-p", "12"]) == 2
        assert "cannot build" in capsys.readouterr().err


# -- repro sweep -------------------------------------------------------------


class TestSweep:
    def direct(self) -> list[SweepRecord]:
        preset = lumi()
        cache = ProfileCache(
            preset, placement="scheduler", seed=7, busy_fraction=0.55
        )
        return sweep_system(
            preset, ("bcast",), node_counts=(16,),
            vector_bytes=(1024, 65536), cache=cache,
        )

    def test_json_matches_direct_call(self, capsys):
        assert main(TINY_SWEEP + ["--format", "json"]) == 0
        got = [SweepRecord.from_dict(d) for d in json.loads(capsys.readouterr().out)]
        assert got == self.direct()

    def test_csv_shape(self, capsys):
        assert main(TINY_SWEEP + ["--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("system,collective,algorithm")
        assert len(lines) == len(self.direct()) + 1

    def test_markdown_shape(self, capsys):
        assert main(TINY_SWEEP + ["--format", "markdown"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("| system |") or lines[0].startswith("| system")
        assert len(lines) == len(self.direct()) + 2

    def test_summary_default(self, capsys):
        assert main(TINY_SWEEP) == 0
        out = capsys.readouterr().out
        assert "Coll." in out and "bcast" in out

    def test_workers_identical_to_serial(self, capsys):
        assert main(TINY_SWEEP + ["--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert main(TINY_SWEEP + ["--format", "json", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_disk_cache_warm_identical(self, tmp_path, capsys):
        flags = ["--format", "json", "--disk-cache", str(tmp_path / "c")]
        assert main(TINY_SWEEP + flags) == 0
        cold = capsys.readouterr().out
        assert list((tmp_path / "c").rglob("*.pkl")), "cache not populated"
        assert main(TINY_SWEEP + flags) == 0
        assert capsys.readouterr().out == cold

    def test_unknown_system_fails(self, capsys):
        assert main(["sweep", "--system", "summit"]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_unknown_algorithm_fails(self, capsys):
        assert main(TINY_SWEEP + ["--algorithm", "bien"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_summary_json(self, capsys):
        assert main(TINY_SWEEP + ["--format", "summary-json"]) == 0
        duels = json.loads(capsys.readouterr().out)
        assert duels and duels[0]["collective"] == "bcast"
        assert "win_pct" in duels[0]


# -- repro campaign ----------------------------------------------------------


class TestCampaign:
    def test_manifest_records_identical_to_direct(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        assert main(["campaign", str(manifest), "--format", "json"]) == 0
        got = [SweepRecord.from_dict(d) for d in json.loads(capsys.readouterr().out)]
        assert got == tiny_direct_records()

    def test_toml_json_equivalence(self, tmp_path, capsys):
        toml = tmp_path / "tiny.toml"
        toml.write_text(
            '[campaign]\nname = "tiny"\nsystem = "lumi"\n'
            "[[grid]]\n"
            'collectives = ["bcast", "allreduce"]\n'
            "node_counts = [8, 16]\n"
            "vector_bytes = [1024, 65536]\n"
        )
        assert main(["campaign", str(toml), "--format", "json"]) == 0
        got = [SweepRecord.from_dict(d) for d in json.loads(capsys.readouterr().out)]
        assert got == tiny_direct_records()

    def test_workers_and_disk_cache_identical(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        flags = ["--format", "json", "--workers", "2",
                 "--disk-cache", str(tmp_path / "cache")]
        assert main(["campaign", str(manifest)] + flags) == 0
        first = capsys.readouterr().out
        assert main(["campaign", str(manifest)] + flags) == 0  # warm
        assert capsys.readouterr().out == first
        assert [SweepRecord.from_dict(d) for d in json.loads(first)] == (
            tiny_direct_records()
        )

    def test_summary_output(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        assert main(["campaign", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "tiny grid" in out and "Coll." in out

    def test_summary_json_output(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        assert main(["campaign", str(manifest), "--format", "summary-json"]) == 0
        duels = json.loads(capsys.readouterr().out)
        assert {d["collective"] for d in duels} == {"bcast", "allreduce"}

    def test_missing_manifest_fails(self, capsys):
        assert main(["campaign", "nope.toml"]) == 2

    def test_invalid_manifest_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"campaign": {"name": "x", "system": "lumi"}}))
        assert main(["campaign", str(bad)]) == 2
        assert "[[grid]]" in capsys.readouterr().err


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = CampaignManifest(
            name="rt",
            system="lumi",
            grids=(
                GridSpec(
                    collectives=("bcast",),
                    node_counts=(16,),
                    vector_bytes=(1024,),
                    algorithms=("bine",),
                    max_p={"bcast": 64},
                ),
            ),
            summary=SummarySpec(baseline_overrides={"alltoall": "bruck"}),
        )
        path = tmp_path / "rt.json"
        dump_manifest(manifest, path)
        assert load_manifest(path) == manifest
        assert manifest_from_dict(manifest_to_dict(manifest)) == manifest

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d["campaign"].update(system="summit"), "unknown system"),
            (lambda d: d["campaign"].update(placement="banana"), "placement"),
            (lambda d: d.update(extra=1), "unknown key"),
            (lambda d: d["grid"][0].update(collectives=["bogus"]), "collective"),
            (lambda d: d["grid"][0].update(collectives=[]), "at least one"),
            (lambda d: d["grid"][0].update(node_counts=[]), "positive integer"),
            (lambda d: d["grid"][0].update(node_counts="16"), "got a string"),
            (lambda d: d["grid"][0].pop("node_counts"), "missing required"),
            (lambda d: d["grid"][0].update(algorithms=["bien"]), "unknown algorithm"),
            (lambda d: d["summary"].update(family="bien"), "unknown family"),
            (lambda d: d["summary"].update(
                baseline_overrides={"bogus": "bruck"}), "unknown collective"),
        ],
    )
    def test_validation_errors(self, mutate, message):
        data = json.loads(json.dumps(TINY_MANIFEST))  # deep copy
        mutate(data)
        with pytest.raises(ManifestError, match=message):
            manifest_from_dict(data)

    def test_shipped_manifests_load(self):
        campaigns = sorted((REPO_ROOT / "campaigns").glob("*.toml"))
        assert len(campaigns) >= 5
        systems = set()
        for path in campaigns:
            m = load_manifest(path)
            systems.add(m.system)
            assert m.grids
            if m.system == "fugaku":  # the torus studies carry no duel table
                assert all(g.torus_dims is not None for g in m.grids)
            else:
                assert m.summary is not None
                assert m.summary.baseline_for("alltoall") == "bruck"
        assert {"lumi", "leonardo", "marenostrum5", "fugaku"} <= systems

    def test_paper_vector_keyword(self):
        data = json.loads(json.dumps(TINY_MANIFEST))
        data["grid"][0]["vector_bytes"] = "paper"
        m = manifest_from_dict(data)
        assert m.grids[0].vector_bytes == tuple(32 * 8**k for k in range(9))


# -- repro plot --------------------------------------------------------------


class TestPlot:
    #: the acceptance slice of the Table 3 manifest: real file, tiny grid
    TABLE3_PLOT = [
        "plot", "--manifest", str(REPO_ROOT / "campaigns" / "table3_lumi.toml"),
        "--collective", "bcast", "--collective", "allreduce",
        "--nodes", "16,64", "--sizes", "2048,131072",
    ]

    def test_manifest_renders_figures(self, tmp_path, capsys):
        out = tmp_path / "report"
        assert main(self.TABLE3_PLOT + ["--out", str(out)]) == 0
        names = {p.name for p in out.iterdir()}
        assert {"heatmap_bcast.svg", "heatmap_allreduce.svg",
                "boxplot_improvement.svg", "index.md", "index.html"} == names
        index = (out / "index.md").read_text()
        assert "table3_lumi.toml" in index and "sha256" in index
        for svg in names - {"index.md", "index.html"}:
            assert (out / svg).read_text().startswith("<svg")

    def test_byte_deterministic_across_runs(self, tmp_path, capsys):
        """Acceptance: two runs of the same plot produce identical bytes."""
        for sub in ("r1", "r2"):
            assert main(self.TABLE3_PLOT + ["--out", str(tmp_path / sub)]) == 0
        capsys.readouterr()
        files = sorted(p.name for p in (tmp_path / "r1").iterdir())
        assert files
        for name in files:
            assert (tmp_path / "r1" / name).read_bytes() == (
                tmp_path / "r2" / name
            ).read_bytes(), f"{name} not byte-deterministic"

    def test_records_input(self, tmp_path, capsys):
        records_file = tmp_path / "records.json"
        assert main(TINY_SWEEP + ["--format", "json",
                                  "--output", str(records_file)]) == 0
        capsys.readouterr()
        out = tmp_path / "report"
        assert main(["plot", "--records", str(records_file),
                     "--out", str(out)]) == 0
        assert (out / "heatmap_bcast.svg").exists()

    def test_empty_filter_fails(self, tmp_path, capsys):
        assert main([
            "plot", "--manifest",
            str(REPO_ROOT / "campaigns" / "table3_lumi.toml"),
            "--out", str(tmp_path), "--nodes", "7",
        ]) == 2
        assert "leave nothing" in capsys.readouterr().err

    def test_non_sweep_records_fail(self, tmp_path, capsys):
        assert main(["plot", "--records", str(REPO_ROOT / "BENCH_sweep.json"),
                     "--out", str(tmp_path)]) == 2
        assert "sweep records" in capsys.readouterr().err


# -- repro compare -----------------------------------------------------------


class TestCompare:
    def records_file(self, tmp_path, capsys) -> Path:
        path = tmp_path / "records.json"
        assert main(TINY_SWEEP + ["--format", "json", "--output", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_self_diff_exits_zero(self, tmp_path, capsys):
        """Acceptance smoke: the same record set twice is drift-free."""
        path = self.records_file(tmp_path, capsys)
        assert main(["compare", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "identical within tolerance" in out

    def test_perturbed_copy_exits_one_and_names_cell(self, tmp_path, capsys):
        """Acceptance smoke: a perturbed copy drifts, naming the cell."""
        path = self.records_file(tmp_path, capsys)
        rows = json.loads(path.read_text())
        rows[0]["time"] *= 1.02
        perturbed = tmp_path / "perturbed.json"
        perturbed.write_text(json.dumps(rows))
        assert main(["compare", str(path), str(perturbed)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert f"algorithm={rows[0]['algorithm']}" in out
        assert "time" in out

    def test_bench_blobs_parse_and_self_diff(self, capsys):
        """Schema check: the repo BENCH_*.json blobs diff as metric sets."""
        for name in ("BENCH_sweep.json", "BENCH_verify.json"):
            blob = str(REPO_ROOT / name)
            assert main(["compare", blob, blob]) == 0
            assert "[metrics]" in capsys.readouterr().out

    def test_kind_mismatch_fails(self, tmp_path, capsys):
        path = self.records_file(tmp_path, capsys)
        assert main(["compare", str(path),
                     str(REPO_ROOT / "BENCH_sweep.json")]) == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_baseline_update_and_gate(self, tmp_path, capsys):
        manifest = tmp_path / "tiny.json"
        manifest.write_text(json.dumps(TINY_MANIFEST))
        baseline = tmp_path / "baseline.json"
        assert main(["compare", str(baseline), str(manifest), "--update"]) == 0
        capsys.readouterr()
        # rerun of the deterministic campaign: gate passes
        assert main(["compare", str(baseline), str(manifest)]) == 0
        capsys.readouterr()
        # perturbed baseline: gate fails and names the drift
        payload = json.loads(baseline.read_text())
        payload["records"][2]["global_bytes"] += 1.0
        baseline.write_text(json.dumps(payload))
        assert main(["compare", str(baseline), str(manifest)]) == 1
        assert "global_bytes" in capsys.readouterr().out

    def test_update_requires_manifest(self, tmp_path, capsys):
        path = self.records_file(tmp_path, capsys)
        assert main(["compare", str(tmp_path / "b.json"), str(path),
                     "--update"]) == 2
        assert "not a manifest" in capsys.readouterr().err

    def test_markdown_format(self, tmp_path, capsys):
        path = self.records_file(tmp_path, capsys)
        assert main(["compare", str(path), str(path),
                     "--format", "markdown"]) == 0
        assert capsys.readouterr().out.startswith("**")

    def test_missing_file_fails(self, capsys):
        assert main(["compare", "nope.json", "nope.json"]) == 2

    def test_malformed_json_fails_cleanly(self, tmp_path, capsys):
        # a truncated baseline must exit 2 (usage error), never 1 (drift)
        good = self.records_file(tmp_path, capsys)
        bad = tmp_path / "truncated.json"
        bad.write_text(good.read_text()[:40])
        assert main(["compare", str(bad), str(good)]) == 2
        assert "not valid JSON" in capsys.readouterr().err


# -- torus campaign manifests ------------------------------------------------


class TestTorusManifest:
    TINY_TORUS = {
        "campaign": {"name": "tiny-torus", "system": "fugaku",
                     "placement": "block"},
        "grid": [
            {
                "collectives": ["allreduce", "bcast"],
                "torus_dims": [2, 2, 2],
                "vector_bytes": [1024, 1048576],
            }
        ],
    }

    def test_campaign_matches_direct_sweep_torus(self, tmp_path, capsys):
        from repro.analysis.sweep import sweep_torus
        from repro.systems import fugaku

        manifest = tmp_path / "torus.json"
        manifest.write_text(json.dumps(self.TINY_TORUS))
        assert main(["campaign", str(manifest), "--format", "json"]) == 0
        got = [SweepRecord.from_dict(d) for d in json.loads(capsys.readouterr().out)]
        want = sweep_torus(fugaku(), (2, 2, 2), ("allreduce", "bcast"),
                           vector_bytes=(1024, 1048576))
        assert got == want
        assert {r.system for r in got} == {"fugaku:2x2x2"}
        assert {r.algorithm for r in got if r.collective == "allreduce"} >= {
            "bine-multiport", "bine-torus", "bucket", "binomial",
        }

    def test_shipped_fugaku_manifests_validate(self):
        fig11b = load_manifest(REPO_ROOT / "campaigns" / "fig11b_fugaku.toml")
        assert [g.torus_dims for g in fig11b.grids] == [
            (2, 2, 2), (4, 4, 4), (8, 8, 8), (8, 8)
        ]
        assert all(g.node_counts == (
            g.torus_dims[0] * g.torus_dims[1] * (g.torus_dims + (1,))[2],
        ) for g in fig11b.grids)
        appd = load_manifest(REPO_ROOT / "campaigns" / "appd_torus.toml")
        assert appd.grids[0].algorithms == ("bine-torus", "bine-multiport")

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d["campaign"].update(system="lumi"), "fugaku"),
            (lambda d: d["grid"][0].update(torus_dims=[3, 3]), "power of two|extent"),
            (lambda d: d["grid"][0].update(node_counts=[9]), "contradicts"),
            (lambda d: d["grid"][0].update(algorithms=["warp-drive"]),
             "unknown algorithm"),
            (lambda d: d["grid"][0].update(max_p={"bcast": 4}), "neither max_p"),
            (lambda d: d["grid"][0].update(ppn=2), "neither max_p nor ppn"),
            (lambda d: d["grid"][0].update(collectives=["alltoall"]),
             "no torus algorithm"),
            (lambda d: d["campaign"].update(placement="scheduler"),
             'placement = "block"'),
        ],
    )
    def test_torus_validation_errors(self, mutate, message):
        data = json.loads(json.dumps(self.TINY_TORUS))
        mutate(data)
        with pytest.raises(ManifestError, match=message):
            manifest_from_dict(data)

    def test_torus_roundtrip(self):
        m = manifest_from_dict(json.loads(json.dumps(self.TINY_TORUS)))
        assert manifest_from_dict(manifest_to_dict(m)) == m


# -- repro verify ------------------------------------------------------------


class TestVerify:
    def test_quick_smoke_grid(self, capsys):
        """The tier-1 oracle smoke: every registry cell at p=4,8, one seed."""
        assert main(["verify", "--quick"]) == 0
        captured = capsys.readouterr()
        assert "0 failed" in captured.err
        assert "total:" in captured.out and " ok" in captured.out

    def test_quick_cross_check_engines(self, capsys):
        assert main(["verify", "--quick", "--engine", "both",
                     "--collective", "allreduce"]) == 0
        out = capsys.readouterr().out
        assert "allreduce" in out and "failed" in out

    def test_json_records(self, capsys):
        assert main(["verify", "--collective", "bcast", "--nodes", "8,12",
                     "--seeds", "0", "--format", "json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert {r["status"] for r in records} == {"ok", "skipped"}
        assert {r["p"] for r in records} == {8, 12}  # pow2-only cells skip at 12
        assert all(r["engine"] == "compiled" for r in records)

    def test_markdown_and_table(self, capsys):
        assert main(["verify", "--quick", "--collective", "scatter",
                     "--format", "markdown"]) == 0
        assert capsys.readouterr().out.startswith("| collective |")
        assert main(["verify", "--quick", "--collective", "scatter",
                     "--format", "table"]) == 0
        assert "scatter" in capsys.readouterr().out

    def test_workers_identical_to_serial(self, capsys):
        args = ["verify", "--quick", "--collective", "gather", "--format", "json"]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        strip = lambda rs: [{**r, "elapsed_s": 0} for r in rs]
        assert strip(serial) == strip(parallel)

    def test_failure_exits_one(self, capsys, monkeypatch):
        from repro.collectives.registry import ALGORITHMS, AlgorithmSpec
        from repro.collectives.verify import clear_plan_cache
        from repro.runtime.schedule import Schedule

        spec = AlgorithmSpec(
            "bcast", "broken", "bine",
            lambda p, n, root, op: Schedule(
                p, meta={"collective": "bcast", "n": n, "root": 0}
            ),
            pow2_only=False,
        )
        monkeypatch.setitem(ALGORITHMS, ("bcast", "broken"), spec)
        assert main(["verify", "--quick", "--collective", "bcast",
                     "--algorithm", "broken"]) == 1
        captured = capsys.readouterr()
        assert "1 failed" in captured.err or "2 failed" in captured.err
        assert "failures:" in captured.out
        clear_plan_cache()

    def test_unknown_collective_fails(self, capsys):
        assert main(["verify", "--collective", "bogus"]) == 2
        assert "unknown collective" in capsys.readouterr().err

    def test_unknown_algorithm_fails(self, capsys):
        assert main(["verify", "--collective", "bcast", "--algorithm", "bien"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "verify.json"
        assert main(["verify", "--quick", "--collective", "alltoall",
                     "--format", "json", "--output", str(target)]) == 0
        records = json.loads(target.read_text())
        assert records and all(r["collective"] == "alltoall" for r in records)


# -- repro bench -------------------------------------------------------------


class TestBench:
    def test_list_inventory(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_table3_lumi" in out and "bench_fig01_bcast_traffic" in out
        assert "Table 3" in out  # docstring first lines shown

    def test_pattern_filter(self, capsys):
        assert main(["bench", "--list", "table"]) == 0
        out = capsys.readouterr().out
        assert "bench_table5_mn5" in out and "bench_fig01" not in out

    def test_no_match_fails(self, capsys):
        assert main(["bench", "zzz-not-a-bench"]) == 2

    def test_runs_one_bench_via_pytest(self):
        # cheapest bench: Eq. 2 distance ratios (pure arithmetic)
        assert main(["bench", "eq02"]) == 0


# -- python -m repro ---------------------------------------------------------


def test_module_entry_point():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "list", "--collective", "bcast"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "bcast:" in proc.stdout
