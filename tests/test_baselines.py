"""Committed Table 3-5 baselines gate the model in tier-1.

``campaigns/baselines/*.json`` freeze the paper-table campaigns' records
(written by ``repro compare <baseline> <manifest> --update``).  Every
tier-1 run reruns the campaigns and diffs them cell by cell at the
bit-stable tolerance (1e-9 relative — see ``docs/reporting.md``): the
sweep pipeline is deterministic end to end, so any drift means the model
changed.  Intentional model evolution re-freezes with ``--update`` and
explains itself in the commit; everything else is a regression.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.report.baseline import check_baseline
from repro.report.diff import DEFAULT_TOLERANCE, diff_summary

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINES = REPO_ROOT / "campaigns" / "baselines"

#: the paper-table campaigns gated in tier-1
GATED = ("table3_lumi", "table4_leonardo", "table5_mn5")


@pytest.mark.parametrize("name", GATED)
def test_campaign_matches_committed_baseline(name):
    diff = check_baseline(
        BASELINES / f"{name}.json",
        REPO_ROOT / "campaigns" / f"{name}.toml",
        tolerance=DEFAULT_TOLERANCE,
    )
    assert not diff.drifted, (
        f"{name} drifted from its committed baseline "
        f"(re-freeze with `repro compare campaigns/baselines/{name}.json "
        f"campaigns/{name}.toml --update` if the change is intentional):\n"
        + diff_summary(diff)
    )


def test_every_paper_table_campaign_has_a_baseline():
    # adding a table manifest without freezing its baseline should fail
    # loudly here, not silently skip the gate
    manifests = {p.stem for p in (REPO_ROOT / "campaigns").glob("table*.toml")}
    assert manifests == set(GATED)
    for name in GATED:
        assert (BASELINES / f"{name}.json").exists()
