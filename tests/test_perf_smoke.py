"""Wall-clock guard against sweep-pipeline performance regressions.

The quadratic ``Step.validate`` re-scan (and the uncached ν-label tables it
hid behind) made a single 256-rank butterfly build+profile take seconds;
the fixed pipeline does it in well under one.  A generous budget keeps the
test portable across CI machines while still failing loudly if an
O(transfers²)-class regression returns.
"""

from __future__ import annotations

import time

from repro.analysis.sweep import clear_memo_caches, sweep_system
from repro.collectives.butterfly_collectives import allgather_butterfly
from repro.collectives.registry import build
from repro.collectives.verify import check, init_buffers, run_and_check_compiled
from repro.core.butterfly import bine_butterfly_doubling
from repro.model.simulator import profile_schedule
from repro.runtime.compiled import compile_plan
from repro.runtime.executor import execute
from repro.runtime.schedule import schedule_validation
from repro.systems import lumi
from repro.topology.mapping import block_mapping

#: generous ceiling — the pre-fix pipeline exceeded it several times over
BUDGET_S = 5.0


def test_256_rank_allgather_build_profile_under_budget():
    clear_memo_caches()  # cold start: include label-table construction
    preset = lumi()
    topo = preset.build_topology()
    t0 = time.perf_counter()
    schedule = allgather_butterfly(bine_butterfly_doubling(256), 256)
    profile = profile_schedule(schedule, topo, block_mapping(256))
    elapsed = time.perf_counter() - t0
    assert len(profile.steps) == schedule.num_steps == 8
    assert elapsed < BUDGET_S, f"build+profile took {elapsed:.2f}s (budget {BUDGET_S}s)"


def test_256_rank_compiled_oracle_under_reference_budget():
    """Compile + batched execute must stay under the reference executor's
    wall-clock for the same work — the compiled path's reason to exist.

    The cell is a 256-rank ring allreduce (Θ(p²) transfers: per-transfer
    interpreter overhead dominates) verified at two seeds; the reference
    budget is measured in-process so the assertion is machine-independent.
    A small floor keeps timer noise from failing near-zero measurements.
    """
    seeds = (0, 1)
    schedule = build("allreduce", "ring", 256, 256)
    with schedule_validation(False):  # identical settings for both engines
        t0 = time.perf_counter()
        for seed in seeds:
            bufs = init_buffers(schedule, seed)
            execute(schedule, bufs)
            check(schedule, bufs, seed)
        reference_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_and_check_compiled(schedule, seeds)  # includes compile_plan
        compiled_s = time.perf_counter() - t0
    assert compiled_s < max(reference_s, 0.05), (
        f"compile+execute took {compiled_s:.3f}s, "
        f"reference budget is {reference_s:.3f}s"
    )


def test_4096_rank_sweep_cell_under_budget():
    """One cold p=4096 sweep cell — build, lower, profile through the CSR
    route matrix, evaluate all nine paper sizes in one grid pass — must
    stay comfortably interactive (the compiled profile pipeline's reason
    to exist; this cell measured ~1.4 s cold on the bench box).  LUMI has
    24 x 124 = 2976 nodes, so 4096 ranks run at ppn=2 like the paper's
    multi-rank-per-node configurations.
    """
    clear_memo_caches()  # cold start: include table lowering + routing
    t0 = time.perf_counter()
    records = sweep_system(
        lumi(),
        ("allreduce",),
        node_counts=(4096,),
        vector_bytes=tuple(32 * 8**k for k in range(9)),
        algorithms=("bine-rsag",),
        ppn=2,
        profile_engine="compiled",
    )
    elapsed = time.perf_counter() - t0
    assert len(records) == 9
    assert all(r.p == 4096 and r.time > 0 for r in records)
    assert elapsed < BUDGET_S * 2, (
        f"p=4096 sweep cell took {elapsed:.2f}s (budget {BUDGET_S * 2}s)"
    )


def test_1024_rank_compiled_oracle_absolute_budget():
    """A p=1024 butterfly cell — compile once, verify two seeds — must stay
    comfortably interactive (the grid-scale `repro verify` building block)."""
    schedule = build("allreduce", "bine-rsag", 1024, 1024)
    with schedule_validation(False):
        t0 = time.perf_counter()
        plan = compile_plan(schedule)
        run_and_check_compiled(schedule, (0, 1), plan)
        elapsed = time.perf_counter() - t0
    assert elapsed < BUDGET_S, (
        f"compile+verify took {elapsed:.2f}s (budget {BUDGET_S}s)"
    )
