"""Wall-clock guard against sweep-pipeline performance regressions.

The quadratic ``Step.validate`` re-scan (and the uncached ν-label tables it
hid behind) made a single 256-rank butterfly build+profile take seconds;
the fixed pipeline does it in well under one.  A generous budget keeps the
test portable across CI machines while still failing loudly if an
O(transfers²)-class regression returns.
"""

from __future__ import annotations

import time

from repro.analysis.sweep import clear_memo_caches
from repro.collectives.butterfly_collectives import allgather_butterfly
from repro.core.butterfly import bine_butterfly_doubling
from repro.model.simulator import profile_schedule
from repro.systems import lumi
from repro.topology.mapping import block_mapping

#: generous ceiling — the pre-fix pipeline exceeded it several times over
BUDGET_S = 5.0


def test_256_rank_allgather_build_profile_under_budget():
    clear_memo_caches()  # cold start: include label-table construction
    preset = lumi()
    topo = preset.build_topology()
    t0 = time.perf_counter()
    schedule = allgather_butterfly(bine_butterfly_doubling(256), 256)
    profile = profile_schedule(schedule, topo, block_mapping(256))
    elapsed = time.perf_counter() - t0
    assert len(profile.steps) == schedule.num_steps == 8
    assert elapsed < BUDGET_S, f"build+profile took {elapsed:.2f}s (budget {BUDGET_S}s)"
